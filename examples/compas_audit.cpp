// Fairness audit: use a pattern-count label to flag under-represented
// intersectional groups — the paper's motivating COMPAS scenario (Sec. I:
// "a judge sentencing a Hispanic woman presumably would like to be
// informed about this low count of Hispanic women in the data set").
//
// The label is computed once (as dataset metadata); the audit then runs
// entirely against the label — no access to the raw data — estimating the
// size of every demographic intersection and warning when a group falls
// below a support threshold.
//
//   $ ./compas_audit [min_support]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "pcbl/pcbl.h"

using pcbl::AttrMask;
using pcbl::LabelSearch;
using pcbl::Pattern;
using pcbl::PortableLabel;
using pcbl::SearchOptions;
using pcbl::SearchResult;
using pcbl::Table;

namespace {

struct Finding {
  std::string group;
  double estimated = 0;
  int64_t actual = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t min_support = 150;
  if (argc > 1) min_support = std::atoll(argv[1]);

  auto table_or = pcbl::workload::MakeCompas();
  if (!table_or.ok()) {
    std::fprintf(stderr, "%s\n", table_or.status().ToString().c_str());
    return 1;
  }
  const Table& table = *table_or;
  std::printf("COMPAS-like dataset: %lld tuples, %d attributes\n",
              static_cast<long long>(table.num_rows()),
              table.num_attributes());

  // The dataset publisher computes the label (bound 100) once.
  LabelSearch search(table);
  SearchOptions options;
  options.size_bound = 100;
  SearchResult result = search.TopDown(options);
  PortableLabel label = MakePortable(result.label, table, "COMPAS");
  std::printf(
      "Published label: S = %s, |PC| = %lld, max error %.0f (%.2f%% of "
      "rows)\n\n",
      result.best_attrs.ToString().c_str(),
      static_cast<long long>(result.label.size()), result.error.max_abs,
      100.0 * result.error.max_abs /
          static_cast<double>(table.num_rows()));

  // The auditor (label-only!) sweeps demographic intersections through
  // the library's fitness-for-use audit (core/warnings.h).
  pcbl::AuditOptions audit_options;
  audit_options.min_group_count = min_support;
  audit_options.max_arity = 3;  // gender x race x marital triples
  audit_options.correlation_factor = 1e18;  // representation only here
  audit_options.max_group_share = 1.1;
  auto warnings = pcbl::AuditLabel(
      label, {"Gender", "Race", "MaritalStatus"}, audit_options);
  if (!warnings.ok()) {
    std::fprintf(stderr, "%s\n", warnings.status().ToString().c_str());
    return 1;
  }

  std::vector<Finding> flagged;
  for (const pcbl::FitnessWarning& w : *warnings) {
    if (w.group.size() != 3) continue;  // report the full triples
    // Cross-check against the (normally unavailable) ground truth to
    // show the estimate quality.
    auto p = Pattern::Parse(table, w.group);
    int64_t actual = p.ok() ? CountMatches(table, *p) : 0;
    flagged.push_back(Finding{w.GroupString(), w.estimated, actual});
  }

  std::printf("Audited gender x race x marital-status intersections; "
              "%zu triples fall below min support %lld:\n\n",
              flagged.size(), static_cast<long long>(min_support));
  std::printf("  %-62s %12s %12s\n", "group", "estimated", "actual");
  for (const Finding& f : flagged) {
    std::printf("  %-62s %12.1f %12lld%s\n", f.group.c_str(), f.estimated,
                static_cast<long long>(f.actual),
                f.actual < min_support ? "" : "  (false alarm)");
  }

  int64_t true_hits = 0;
  for (const Finding& f : flagged) {
    if (f.actual < min_support) ++true_hits;
  }
  std::printf(
      "\n%lld/%zu warnings confirmed by ground truth. Groups this small "
      "are candidates for the coverage-enhancement step the paper cites "
      "([8], Asudeh et al., ICDE 2019).\n",
      static_cast<long long>(true_hits), flagged.size());
  return 0;
}
