// Quickstart: the paper's running example, end to end.
//
// Builds the 18-tuple simplified-COMPAS fragment of Fig. 2, walks through
// the worked examples of Sec. II (pattern counts, labels, estimation,
// error), runs Algorithm 1 with the bound of Example 3.7, and prints the
// resulting nutrition label.
//
//   $ ./quickstart
#include <cstdio>

#include "pcbl/pcbl.h"

using pcbl::AttrMask;
using pcbl::ErrorMode;
using pcbl::ErrorReport;
using pcbl::EvaluateOverFullPatterns;
using pcbl::FullPatternIndex;
using pcbl::Label;
using pcbl::LabelEstimator;
using pcbl::LabelSearch;
using pcbl::MakePortable;
using pcbl::Pattern;
using pcbl::PortableLabel;
using pcbl::SearchOptions;
using pcbl::SearchResult;
using pcbl::Table;

int main() {
  // --- the data (Fig. 2) ------------------------------------------------
  Table table = pcbl::workload::MakeFig2Demo();
  std::printf("The Fig. 2 fragment (%lld tuples):\n%s\n",
              static_cast<long long>(table.num_rows()),
              table.ToDebugString(6).c_str());

  // --- patterns and counts (Examples 2.2-2.4) ----------------------------
  auto p = Pattern::Parse(
      table, {{"age group", "under 20"}, {"marital status", "single"}});
  if (!p.ok()) {
    std::fprintf(stderr, "%s\n", p.status().ToString().c_str());
    return 1;
  }
  std::printf("c_D(%s) = %lld   (Example 2.4 says 6)\n\n",
              p->ToString(table).c_str(),
              static_cast<long long>(CountMatches(table, *p)));

  // --- labels and estimation (Examples 2.10-2.14) ------------------------
  Label l = Label::Build(table, AttrMask::FromIndices({1, 3}));
  Label l_prime = Label::Build(table, AttrMask::FromIndices({0, 1}));
  auto target = Pattern::Parse(table, {{"gender", "Female"},
                                       {"age group", "20-39"},
                                       {"marital status", "married"}});
  if (!target.ok()) return 1;
  std::printf("Estimating %s (true count %lld):\n",
              target->ToString(table).c_str(),
              static_cast<long long>(CountMatches(table, *target)));
  std::printf("  with L_{age group, marital status}: %.1f  (paper: 3)\n",
              l.EstimateCount(*target));
  std::printf("  with L_{gender, age group}:         %.1f  (paper: 2)\n\n",
              l_prime.EstimateCount(*target));

  // --- the search (Example 3.7: bound 5) ----------------------------------
  LabelSearch search(table);
  SearchOptions options;
  options.size_bound = 5;
  options.record_candidates = true;
  SearchResult result = search.TopDown(options);
  std::printf("Algorithm 1 with bound 5 examined %lld subsets and kept %zu "
              "candidates:\n",
              static_cast<long long>(result.stats.subsets_examined),
              result.candidates.size());
  for (const auto& c : result.candidates) {
    std::printf("  S = %s  |PC| = %lld  max error = %.1f\n",
                c.attrs.ToString().c_str(),
                static_cast<long long>(c.label_size), c.max_error);
  }
  std::printf("\n");

  // --- the nutrition label -----------------------------------------------
  PortableLabel portable = MakePortable(result.label, table, "fig2-demo");
  std::printf("%s\n",
              pcbl::RenderNutritionLabel(portable, &result.error).c_str());

  // --- persist and reload ------------------------------------------------
  std::string path = "/tmp/fig2-label.json";
  if (pcbl::SaveLabel(portable, path).ok()) {
    auto back = pcbl::LoadLabel(path);
    if (back.ok()) {
      auto est = back->EstimateCount({{"gender", "Female"},
                                      {"race", "Hispanic"}});
      std::printf("Reloaded %s; Est(female & Hispanic) = %.2f (true %lld)\n",
                  path.c_str(), est.value_or(-1),
                  static_cast<long long>(CountMatches(
                      table, Pattern::Parse(table,
                                            {{"gender", "Female"},
                                             {"race", "Hispanic"}})
                                 .value())));
    }
  }
  return 0;
}
