// label_explorer: a command-line tool around the library — generate a
// label for any CSV file and query it.
//
// Usage:
//   label_explorer build <data.csv> [--bound N] [--out label.json]
//       [--naive] [--binary]
//       Searches for the optimal label and writes it (JSON by default).
//
//   label_explorer show <label.json|label.bin>
//       Renders a stored label as a nutrition label.
//
//   label_explorer estimate <label.json> attr=value [attr=value ...]
//       Estimates the count of a pattern from the stored label alone.
//
//   label_explorer demo
//       Builds the paper's Fig. 2 fragment as /tmp/fig2.csv to play with.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "pcbl/pcbl.h"

namespace {

using pcbl::LabelSearch;
using pcbl::PortableLabel;
using pcbl::SearchOptions;
using pcbl::SearchResult;
using pcbl::Table;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  label_explorer build <data.csv> [--bound N] [--out FILE]"
      " [--naive] [--binary]\n"
      "  label_explorer show <label-file>\n"
      "  label_explorer estimate <label-file> attr=value [attr=value ...]\n"
      "  label_explorer demo\n");
  return 2;
}

int Build(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string csv_path = argv[2];
  int64_t bound = 100;
  std::string out_path = csv_path + ".label.json";
  bool naive = false;
  bool binary = false;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--bound" && i + 1 < argc) {
      auto v = pcbl::ParseInt64(argv[++i]);
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr, "invalid --bound\n");
        return 2;
      }
      bound = *v;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--naive") {
      naive = true;
    } else if (arg == "--binary") {
      binary = true;
    } else {
      return Usage();
    }
  }

  auto table = pcbl::ReadCsvFile(csv_path);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", csv_path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %lld rows x %d attributes\n", csv_path.c_str(),
              static_cast<long long>(table->num_rows()),
              table->num_attributes());

  LabelSearch search(*table);
  SearchOptions options;
  options.size_bound = bound;
  SearchResult result =
      naive ? search.Naive(options) : search.TopDown(options);
  std::printf("%s search: examined %lld subsets in %.3fs\n",
              naive ? "naive" : "top-down",
              static_cast<long long>(result.stats.subsets_examined),
              result.stats.total_seconds);
  std::vector<std::string> names;
  for (int a : result.best_attrs.ToIndices()) {
    names.push_back(table->schema().name(a));
  }
  std::printf("optimal S = { %s }, |PC| = %lld, max error %.0f "
              "(%.3f%% of rows), mean %.2f\n",
              pcbl::Join(names, ", ").c_str(),
              static_cast<long long>(result.label.size()),
              result.error.max_abs,
              table->num_rows() > 0
                  ? 100.0 * result.error.max_abs /
                        static_cast<double>(table->num_rows())
                  : 0.0,
              result.error.mean_abs);

  PortableLabel portable = MakePortable(result.label, *table, csv_path);
  pcbl::Status s = pcbl::SaveLabel(portable, out_path, binary);
  if (!s.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  std::printf("label written to %s (%s)\n", out_path.c_str(),
              binary ? "binary" : "json");
  return 0;
}

int Show(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto label = pcbl::LoadLabel(argv[2]);
  if (!label.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 label.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", pcbl::RenderNutritionLabel(*label).c_str());
  return 0;
}

int Estimate(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto label = pcbl::LoadLabel(argv[2]);
  if (!label.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[2],
                 label.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<std::string, std::string>> pattern;
  for (int i = 3; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "'%s' is not attr=value\n", argv[i]);
      return 2;
    }
    pattern.emplace_back(
        std::string(argv[i], static_cast<size_t>(eq - argv[i])),
        std::string(eq + 1));
  }
  auto est = label->EstimateCount(pattern);
  if (!est.ok()) {
    std::fprintf(stderr, "%s\n", est.status().ToString().c_str());
    return 1;
  }
  std::printf("Est = %.2f of %lld rows (%.4f%%)\n", *est,
              static_cast<long long>(label->total_rows),
              label->total_rows > 0
                  ? 100.0 * *est / static_cast<double>(label->total_rows)
                  : 0.0);
  return 0;
}

int Demo() {
  Table t = pcbl::workload::MakeFig2Demo();
  std::string path = "/tmp/fig2.csv";
  pcbl::Status s = pcbl::WriteCsvFile(t, path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s — try:\n"
              "  label_explorer build %s --bound 5\n"
              "  label_explorer show %s.label.json\n"
              "  label_explorer estimate %s.label.json gender=Female "
              "\"age group=20-39\"\n",
              path.c_str(), path.c_str(), path.c_str(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "build") return Build(argc, argv);
  if (cmd == "show") return Show(argc, argv);
  if (cmd == "estimate") return Estimate(argc, argv);
  if (cmd == "demo") return Demo();
  return Usage();
}
