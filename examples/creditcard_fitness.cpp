// Fitness-for-use report: bucketize a numeric dataset, label it, and
// check distribution skew and attribute dependence before using the data
// to train a model — the Credit Card scenario of Sec. IV-A.
//
// Demonstrates: bucketization of continuous domains, attribute profiling
// (entropy / skew), label-vs-sample footprint comparison, and dependence
// discovery by comparing label estimates against independence estimates
// ("if all tuples representing individuals under 20 are also single, this
// may point out a possible connection", Sec. I).
//
//   $ ./creditcard_fitness
#include <algorithm>
#include <cstdio>
#include <vector>

#include "pcbl/pcbl.h"

using pcbl::AttrMask;
using pcbl::ErrorMode;
using pcbl::ErrorReport;
using pcbl::EvaluateOverFullPatterns;
using pcbl::IndependenceEstimator;
using pcbl::LabelEstimator;
using pcbl::LabelSearch;
using pcbl::SamplingEstimator;
using pcbl::SearchOptions;
using pcbl::SearchResult;
using pcbl::Table;

int main() {
  auto table_or = pcbl::workload::MakeCreditCard();
  if (!table_or.ok()) {
    std::fprintf(stderr, "%s\n", table_or.status().ToString().c_str());
    return 1;
  }
  const Table& table = *table_or;
  std::printf("Credit-card dataset: %lld clients, %d attributes "
              "(numerics bucketized to 5 bins)\n\n",
              static_cast<long long>(table.num_rows()),
              table.num_attributes());

  // --- 1. attribute profile: skew worth knowing about --------------------
  std::printf("Most skewed attributes (top value share):\n");
  auto summaries = pcbl::SummarizeAttributes(table);
  std::sort(summaries.begin(), summaries.end(),
            [](const auto& a, const auto& b) {
              return a.top_count > b.top_count;
            });
  for (size_t i = 0; i < 5 && i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::printf("  %-28s top='%s' %5.1f%%  (%lld distinct, %.2f bits)\n",
                s.name.c_str(), s.top_value.c_str(),
                100.0 * static_cast<double>(s.top_count) /
                    static_cast<double>(table.num_rows()),
                static_cast<long long>(s.distinct_values), s.entropy_bits);
  }
  std::printf("\n");

  // --- 2. the label -------------------------------------------------------
  LabelSearch search(table);
  SearchOptions options;
  options.size_bound = 100;
  SearchResult result = search.TopDown(options);
  std::printf("Label (bound 100): S = %s, |PC| = %lld, max err %.0f, "
              "mean err %.2f\n",
              result.best_attrs.ToString().c_str(),
              static_cast<long long>(result.label.size()),
              result.error.max_abs, result.error.mean_abs);

  // --- 3. same footprint, sample vs label ---------------------------------
  int64_t footprint =
      result.label.size() + search.value_counts().TotalEntries();
  SamplingEstimator sample = SamplingEstimator::Build(table, footprint, 1);
  ErrorReport sample_err = EvaluateOverFullPatterns(
      search.full_patterns(), sample, ErrorMode::kExact);
  std::printf("Uniform sample of the same footprint (%lld entries): "
              "max err %.0f, mean err %.2f  (label mean is %.1fx better)\n\n",
              static_cast<long long>(footprint), sample_err.max_abs,
              sample_err.mean_abs,
              sample_err.mean_abs / std::max(result.error.mean_abs, 1e-9));

  // --- 4. dependence discovery --------------------------------------------
  // Compare label estimates against the independence assumption for the
  // repayment-status chain: large ratios reveal correlated attributes.
  IndependenceEstimator indep = IndependenceEstimator::Build(
      table, result.label.shared_value_counts());
  std::printf("Dependence check (label estimate / independence estimate):\n");
  struct Probe {
    const char* a;
    const char* b;
  };
  for (const Probe& probe : std::vector<Probe>{
           {"PAY_0", "PAY_2"}, {"PAY_2", "PAY_3"}, {"SEX", "MARRIAGE"}}) {
    int ia = table.schema().FindAttribute(probe.a).value();
    int ib = table.schema().FindAttribute(probe.b).value();
    // Probe the modal value of each attribute.
    pcbl::ValueCounts vc = pcbl::ValueCounts::Compute(table);
    auto modal = [&](int attr) {
      pcbl::ValueId best = 0;
      for (pcbl::ValueId v = 1; v < table.DomainSize(attr); ++v) {
        if (vc.Count(attr, v) > vc.Count(attr, best)) best = v;
      }
      return best;
    };
    auto p = pcbl::Pattern::Create(
        {{ia, modal(ia)}, {ib, modal(ib)}});
    if (!p.ok()) continue;
    double joint = result.label.EstimateCount(*p);
    double ind = indep.EstimateCount(*p);
    double actual = static_cast<double>(CountMatches(table, *p));
    std::printf("  %-8s x %-8s  label=%8.0f  indep=%8.0f  actual=%8.0f  "
                "lift=%.2f\n",
                probe.a, probe.b, joint, ind, actual,
                actual / std::max(ind, 1e-9));
  }
  std::printf(
      "\nLift far from 1.0 marks correlated attributes: treat per-attribute "
      "statistics of those columns with suspicion when assessing fitness "
      "for use.\n");
  return 0;
}
