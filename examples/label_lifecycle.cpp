// Label lifecycle: ship, consume, maintain, patch.
//
// A dataset publisher builds a label and ships it as metadata; a consumer
// binds the shipped label to their copy of the data and audits it; the
// dataset then grows, the label is maintained incrementally, and the drift
// report decides when a fresh search (optionally with outlier patches) is
// worth it. Exercises PortableLabel, BoundPortableLabel, IncrementalLabel
// and PatchedLabel end to end.
//
//   $ ./label_lifecycle
#include <cstdio>

#include "pcbl/pcbl.h"

using pcbl::AttrMask;
using pcbl::BoundPortableLabel;
using pcbl::ErrorMode;
using pcbl::ErrorReport;
using pcbl::EvaluateOverFullPatterns;
using pcbl::FullPatternIndex;
using pcbl::IncrementalLabel;
using pcbl::LabelDrift;
using pcbl::LabelSearch;
using pcbl::MakePortable;
using pcbl::PatchedSearchOptions;
using pcbl::PortableLabel;
using pcbl::SearchOptions;
using pcbl::SearchResult;
using pcbl::Table;

int main() {
  // --- publisher: build and ship a label ---------------------------------
  auto base = pcbl::workload::MakeCompas(8000, 2021);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  LabelSearch search(*base);
  SearchOptions options;
  options.size_bound = 60;
  options.num_threads = pcbl::DefaultThreadCount();
  SearchResult shipped = search.TopDown(options);
  std::printf("publisher: label over S = %s, |PC| = %lld, max error %.0f\n",
              shipped.best_attrs.ToString().c_str(),
              static_cast<long long>(shipped.label.size()),
              shipped.error.max_abs);
  PortableLabel portable = MakePortable(shipped.label, *base, "compas-8k");

  // --- consumer: bind the shipped label to a local copy and audit it -----
  auto bound = BoundPortableLabel::Bind(portable, *base);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  FullPatternIndex index = FullPatternIndex::Build(*base);
  ErrorReport audit =
      EvaluateOverFullPatterns(index, *bound, ErrorMode::kExact);
  std::printf("consumer:  audited shipped label: max %.0f / mean %.2f over "
              "%lld patterns\n",
              audit.max_abs, audit.mean_abs,
              static_cast<long long>(audit.total));

  // --- maintainer: the dataset grows --------------------------------------
  auto inc = IncrementalLabel::Create(*base, shipped.best_attrs,
                                      options.size_bound);
  if (!inc.ok()) {
    std::fprintf(stderr, "%s\n", inc.status().ToString().c_str());
    return 1;
  }
  auto delta = pcbl::workload::MakeCompas(2500, 77);
  if (!delta.ok() || !inc->AppendTable(*delta).ok()) {
    std::fprintf(stderr, "append failed\n");
    return 1;
  }
  LabelDrift drift = inc->drift();
  std::printf("maintainer: +%lld rows, +%lld new PC patterns, bound %s\n",
              static_cast<long long>(drift.appended_rows),
              static_cast<long long>(drift.new_patterns),
              drift.bound_exceeded ? "EXCEEDED" : "ok");
  std::printf("maintainer: rebuild advisable at 20%% growth? %s\n",
              drift.SuggestRebuild(0.2) ? "yes" : "no");

  // --- rebuild with an outlier patch list when the search re-runs --------
  if (drift.SuggestRebuild(0.2)) {
    auto grown = pcbl::workload::MakeCompas(10500, 4242);
    if (!grown.ok()) return 1;
    PatchedSearchOptions patched_options;
    patched_options.total_bound = options.size_bound;
    auto patched = pcbl::SearchPatchedLabel(*grown, patched_options);
    if (!patched.ok()) {
      std::fprintf(stderr, "%s\n", patched.status().ToString().c_str());
      return 1;
    }
    std::printf("rebuild:   base S = %s + %d patches (footprint %lld), "
                "max error %.0f\n",
                patched->base_attrs.ToString().c_str(),
                patched->num_patches,
                static_cast<long long>(patched->total_size),
                patched->error.max_abs);
    for (const auto& split : patched->splits) {
      std::printf("           split k=%-3d base %-3lld -> max %.0f\n",
                  split.num_patches,
                  static_cast<long long>(split.base_size),
                  split.error.max_abs);
    }
  }
  return 0;
}
