// Ablation (related work, Sec. V): PCBL labels vs classic synopses at
// equal footprint — Count-Min sketch over full patterns, dependency-based
// pairwise (2-D) histograms, uniform sampling, and the Postgres 1-D model.
// Not a paper figure: the paper argues histograms/sketches handle high
// dimensionality or categorical joint structure poorly; this bench
// quantifies that claim on the three (simulated) paper datasets.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/cm_sketch.h"
#include "baselines/pairwise_histogram.h"
#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "core/error.h"
#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

void AddRow(harness::TextTable& out, int64_t budget,
            const CardinalityEstimator& estimator, int64_t footprint,
            const ErrorReport& report) {
  out.AddRowValues(budget, estimator.name(), footprint,
                   StrFormat("%.0f", report.max_abs),
                   StrFormat("%.2f", report.mean_abs),
                   StrFormat("%.1f", report.mean_q));
}

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Ablation", "PCBL vs classic synopses at equal footprint",
      "labels should dominate sketches/2-D histograms on joint categorical "
      "structure (Sec. V discussion); sampling mean error stays several "
      "times higher (Sec. IV-B)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    std::printf("-- %s --\n", name.c_str());
    harness::TextTable out({"budget", "estimator", "footprint", "max err",
                            "mean err", "mean q"});
    LabelSearch search(table);
    const FullPatternIndex& index = search.full_patterns();
    auto vc = std::make_shared<const ValueCounts>(ValueCounts::Compute(table));
    for (int64_t budget : {50, 100, 200}) {
      SearchOptions options;
      options.size_bound = budget;
      SearchResult pcbl = search.TopDown(options);
      LabelEstimator label(pcbl.label);
      AddRow(out, budget, label, label.FootprintEntries(), pcbl.error);

      auto sketch = CmSketchEstimator::BuildForBudget(table, budget, vc);
      if (sketch.ok()) {
        AddRow(out, budget, *sketch, sketch->FootprintEntries(),
               EvaluateOverFullPatterns(index, *sketch, ErrorMode::kExact));
      }

      PairwiseHistogramOptions hist_options;
      hist_options.budget = budget;
      auto hist = PairwiseHistogramEstimator::Build(table, hist_options, vc);
      if (hist.ok()) {
        AddRow(out, budget, *hist, hist->FootprintEntries(),
               EvaluateOverFullPatterns(index, *hist, ErrorMode::kExact));
      }

      // Sample sized per the paper's rule (bound + |VC|), one seed here;
      // Fig. 4/5 benches do the 5-seed averaging.
      SamplingEstimator sample = SamplingEstimator::Build(
          table, budget + vc->TotalEntries(), config.seed);
      AddRow(out, budget, sample, sample.FootprintEntries(),
             EvaluateOverFullPatterns(index, sample, ErrorMode::kExact));
    }
    PostgresEstimator postgres = PostgresEstimator::Build(table);
    AddRow(out, -1, postgres, postgres.FootprintEntries(),
           EvaluateOverFullPatterns(index, postgres, ErrorMode::kExact));
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(budget -1 = bound-independent; %s)\n",
              config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
