// Figure 6 reproduction: label generation runtime as a function of the
// label size bound, naive vs optimized (Algorithm 1), on the three
// evaluation datasets.
//
// Expected shape (Sec. IV-C): both algorithms slow down as the bound
// grows (more subsets fit); the optimized heuristic is consistently and
// substantially faster, with the largest gap on the Credit Card dataset
// (most attributes).
#include <cstdio>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 6", "Label generation runtime vs size bound",
      "runtime grows with the bound; optimized (Algorithm 1) is much "
      "faster than naive, most visibly on Credit Card (Sec. IV-C)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    LabelSearch search(table);
    std::printf("-- %s (%s rows, %d attributes) --\n", name.c_str(),
                WithThousandsSeparators(table.num_rows()).c_str(),
                table.num_attributes());
    harness::TextTable out({"bound", "naive [s]", "optimized [s]",
                            "speedup", "naive max err", "optimized max err"});
    for (int64_t bound : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100}) {
      SearchOptions options;
      options.size_bound = bound;
      options.time_limit_seconds = config.time_limit_seconds;
      SearchResult naive = search.Naive(options);
      SearchResult optimized = search.TopDown(options);
      out.AddRowValues(
          bound,
          naive.stats.timed_out
              ? "t/o"
              : StrFormat("%.3f", naive.stats.total_seconds),
          optimized.stats.timed_out
              ? "t/o"
              : StrFormat("%.3f", optimized.stats.total_seconds),
          StrFormat("%.1fx", naive.stats.total_seconds /
                                 std::max(optimized.stats.total_seconds,
                                          1e-9)),
          StrFormat("%.0f", naive.error.max_abs),
          StrFormat("%.0f", optimized.error.max_abs));
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
