// Micro-benchmark for the two-level query-result tier (DESIGN.md §5.7):
//
//  * cold vs warm — the same search answered by a full execution vs a
//    completed-cache hit; the acceptance criterion is warm >= 10x cold
//    (a hit is one key derivation + one LRU lookup, no engine work);
//  * in-flight dedup — K = 4 concurrent identical queries must cost at
//    most ~1.3x the *engine work* of one solo execution (the full_scans
//    counter is reported: with the tier it stays at the solo count, the
//    cache-off arm multiplies it);
//  * miss-path overhead — a stream of all-distinct queries with the tier
//    on vs off; the delta is the pure bookkeeping cost (one hash + one
//    map insert/erase per query) and must be negligible against any real
//    query.
//
// Byte-identity of the cached and uncached arms is not asserted here —
// that is the differential suite's job (result_cache_test.cc).
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 60;
constexpr int kConcurrent = 4;

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(8000, 19);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

api::Dataset PrivateDataset(const Table& table) {
  api::DatasetOptions options;
  options.private_service = true;
  auto dataset = api::Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok());
  return *dataset;
}

api::SessionOptions MakeOptions(bool cache_on) {
  api::SessionOptions options;
  options.num_threads = 1;
  options.use_result_cache = cache_on;
  return options;
}

// The acceptance pair: one identical search, cold (fresh service, full
// execution) vs warm (answered from the completed-result cache).
void BM_IdenticalSearchCold(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    api::Dataset dataset = PrivateDataset(CompasTable());
    auto session = api::Session::Open(dataset, MakeOptions(true));
    PCBL_CHECK(session.ok());
    state.ResumeTiming();
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok()) << r.status;
    benchmark::DoNotOptimize(r.search.label.size());
    state.PauseTiming();
    (*session).reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_IdenticalSearchCold)->Unit(benchmark::kMillisecond);

void BM_IdenticalSearchWarm(benchmark::State& state) {
  api::Dataset dataset = PrivateDataset(CompasTable());
  auto session = api::Session::Open(dataset, MakeOptions(true));
  PCBL_CHECK(session.ok());
  // Populate the cache once; every timed iteration is a pure hit.
  PCBL_CHECK(
      (*session)->Run(api::QuerySpec::LabelSearch(kBound)).status.ok());
  for (auto _ : state) {
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
  state.counters["hits"] = static_cast<double>(
      dataset.service()->result_tier_stats().hits);
}
BENCHMARK(BM_IdenticalSearchWarm)->Unit(benchmark::kMillisecond);

// K concurrent identical queries over a cold service: with the tier the
// whole batch performs one execution's engine work (full_scans equals
// the solo count; later arrivals park on the leader); without it each
// query sizes for itself wherever memoization cannot help.
void RunConcurrentIdentical(benchmark::State& state, bool cache_on) {
  int64_t full_scans = 0;
  int64_t joins = 0;
  for (auto _ : state) {
    state.PauseTiming();
    api::Dataset dataset = PrivateDataset(CompasTable());
    std::vector<std::unique_ptr<api::Session>> sessions;
    for (int i = 0; i < kConcurrent; ++i) {
      auto session = api::Session::Open(dataset, MakeOptions(cache_on));
      PCBL_CHECK(session.ok());
      sessions.push_back(std::move(*session));
    }
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(sessions.size());
    for (auto& session : sessions) {
      threads.emplace_back([&session] {
        api::QueryResult r =
            session->Run(api::QuerySpec::LabelSearch(kBound));
        PCBL_CHECK(r.status.ok()) << r.status;
        benchmark::DoNotOptimize(r.search.label.size());
      });
    }
    for (auto& t : threads) t.join();
    state.PauseTiming();
    full_scans = dataset.service()->StatsSnapshot().full_scans;
    joins = dataset.service()->result_tier_stats().inflight_joins;
    sessions.clear();
    state.ResumeTiming();
  }
  state.counters["full_scans"] = static_cast<double>(full_scans);
  state.counters["inflight_joins"] = static_cast<double>(joins);
  state.counters["queries_per_iter"] = kConcurrent;
}

void BM_FourIdenticalQueriesTierOn(benchmark::State& state) {
  RunConcurrentIdentical(state, /*cache_on=*/true);
}
BENCHMARK(BM_FourIdenticalQueriesTierOn)->Unit(benchmark::kMillisecond);

void BM_FourIdenticalQueriesTierOff(benchmark::State& state) {
  RunConcurrentIdentical(state, /*cache_on=*/false);
}
BENCHMARK(BM_FourIdenticalQueriesTierOff)->Unit(benchmark::kMillisecond);

// Miss-path overhead: a stream of true counts with the tier in
// dedup-only mode (budget 0: every query keys, misses, registers and
// retires an in-flight entry, stores nothing) vs the tier off entirely.
// The delta is the pure per-query bookkeeping cost.
void RunMissPathStream(benchmark::State& state, bool tier_on) {
  const Table& table = CompasTable();
  api::Dataset dataset = PrivateDataset(table);
  api::SessionOptions options = MakeOptions(tier_on);
  if (tier_on) options.result_cache_budget = 0;  // force the miss path
  auto session = api::Session::Open(dataset, options);
  PCBL_CHECK(session.ok());
  const std::string attr = table.schema().name(0);
  const Dictionary& dict = table.dictionary(0);
  // Warm the engine so both arms measure tier bookkeeping around an
  // already-cheap query, not the first scan.
  for (ValueId v = 0; v < dict.size(); ++v) {
    PCBL_CHECK((*session)
                   ->Run(api::QuerySpec::TrueCount(
                       {{attr, dict.GetString(v)}}))
                   .status.ok());
  }
  ValueId v = 0;
  for (auto _ : state) {
    api::QueryResult r = (*session)->Run(
        api::QuerySpec::TrueCount({{attr, dict.GetString(v)}}));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.true_count);
    v = static_cast<ValueId>((v + 1) % dict.size());
  }
  state.counters["tier_hits"] = static_cast<double>(
      dataset.service()->result_tier_stats().hits);
}

void BM_TrueCountStreamMissPath(benchmark::State& state) {
  RunMissPathStream(state, /*tier_on=*/true);
}
BENCHMARK(BM_TrueCountStreamMissPath)->Unit(benchmark::kMicrosecond);

void BM_TrueCountStreamTierOff(benchmark::State& state) {
  RunMissPathStream(state, /*tier_on=*/false);
}
BENCHMARK(BM_TrueCountStreamTierOff)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
