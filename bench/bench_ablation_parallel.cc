// Ablation (implementation): wall-clock of Algorithm 1 as a function of
// the ranking-phase thread count. Candidate generation is inherently
// sequential (the queue drives gen()); the error ranking dominates on the
// datasets where Sec. IV-C reports 44-63% of total time, so parallel
// ranking shortens exactly that share. Results are identical across
// thread counts (see core_parallel_search_test).
#include <cstdio>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "util/thread_pool.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Ablation", "Top-down search runtime vs ranking threads",
      "speedup approaches the ranking phase's share of total runtime "
      "(Amdahl); identical results at every thread count");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  std::printf("hardware threads: %d\n\n", DefaultThreadCount());
  for (const auto& [name, table] : *datasets) {
    std::printf("-- %s --\n", name.c_str());
    harness::TextTable out({"bound", "threads", "total s", "generate s",
                            "rank s", "speedup", "max err"});
    LabelSearch search(table);
    for (int64_t bound : {50, 100}) {
      double serial_total = 0.0;
      for (int threads : {1, 2, 4, 8}) {
        SearchOptions options;
        options.size_bound = bound;
        options.num_threads = threads;
        SearchResult result = search.TopDown(options);
        if (threads == 1) serial_total = result.stats.total_seconds;
        const double speedup =
            result.stats.total_seconds > 0
                ? serial_total / result.stats.total_seconds
                : 1.0;
        out.AddRowValues(bound, threads,
                         StrFormat("%.3f", result.stats.total_seconds),
                         StrFormat("%.3f", result.stats.candidate_seconds),
                         StrFormat("%.3f", result.stats.error_eval_seconds),
                         StrFormat("%.2fx", speedup),
                         StrFormat("%.0f", result.error.max_abs));
      }
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
