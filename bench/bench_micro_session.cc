// Micro-benchmark for the pcbl::api façade: submit latency of a search
// query against a warm vs a cold dataset (the registry payoff surfaced
// through the public API), the overhead of the async Submit/Get round
// trip against the direct LabelSearch call, true-count spot checks over
// a warm service, and the append-then-search path (incremental VC / P_A
// maintenance + delta-aware ranking vs rebuilding the search state from
// scratch).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "core/search.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 60;

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

api::Dataset PrivateDataset(const Table& table) {
  api::DatasetOptions options;
  options.private_service = true;
  auto dataset = api::Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok());
  return *dataset;
}

// Cold path: every iteration opens a fresh session over a fresh private
// service and pays the full scans.
void BM_SessionSearchCold(benchmark::State& state) {
  for (auto _ : state) {
    auto session = api::Session::Open(PrivateDataset(CompasTable()));
    PCBL_CHECK(session.ok());
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
}
BENCHMARK(BM_SessionSearchCold)->Unit(benchmark::kMillisecond);

// Warm path: one session, repeated submits — the steady state of a label
// service answering queries.
void BM_SessionSearchWarm(benchmark::State& state) {
  auto session = api::Session::Open(PrivateDataset(CompasTable()));
  PCBL_CHECK(session.ok());
  PCBL_CHECK(
      (*session)->Run(api::QuerySpec::LabelSearch(kBound)).status.ok());
  for (auto _ : state) {
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
}
BENCHMARK(BM_SessionSearchWarm)->Unit(benchmark::kMillisecond);

// The same warm search through the low-level path — the façade's
// submit/future overhead is the difference to BM_SessionSearchWarm.
void BM_DirectSearchWarm(benchmark::State& state) {
  LabelSearch search(CompasTable());
  SearchOptions options;
  options.size_bound = kBound;
  search.TopDown(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.TopDown(options).label.size());
  }
}
BENCHMARK(BM_DirectSearchWarm)->Unit(benchmark::kMillisecond);

// True-count spot checks against a warm service (the `pcbl estimate
// --data` consumer loop).
void BM_SessionTrueCountWarm(benchmark::State& state) {
  auto session = api::Session::Open(PrivateDataset(CompasTable()));
  PCBL_CHECK(session.ok());
  const Table& t = CompasTable();
  const api::QuerySpec spec = api::QuerySpec::TrueCount(
      {{t.schema().name(0), t.dictionary(0).GetString(0)},
       {t.schema().name(1), t.dictionary(1).GetString(0)}});
  PCBL_CHECK((*session)->Run(spec).status.ok());  // warm the PC set
  for (auto _ : state) {
    api::QueryResult r = (*session)->Run(spec);
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.true_count);
  }
}
BENCHMARK(BM_SessionTrueCountWarm)->Unit(benchmark::kMillisecond);

// Append a small batch, then search: the incremental VC / P_A
// maintenance plus delta-aware ranking...
void BM_SessionAppendThenSearch(benchmark::State& state) {
  const Table& t = CompasTable();
  const std::vector<std::string> row(
      static_cast<size_t>(t.num_attributes()), "appended");
  for (auto _ : state) {
    state.PauseTiming();
    auto session = api::Session::Open(PrivateDataset(t));
    PCBL_CHECK(session.ok());
    PCBL_CHECK((*session)
                   ->Run(api::QuerySpec::LabelSearch(kBound))
                   .status.ok());  // warm base state
    state.ResumeTiming();
    for (int i = 0; i < 16; ++i) {
      PCBL_CHECK((*session)->AppendRow(row).ok());
    }
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
}
BENCHMARK(BM_SessionAppendThenSearch)->Unit(benchmark::kMillisecond);

// ... versus paying a from-scratch LabelSearch rebuild of VC / P_A over
// the extended table after the same appends.
void BM_RebuildThenSearchAfterAppends(benchmark::State& state) {
  const Table& t = CompasTable();
  const std::vector<std::string> row(
      static_cast<size_t>(t.num_attributes()), "appended");
  for (auto _ : state) {
    state.PauseTiming();
    auto builder = TableBuilder::Create(t.schema().names());
    PCBL_CHECK(builder.ok());
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      std::vector<std::string> values;
      values.reserve(static_cast<size_t>(t.num_attributes()));
      for (int a = 0; a < t.num_attributes(); ++a) {
        const ValueId v = t.value(r, a);
        values.push_back(IsNull(v) ? ""
                                   : std::string(
                                         t.dictionary(a).GetString(v)));
      }
      PCBL_CHECK(builder->AddRow(values).ok());
    }
    state.ResumeTiming();
    for (int i = 0; i < 16; ++i) PCBL_CHECK(builder->AddRow(row).ok());
    const Table extended = builder->Build();
    LabelSearch search(extended);  // rebuilds VC / P_A with full scans
    SearchOptions options;
    options.size_bound = kBound;
    benchmark::DoNotOptimize(search.TopDown(options).label.size());
  }
}
BENCHMARK(BM_RebuildThenSearchAfterAppends)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
