// Figure 8 reproduction: label generation runtime as a function of the
// number of attributes (prefixes of the schema, 3..|A|), bound 50.
//
// Expected shape (Sec. IV-C): steep (exponential-flavoured) growth with
// the attribute count — the subset lattice doubles per attribute — most
// visible on COMPAS (17 attrs) and Credit Card (24 attrs).
#include <cstdio>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 50;

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 8", "Label generation runtime vs number of attributes",
      "runtime grows steeply with attribute count; the optimized search "
      "stays 1-2 orders of magnitude below naive (Sec. IV-C)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    std::printf("-- %s (bound %lld) --\n", name.c_str(),
                static_cast<long long>(kBound));
    harness::TextTable out(
        {"#attrs", "naive [s]", "optimized [s]", "naive #subsets",
         "optimized #subsets"});
    for (int k = 3; k <= table.num_attributes(); ++k) {
      auto prefix = table.ProjectPrefix(k);
      if (!prefix.ok()) return 1;
      LabelSearch search(*prefix);
      SearchOptions options;
      options.size_bound = kBound;
      options.time_limit_seconds = config.time_limit_seconds;
      SearchResult naive = search.Naive(options);
      SearchResult optimized = search.TopDown(options);
      out.AddRowValues(k, StrFormat("%.3f", naive.stats.total_seconds),
                       StrFormat("%.3f", optimized.stats.total_seconds),
                       naive.stats.subsets_examined,
                       optimized.stats.subsets_examined);
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
