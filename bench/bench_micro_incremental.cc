// Ablation micro-benchmark: incremental label maintenance vs rebuilding.
//
// IncrementalLabel claims O(|A|) per appended row against the O(|D|) full
// rebuild of Label::Build. This bench puts numbers on both, plus the batch
// AppendTable path, so the drift-policy trade-off (keep patching vs
// re-search) in the label_lifecycle example is grounded.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/incremental.h"
#include "core/label.h"
#include "pattern/full_pattern_index.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& BaseTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(20000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

const Table& DeltaTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(2000, 99);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// String rows of the delta, pre-extracted so the bench measures the
// append path and not string materialization.
const std::vector<std::vector<std::string>>& DeltaRows() {
  static const auto* rows = [] {
    const Table& d = DeltaTable();
    auto* out = new std::vector<std::vector<std::string>>();
    for (int64_t r = 0; r < d.num_rows(); ++r) {
      std::vector<std::string> row;
      for (int a = 0; a < d.num_attributes(); ++a) {
        const ValueId v = d.value(r, a);
        row.push_back(IsNull(v) ? "" : d.dictionary(a).GetString(v));
      }
      out->push_back(std::move(row));
    }
    return out;
  }();
  return *rows;
}

void BM_IncrementalAppendRow(benchmark::State& state) {
  auto inc = IncrementalLabel::Create(BaseTable(),
                                      AttrMask::FromIndices({0, 2, 12}),
                                      1 << 20);
  PCBL_CHECK(inc.ok());
  const auto& rows = DeltaRows();
  size_t i = 0;
  for (auto _ : state) {
    PCBL_CHECK(inc->AppendRow(rows[i]).ok());
    if (++i == rows.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalAppendRow);

void BM_IncrementalAppendTable(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto inc = IncrementalLabel::Create(BaseTable(),
                                        AttrMask::FromIndices({0, 2, 12}),
                                        1 << 20);
    PCBL_CHECK(inc.ok());
    state.ResumeTiming();
    PCBL_CHECK(inc->AppendTable(DeltaTable()).ok());
    benchmark::DoNotOptimize(inc->FootprintEntries());
  }
  state.SetItemsProcessed(state.iterations() * DeltaTable().num_rows());
}
BENCHMARK(BM_IncrementalAppendTable);

// The alternative the incremental path avoids: a full VC + PC rebuild.
void BM_FullLabelRebuild(benchmark::State& state) {
  const Table& t = BaseTable();
  for (auto _ : state) {
    Label label = Label::Build(t, AttrMask::FromIndices({0, 2, 12}));
    benchmark::DoNotOptimize(label.size());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FullLabelRebuild);

// Estimation through the mutable (map-backed) state vs the immutable
// (radix-encoded) label, to price the maintenance convenience.
void BM_IncrementalEstimate(benchmark::State& state) {
  auto inc = IncrementalLabel::Create(BaseTable(),
                                      AttrMask::FromIndices({0, 2, 12}),
                                      1 << 20);
  PCBL_CHECK(inc.ok());
  FullPatternIndex index = FullPatternIndex::Build(BaseTable());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inc->EstimateFullPattern(index.codes(i), index.width()));
    if (++i == index.num_patterns()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalEstimate);

void BM_ImmutableEstimate(benchmark::State& state) {
  Label label = Label::Build(BaseTable(), AttrMask::FromIndices({0, 2, 12}));
  FullPatternIndex index = FullPatternIndex::Build(BaseTable());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        label.EstimateFullPattern(index.codes(i), index.width()));
    if (++i == index.num_patterns()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ImmutableEstimate);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
