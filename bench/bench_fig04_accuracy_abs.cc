// Figure 4 reproduction: absolute max error (mean in parentheses) as a
// function of label size, for PCBL vs the PostgreSQL-style estimator vs
// uniform sampling, on the three evaluation datasets.
//
// Expected shape (Sec. IV-B): PCBL max error decreases as the label grows
// and sits at or below the Postgres line; the sample of equal footprint
// has a mean error several times PCBL's.
#include <cstdio>

#include "harness/accuracy.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 4", "Absolute max error as a function of label size",
      "PCBL max error decreases with label size and beats Postgres; "
      "sample mean error is a multiple of PCBL's (Sec. IV-B)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    harness::AccuracySweepOptions sweep;
    auto points = harness::RunAccuracySweep(table, sweep);
    std::printf("-- %s (%s rows) --\n", name.c_str(),
                WithThousandsSeparators(table.num_rows()).c_str());
    harness::TextTable out(
        {"bound", "label size", "PCBL max", "PCBL max %", "PCBL (mean)",
         "Postgres max", "Postgres (mean)", "Sample max", "Sample (mean)"});
    double rows = static_cast<double>(table.num_rows());
    for (const auto& p : points) {
      out.AddRowValues(
          p.bound, p.label_size, StrFormat("%.0f", p.pcbl.max_abs),
          PercentString(p.pcbl.max_abs / rows),
          StrFormat("(%.1f)", p.pcbl.mean_abs),
          StrFormat("%.0f", p.postgres.max_abs),
          StrFormat("(%.1f)", p.postgres.mean_abs),
          StrFormat("%.0f", p.sample_mean.max_abs),
          StrFormat("(%.1f)", p.sample_mean.mean_abs));
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
