// Warm-start benchmark (docs/PERSISTENCE.md): what does a restart cost
// with and without a spill directory? Three arms, same table, same
// first query:
//
//   cold    — fresh registry, no spill files: the first search pays the
//             full-table scans that build the PC-set cache;
//   restore — fresh registry over a populated spill directory: the
//             acquire replays the spilled warm state off disk;
//   warm    — the restored service answering the first search (the
//             acceptance path: zero full scans).
//
// Emits BENCH_warm_start.json via BenchJsonRecorder when PCBL_BENCH_JSON
// is set; the serve-load bench records the matching in-situ cold
// first-query latency under figure serve_load.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "pattern/service_registry.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using Clock = std::chrono::steady_clock;

double MedianMs(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "warm_start", "warm-start spill store: cold vs restored first query",
      "first label search over a fresh registry, without spill files "
      "(cold) and restoring a spilled warm state (restore + warm query)");
  harness::BenchJsonRecorder recorder("warm_start");

  const int64_t rows =
      std::max<int64_t>(2000, static_cast<int64_t>(20000 * config.scale));
  auto table = workload::MakeCompas(rows, config.seed);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  const std::string dir =
      std::filesystem::temp_directory_path() / "pcbl_bench_warm_start";
  std::filesystem::remove_all(dir);

  SearchOptions options;
  options.size_bound = 60;

  const int iters = std::max(3, static_cast<int>(5 * config.scale));
  std::vector<double> cold_ms, restore_ms, warm_ms;
  int64_t spilled_bytes = 0;
  for (int i = 0; i < iters; ++i) {
    // Cold arm: no spill files, the first query builds the cache.
    {
      ServiceRegistry registry;
      auto service = registry.Acquire(*table);
      LabelSearch search(*table, service);
      const auto begin = Clock::now();
      (void)search.TopDown(options);
      cold_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - begin)
              .count());
      // Populate the spill directory for the restore arm from exactly
      // this warm state (what an orderly `pcbl serve` shutdown writes).
      registry.SetSpillDirectory(dir);
      if (registry.SpillResident() != 1) {
        std::fprintf(stderr, "spill failed\n");
        return 1;
      }
      spilled_bytes = registry.stats().spilled_bytes;
    }
    // Restore arm: the acquire replays the warm state off disk...
    ServiceRegistry registry;
    registry.SetSpillDirectory(dir);
    const auto restore_begin = Clock::now();
    auto service = registry.Acquire(*table);
    restore_ms.push_back(std::chrono::duration<double, std::milli>(
                             Clock::now() - restore_begin)
                             .count());
    if (registry.stats().spill_hits != 1) {
      std::fprintf(stderr, "restore missed the spill\n");
      return 1;
    }
    // ...and the warm arm answers the same first query from it.
    LabelSearch search(*table, service);
    const auto warm_begin = Clock::now();
    (void)search.TopDown(options);
    warm_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - warm_begin)
            .count());
    if (service->stats().full_scans != 0) {
      std::fprintf(stderr, "warm first query paid full scans\n");
      return 1;
    }
    std::filesystem::remove_all(dir);
  }

  const double cold = MedianMs(cold_ms);
  const double restore = MedianMs(restore_ms);
  const double warm = MedianMs(warm_ms);
  const double speedup = (restore + warm) > 0 ? cold / (restore + warm) : 0;
  harness::TextTable out({"rows", "cold ms", "restore ms", "warm ms",
                          "first-query speedup", "spill bytes"});
  out.AddRowValues(rows, StrFormat("%.2f", cold), StrFormat("%.2f", restore),
                   StrFormat("%.2f", warm), StrFormat("%.1fx", speedup),
                   spilled_bytes);
  std::printf("%s", out.ToMarkdown().c_str());

  recorder.Add("first_query", "cold_ms", rows, cold);
  recorder.Add("first_query", "restore_ms", rows, restore);
  recorder.Add("first_query", "warm_ms", rows, warm);
  recorder.Add("first_query", "speedup", rows, speedup);
  recorder.Add("first_query", "spill_bytes", rows,
               static_cast<double>(spilled_bytes));
  if (!recorder.WriteIfRequested(config)) {
    std::fprintf(stderr, "failed to write PCBL_BENCH_JSON\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
