// Ablation (conclusion/future-work extension): plain label with budget B
// vs a patched label splitting B between a smaller base label and exact
// counts of the worst-estimated patterns. Quantifies the "overlapping
// combinations / partial patterns" idea the paper defers (Sec. II-C / VI):
// patches win when the error mass is concentrated in a few outlier rows.
#include <cstdio>

#include "core/patched_label.h"
#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Ablation", "Plain label vs patched label at equal budget",
      "a patched label spends part of B_s on exact counts of the worst "
      "outlier patterns; it wins when the residual error is concentrated "
      "(future work of Sec. VI)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    std::printf("-- %s --\n", name.c_str());
    harness::TextTable out({"budget", "plan", "base size", "patches",
                            "max err", "mean err"});
    for (int64_t budget : {20, 50, 100}) {
      PatchedSearchOptions options;
      options.total_bound = budget;
      auto result = SearchPatchedLabel(table, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        continue;
      }
      for (const PatchedSplitInfo& split : result->splits) {
        const bool winner =
            split.num_patches == result->num_patches &&
            split.base_size + split.num_patches == result->total_size;
        out.AddRowValues(
            budget,
            split.num_patches == 0 ? "plain"
                                   : (winner ? "patched *" : "patched"),
            split.base_size, split.num_patches,
            StrFormat("%.0f", split.error.max_abs),
            StrFormat("%.2f", split.error.mean_abs));
      }
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
