// Ablation micro-benchmark (DESIGN.md §5.1): dense vs hash vs sort
// group-by strategies for pattern counting, across group cardinalities.
#include <benchmark/benchmark.h>

#include "pattern/counter.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(20000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// Masks of increasing joint cardinality: a near-functional pair, a
// demographic pair, and a wide demographic triple.
AttrMask MaskForArg(int64_t arg) {
  switch (arg) {
    case 0:
      return AttrMask::FromIndices({10, 11});  // Scale_ID x DisplayText
    case 1:
      return AttrMask::FromIndices({0, 2});  // Gender x Race
    case 2:
      return AttrMask::FromIndices({1, 2, 3});  // Age x Race x Marital
    default:
      return AttrMask::FromIndices({0, 1, 2, 3, 4});
  }
}

void BM_GroupByDense(benchmark::State& state) {
  const Table& t = CompasTable();
  AttrMask mask = MaskForArg(state.range(0));
  for (auto _ : state) {
    GroupCounts gc = ComputeGroupCounts(t, mask, GroupByStrategy::kDense);
    benchmark::DoNotOptimize(gc.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByDense)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_GroupByHash(benchmark::State& state) {
  const Table& t = CompasTable();
  AttrMask mask = MaskForArg(state.range(0));
  for (auto _ : state) {
    GroupCounts gc = ComputeGroupCounts(t, mask, GroupByStrategy::kHash);
    benchmark::DoNotOptimize(gc.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupByHash)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_GroupBySort(benchmark::State& state) {
  const Table& t = CompasTable();
  AttrMask mask = MaskForArg(state.range(0));
  for (auto _ : state) {
    GroupCounts gc = ComputeGroupCounts(t, mask, GroupByStrategy::kSort);
    benchmark::DoNotOptimize(gc.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_GroupBySort)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_PatternCounts(benchmark::State& state) {
  const Table& t = CompasTable();
  AttrMask mask = MaskForArg(state.range(0));
  for (auto _ : state) {
    GroupCounts gc = ComputePatternCounts(t, mask);
    benchmark::DoNotOptimize(gc.num_groups());
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_PatternCounts)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
