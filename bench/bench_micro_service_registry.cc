// Micro-benchmark for the process-wide ServiceRegistry: the content
// fingerprint (the per-acquire cost every consumer pays), hit-path
// acquisition, and the end-to-end payoff — a second consumer's search
// over content-equal data through the registry vs a private cold
// service. Also measures the delta-append path against compaction, the
// physical reorganization that keeps steady appends from accumulating a
// per-scan row-major tax.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/search.h"
#include "pattern/counting_service.h"
#include "pattern/lattice.h"
#include "pattern/service_registry.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

void BM_FingerprintTable(benchmark::State& state) {
  const Table& t = CompasTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FingerprintTable(t));
  }
  state.SetItemsProcessed(state.iterations() * t.num_rows());
}
BENCHMARK(BM_FingerprintTable)->Unit(benchmark::kMillisecond);

void BM_RegistryAcquireHit(benchmark::State& state) {
  const Table& t = CompasTable();
  ServiceRegistry registry;
  auto anchor = registry.Acquire(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Acquire(t));
  }
}
BENCHMARK(BM_RegistryAcquireHit)->Unit(benchmark::kMillisecond);

// The payoff: a consumer with its own Table instance searches through a
// cold private service vs through the registry behind a warm first
// consumer.
void BM_SecondConsumerSearchCold(benchmark::State& state) {
  SearchOptions options;
  options.size_bound = 60;
  for (auto _ : state) {
    LabelSearch search(CompasTable());  // private cold service
    benchmark::DoNotOptimize(search.TopDown(options));
  }
}
BENCHMARK(BM_SecondConsumerSearchCold)->Unit(benchmark::kMillisecond);

void BM_SecondConsumerSearchViaRegistry(benchmark::State& state) {
  SearchOptions options;
  options.size_bound = 60;
  ServiceRegistry registry;
  {
    // First consumer warms the shared service.
    LabelSearch first(CompasTable(), registry.Acquire(CompasTable()));
    first.TopDown(options);
  }
  for (auto _ : state) {
    LabelSearch search(CompasTable(), registry.Acquire(CompasTable()));
    benchmark::DoNotOptimize(search.TopDown(options));
  }
}
BENCHMARK(BM_SecondConsumerSearchViaRegistry)->Unit(benchmark::kMillisecond);

// Steady appends: sizing through an ever-growing delta block vs folding
// it into the columnar base first.
void BM_SizingAfterAppends(benchmark::State& state) {
  const bool compact = state.range(0) != 0;
  const Table& t = CompasTable();
  const int n = t.num_attributes();
  // 4096 appended rows copied from the table's own head (no fresh codes;
  // the physical layout is what is being measured).
  std::vector<std::vector<ValueId>> rows;
  for (int64_t r = 0; r < 4096; ++r) {
    std::vector<ValueId> row(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) row[static_cast<size_t>(a)] = t.value(r, a);
    rows.push_back(std::move(row));
  }
  CountingEngineOptions options;
  options.delta_compact_threshold = 0;  // manual control below
  CountingEngine engine(t, options);
  engine.ApplyAppend(rows);
  if (compact) engine.CompactDeltas();
  std::vector<AttrMask> masks;
  ForEachSubsetOfSize(std::min(n, 12), 2,
                      [&](AttrMask s) { masks.push_back(s); });
  for (auto _ : state) {
    engine.InvalidateCache();
    benchmark::DoNotOptimize(engine.CountPatternsBatch(masks, 50));
  }
}
BENCHMARK(BM_SizingAfterAppends)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"compacted"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
