// Figure 1 reproduction: the nutrition label computed for (a simplified
// version of) the COMPAS dataset — total size, per-attribute value counts
// with percentages, the gender x race pattern counts, and the error
// summary (average / maximal error, standard deviation).
#include <cstdio>

#include "core/portable_label.h"
#include "core/render.h"
#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 1", "Labels computed for the (simplified) COMPAS dataset",
      "a label over {Gender, Race} reports the marginals of Fig. 1 plus "
      "the 8 gender x race pattern counts and an error summary");

  int64_t rows = static_cast<int64_t>(
      static_cast<double>(workload::kCompasRows) * config.scale);
  auto table_or = workload::MakeCompas(rows, config.seed);
  if (!table_or.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 table_or.status().ToString().c_str());
    return 1;
  }
  const Table& table = *table_or;

  // Restrict the display to the four Fig. 1 demographics, as the paper's
  // figure does, then label with S = {Gender, Race}.
  auto view_or = table.Project(AttrMask::FromIndices({0, 1, 2, 3}));
  if (!view_or.ok()) return 1;
  const Table& view = *view_or;

  Label label = Label::Build(view, AttrMask::FromIndices({0, 2}));
  FullPatternIndex patterns = FullPatternIndex::Build(view);
  LabelEstimator estimator(label);
  ErrorReport error =
      EvaluateOverFullPatterns(patterns, estimator, ErrorMode::kExact);

  PortableLabel portable = MakePortable(label, view, "COMPAS (simplified)");
  RenderOptions render;
  render.max_values_per_attribute = 8;
  std::printf("%s\n", RenderNutritionLabel(portable, &error, render).c_str());
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
