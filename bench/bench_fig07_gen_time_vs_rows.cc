// Figure 7 reproduction: label generation runtime as a function of data
// size — each dataset is grown up to x10 its original size by appending
// uniformly random tuples, and the bound-50 search is timed (averaged
// over repeats).
//
// Expected shape (Sec. IV-C): moderate growth with data size (the number
// of tuples only affects per-subset examination cost). The paper also
// observes that random augmentation *introduces new patterns*, which
// shrinks the within-bound lattice region and can make the search on
// larger data faster than on the raw data — visible in the
// subsets-examined column.
#include <cstdio>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"
#include "workload/generator.h"

namespace pcbl {
namespace {

constexpr int kRepeats = 3;
constexpr int64_t kBound = 50;

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 7", "Label generation runtime vs data size (x1..x10)",
      "moderate runtime growth with rows; augmentation adds new patterns "
      "so the searched lattice region shrinks (Sec. IV-C)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  harness::BenchJsonRecorder recorder("fig07_gen_time_vs_rows");
  for (const auto& [name, base] : *datasets) {
    std::printf("-- %s (base %s rows, bound %lld) --\n", name.c_str(),
                WithThousandsSeparators(base.num_rows()).c_str(),
                static_cast<long long>(kBound));
    harness::TextTable out({"rows", "naive [s]", "optimized [s]",
                            "naive #subsets", "optimized #subsets"});
    for (int factor : {1, 2, 4, 6, 8, 10}) {
      auto grown = AugmentWithRandomRows(
          base, base.num_rows() * (factor - 1), config.seed + factor);
      if (!grown.ok()) return 1;
      LabelSearch search(*grown);
      double naive_s = 0;
      double optimized_s = 0;
      int64_t naive_subsets = 0;
      int64_t optimized_subsets = 0;
      for (int rep = 0; rep < kRepeats; ++rep) {
        SearchOptions options;
        options.size_bound = kBound;
        options.time_limit_seconds = config.time_limit_seconds;
        // The dataset-scoped CountingService keeps PC sets warm across
        // searches; drop them so each algorithm is timed cold and the
        // naive/optimized comparison stays apples-to-apples (the warm
        // serving regime is measured by bench_micro_counting_engine's
        // BM_TopDownSizingWarmService).
        search.InvalidateCountingCache();
        SearchResult naive = search.Naive(options);
        search.InvalidateCountingCache();
        SearchResult optimized = search.TopDown(options);
        naive_s += naive.stats.total_seconds;
        optimized_s += optimized.stats.total_seconds;
        naive_subsets = naive.stats.subsets_examined;
        optimized_subsets = optimized.stats.subsets_examined;
      }
      out.AddRowValues(WithThousandsSeparators(grown->num_rows()),
                       StrFormat("%.3f", naive_s / kRepeats),
                       StrFormat("%.3f", optimized_s / kRepeats),
                       naive_subsets, optimized_subsets);
      recorder.Add(name, "naive_seconds", grown->num_rows(),
                   naive_s / kRepeats);
      recorder.Add(name, "optimized_seconds", grown->num_rows(),
                   optimized_s / kRepeats);
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  if (!recorder.WriteIfRequested(config)) {
    std::fprintf(stderr, "failed to write PCBL_BENCH_JSON output\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
