// Micro-benchmark for the cross-query wave scheduler: N concurrent
// identical searches over one shared CountingService, scheduled (merged
// in-flight sizing waves) vs serialized (whole searches queue on the
// service mutex — the pre-PR-5 discipline, still available as the
// differential reference arm).
//
// The headline pair runs in the *constrained-cache* regime
// (cache_budget = 0, memoization off): there the warm cache cannot help
// a second search at all, so the serialized baseline pays the full
// sizing scans once per search while the scheduler's merged waves dedup
// them across all in-flight queries — the acceptance criterion is >= 2x
// aggregate throughput for 4 concurrent identical searches, and the
// saving is pure work elimination, visible even on a single core. The
// default-budget pair shows the steady-state regime (one cold set of
// scans either way; the scheduler's extra win there is ranking overlap,
// which needs spare cores). Solo search pairs bound the scheduler's
// overhead: with one admitted query the admission window is skipped
// entirely.
//
// Byte-identity of the two disciplines is not asserted here — that is
// the differential harness' job (wave_scheduler_test.cc).
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 60;
constexpr int kConcurrent = 4;

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(8000, 17);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

api::Dataset PrivateDataset(const Table& table) {
  api::DatasetOptions options;
  options.private_service = true;
  auto dataset = api::Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok());
  return *dataset;
}

api::SessionOptions MakeOptions(bool scheduler_on, int64_t cache_budget) {
  api::SessionOptions options;
  options.num_threads = 1;
  options.use_wave_scheduler = scheduler_on;
  options.counting_cache_budget = cache_budget;
  return options;
}

// One iteration: a cold shared service, kConcurrent sessions each
// running the same search concurrently, joined. Reports the engine's
// full-scan count and the masks the scheduler deduped away.
void RunConcurrentSearches(benchmark::State& state, bool scheduler_on,
                           int64_t cache_budget) {
  int64_t full_scans = 0;
  int64_t saved_masks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    api::Dataset dataset = PrivateDataset(CompasTable());
    std::vector<std::unique_ptr<api::Session>> sessions;
    for (int i = 0; i < kConcurrent; ++i) {
      auto session = api::Session::Open(
          dataset, MakeOptions(scheduler_on, cache_budget));
      PCBL_CHECK(session.ok());
      sessions.push_back(std::move(*session));
    }
    state.ResumeTiming();
    std::vector<std::thread> threads;
    threads.reserve(sessions.size());
    for (auto& session : sessions) {
      threads.emplace_back([&session] {
        api::QueryResult r =
            session->Run(api::QuerySpec::LabelSearch(kBound));
        PCBL_CHECK(r.status.ok()) << r.status;
        benchmark::DoNotOptimize(r.search.label.size());
      });
    }
    for (auto& t : threads) t.join();
    state.PauseTiming();
    full_scans = dataset.service()->StatsSnapshot().full_scans;
    const WaveSchedulerStats waves = dataset.service()->wave_stats();
    saved_masks = waves.request_masks - waves.executed_masks;
    sessions.clear();
    state.ResumeTiming();
  }
  state.counters["full_scans"] = static_cast<double>(full_scans);
  state.counters["saved_masks"] = static_cast<double>(saved_masks);
  state.counters["searches_per_iter"] = kConcurrent;
}

// The acceptance pair: constrained cache (no memoization), where only
// in-flight merging can eliminate scans. scheduled >= 2x serialized.
void BM_FourSearchesSerializedNoCache(benchmark::State& state) {
  RunConcurrentSearches(state, /*scheduler_on=*/false, /*cache_budget=*/0);
}
BENCHMARK(BM_FourSearchesSerializedNoCache)->Unit(benchmark::kMillisecond);

void BM_FourSearchesScheduledNoCache(benchmark::State& state) {
  RunConcurrentSearches(state, /*scheduler_on=*/true, /*cache_budget=*/0);
}
BENCHMARK(BM_FourSearchesScheduledNoCache)->Unit(benchmark::kMillisecond);

// Steady-state regime: default memoization budget. Both disciplines do
// ~one cold set of scans; the scheduler additionally overlaps the
// per-query ranking phases (a wall-clock win wherever cores are spare).
void BM_FourSearchesSerializedWarm(benchmark::State& state) {
  RunConcurrentSearches(state, /*scheduler_on=*/false, /*cache_budget=*/-1);
}
BENCHMARK(BM_FourSearchesSerializedWarm)->Unit(benchmark::kMillisecond);

void BM_FourSearchesScheduledWarm(benchmark::State& state) {
  RunConcurrentSearches(state, /*scheduler_on=*/true, /*cache_budget=*/-1);
}
BENCHMARK(BM_FourSearchesScheduledWarm)->Unit(benchmark::kMillisecond);

// Solo overhead bound: one admitted query skips the admission window,
// so the scheduled path must track the serialized one.
void RunSoloSearch(benchmark::State& state, bool scheduler_on) {
  api::Dataset dataset = PrivateDataset(CompasTable());
  auto session =
      api::Session::Open(dataset, MakeOptions(scheduler_on, -1));
  PCBL_CHECK(session.ok());
  PCBL_CHECK(
      (*session)->Run(api::QuerySpec::LabelSearch(kBound)).status.ok());
  for (auto _ : state) {
    api::QueryResult r =
        (*session)->Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
}

void BM_SoloSearchSerialized(benchmark::State& state) {
  RunSoloSearch(state, /*scheduler_on=*/false);
}
BENCHMARK(BM_SoloSearchSerialized)->Unit(benchmark::kMillisecond);

void BM_SoloSearchScheduled(benchmark::State& state) {
  RunSoloSearch(state, /*scheduler_on=*/true);
}
BENCHMARK(BM_SoloSearchScheduled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
