// Micro-benchmark for the multi-appender append path: sustained
// appends/s at 1/2/4 concurrent appender sessions with group commit on
// vs off (the merge factor is the whole point — N appenders behind one
// admission should cost ~one engine hook per batch, not per row), plus
// concurrent-search latency while a sibling session ingests.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "api/session.h"
#include "pattern/counting_service.h"
#include "util/logging.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 60;
constexpr int64_t kRowsPerAppender = 64;

const Table& CompasTable() {
  static const Table* table = [] {
    auto t = workload::MakeCompas(20000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

api::Dataset PrivateDataset(const Table& table) {
  api::DatasetOptions options;
  options.private_service = true;
  auto dataset = api::Dataset::FromTable(table, options);
  PCBL_CHECK(dataset.ok());
  return *dataset;
}

// Rows appender `k` feeds in: small fresh per-appender domains, so the
// interner and the engine delta both do real work.
std::vector<std::vector<std::string>> AppenderRows(int k, int attrs) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(kRowsPerAppender));
  for (int64_t r = 0; r < kRowsPerAppender; ++r) {
    std::vector<std::string> row(static_cast<size_t>(attrs));
    for (int a = 0; a < attrs; ++a) {
      row[static_cast<size_t>(a)] = StrCat("a", k, "-v", (r + a) % 4);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// N appender sessions racing single-row appends into one shared
// service; Arg(0) = appender count, Arg(1) = group commit on/off.
// Reported rate is total appended rows per second.
void BM_ConcurrentAppendRows(benchmark::State& state) {
  const int appenders = static_cast<int>(state.range(0));
  const bool group_commit = state.range(1) != 0;
  const Table& t = CompasTable();
  for (auto _ : state) {
    state.PauseTiming();
    api::Dataset dataset = PrivateDataset(t);
    dataset.service()->set_append_group_commit(group_commit);
    std::vector<std::unique_ptr<api::Session>> sessions;
    for (int k = 0; k < appenders; ++k) {
      auto session = api::Session::Open(dataset);
      PCBL_CHECK(session.ok());
      sessions.push_back(std::move(*session));
    }
    // Warm the engine so the per-append hook patches real state.
    PCBL_CHECK(
        sessions[0]->Run(api::QuerySpec::LabelSearch(kBound)).status.ok());
    state.ResumeTiming();
    std::vector<std::thread> threads;
    for (int k = 0; k < appenders; ++k) {
      threads.emplace_back([&sessions, &t, k] {
        const auto rows = AppenderRows(k, t.num_attributes());
        for (const auto& row : rows) {
          PCBL_CHECK(sessions[static_cast<size_t>(k)]->AppendRow(row).ok());
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  state.SetItemsProcessed(state.iterations() * appenders *
                          kRowsPerAppender);
  state.counters["appenders"] = appenders;
  state.counters["group_commit"] = group_commit ? 1 : 0;
}
BENCHMARK(BM_ConcurrentAppendRows)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Search latency of a sibling session while Arg(0) appender sessions
// ingest continuously — the admission-gate tax queries pay under load.
void BM_SearchWhileIngesting(benchmark::State& state) {
  const int appenders = static_cast<int>(state.range(0));
  const Table& t = CompasTable();
  api::Dataset dataset = PrivateDataset(t);
  std::vector<std::unique_ptr<api::Session>> sessions;
  for (int k = 0; k < appenders + 1; ++k) {
    auto session = api::Session::Open(dataset);
    PCBL_CHECK(session.ok());
    sessions.push_back(std::move(*session));
  }
  api::Session& searcher = *sessions.back();
  PCBL_CHECK(searcher.Run(api::QuerySpec::LabelSearch(kBound)).status.ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int k = 0; k < appenders; ++k) {
    threads.emplace_back([&sessions, &stop, &t, k] {
      const auto rows = AppenderRows(k, t.num_attributes());
      size_t next = 0;
      while (!stop.load(std::memory_order_acquire)) {
        PCBL_CHECK(
            sessions[static_cast<size_t>(k)]->AppendRow(rows[next]).ok());
        next = (next + 1) % rows.size();
      }
    });
  }
  for (auto _ : state) {
    api::QueryResult r = searcher.Run(api::QuerySpec::LabelSearch(kBound));
    PCBL_CHECK(r.status.ok());
    benchmark::DoNotOptimize(r.search.label.size());
  }
  stop.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  state.counters["appenders"] = appenders;
}
BENCHMARK(BM_SearchWhileIngesting)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One bulk AppendRows ticket per iteration — the group-commit batch
// path without thread contention, as a baseline for the racing arms.
void BM_BulkAppendTicket(benchmark::State& state) {
  const Table& t = CompasTable();
  for (auto _ : state) {
    state.PauseTiming();
    api::Dataset dataset = PrivateDataset(t);
    auto session = api::Session::Open(dataset);
    PCBL_CHECK(session.ok());
    const auto rows = AppenderRows(0, t.num_attributes());
    state.ResumeTiming();
    PCBL_CHECK((*session)->AppendRows(rows).ok());
  }
  state.SetItemsProcessed(state.iterations() * kRowsPerAppender);
}
BENCHMARK(BM_BulkAppendTicket)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
