// Figure 9 reproduction: number of candidate attribute subsets examined
// during label generation, naive vs optimized, for bounds
// {10, 30, 50, 70, 100}.
//
// Expected shape (Sec. IV-D): the optimized heuristic examines 1-2 orders
// of magnitude fewer subsets (54%-99% gain), with the largest gains on
// the many-attribute datasets; the naive count at bound b equals the sum
// of binomial levels up to the first all-over-budget level.
#include <cstdio>

#include "core/search.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 9", "Label candidates examined vs size bound",
      "optimized examines far fewer subsets than naive — gains of "
      "54%-99% (Sec. IV-D)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  harness::BenchJsonRecorder recorder("fig09_candidates");
  for (const auto& [name, table] : *datasets) {
    // One LabelSearch per dataset: the bound sweep runs over the shared
    // CountingService, so each bound's search re-uses the PC sets the
    // previous bounds already counted (the multi-query serving regime).
    LabelSearch search(table);
    std::printf("-- %s (%d attributes) --\n", name.c_str(),
                table.num_attributes());
    harness::TextTable out({"bound", "naive #subsets",
                            "optimized #subsets", "gain",
                            "naive within-bound", "optimized candidates"});
    for (int64_t bound : {10, 30, 50, 70, 100}) {
      SearchOptions options;
      options.size_bound = bound;
      options.time_limit_seconds = config.time_limit_seconds;
      SearchResult naive = search.Naive(options);
      SearchResult optimized = search.TopDown(options);
      double gain =
          naive.stats.subsets_examined == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(
                                   optimized.stats.subsets_examined) /
                                   static_cast<double>(
                                       naive.stats.subsets_examined));
      out.AddRowValues(bound,
                       WithThousandsSeparators(naive.stats.subsets_examined),
                       WithThousandsSeparators(
                           optimized.stats.subsets_examined),
                       StrFormat("%.0f%%", gain), naive.stats.within_bound,
                       optimized.stats.error_evaluations);
      recorder.Add(name, "naive_subsets", bound,
                   static_cast<double>(naive.stats.subsets_examined));
      recorder.Add(name, "optimized_subsets", bound,
                   static_cast<double>(optimized.stats.subsets_examined));
      recorder.Add(name, "naive_seconds", bound,
                   naive.stats.total_seconds);
      recorder.Add(name, "optimized_seconds", bound,
                   optimized.stats.total_seconds);
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  if (!recorder.WriteIfRequested(config)) {
    std::fprintf(stderr, "failed to write PCBL_BENCH_JSON output\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
