// Figure 5 reproduction: mean q-error as a function of label size, for
// PCBL vs Postgres vs sampling, on the three evaluation datasets.
//
// Expected shape (Sec. IV-B): PCBL has the lowest mean q-error everywhere
// and the error decreases as the label grows; the sample baseline's mean
// q-error is a small multiple of PCBL's.
#include <cstdio>

#include "harness/accuracy.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Figure 5", "Mean q-error as a function of label size",
      "PCBL outperforms both competitors at every size; mean q-error "
      "decreases as the label grows (Sec. IV-B)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  for (const auto& [name, table] : *datasets) {
    harness::AccuracySweepOptions sweep;
    auto points = harness::RunAccuracySweep(table, sweep);
    std::printf("-- %s (%s rows) --\n", name.c_str(),
                WithThousandsSeparators(table.num_rows()).c_str());
    harness::TextTable out({"bound", "label size", "PCBL mean-q",
                            "PCBL max-q", "Postgres mean-q",
                            "Postgres max-q", "Sample mean-q",
                            "Sample max-q"});
    for (const auto& p : points) {
      out.AddRowValues(p.bound, p.label_size,
                       StrFormat("%.2f", p.pcbl.mean_q),
                       StrFormat("%.1f", p.pcbl.max_q),
                       StrFormat("%.2f", p.postgres.mean_q),
                       StrFormat("%.1f", p.postgres.max_q),
                       StrFormat("%.2f", p.sample_mean.mean_q),
                       StrFormat("%.1f", p.sample_mean.max_q));
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
