// Load benchmark for `pcbl serve` (docs/SERVING.md): closed-loop
// throughput and latency percentiles of the socket path at increasing
// client counts, then a deliberate overload run measuring the shed rate
// and the tail latency of shed replies (a refused request must come
// back in bounded time — shedding that queues is not shedding).
//
// Emits BENCH_serve_load.json via BenchJsonRecorder when
// PCBL_BENCH_JSON is set, so the perf-tracking CI job archives the
// trajectory alongside the figure benches.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

using Clock = std::chrono::steady_clock;

double Percentile(std::vector<double>* sorted_us, double p) {
  if (sorted_us->empty()) return 0.0;
  std::sort(sorted_us->begin(), sorted_us->end());
  const double rank = p * (sorted_us->size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_us->size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (*sorted_us)[lo] * (1.0 - frac) + (*sorted_us)[hi] * frac;
}

struct LoadResult {
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t failed = 0;
  double elapsed_seconds = 0.0;
  std::vector<double> ok_latencies_us;
  std::vector<double> shed_latencies_us;
};

// Closed loop: `clients` threads, each its own connection, each issuing
// `per_client` queries back to back. Returns merged latencies.
LoadResult RunClosedLoop(const std::string& address, int clients,
                         int per_client, const api::QuerySpec& spec) {
  LoadResult result;
  std::mutex mu;
  std::vector<std::thread> threads;
  const auto start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = server::Client::Connect(address);
      if (!client.ok()) return;
      const std::string tenant = StrCat("tenant-", c);
      LoadResult local;
      for (int i = 0; i < per_client; ++i) {
        const auto begin = Clock::now();
        auto reply = client->Query(tenant, "compas", spec);
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - begin)
                .count();
        if (reply.ok() && reply->status.ok()) {
          ++local.ok;
          local.ok_latencies_us.push_back(us);
        } else if (reply.status().code() == StatusCode::kResourceExhausted) {
          ++local.shed;
          local.shed_latencies_us.push_back(us);
        } else {
          ++local.failed;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.ok += local.ok;
      result.shed += local.shed;
      result.failed += local.failed;
      result.ok_latencies_us.insert(result.ok_latencies_us.end(),
                                    local.ok_latencies_us.begin(),
                                    local.ok_latencies_us.end());
      result.shed_latencies_us.insert(result.shed_latencies_us.end(),
                                      local.shed_latencies_us.begin(),
                                      local.shed_latencies_us.end());
    });
  }
  for (std::thread& t : threads) t.join();
  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "serve_load", "pcbl serve: throughput, tail latency, overload shed",
      "closed-loop clients over loopback TCP; the shed run saturates a "
      "deliberately small per-tenant quota");
  harness::BenchJsonRecorder recorder("serve_load");

  const int64_t rows =
      std::max<int64_t>(2000, static_cast<int64_t>(20000 * config.scale));
  auto table = workload::MakeCompas(rows, config.seed);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  server::Catalog catalog{api::DatasetOptions{}};
  auto dataset = api::Dataset::FromTable(std::move(*table));
  if (!dataset.ok() || !catalog.Add("compas", *dataset).ok()) {
    std::fprintf(stderr, "catalog setup failed\n");
    return 1;
  }

  const int per_client =
      std::max(20, static_cast<int>(200 * std::min(1.0, config.scale)));
  const api::QuerySpec search = api::QuerySpec::LabelSearch(40);
  const api::QuerySpec count =
      api::QuerySpec::TrueCount({{"SexOffender", "No"}});

  // --- throughput / latency at increasing concurrency -------------------
  {
    server::ServerOptions options;
    options.max_inflight = 256;
    options.tenant_max_inflight = 256;
    server::Server server(&catalog, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // Warm the service once so the steady state measures the serving
    // layer (framing, admission, session pools), not the first scans.
    // The cost of this very first query is what a --spill-dir restart
    // avoids — record it as the in-situ anchor for BENCH_warm_start.
    {
      const auto begin = Clock::now();
      (void)RunClosedLoop(server.bound_address(), 1, 1, search);
      recorder.Add("search", "cold_first_query_ms", 1,
                   std::chrono::duration<double, std::milli>(Clock::now() -
                                                             begin)
                       .count());
    }

    harness::TextTable out({"query", "clients", "qps", "p50 us", "p95 us",
                            "p99 us"});
    for (const auto& [name, spec] :
         std::vector<std::pair<std::string, api::QuerySpec>>{
             {"search", search}, {"true-count", count}}) {
      for (int clients : {1, 4, 8}) {
        LoadResult load =
            RunClosedLoop(server.bound_address(), clients, per_client, spec);
        const double qps =
            load.elapsed_seconds > 0 ? load.ok / load.elapsed_seconds : 0;
        const double p50 = Percentile(&load.ok_latencies_us, 0.50);
        const double p95 = Percentile(&load.ok_latencies_us, 0.95);
        const double p99 = Percentile(&load.ok_latencies_us, 0.99);
        out.AddRowValues(name, clients, StrFormat("%.0f", qps),
                         StrFormat("%.0f", p50), StrFormat("%.0f", p95),
                         StrFormat("%.0f", p99));
        recorder.Add(name, "qps", clients, qps);
        recorder.Add(name, "p50_us", clients, p50);
        recorder.Add(name, "p95_us", clients, p95);
        recorder.Add(name, "p99_us", clients, p99);
        if (load.failed > 0) {
          std::fprintf(stderr, "  (%lld unexpected failures)\n",
                       static_cast<long long>(load.failed));
        }
      }
    }
    std::printf("%s", out.ToMarkdown().c_str());
    server.Stop();
  }

  // --- overload: shed rate and shed-reply tail --------------------------
  {
    server::ServerOptions options;
    options.tenant_max_inflight = 2;
    options.max_inflight = 2;
    options.retry_after_ms = 5;
    server::Server server(&catalog, options);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // All clients share one tenant so the quota of 2 is the bottleneck.
    const int clients = 8;
    std::mutex mu;
    LoadResult load;
    std::vector<std::thread> threads;
    const auto start = Clock::now();
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        auto client = server::Client::Connect(server.bound_address());
        if (!client.ok()) return;
        LoadResult local;
        for (int i = 0; i < per_client; ++i) {
          const auto begin = Clock::now();
          auto reply = client->Query("overload", "compas", search);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - begin)
                  .count();
          if (reply.ok() && reply->status.ok()) {
            ++local.ok;
            local.ok_latencies_us.push_back(us);
          } else if (reply.status().code() ==
                     StatusCode::kResourceExhausted) {
            ++local.shed;
            local.shed_latencies_us.push_back(us);
          } else {
            ++local.failed;
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        load.ok += local.ok;
        load.shed += local.shed;
        load.failed += local.failed;
        load.ok_latencies_us.insert(load.ok_latencies_us.end(),
                                    local.ok_latencies_us.begin(),
                                    local.ok_latencies_us.end());
        load.shed_latencies_us.insert(load.shed_latencies_us.end(),
                                      local.shed_latencies_us.begin(),
                                      local.shed_latencies_us.end());
      });
    }
    for (std::thread& t : threads) t.join();
    load.elapsed_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    const int64_t total = load.ok + load.shed + load.failed;
    const double shed_pct = total > 0 ? 100.0 * load.shed / total : 0.0;
    const double shed_p99 = Percentile(&load.shed_latencies_us, 0.99);
    harness::TextTable out({"clients", "quota", "requests", "ok", "shed",
                            "shed %", "shed p99 us"});
    out.AddRowValues(clients, 2, total, load.ok, load.shed,
                     StrFormat("%.1f", shed_pct),
                     StrFormat("%.0f", shed_p99));
    std::printf("%s", out.ToMarkdown().c_str());
    recorder.Add("overload", "shed_rate_pct", clients, shed_pct);
    recorder.Add("overload", "shed_p99_us", clients, shed_p99);
    recorder.Add("overload", "ok_qps", clients,
                 load.elapsed_seconds > 0 ? load.ok / load.elapsed_seconds
                                          : 0);
    server.Stop();
  }

  if (!recorder.WriteIfRequested(config)) {
    std::fprintf(stderr, "failed to write PCBL_BENCH_JSON\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
