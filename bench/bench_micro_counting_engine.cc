// Micro-benchmark for the CountingEngine: cold serial per-subset scans
// (the seed behaviour) vs batched + parallel sizing, memoized ranking
// reuse, and superset rollup.
//
// The headline comparison for the ISSUE's acceptance criterion is
// BM_TopDownSizing{Serial,Engine*}: wall-clock of the candidate-sizing
// phase of Algorithm 1 on the credit-card dataset. Counts are exact and
// byte-identical on every path (differential-tested in
// pattern_counting_engine_test.cc); only wall-clock may differ.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/search.h"
#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/lattice.h"
#include "pattern/restriction_codec.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

constexpr int64_t kBound = 50;

const Table& CreditTable() {
  static const Table* table = [] {
    auto t = workload::MakeCreditCard(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// All 2- and 3-subsets of the first 14 credit-card attributes — the kind
// of lattice level the search sizes in one wave.
const std::vector<AttrMask>& LevelMasks() {
  static const std::vector<AttrMask>* masks = [] {
    auto* out = new std::vector<AttrMask>;
    ForEachSubsetOfSize(14, 2, [&](AttrMask s) { out->push_back(s); });
    ForEachSubsetOfSize(14, 3, [&](AttrMask s) { out->push_back(s); });
    return out;
  }();
  return *masks;
}

// The paper's duplication-heavy regime (the reduction databases and the
// skewed real datasets): few distinct rows, many copies. Rollup derives
// subset counts from the cached universe's groups instead of rescanning.
const Table& DuplicatedTable() {
  static const Table* table = [] {
    auto t = workload::MakeTwoClique(40000, 7, /*noise=*/0.05);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

void BM_LevelSizingSerialColdScan(benchmark::State& state) {
  const Table& t = CreditTable();
  for (auto _ : state) {
    int64_t total = 0;
    for (AttrMask s : LevelMasks()) {
      total += CountDistinctPatterns(t, s, kBound);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_LevelSizingSerialColdScan)->Unit(benchmark::kMillisecond);

void BM_LevelSizingEngineBatch(benchmark::State& state) {
  const Table& t = CreditTable();
  CountingEngineOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    CountingEngine engine(t, options);
    benchmark::DoNotOptimize(engine.CountPatternsBatch(LevelMasks(), kBound));
  }
}
BENCHMARK(BM_LevelSizingEngineBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The full top-down search, end to end; candidate sizing dominates at
// this bound, and with the engine on the ranking phase additionally
// reuses the memoized PC sets instead of recounting each candidate.
// LabelSearch now keeps the dataset's CountingService warm across
// searches, so the cold benchmarks drop the cache between iterations
// (BM_TopDownSizingWarmService below measures the warm regime).
void RunTopDown(benchmark::State& state, bool engine_on, int threads) {
  const Table& t = CreditTable();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = kBound;
  options.use_counting_engine = engine_on;
  options.num_threads = threads;
  for (auto _ : state) {
    state.PauseTiming();
    search.InvalidateCountingCache();
    state.ResumeTiming();
    SearchResult result = search.TopDown(options);
    benchmark::DoNotOptimize(result.stats.subsets_examined);
  }
}

void BM_TopDownSizingSerial(benchmark::State& state) {
  RunTopDown(state, /*engine_on=*/false, /*threads=*/1);
}
BENCHMARK(BM_TopDownSizingSerial)->Unit(benchmark::kMillisecond);

void BM_TopDownSizingEngine(benchmark::State& state) {
  RunTopDown(state, /*engine_on=*/true,
             /*threads=*/static_cast<int>(state.range(0)));
}
BENCHMARK(BM_TopDownSizingEngine)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// A repeated query over the dataset-scoped service: the first search
// warms the PC-set cache, every later one sizes its candidates without a
// single full-table scan (asserted in pattern_counting_service_test.cc).
// This is the multi-query / bound-sweep serving regime the
// CountingService exists for.
void BM_TopDownSizingWarmService(benchmark::State& state) {
  const Table& t = CreditTable();
  LabelSearch search(t);
  SearchOptions options;
  options.size_bound = kBound;
  search.TopDown(options);  // warm the service
  for (auto _ : state) {
    SearchResult result = search.TopDown(options);
    benchmark::DoNotOptimize(result.stats.subsets_examined);
  }
}
BENCHMARK(BM_TopDownSizingWarmService)->Unit(benchmark::kMillisecond);

// Regression guard for the reservation satellite: a budgeted sizing pass
// reserves its code containers from the budget hint and must never
// grow-rehash mid-scan.
void BM_BudgetedSizingReserveNoRehash(benchmark::State& state) {
  const int64_t budget = 100;
  for (auto _ : state) {
    counting::CodeSet seen(counting::SizingReserve(budget, 1 << 20));
    counting::CodeCountMap counts(counting::SizingReserve(budget, 1 << 20));
    for (int64_t code = 0; code <= budget; ++code) {
      seen.Insert(code * 977);
      counts.Increment(code * 977);
    }
    PCBL_CHECK(seen.rehashes() == 0 && counts.rehashes() == 0)
        << "budget-hinted reservation rehashed";
    benchmark::DoNotOptimize(seen.size());
    benchmark::DoNotOptimize(counts.size());
  }
}
BENCHMARK(BM_BudgetedSizingReserveNoRehash);

void BM_SubsetCountsColdRescan(benchmark::State& state) {
  const Table& t = DuplicatedTable();
  const AttrMask universe = AttrMask::All(t.num_attributes());
  for (auto _ : state) {
    int64_t total = 0;
    ForEachSubsetOf(universe, [&](AttrMask s) {
      total += CountDistinctPatterns(t, s);
    });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SubsetCountsColdRescan)->Unit(benchmark::kMillisecond);

void BM_SubsetCountsMemoizedRollup(benchmark::State& state) {
  const Table& t = DuplicatedTable();
  const AttrMask universe = AttrMask::All(t.num_attributes());
  for (auto _ : state) {
    CountingEngine engine(t);
    engine.PatternCounts(universe);  // one scan primes the cache
    int64_t total = 0;
    ForEachSubsetOf(universe, [&](AttrMask s) {
      total += engine.CountPatterns(s);
    });
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SubsetCountsMemoizedRollup)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
