// Ablation micro-benchmark (DESIGN.md §5.2): early-exit label sizing vs
// exact counting, and the bit-packed kernels vs the mixed-radix baseline.
// The early exit is what makes the naive search feasible: over-budget
// subsets are detected within ~bound distinct groups instead of scanning
// every row. The packed kernels are what makes the remaining scans
// bandwidth-bound: the BM_SizingArity{2,3}* pairs below measure the
// ISSUE-2 acceptance criterion (>= 2x packed throughput over the PR 1
// mixed-radix path on packed-eligible arity-2/3 subsets).
#include <benchmark/benchmark.h>

#include <vector>

#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& CreditTable() {
  static const Table* table = [] {
    auto t = workload::MakeCreditCard(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// A wide uncorrelated mask: blows past any small budget within a few
// hundred rows.
AttrMask WideMask() { return AttrMask::FromIndices({0, 1, 2, 4, 11, 17}); }

// A correlated mask (the PAY_* chain): stays small.
AttrMask CorrelatedMask() {
  return AttrMask::FromIndices({5, 6, 7, 8, 9, 10});
}

// Every arity-k subset of the first 14 credit-card attributes — the mix a
// lattice level hands the sizing kernels.
std::vector<AttrMask> AritySubsets(int k) {
  std::vector<AttrMask> masks;
  ForEachSubsetOfSize(14, k, [&](AttrMask s) { masks.push_back(s); });
  return masks;
}

// Exact (unbudgeted) sizing of every arity-k subset under a forced
// strategy: the kernel-vs-baseline comparison with identical work.
void RunAritySizing(benchmark::State& state, int k,
                    RestrictionStrategy strategy) {
  const Table& t = CreditTable();
  const std::vector<AttrMask> masks = AritySubsets(k);
  int64_t checksum = 0;
  for (auto _ : state) {
    for (AttrMask s : masks) {
      checksum += CountDistinctPatterns(t, s, -1, strategy);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(masks.size()) *
                          t.num_rows());
}

void BM_SizingArity2Packed(benchmark::State& state) {
  RunAritySizing(state, 2, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity2Packed)->Unit(benchmark::kMillisecond);

void BM_SizingArity2MixedRadix(benchmark::State& state) {
  RunAritySizing(state, 2, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity2MixedRadix)->Unit(benchmark::kMillisecond);

void BM_SizingArity3Packed(benchmark::State& state) {
  RunAritySizing(state, 3, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity3Packed)->Unit(benchmark::kMillisecond);

void BM_SizingArity3MixedRadix(benchmark::State& state) {
  RunAritySizing(state, 3, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity3MixedRadix)->Unit(benchmark::kMillisecond);

// Budgeted variant: the search's actual regime (most subsets early-exit).
void RunAritySizingBudgeted(benchmark::State& state, int k,
                            RestrictionStrategy strategy) {
  const Table& t = CreditTable();
  const std::vector<AttrMask> masks = AritySubsets(k);
  int64_t checksum = 0;
  for (auto _ : state) {
    for (AttrMask s : masks) {
      checksum += CountDistinctPatterns(t, s, 50, strategy);
    }
  }
  benchmark::DoNotOptimize(checksum);
}

void BM_SizingArity2PackedBudget50(benchmark::State& state) {
  RunAritySizingBudgeted(state, 2, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity2PackedBudget50)->Unit(benchmark::kMillisecond);

void BM_SizingArity2MixedRadixBudget50(benchmark::State& state) {
  RunAritySizingBudgeted(state, 2, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity2MixedRadixBudget50)->Unit(benchmark::kMillisecond);

void BM_SizingEarlyExitOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), budget));
  }
}
BENCHMARK(BM_SizingEarlyExitOverBudget)->Arg(10)->Arg(50)->Arg(100);

void BM_SizingExactOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), -1));
  }
}
BENCHMARK(BM_SizingExactOverBudget);

void BM_SizingEarlyExitWithinBudget(benchmark::State& state) {
  // Within-budget subsets cannot early-exit; this is the floor cost.
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountDistinctPatterns(t, CorrelatedMask(), 1000));
  }
}
BENCHMARK(BM_SizingEarlyExitWithinBudget);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
