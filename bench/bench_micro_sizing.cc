// Ablation micro-benchmark (DESIGN.md §5.2): early-exit label sizing vs
// exact counting, and the bit-packed kernels vs the mixed-radix baseline.
// The early exit is what makes the naive search feasible: over-budget
// subsets are detected within ~bound distinct groups instead of scanning
// every row. The packed kernels are what makes the remaining scans
// bandwidth-bound: the BM_SizingArity{2,3}* pairs below measure the
// ISSUE-2 acceptance criterion (>= 2x packed throughput over the PR 1
// mixed-radix path on packed-eligible arity-2/3 subsets).
// The BM_Kernel* family (registered in main for each ISA the host can
// run) measures the ISSUE-7 criterion: the runtime-dispatched SIMD
// encode kernels vs the scalar reference, per path (arity-2, arity-3,
// generic gather, dense count array), in rows/s and GB/s of column data;
// BM_MorselScanThreads measures intra-subset morsel scaling.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "pattern/counter.h"
#include "pattern/kernel_dispatch.h"
#include "pattern/lattice.h"
#include "pattern/packed_codec.h"
#include "pattern/packed_kernels.h"
#include "util/rng.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& CreditTable() {
  static const Table* table = [] {
    auto t = workload::MakeCreditCard(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// A wide uncorrelated mask: blows past any small budget within a few
// hundred rows.
AttrMask WideMask() { return AttrMask::FromIndices({0, 1, 2, 4, 11, 17}); }

// A correlated mask (the PAY_* chain): stays small.
AttrMask CorrelatedMask() {
  return AttrMask::FromIndices({5, 6, 7, 8, 9, 10});
}

// Every arity-k subset of the first 14 credit-card attributes — the mix a
// lattice level hands the sizing kernels.
std::vector<AttrMask> AritySubsets(int k) {
  std::vector<AttrMask> masks;
  ForEachSubsetOfSize(14, k, [&](AttrMask s) { masks.push_back(s); });
  return masks;
}

// Exact (unbudgeted) sizing of every arity-k subset under a forced
// strategy: the kernel-vs-baseline comparison with identical work.
void RunAritySizing(benchmark::State& state, int k,
                    RestrictionStrategy strategy) {
  const Table& t = CreditTable();
  const std::vector<AttrMask> masks = AritySubsets(k);
  int64_t checksum = 0;
  for (auto _ : state) {
    for (AttrMask s : masks) {
      checksum += CountDistinctPatterns(t, s, -1, strategy);
    }
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(masks.size()) *
                          t.num_rows());
}

void BM_SizingArity2Packed(benchmark::State& state) {
  RunAritySizing(state, 2, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity2Packed)->Unit(benchmark::kMillisecond);

void BM_SizingArity2MixedRadix(benchmark::State& state) {
  RunAritySizing(state, 2, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity2MixedRadix)->Unit(benchmark::kMillisecond);

void BM_SizingArity3Packed(benchmark::State& state) {
  RunAritySizing(state, 3, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity3Packed)->Unit(benchmark::kMillisecond);

void BM_SizingArity3MixedRadix(benchmark::State& state) {
  RunAritySizing(state, 3, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity3MixedRadix)->Unit(benchmark::kMillisecond);

// Budgeted variant: the search's actual regime (most subsets early-exit).
void RunAritySizingBudgeted(benchmark::State& state, int k,
                            RestrictionStrategy strategy) {
  const Table& t = CreditTable();
  const std::vector<AttrMask> masks = AritySubsets(k);
  int64_t checksum = 0;
  for (auto _ : state) {
    for (AttrMask s : masks) {
      checksum += CountDistinctPatterns(t, s, 50, strategy);
    }
  }
  benchmark::DoNotOptimize(checksum);
}

void BM_SizingArity2PackedBudget50(benchmark::State& state) {
  RunAritySizingBudgeted(state, 2, RestrictionStrategy::kPacked);
}
BENCHMARK(BM_SizingArity2PackedBudget50)->Unit(benchmark::kMillisecond);

void BM_SizingArity2MixedRadixBudget50(benchmark::State& state) {
  RunAritySizingBudgeted(state, 2, RestrictionStrategy::kMixedRadix);
}
BENCHMARK(BM_SizingArity2MixedRadixBudget50)->Unit(benchmark::kMillisecond);

void BM_SizingEarlyExitOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), budget));
  }
}
BENCHMARK(BM_SizingEarlyExitOverBudget)->Arg(10)->Arg(50)->Arg(100);

void BM_SizingExactOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), -1));
  }
}
BENCHMARK(BM_SizingExactOverBudget);

void BM_SizingEarlyExitWithinBudget(benchmark::State& state) {
  // Within-budget subsets cannot early-exit; this is the floor cost.
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountDistinctPatterns(t, CorrelatedMask(), 1000));
  }
}
BENCHMARK(BM_SizingEarlyExitWithinBudget);

// ---------------------------------------------------------------------------
// Per-ISA kernel paths. Synthetic column data (no Table) so the timing
// isolates the encode+count loops the dispatch table accelerates. Domains
// are sized so the arity-2/3 views take the dense-bitmap path (the dense
// fill the acceptance criterion names) and the 6-wide view the tiled
// generic gather.

struct KernelBenchData {
  std::vector<std::vector<ValueId>> cols;
  counting::SubsetColumns view2, view3, view6;
  counting::PackedLayout layout2, layout3, layout6;
};

const KernelBenchData& BenchData() {
  static const KernelBenchData* data = [] {
    auto* d = new KernelBenchData;
    Rng rng(2024);
    const int64_t rows = int64_t{1} << 20;
    // 50x40 -> a 12-bit arity-2 space and 50x40x7 -> a 15-bit arity-3
    // space: both L1-resident dense bitmaps, the shape the fused
    // dense-fill kernels are tuned for.
    const int64_t doms[6] = {50, 40, 7, 9, 7, 5};
    d->cols.resize(6);
    for (int j = 0; j < 6; ++j) {
      d->cols[static_cast<size_t>(j)].resize(static_cast<size_t>(rows));
      for (auto& v : d->cols[static_cast<size_t>(j)]) {
        v = rng.UniformInt(static_cast<uint32_t>(doms[j]));
      }
    }
    auto make_view = [&](counting::SubsetColumns* view, int width) {
      view->width = width;
      view->rows = rows;
      for (int j = 0; j < width; ++j) {
        view->cols[j] = d->cols[static_cast<size_t>(j)].data();
        view->nullable[j] = false;
      }
    };
    make_view(&d->view2, 2);
    make_view(&d->view3, 3);
    make_view(&d->view6, 6);
    d->layout2 = counting::MakePackedLayout(doms, 2);
    d->layout3 = counting::MakePackedLayout(doms, 3);
    d->layout6 = counting::MakePackedLayout(doms, 6);
    PCBL_CHECK(d->layout2.ok && d->layout3.ok && d->layout6.ok);
    PCBL_CHECK(counting::PackedDenseEligible(d->layout2, rows));
    PCBL_CHECK(counting::PackedDenseEligible(d->layout3, rows));
    PCBL_CHECK(counting::PackedDenseCountEligible(d->layout2, rows));
    return d;
  }();
  return *data;
}

void ReportRows(benchmark::State& state, const counting::SubsetColumns& view) {
  state.SetItemsProcessed(state.iterations() * view.rows);
  state.SetBytesProcessed(state.iterations() * view.rows * view.width *
                          static_cast<int64_t>(sizeof(ValueId)));
}

// Exact distinct count (dense-bitmap fill for the arity-2/3 views, the
// generic gather + hash for the 6-wide one) under a forced ISA.
void RunKernelDistinct(benchmark::State& state, counting::KernelIsa isa,
                       const counting::SubsetColumns& view,
                       const counting::PackedLayout& layout) {
  PCBL_CHECK(counting::SetKernelIsa(isa).ok());
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += counting::PackedCountDistinct(view, layout, -1);
  }
  benchmark::DoNotOptimize(checksum);
  ReportRows(state, view);
  PCBL_CHECK(counting::SetKernelIsaByName("auto").ok());
}

// One-pass dense count-and-materialize under a forced ISA.
void RunKernelDenseGroups(benchmark::State& state, counting::KernelIsa isa) {
  const KernelBenchData& d = BenchData();
  PCBL_CHECK(counting::SetKernelIsa(isa).ok());
  std::vector<std::pair<int64_t, int64_t>> items;
  for (auto _ : state) {
    items.clear();
    benchmark::DoNotOptimize(
        counting::PackedCountGroupsDense(d.view2, d.layout2, -1, &items));
  }
  ReportRows(state, d.view2);
  PCBL_CHECK(counting::SetKernelIsaByName("auto").ok());
}

// Morsel scaling on one exact arity-3 scan: the intra-subset parallelism
// a solo query (or a merged wave with spare threads) gets. rows/s should
// scale near-linearly with threads on a multicore host.
void BM_MorselScanThreads(benchmark::State& state) {
  const KernelBenchData& d = BenchData();
  const counting::MorselConfig morsel{static_cast<int>(state.range(0)),
                                      4096};
  int64_t checksum = 0;
  for (auto _ : state) {
    checksum += counting::PackedCountDistinct(d.view3, d.layout3, -1, morsel);
  }
  benchmark::DoNotOptimize(checksum);
  ReportRows(state, d.view3);
}
BENCHMARK(BM_MorselScanThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Registers the per-ISA kernel-path benchmarks for every ISA this host
// can actually run (a forced-unavailable ISA would abort, and reporting
// zeros for it would read as a regression).
void RegisterKernelPathBenchmarks() {
  namespace bm = benchmark;
  for (counting::KernelIsa isa :
       {counting::KernelIsa::kScalar, counting::KernelIsa::kAvx2,
        counting::KernelIsa::kNeon}) {
    if (!counting::KernelIsaAvailable(isa)) continue;
    const std::string name = counting::KernelIsaName(isa);
    bm::RegisterBenchmark(
        ("BM_KernelArity2DenseFill/" + name).c_str(),
        [isa](bm::State& s) { RunKernelDistinct(s, isa, BenchData().view2,
                                                BenchData().layout2); })
        ->Unit(bm::kMillisecond);
    bm::RegisterBenchmark(
        ("BM_KernelArity3DenseFill/" + name).c_str(),
        [isa](bm::State& s) { RunKernelDistinct(s, isa, BenchData().view3,
                                                BenchData().layout3); })
        ->Unit(bm::kMillisecond);
    bm::RegisterBenchmark(
        ("BM_KernelGenericGather/" + name).c_str(),
        [isa](bm::State& s) { RunKernelDistinct(s, isa, BenchData().view6,
                                                BenchData().layout6); })
        ->Unit(bm::kMillisecond);
    bm::RegisterBenchmark(
        ("BM_KernelDenseGroups/" + name).c_str(),
        [isa](bm::State& s) { RunKernelDenseGroups(s, isa); })
        ->Unit(bm::kMillisecond);
  }
}

}  // namespace pcbl

int main(int argc, char** argv) {
  pcbl::RegisterKernelPathBenchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
