// Ablation micro-benchmark (DESIGN.md §5.2): early-exit label sizing vs
// exact counting. The early exit is what makes the naive search feasible:
// over-budget subsets are detected within ~bound distinct groups instead
// of scanning every row.
#include <benchmark/benchmark.h>

#include "pattern/counter.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const Table& CreditTable() {
  static const Table* table = [] {
    auto t = workload::MakeCreditCard(30000, 7);
    PCBL_CHECK(t.ok());
    return new Table(std::move(t).value());
  }();
  return *table;
}

// A wide uncorrelated mask: blows past any small budget within a few
// hundred rows.
AttrMask WideMask() { return AttrMask::FromIndices({0, 1, 2, 4, 11, 17}); }

// A correlated mask (the PAY_* chain): stays small.
AttrMask CorrelatedMask() {
  return AttrMask::FromIndices({5, 6, 7, 8, 9, 10});
}

void BM_SizingEarlyExitOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), budget));
  }
}
BENCHMARK(BM_SizingEarlyExitOverBudget)->Arg(10)->Arg(50)->Arg(100);

void BM_SizingExactOverBudget(benchmark::State& state) {
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountDistinctPatterns(t, WideMask(), -1));
  }
}
BENCHMARK(BM_SizingExactOverBudget);

void BM_SizingEarlyExitWithinBudget(benchmark::State& state) {
  // Within-budget subsets cannot early-exit; this is the floor cost.
  const Table& t = CreditTable();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CountDistinctPatterns(t, CorrelatedMask(), 1000));
  }
}
BENCHMARK(BM_SizingEarlyExitWithinBudget);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
