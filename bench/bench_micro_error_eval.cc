// Ablation micro-benchmarks (DESIGN.md §5.3-5.4): the Sec. IV-C
// max-error early-termination scan vs the exact scan, and estimation
// throughput for label vs baselines.
#include <benchmark/benchmark.h>

#include "baselines/independence.h"
#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "core/error.h"
#include "core/label.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

struct Context {
  Table table;
  FullPatternIndex index;
  Label label;
};

const Context& GetContext() {
  static const Context* ctx = [] {
    auto t = workload::MakeCompas(30000, 7);
    PCBL_CHECK(t.ok());
    auto* c = new Context{std::move(t).value(), FullPatternIndex(), Label()};
    c->index = FullPatternIndex::Build(c->table);
    c->label = Label::Build(c->table, AttrMask::FromIndices({0, 2, 12}));
    return c;
  }();
  return *ctx;
}

void BM_ErrorEvalExact(benchmark::State& state) {
  const Context& ctx = GetContext();
  LabelEstimator est(ctx.label);
  for (auto _ : state) {
    ErrorReport r =
        EvaluateOverFullPatterns(ctx.index, est, ErrorMode::kExact);
    benchmark::DoNotOptimize(r.max_abs);
  }
  state.SetItemsProcessed(state.iterations() * ctx.index.num_patterns());
}
BENCHMARK(BM_ErrorEvalExact);

void BM_ErrorEvalEarlyTermination(benchmark::State& state) {
  const Context& ctx = GetContext();
  LabelEstimator est(ctx.label);
  for (auto _ : state) {
    ErrorReport r = EvaluateOverFullPatterns(ctx.index, est,
                                             ErrorMode::kEarlyTermination);
    benchmark::DoNotOptimize(r.max_abs);
  }
}
BENCHMARK(BM_ErrorEvalEarlyTermination);

void BM_EstimateLabel(benchmark::State& state) {
  const Context& ctx = GetContext();
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.label.EstimateFullPattern(
        ctx.index.codes(i), ctx.index.width()));
    i = (i + 1) % ctx.index.num_patterns();
  }
}
BENCHMARK(BM_EstimateLabel);

void BM_EstimateIndependence(benchmark::State& state) {
  const Context& ctx = GetContext();
  IndependenceEstimator est = IndependenceEstimator::Build(ctx.table);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        est.EstimateFullPattern(ctx.index.codes(i), ctx.index.width()));
    i = (i + 1) % ctx.index.num_patterns();
  }
}
BENCHMARK(BM_EstimateIndependence);

void BM_EstimatePostgres(benchmark::State& state) {
  const Context& ctx = GetContext();
  PostgresEstimator est = PostgresEstimator::Build(ctx.table);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        est.EstimateFullPattern(ctx.index.codes(i), ctx.index.width()));
    i = (i + 1) % ctx.index.num_patterns();
  }
}
BENCHMARK(BM_EstimatePostgres);

void BM_EstimateSample(benchmark::State& state) {
  const Context& ctx = GetContext();
  SamplingEstimator est = SamplingEstimator::Build(ctx.table, 500, 3);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        est.EstimateFullPattern(ctx.index.codes(i), ctx.index.width()));
    i = (i + 1) % ctx.index.num_patterns();
  }
}
BENCHMARK(BM_EstimateSample);

}  // namespace
}  // namespace pcbl

BENCHMARK_MAIN();
