// Ablation (conclusion/future-work extension): one label with budget B vs
// a greedy set of up to k labels sharing the same budget, with different
// combination strategies. Not a paper figure — it quantifies the
// "derive best estimates from multiple labels" idea the paper defers.
#include <cstdio>

#include "core/multi_label.h"
#include "harness/bench_config.h"
#include "harness/tablefmt.h"
#include "util/str.h"
#include "workload/datasets.h"

namespace pcbl {
namespace {

const char* StrategyName(CombineStrategy s) {
  switch (s) {
    case CombineStrategy::kMaxOverlap:
      return "max-overlap";
    case CombineStrategy::kGeometricMean:
      return "geo-mean";
    case CombineStrategy::kMedian:
      return "median";
    case CombineStrategy::kFactorized:
      return "factorized";
  }
  return "?";
}

int Run() {
  harness::BenchConfig config = harness::BenchConfig::FromEnv();
  harness::PrintFigureHeader(
      "Ablation", "Single label vs greedy multi-label at equal budget",
      "splitting helps when the data has multiple disjoint correlated "
      "cliques; otherwise the single label wins (future work of Sec. VI)");

  auto datasets = workload::MakePaperDatasets(config.scale, config.seed);
  if (!datasets.ok()) {
    std::fprintf(stderr, "%s\n", datasets.status().ToString().c_str());
    return 1;
  }
  // The diagnostic regime the single-label model cannot cover: two
  // disjoint correlated cliques. Splitting the budget wins here.
  auto two_clique = workload::MakeTwoClique(
      static_cast<int64_t>(20000 * config.scale), config.seed);
  if (two_clique.ok()) {
    datasets->push_back(
        workload::NamedDataset{"TwoClique", std::move(*two_clique)});
  }
  for (const auto& [name, table] : *datasets) {
    std::printf("-- %s --\n", name.c_str());
    harness::TextTable out({"budget", "plan", "labels", "total size",
                            "max err", "mean err"});
    // TwoClique: one 16-entry pair label fits in 30; covering both cliques
    // with a single label needs 64+. Budgets chosen to expose the split.
    const std::vector<int64_t> budgets =
        name == "TwoClique" ? std::vector<int64_t>{20, 40}
                            : std::vector<int64_t>{30, 100};
    for (int64_t budget : budgets) {
      // Single label.
      LabelSearch search(table);
      SearchOptions single_options;
      single_options.size_bound = budget;
      SearchResult single = search.TopDown(single_options);
      out.AddRowValues(budget, "single", 1, single.label.size(),
                       StrFormat("%.0f", single.error.max_abs),
                       StrFormat("%.2f", single.error.mean_abs));
      // Greedy multi-label per strategy.
      for (CombineStrategy strategy :
           {CombineStrategy::kMaxOverlap, CombineStrategy::kGeometricMean,
            CombineStrategy::kMedian, CombineStrategy::kFactorized}) {
        MultiSearchOptions options;
        options.total_bound = budget;
        options.max_labels = 3;
        options.strategy = strategy;
        auto result = SearchLabelSet(table, options);
        if (!result.ok()) continue;
        out.AddRowValues(budget, StrategyName(strategy),
                         result->labels.size(), result->total_size,
                         StrFormat("%.0f", result->error.max_abs),
                         StrFormat("%.2f", result->error.mean_abs));
      }
    }
    std::printf("%s\n", out.ToMarkdown().c_str());
  }
  std::printf("(%s)\n", config.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace pcbl

int main() { return pcbl::Run(); }
