// The `pcbl` command-line tool. All logic lives in src/cli (testable
// without a process boundary); this file only adapts main().
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return pcbl::cli::RunCli(args, std::cout, std::cerr);
}
