#!/usr/bin/env python3
"""Validate relative links and anchors in the repo's Markdown files.

Walks every ``*.md`` under the repository root (skipping build trees and
VCS metadata), extracts inline Markdown links/images, and checks that

* relative link targets exist on disk, and
* ``#anchor`` fragments (same-file or into another ``.md``) match a
  heading in the target file, using GitHub's slugification rules
  (lowercase, punctuation stripped, spaces to hyphens, ``-N`` suffixes
  for repeated headings).

External schemes (http/https/mailto) are ignored — this is a structure
check, not a crawler. Exits non-zero listing every broken link, so CI
fails loudly when docs are reorganized without fixing cross-references.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "node_modules", "__pycache__"}
SKIP_PREFIXES = ("build",)  # build/, build-tsan/, build-review/, ...

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\)[^()\s]*)*)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def find_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d
            for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in filenames:
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading, seen):
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)  # inline formatting
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links -> text
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def heading_slugs(path):
    slugs = set()
    seen = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slugs.add(github_slug(m.group(2), seen))
    return slugs


def extract_links(path):
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    slug_cache = {}

    def slugs_for(path):
        if path not in slug_cache:
            slug_cache[path] = heading_slugs(path)
        return slug_cache[path]

    errors = []
    checked = 0
    for md in sorted(find_markdown_files(root)):
        rel_md = os.path.relpath(md, root)
        for lineno, target in extract_links(md):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            checked += 1
            target = target.split("?", 1)[0]
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(md), path_part)
                )
                if not os.path.exists(resolved):
                    errors.append(
                        f"{rel_md}:{lineno}: broken link target "
                        f"'{target}' (no such file)"
                    )
                    continue
            else:
                resolved = md  # same-file anchor
            if anchor:
                if not resolved.lower().endswith(".md") or os.path.isdir(
                    resolved
                ):
                    continue  # anchors into non-markdown: not checked
                if anchor.lower() not in slugs_for(resolved):
                    errors.append(
                        f"{rel_md}:{lineno}: broken anchor '#{anchor}' "
                        f"(no matching heading in "
                        f"{os.path.relpath(resolved, root)})"
                    )

    if errors:
        print(f"docs-link check FAILED ({len(errors)} broken):")
        for e in errors:
            print(f"  {e}")
        return 1
    print(f"docs-link check OK ({checked} relative links validated)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
