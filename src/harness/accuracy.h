// Shared machinery for the accuracy figures (Figs. 4 and 5): for one
// dataset and one label-size bound, produce the PCBL / Postgres / Sample
// error reports exactly the way Sec. IV-B describes (sample sized
// bound + |VC|, averaged over seeds; the final label re-evaluated
// exactly).
#ifndef PCBL_HARNESS_ACCURACY_H_
#define PCBL_HARNESS_ACCURACY_H_

#include <cstdint>
#include <vector>

#include "core/error.h"
#include "core/search.h"
#include "relation/table.h"

namespace pcbl {
namespace harness {

/// One row of the Fig. 4/5 sweep.
struct AccuracyPoint {
  int64_t bound = 0;
  /// Size of the label the search actually produced (|PC| <= bound).
  int64_t label_size = 0;
  /// The searched label's attribute set.
  AttrMask label_attrs;
  /// Exact error reports.
  ErrorReport pcbl;
  ErrorReport postgres;
  /// Sample estimates averaged over `sample_seeds` runs (each metric is
  /// the mean of that metric across seeds, as the paper averages).
  ErrorReport sample_mean;
  int64_t sample_rows = 0;
  /// Label generation time (the search), seconds.
  double search_seconds = 0;
};

/// Sweep configuration.
struct AccuracySweepOptions {
  std::vector<int64_t> bounds = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  int sample_seeds = 5;
  /// Use Algorithm 1 (true) or the naive search (false).
  bool top_down = true;
};

/// Runs the full sweep for one dataset. The Postgres report is computed
/// once (its footprint does not depend on the bound) and replicated into
/// every point, mirroring the flat gray line of Fig. 4.
std::vector<AccuracyPoint> RunAccuracySweep(
    const Table& table, const AccuracySweepOptions& options);

}  // namespace harness
}  // namespace pcbl

#endif  // PCBL_HARNESS_ACCURACY_H_
