// Template implementation detail of TextTable.
#ifndef PCBL_HARNESS_TABLEFMT_INL_H_
#define PCBL_HARNESS_TABLEFMT_INL_H_

#include <sstream>

namespace pcbl {
namespace harness {

template <typename... Args>
void TextTable::AddRowValues(const Args&... args) {
  std::vector<std::string> cells;
  cells.reserve(sizeof...(args));
  auto add = [&cells](const auto& v) {
    std::ostringstream os;
    os << v;
    cells.push_back(os.str());
  };
  (add(args), ...);
  AddRow(std::move(cells));
}

}  // namespace harness
}  // namespace pcbl

#endif  // PCBL_HARNESS_TABLEFMT_INL_H_
