#include "harness/tablefmt.h"

#include <algorithm>

#include "util/logging.h"

namespace pcbl {
namespace harness {
namespace {

bool CsvNeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PCBL_CHECK_EQ(cells.size(), headers_.size())
      << "row arity differs from header arity";
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToMarkdown() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row,
                      std::string& out) {
    out += "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
      out += " |";
    }
    out += "\n";
  };
  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string TextTable::ToCsv() const {
  auto emit_row = [](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      if (CsvNeedsQuoting(row[c])) {
        out += '"';
        for (char ch : row[c]) {
          if (ch == '"') out += '"';
          out += ch;
        }
        out += '"';
      } else {
        out += row[c];
      }
    }
    out += "\n";
  };
  std::string out;
  emit_row(headers_, out);
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void PrintFigureHeader(const std::string& figure_id, const std::string& title,
                       const std::string& paper_expectation) {
  std::string banner = "== " + figure_id + ": " + title + " ==";
  std::string line(banner.size(), '=');
  std::printf("%s\n%s\n%s\n", line.c_str(), banner.c_str(), line.c_str());
  if (!paper_expectation.empty()) {
    std::printf("Paper expectation: %s\n", paper_expectation.c_str());
  }
  std::printf("\n");
}

}  // namespace harness
}  // namespace pcbl
