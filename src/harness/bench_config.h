// Environment-driven configuration for the figure benchmarks.
//
// PCBL_BENCH_SCALE (percent, default 100) scales dataset row counts so CI
// can exercise every figure quickly; the recorded EXPERIMENTS.md numbers
// use the full scale. PCBL_BENCH_SEED overrides the workload seed.
// PCBL_BENCH_JSON names a file into which the figure benchmarks dump
// their samples as JSON (BenchJsonRecorder below) so CI's perf-tracking
// job can record the trajectory over time; unset = no output.
#ifndef PCBL_HARNESS_BENCH_CONFIG_H_
#define PCBL_HARNESS_BENCH_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pcbl {
namespace harness {

/// Resolved benchmark configuration.
struct BenchConfig {
  /// Row-count multiplier in (0, 1e3]; 1.0 = paper-size datasets.
  double scale = 1.0;
  /// Workload generator seed.
  uint64_t seed = 2021;
  /// Per-search time cap in seconds for the runtime figures (the paper
  /// itself caps the naive algorithm at 30 minutes); 0 disables.
  /// PCBL_BENCH_TIME_LIMIT overrides.
  double time_limit_seconds = 120.0;

  /// Reads PCBL_BENCH_SCALE / PCBL_BENCH_SEED / PCBL_BENCH_TIME_LIMIT
  /// from the environment.
  static BenchConfig FromEnv();

  /// "scale=100% seed=2021" for banners.
  std::string ToString() const;
};

/// Collects one figure benchmark's samples and writes them as a JSON
/// document when PCBL_BENCH_JSON is set (the CI perf-tracking job points
/// it at BENCH_<figure>.json and archives the files). Figure benches are
/// plain executables without google-benchmark's --benchmark_format, so
/// this is their machine-readable output path.
class BenchJsonRecorder {
 public:
  /// `figure` identifies the benchmark (e.g. "fig07").
  explicit BenchJsonRecorder(std::string figure);

  /// Records one sample: `metric` measured as `value` on `dataset` at
  /// x-axis position `x` (rows, bound, attributes — the figure's sweep
  /// variable).
  void Add(const std::string& dataset, const std::string& metric, int64_t x,
           double value);

  /// Writes the document to $PCBL_BENCH_JSON (no-op when unset).
  /// Returns false on I/O failure.
  bool WriteIfRequested(const BenchConfig& config) const;

 private:
  struct Sample {
    std::string dataset;
    std::string metric;
    int64_t x = 0;
    double value = 0.0;
  };
  std::string figure_;
  std::vector<Sample> samples_;
};

}  // namespace harness
}  // namespace pcbl

#endif  // PCBL_HARNESS_BENCH_CONFIG_H_
