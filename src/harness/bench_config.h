// Environment-driven configuration for the figure benchmarks.
//
// PCBL_BENCH_SCALE (percent, default 100) scales dataset row counts so CI
// can exercise every figure quickly; the recorded EXPERIMENTS.md numbers
// use the full scale. PCBL_BENCH_SEED overrides the workload seed.
#ifndef PCBL_HARNESS_BENCH_CONFIG_H_
#define PCBL_HARNESS_BENCH_CONFIG_H_

#include <cstdint>
#include <string>

namespace pcbl {
namespace harness {

/// Resolved benchmark configuration.
struct BenchConfig {
  /// Row-count multiplier in (0, 1e3]; 1.0 = paper-size datasets.
  double scale = 1.0;
  /// Workload generator seed.
  uint64_t seed = 2021;
  /// Per-search time cap in seconds for the runtime figures (the paper
  /// itself caps the naive algorithm at 30 minutes); 0 disables.
  /// PCBL_BENCH_TIME_LIMIT overrides.
  double time_limit_seconds = 120.0;

  /// Reads PCBL_BENCH_SCALE / PCBL_BENCH_SEED / PCBL_BENCH_TIME_LIMIT
  /// from the environment.
  static BenchConfig FromEnv();

  /// "scale=100% seed=2021" for banners.
  std::string ToString() const;
};

}  // namespace harness
}  // namespace pcbl

#endif  // PCBL_HARNESS_BENCH_CONFIG_H_
