#include "harness/accuracy.h"

#include "baselines/postgres.h"
#include "baselines/sampling.h"
#include "util/stopwatch.h"

namespace pcbl {
namespace harness {

std::vector<AccuracyPoint> RunAccuracySweep(
    const Table& table, const AccuracySweepOptions& options) {
  LabelSearch search(table);
  const FullPatternIndex& patterns = search.full_patterns();
  const int64_t vc_entries = search.value_counts().TotalEntries();

  PostgresEstimator pg = PostgresEstimator::Build(table);
  ErrorReport pg_report =
      EvaluateOverFullPatterns(patterns, pg, ErrorMode::kExact);

  std::vector<AccuracyPoint> out;
  out.reserve(options.bounds.size());
  for (int64_t bound : options.bounds) {
    AccuracyPoint point;
    point.bound = bound;
    point.postgres = pg_report;

    SearchOptions search_options;
    search_options.size_bound = bound;
    Stopwatch watch;
    SearchResult result = options.top_down ? search.TopDown(search_options)
                                           : search.Naive(search_options);
    point.search_seconds = watch.ElapsedSeconds();
    point.label_size = result.label.size();
    point.label_attrs = result.best_attrs;
    point.pcbl = result.error;

    // Sample sized bound + |VC| (Sec. IV-A footnote), averaged per metric
    // over the seeds.
    point.sample_rows = bound + vc_entries;
    ErrorReport acc;
    for (int seed = 0; seed < options.sample_seeds; ++seed) {
      SamplingEstimator sample = SamplingEstimator::Build(
          table, point.sample_rows, static_cast<uint64_t>(seed) * 7919 + 17);
      ErrorReport r =
          EvaluateOverFullPatterns(patterns, sample, ErrorMode::kExact);
      acc.max_abs += r.max_abs;
      acc.mean_abs += r.mean_abs;
      acc.std_abs += r.std_abs;
      acc.max_q += r.max_q;
      acc.mean_q += r.mean_q;
      acc.evaluated = r.evaluated;
      acc.total = r.total;
    }
    double n = static_cast<double>(options.sample_seeds);
    acc.max_abs /= n;
    acc.mean_abs /= n;
    acc.std_abs /= n;
    acc.max_q /= n;
    acc.mean_q /= n;
    point.sample_mean = acc;
    out.push_back(point);
  }
  return out;
}

}  // namespace harness
}  // namespace pcbl
