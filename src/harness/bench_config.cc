#include "harness/bench_config.h"

#include <cstdlib>

#include "util/str.h"

namespace pcbl {
namespace harness {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  if (const char* env = std::getenv("PCBL_BENCH_SCALE")) {
    auto pct = ParseDouble(env);
    if (pct.ok() && *pct > 0 && *pct <= 100000.0) {
      config.scale = *pct / 100.0;
    }
  }
  if (const char* env = std::getenv("PCBL_BENCH_SEED")) {
    auto seed = ParseInt64(env);
    if (seed.ok() && *seed >= 0) {
      config.seed = static_cast<uint64_t>(*seed);
    }
  }
  if (const char* env = std::getenv("PCBL_BENCH_TIME_LIMIT")) {
    auto limit = ParseDouble(env);
    if (limit.ok() && *limit >= 0) {
      config.time_limit_seconds = *limit;
    }
  }
  return config;
}

std::string BenchConfig::ToString() const {
  return StrFormat("scale=%.6g%% seed=%llu time_limit=%.0fs", scale * 100.0,
                   static_cast<unsigned long long>(seed),
                   time_limit_seconds);
}

}  // namespace harness
}  // namespace pcbl
