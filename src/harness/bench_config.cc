#include "harness/bench_config.h"

#include <cstdlib>
#include <fstream>
#include <utility>

#include "util/json.h"
#include "util/str.h"

namespace pcbl {
namespace harness {

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  if (const char* env = std::getenv("PCBL_BENCH_SCALE")) {
    auto pct = ParseDouble(env);
    if (pct.ok() && *pct > 0 && *pct <= 100000.0) {
      config.scale = *pct / 100.0;
    }
  }
  if (const char* env = std::getenv("PCBL_BENCH_SEED")) {
    auto seed = ParseInt64(env);
    if (seed.ok() && *seed >= 0) {
      config.seed = static_cast<uint64_t>(*seed);
    }
  }
  if (const char* env = std::getenv("PCBL_BENCH_TIME_LIMIT")) {
    auto limit = ParseDouble(env);
    if (limit.ok() && *limit >= 0) {
      config.time_limit_seconds = *limit;
    }
  }
  return config;
}

std::string BenchConfig::ToString() const {
  return StrFormat("scale=%.6g%% seed=%llu time_limit=%.0fs", scale * 100.0,
                   static_cast<unsigned long long>(seed),
                   time_limit_seconds);
}

BenchJsonRecorder::BenchJsonRecorder(std::string figure)
    : figure_(std::move(figure)) {}

void BenchJsonRecorder::Add(const std::string& dataset,
                            const std::string& metric, int64_t x,
                            double value) {
  samples_.push_back(Sample{dataset, metric, x, value});
}

bool BenchJsonRecorder::WriteIfRequested(const BenchConfig& config) const {
  const char* path = std::getenv("PCBL_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return true;
  JsonValue doc = JsonValue::Object();
  doc.Set("figure", JsonValue::String(figure_));
  doc.Set("scale", JsonValue::Double(config.scale));
  doc.Set("seed", JsonValue::Int(static_cast<int64_t>(config.seed)));
  JsonValue samples = JsonValue::Array();
  for (const Sample& s : samples_) {
    JsonValue sample = JsonValue::Object();
    sample.Set("dataset", JsonValue::String(s.dataset));
    sample.Set("metric", JsonValue::String(s.metric));
    sample.Set("x", JsonValue::Int(s.x));
    sample.Set("value", JsonValue::Double(s.value));
    samples.Append(std::move(sample));
  }
  doc.Set("samples", std::move(samples));
  std::ofstream out(path);
  if (!out) return false;
  out << doc.Dump(2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace harness
}  // namespace pcbl
