// Text-table rendering for the figure-reproduction benchmarks: aligned
// markdown (what the bench binaries print) and CSV (for plotting).
#ifndef PCBL_HARNESS_TABLEFMT_H_
#define PCBL_HARNESS_TABLEFMT_H_

#include <string>
#include <vector>

namespace pcbl {
namespace harness {

/// A rectangular table of strings with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each cell with StrCat-able values.
  template <typename... Args>
  void AddRowValues(const Args&... args);

  /// GitHub-flavoured markdown with padded columns.
  std::string ToMarkdown() const;

  /// RFC-ish CSV (quotes only when needed).
  std::string ToCsv() const;

  int num_rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure banner: "== Figure 4: ... ==" plus a description block.
void PrintFigureHeader(const std::string& figure_id,
                       const std::string& title,
                       const std::string& paper_expectation);

}  // namespace harness
}  // namespace pcbl

#include "harness/tablefmt_inl.h"

#endif  // PCBL_HARNESS_TABLEFMT_H_
