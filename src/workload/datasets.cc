#include "workload/datasets.h"

#include <algorithm>
#include <cmath>

#include "relation/bucketizer.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/str.h"
#include "workload/generator.h"

namespace pcbl {
namespace workload {
namespace {

// Sigmoid helper for the credit-card latent model.
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

Result<Table> MakeBlueNile(int64_t rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "BlueNile";

  // 0: shape — 10 shapes, round dominates (catalog reality).
  AttributeSpec shape;
  shape.name = "shape";
  shape.values = {"Round",   "Princess", "Cushion", "Emerald", "Oval",
                  "Radiant", "Asscher",  "Marquise", "Heart",  "Pear"};
  shape.marginal = {0.45, 0.12, 0.10, 0.07, 0.08,
                    0.05, 0.03, 0.04, 0.03, 0.03};
  spec.attributes.push_back(shape);

  // 1: cut — depends on shape (round stones grade higher), softened.
  AttributeSpec cut;
  cut.name = "cut";
  cut.values = {"Ideal", "Very Good", "Good", "Astor Ideal"};
  cut.marginal = {0.42, 0.35, 0.15, 0.08};
  cut.parent = 0;
  cut.noise = 0.30;
  cut.conditional = {
      {0.55, 0.28, 0.07, 0.10},  // Round
      {0.40, 0.38, 0.18, 0.04},  // Princess
      {0.35, 0.42, 0.20, 0.03},  // Cushion
      {0.30, 0.45, 0.22, 0.03},  // Emerald
      {0.38, 0.40, 0.19, 0.03},  // Oval
      {0.33, 0.42, 0.22, 0.03},  // Radiant
      {0.30, 0.45, 0.23, 0.02},  // Asscher
      {0.32, 0.43, 0.23, 0.02},  // Marquise
      {0.30, 0.44, 0.24, 0.02},  // Heart
      {0.34, 0.42, 0.22, 0.02},  // Pear
  };
  spec.attributes.push_back(cut);

  // 2: color — D..J, mid-heavy.
  AttributeSpec color;
  color.name = "color";
  color.values = {"D", "E", "F", "G", "H", "I", "J"};
  color.marginal = {0.10, 0.13, 0.16, 0.22, 0.18, 0.13, 0.08};
  spec.attributes.push_back(color);

  // 3: clarity — 8 grades, VS/SI-heavy.
  AttributeSpec clarity;
  clarity.name = "clarity";
  clarity.values = {"FL", "IF", "VVS1", "VVS2", "VS1", "VS2", "SI1", "SI2"};
  clarity.marginal = {0.01, 0.04, 0.07, 0.10, 0.20, 0.24, 0.20, 0.14};
  spec.attributes.push_back(clarity);

  // 4: polish — strongly tied to cut (the finishing-quality clique).
  AttributeSpec polish;
  polish.name = "polish";
  polish.values = {"Excellent", "Very Good", "Good"};
  polish.marginal = {0.60, 0.33, 0.07};
  polish.parent = 1;
  polish.noise = 0.05;
  polish.conditional = {
      {0.90, 0.09, 0.01},   // Ideal
      {0.55, 0.40, 0.05},   // Very Good
      {0.25, 0.55, 0.20},   // Good
      {0.98, 0.02, 0.00},   // Astor Ideal
  };
  spec.attributes.push_back(polish);

  // 5: symmetry — tied to polish.
  AttributeSpec symmetry;
  symmetry.name = "symmetry";
  symmetry.values = {"Excellent", "Very Good", "Good"};
  symmetry.marginal = {0.55, 0.37, 0.08};
  symmetry.parent = 4;
  symmetry.noise = 0.05;
  symmetry.conditional = {
      {0.85, 0.13, 0.02},  // Excellent polish
      {0.30, 0.60, 0.10},  // Very Good polish
      {0.08, 0.50, 0.42},  // Good polish
  };
  spec.attributes.push_back(symmetry);

  // 6: fluorescence — independent, skewed to None.
  AttributeSpec fluor;
  fluor.name = "fluorescence";
  fluor.values = {"None", "Faint", "Medium", "Strong", "Very Strong"};
  fluor.marginal = {0.60, 0.20, 0.12, 0.06, 0.02};
  spec.attributes.push_back(fluor);

  return GenerateDataset(spec, rows, seed);
}

Result<Table> MakeCompas(int64_t rows, uint64_t seed) {
  DatasetSpec spec;
  spec.name = "COMPAS";

  // Fig. 1 marginals (counts out of 60,843), used verbatim as weights.
  // 0: Gender
  AttributeSpec gender;
  gender.name = "Gender";
  gender.values = {"Male", "Female"};
  gender.marginal = {47514, 13329};
  spec.attributes.push_back(gender);

  // 1: AgeGroup
  AttributeSpec age;
  age.name = "AgeGroup";
  age.values = {"under 20", "20-39", "40-59", "over 60"};
  age.marginal = {2049, 40110, 16467, 2217};
  spec.attributes.push_back(age);

  // 2: Race — conditioned on Gender to match the Fig. 1 joint exactly
  // (male: 21486/16350/7011/2667, female: 5583/5433/1731/582).
  AttributeSpec race;
  race.name = "Race";
  race.values = {"African-American", "Caucasian", "Hispanic", "Other"};
  race.marginal = {27069, 21783, 8742, 3249};
  race.parent = 0;
  race.noise = 0.0;
  race.conditional = {
      {21486, 16350, 7011, 2667},  // Male
      {5583, 5433, 1731, 582},     // Female
  };
  spec.attributes.push_back(race);

  // 3: MaritalStatus — age-dependent (the intersectionality the intro
  // motivates: under-20s are overwhelmingly single), softened with noise.
  AttributeSpec marital;
  marital.name = "MaritalStatus";
  marital.values = {"Single",    "Married", "Divorced", "Separated",
                    "Significant Other", "Widowed", "Unknown"};
  marital.marginal = {45126, 8172, 3879, 1803, 1260, 390, 213};
  marital.parent = 1;
  marital.noise = 0.35;
  marital.conditional = {
      {0.965, 0.005, 0.002, 0.003, 0.020, 0.000, 0.005},  // under 20
      {0.800, 0.110, 0.040, 0.020, 0.023, 0.002, 0.005},  // 20-39
      {0.550, 0.220, 0.130, 0.060, 0.020, 0.010, 0.010},  // 40-59
      {0.350, 0.300, 0.180, 0.050, 0.030, 0.080, 0.010},  // over 60
  };
  spec.attributes.push_back(marital);

  // 4: CustodyStatus
  AttributeSpec custody;
  custody.name = "CustodyStatus";
  custody.values = {"Pretrial Defendant", "Probation", "Jail Inmate",
                    "Prison Inmate", "Parole", "Residential Program"};
  custody.marginal = {0.55, 0.25, 0.08, 0.06, 0.04, 0.02};
  spec.attributes.push_back(custody);

  // 5: LegalStatus — tracks custody status.
  AttributeSpec legal;
  legal.name = "LegalStatus";
  legal.values = {"Pretrial", "Post Sentence", "Probation Violator",
                  "Conditional Release", "Other"};
  legal.marginal = {0.55, 0.30, 0.08, 0.05, 0.02};
  legal.parent = 4;
  legal.noise = 0.20;
  legal.conditional = {
      {0.90, 0.04, 0.02, 0.02, 0.02},  // Pretrial Defendant
      {0.05, 0.70, 0.20, 0.03, 0.02},  // Probation
      {0.40, 0.45, 0.08, 0.04, 0.03},  // Jail Inmate
      {0.02, 0.90, 0.03, 0.03, 0.02},  // Prison Inmate
      {0.02, 0.60, 0.05, 0.30, 0.03},  // Parole
      {0.05, 0.50, 0.10, 0.30, 0.05},  // Residential Program
  };
  spec.attributes.push_back(legal);

  // 6: AssessmentReason
  AttributeSpec reason;
  reason.name = "AssessmentReason";
  reason.values = {"Intake", "Re-assessment", "Review"};
  reason.marginal = {0.80, 0.15, 0.05};
  spec.attributes.push_back(reason);

  // 7: Agency — tracks custody status.
  AttributeSpec agency;
  agency.name = "Agency";
  agency.values = {"PRETRIAL", "Probation", "DRRD", "Broward County"};
  agency.marginal = {0.55, 0.30, 0.10, 0.05};
  agency.parent = 4;
  agency.noise = 0.15;
  agency.conditional = {
      {0.92, 0.04, 0.02, 0.02},  // Pretrial Defendant
      {0.05, 0.85, 0.06, 0.04},  // Probation
      {0.30, 0.20, 0.35, 0.15},  // Jail Inmate
      {0.05, 0.25, 0.50, 0.20},  // Prison Inmate
      {0.05, 0.55, 0.25, 0.15},  // Parole
      {0.10, 0.40, 0.30, 0.20},  // Residential Program
  };
  spec.attributes.push_back(agency);

  // 8: Language
  AttributeSpec language;
  language.name = "Language";
  language.values = {"English", "Spanish"};
  language.marginal = {0.97, 0.03};
  spec.attributes.push_back(language);

  // 9: SexOffender flag
  AttributeSpec sex_offender;
  sex_offender.name = "SexOffender";
  sex_offender.values = {"No", "Yes"};
  sex_offender.marginal = {0.96, 0.04};
  spec.attributes.push_back(sex_offender);

  // --- assessment-score clique (near-functional dependencies) ----------
  // 10: Scale_ID — each assessment produces three scales.
  AttributeSpec scale_id;
  scale_id.name = "Scale_ID";
  scale_id.values = {"1", "7", "8"};
  scale_id.marginal = {0.334, 0.333, 0.333};
  spec.attributes.push_back(scale_id);

  // 11: DisplayText — a function of Scale_ID.
  AttributeSpec display;
  display.name = "DisplayText";
  display.values = {"Risk of Recidivism", "Risk of Violence",
                    "Risk of Failure to Appear"};
  display.parent = 10;
  display.noise = 0.0;
  display.conditional = {
      {1.0, 0.0, 0.0},
      {0.0, 1.0, 0.0},
      {0.0, 0.0, 1.0},
  };
  spec.attributes.push_back(display);

  // 12: DecileScore — skewed toward low risk.
  AttributeSpec decile;
  decile.name = "DecileScore";
  decile.values = {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"};
  decile.marginal = {0.19, 0.15, 0.12, 0.11, 0.09,
                     0.08, 0.08, 0.07, 0.06, 0.05};
  spec.attributes.push_back(decile);

  // 13: ScoreText — deciles 1-4 Low, 5-7 Medium, 8-10 High, with blurred
  // decision boundaries (adjacent-category mass only, so the number of
  // distinct clique combinations stays bounded as rows grow — matching
  // the near-functional dependencies of the real assessment data).
  AttributeSpec score_text;
  score_text.name = "ScoreText";
  score_text.values = {"Low", "Medium", "High"};
  score_text.parent = 12;
  score_text.conditional = {
      {1.00, 0.00, 0.00},  // 1
      {1.00, 0.00, 0.00},  // 2
      {1.00, 0.00, 0.00},  // 3
      {0.90, 0.10, 0.00},  // 4 (boundary)
      {0.08, 0.92, 0.00},  // 5 (boundary)
      {0.00, 1.00, 0.00},  // 6
      {0.00, 0.90, 0.10},  // 7 (boundary)
      {0.00, 0.08, 0.92},  // 8 (boundary)
      {0.00, 0.00, 1.00},  // 9
      {0.00, 0.00, 1.00},  // 10
  };
  spec.attributes.push_back(score_text);

  // 14: RecSupervisionLevel — a coarser function of the decile, again
  // with blurred boundaries only.
  AttributeSpec rec_level;
  rec_level.name = "RecSupervisionLevel";
  rec_level.values = {"1", "2", "3", "4"};
  rec_level.parent = 12;
  rec_level.conditional = {
      {1.00, 0.00, 0.00, 0.00},  // 1
      {1.00, 0.00, 0.00, 0.00},  // 2
      {0.92, 0.08, 0.00, 0.00},  // 3 (boundary)
      {0.10, 0.90, 0.00, 0.00},  // 4 (boundary)
      {0.00, 1.00, 0.00, 0.00},  // 5
      {0.00, 0.90, 0.10, 0.00},  // 6 (boundary)
      {0.00, 0.08, 0.92, 0.00},  // 7 (boundary)
      {0.00, 0.00, 0.90, 0.10},  // 8 (boundary)
      {0.00, 0.00, 0.05, 0.95},  // 9 (boundary)
      {0.00, 0.00, 0.00, 1.00},  // 10
  };
  spec.attributes.push_back(rec_level);

  // 15: RecSupervisionLevelText — a function of RecSupervisionLevel.
  AttributeSpec rec_text;
  rec_text.name = "RecSupervisionLevelText";
  rec_text.values = {"Low", "Medium", "Medium with Override Consideration",
                     "High"};
  rec_text.parent = 14;
  rec_text.noise = 0.0;
  rec_text.conditional = {
      {1, 0, 0, 0},
      {0, 1, 0, 0},
      {0, 0, 1, 0},
      {0, 0, 0, 1},
  };
  spec.attributes.push_back(rec_text);

  // 16: SupervisionLevel — mostly follows the recommendation.
  AttributeSpec sup_level;
  sup_level.name = "SupervisionLevel";
  sup_level.values = {"1", "2", "3", "4"};
  sup_level.marginal = {0.45, 0.28, 0.16, 0.11};
  sup_level.parent = 14;
  sup_level.noise = 0.25;
  sup_level.conditional = {
      {0.85, 0.12, 0.02, 0.01},
      {0.10, 0.75, 0.12, 0.03},
      {0.03, 0.15, 0.70, 0.12},
      {0.01, 0.05, 0.18, 0.76},
  };
  spec.attributes.push_back(sup_level);

  return GenerateDataset(spec, rows, seed);
}

Result<Table> MakeCreditCard(int64_t rows, uint64_t seed) {
  // Numeric families are driven by two latent per-client factors:
  //   c — creditworthiness, s — spending scale.
  // Columns are generated numerically, then every numeric attribute is
  // bucketized into 5 equi-width bins (Sec. IV-A's preprocessing).
  Rng rng(seed);
  const int64_t n = rows;

  std::vector<double> c_latent(static_cast<size_t>(n));
  std::vector<double> s_latent(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    c_latent[static_cast<size_t>(i)] = rng.Gaussian();
    s_latent[static_cast<size_t>(i)] = rng.Gaussian();
  }

  // Categorical columns.
  DiscreteDistribution sex_dist({0.40, 0.60});
  DiscreteDistribution edu_dist({0.35, 0.47, 0.16, 0.02});
  DiscreteDistribution mar_dist({0.455, 0.532, 0.013});
  const char* kSex[] = {"male", "female"};
  const char* kEdu[] = {"graduate school", "university", "high school",
                        "others"};
  const char* kMar[] = {"married", "single", "others"};

  std::vector<int> sex(static_cast<size_t>(n));
  std::vector<int> edu(static_cast<size_t>(n));
  std::vector<int> mar(static_cast<size_t>(n));
  std::vector<double> limit_bal(static_cast<size_t>(n));
  std::vector<double> age(static_cast<size_t>(n));
  std::vector<std::vector<double>> pay(6,
                                       std::vector<double>(static_cast<size_t>(n)));
  std::vector<std::vector<double>> bill(
      6, std::vector<double>(static_cast<size_t>(n)));
  std::vector<std::vector<double>> pay_amt(
      6, std::vector<double>(static_cast<size_t>(n)));
  std::vector<int> defaulted(static_cast<size_t>(n));

  for (int64_t i = 0; i < n; ++i) {
    size_t idx = static_cast<size_t>(i);
    double c = c_latent[idx];
    double s = s_latent[idx];

    sex[idx] = sex_dist.Sample(rng);
    edu[idx] = edu_dist.Sample(rng);
    mar[idx] = mar_dist.Sample(rng);

    // Education nudges creditworthiness (graduates skew higher limits).
    double edu_bonus = edu[idx] == 0 ? 0.5 : (edu[idx] == 1 ? 0.1 : -0.3);
    limit_bal[idx] = std::clamp(
        std::exp(11.3 + 0.55 * (c + edu_bonus) + 0.35 * rng.Gaussian()),
        10000.0, 1000000.0);

    age[idx] = std::clamp(21.0 + std::fabs(rng.Gaussian()) * 11.0 +
                              (mar[idx] == 0 ? 6.0 : 0.0),
                          21.0, 79.0);

    // Repayment-status chain PAY_0, PAY_2..PAY_6 (AR(1) around -1.2c).
    double target = -1.2 * c;
    double prev = target + rng.Gaussian(0.0, 0.9);
    for (int t = 0; t < 6; ++t) {
      double v = 0.72 * prev + 0.28 * target + rng.Gaussian(0.0, 0.55);
      double clamped = std::clamp(std::round(v), -2.0, 8.0);
      pay[static_cast<size_t>(t)][idx] = clamped;
      prev = v;
    }

    // Bill amounts: autocorrelated fraction of the limit.
    double util = Sigmoid(0.8 * s - 0.2 * c + rng.Gaussian(0.0, 0.6));
    for (int t = 0; t < 6; ++t) {
      util = std::clamp(util + rng.Gaussian(0.0, 0.08), 0.0, 1.2);
      bill[static_cast<size_t>(t)][idx] =
          limit_bal[idx] * util * (0.85 + 0.3 * rng.UniformDouble());
    }

    // Payments: a creditworthiness-dependent fraction of the bill.
    double ratio = std::clamp(Sigmoid(1.1 * c + rng.Gaussian(0.0, 0.8)),
                              0.01, 1.0);
    for (int t = 0; t < 6; ++t) {
      pay_amt[static_cast<size_t>(t)][idx] =
          bill[static_cast<size_t>(t)][idx] * ratio *
          (0.7 + 0.6 * rng.UniformDouble());
    }

    double default_score =
        Sigmoid(-1.6 * c + 0.35 * pay[0][idx] + rng.Gaussian(0.0, 0.9));
    defaulted[idx] = default_score > 0.75 ? 1 : 0;
  }

  // Assemble: bucketize numeric columns through the library Bucketizer.
  std::vector<std::string> names = {"LIMIT_BAL", "SEX", "EDUCATION",
                                    "MARRIAGE", "AGE"};
  const char* kPayNames[] = {"PAY_0", "PAY_2", "PAY_3",
                             "PAY_4", "PAY_5", "PAY_6"};
  for (const char* p : kPayNames) names.push_back(p);
  for (int t = 1; t <= 6; ++t) names.push_back(StrCat("BILL_AMT", t));
  for (int t = 1; t <= 6; ++t) names.push_back(StrCat("PAY_AMT", t));
  names.push_back("default_payment_next_month");
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(std::move(names)));

  auto bucketize = [&](const std::vector<double>& col)
      -> Result<std::vector<std::string>> {
    return BucketizeColumn(col, 5, BucketStrategy::kEquiWidth);
  };
  PCBL_ASSIGN_OR_RETURN(auto limit_lbl, bucketize(limit_bal));
  PCBL_ASSIGN_OR_RETURN(auto age_lbl, bucketize(age));
  std::vector<std::vector<std::string>> pay_lbl(6);
  std::vector<std::vector<std::string>> bill_lbl(6);
  std::vector<std::vector<std::string>> pay_amt_lbl(6);
  for (int t = 0; t < 6; ++t) {
    PCBL_ASSIGN_OR_RETURN(pay_lbl[static_cast<size_t>(t)],
                          bucketize(pay[static_cast<size_t>(t)]));
    PCBL_ASSIGN_OR_RETURN(bill_lbl[static_cast<size_t>(t)],
                          bucketize(bill[static_cast<size_t>(t)]));
    PCBL_ASSIGN_OR_RETURN(pay_amt_lbl[static_cast<size_t>(t)],
                          bucketize(pay_amt[static_cast<size_t>(t)]));
  }

  std::vector<std::string> row(24);
  for (int64_t i = 0; i < n; ++i) {
    size_t idx = static_cast<size_t>(i);
    int k = 0;
    row[static_cast<size_t>(k++)] = limit_lbl[idx];
    row[static_cast<size_t>(k++)] = kSex[sex[idx]];
    row[static_cast<size_t>(k++)] = kEdu[edu[idx]];
    row[static_cast<size_t>(k++)] = kMar[mar[idx]];
    row[static_cast<size_t>(k++)] = age_lbl[idx];
    for (int t = 0; t < 6; ++t) {
      row[static_cast<size_t>(k++)] = pay_lbl[static_cast<size_t>(t)][idx];
    }
    for (int t = 0; t < 6; ++t) {
      row[static_cast<size_t>(k++)] = bill_lbl[static_cast<size_t>(t)][idx];
    }
    for (int t = 0; t < 6; ++t) {
      row[static_cast<size_t>(k++)] =
          pay_amt_lbl[static_cast<size_t>(t)][idx];
    }
    row[static_cast<size_t>(k++)] = defaulted[idx] ? "yes" : "no";
    PCBL_RETURN_IF_ERROR(builder.AddRow(row));
  }
  return builder.Build();
}

Table MakeFig2Demo() {
  auto builder_or = TableBuilder::Create(
      {"gender", "age group", "race", "marital status"});
  PCBL_CHECK(builder_or.ok());
  TableBuilder builder = std::move(builder_or).value();
  const char* rows[][4] = {
      {"Female", "under 20", "African-American", "single"},
      {"Male", "20-39", "African-American", "divorced"},
      {"Male", "under 20", "Hispanic", "single"},
      {"Male", "20-39", "Caucasian", "married"},
      {"Female", "20-39", "African-American", "divorced"},
      {"Male", "20-39", "Caucasian", "divorced"},
      {"Female", "20-39", "African-American", "married"},
      {"Male", "under 20", "African-American", "single"},
      {"Female", "20-39", "Caucasian", "divorced"},
      {"Male", "under 20", "Caucasian", "single"},
      {"Male", "20-39", "Hispanic", "divorced"},
      {"Female", "under 20", "Hispanic", "single"},
      {"Female", "20-39", "Hispanic", "married"},
      {"Female", "under 20", "Caucasian", "single"},
      {"Female", "20-39", "Caucasian", "married"},
      {"Male", "20-39", "Hispanic", "married"},
      {"Male", "20-39", "African-American", "married"},
      {"Female", "20-39", "Hispanic", "divorced"},
  };
  for (const auto& r : rows) {
    Status s = builder.AddRow({r[0], r[1], r[2], r[3]});
    PCBL_CHECK(s.ok()) << s;
  }
  return builder.Build();
}

Result<Table> MakeTwoClique(int64_t rows, uint64_t seed, double noise) {
  if (noise < 0.0 || noise >= 1.0) {
    return InvalidArgumentError("noise must be in [0, 1)");
  }
  const std::vector<std::string> values = {"v0", "v1", "v2", "v3"};
  const std::vector<double> uniform = {1.0, 1.0, 1.0, 1.0};
  // Identity-dominated conditional: the child copies its parent except
  // under noise.
  std::vector<std::vector<double>> copy_rows(4, std::vector<double>(4, 0.0));
  for (size_t v = 0; v < 4; ++v) copy_rows[v][v] = 1.0;

  DatasetSpec spec;
  spec.name = "TwoClique";
  spec.attributes.push_back(
      AttributeSpec{"pair_a0", values, uniform, -1, {}, 0.0});
  spec.attributes.push_back(
      AttributeSpec{"pair_a1", values, uniform, 0, copy_rows, noise});
  spec.attributes.push_back(
      AttributeSpec{"pair_b0", values, uniform, -1, {}, 0.0});
  spec.attributes.push_back(
      AttributeSpec{"pair_b1", values, uniform, 2, copy_rows, noise});
  return GenerateDataset(spec, rows, seed);
}

Result<std::vector<NamedDataset>> MakePaperDatasets(double scale,
                                                    uint64_t seed) {
  if (scale <= 0.0) return InvalidArgumentError("scale must be positive");
  auto scaled = [scale](int64_t rows) {
    return std::max<int64_t>(1, static_cast<int64_t>(
                                    static_cast<double>(rows) * scale));
  };
  std::vector<NamedDataset> out;
  PCBL_ASSIGN_OR_RETURN(Table bn, MakeBlueNile(scaled(kBlueNileRows), seed));
  out.push_back(NamedDataset{"BlueNile", std::move(bn)});
  PCBL_ASSIGN_OR_RETURN(Table cp, MakeCompas(scaled(kCompasRows), seed));
  out.push_back(NamedDataset{"COMPAS", std::move(cp)});
  PCBL_ASSIGN_OR_RETURN(Table cc,
                        MakeCreditCard(scaled(kCreditCardRows), seed));
  out.push_back(NamedDataset{"CreditCard", std::move(cc)});
  return out;
}

}  // namespace workload
}  // namespace pcbl
