#include "workload/generator.h"

#include <memory>

#include "util/logging.h"
#include "util/rng.h"
#include "util/str.h"

namespace pcbl {
namespace {

Status ValidateSpec(const DatasetSpec& spec) {
  if (spec.attributes.empty()) {
    return InvalidArgumentError("dataset spec has no attributes");
  }
  for (size_t i = 0; i < spec.attributes.size(); ++i) {
    const AttributeSpec& a = spec.attributes[i];
    if (a.values.empty()) {
      return InvalidArgumentError(
          StrCat("attribute '", a.name, "' has an empty domain"));
    }
    if (a.parent >= static_cast<int>(i)) {
      return InvalidArgumentError(
          StrCat("attribute '", a.name,
                 "' depends on a later attribute (parent index ", a.parent,
                 ")"));
    }
    if (a.parent < 0 || a.noise > 0.0) {
      if (a.marginal.size() != a.values.size()) {
        return InvalidArgumentError(
            StrCat("attribute '", a.name, "' marginal has ",
                   a.marginal.size(), " weights for ", a.values.size(),
                   " values"));
      }
    }
    if (a.parent >= 0) {
      size_t parent_domain =
          spec.attributes[static_cast<size_t>(a.parent)].values.size();
      if (a.conditional.size() != parent_domain) {
        return InvalidArgumentError(
            StrCat("attribute '", a.name, "' conditional has ",
                   a.conditional.size(), " rows for parent domain ",
                   parent_domain));
      }
      for (const auto& row : a.conditional) {
        if (row.size() != a.values.size()) {
          return InvalidArgumentError(
              StrCat("attribute '", a.name,
                     "' conditional row has wrong arity"));
        }
      }
    }
    if (a.noise < 0.0 || a.noise > 1.0) {
      return InvalidArgumentError(
          StrCat("attribute '", a.name, "' noise outside [0,1]"));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<Table> GenerateDataset(const DatasetSpec& spec, int64_t rows,
                              uint64_t seed) {
  PCBL_RETURN_IF_ERROR(ValidateSpec(spec));
  if (rows < 0) return InvalidArgumentError("negative row count");

  std::vector<std::string> names;
  names.reserve(spec.attributes.size());
  for (const AttributeSpec& a : spec.attributes) names.push_back(a.name);
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(std::move(names)));

  // Fix dictionary id order to the spec's value order so generated codes
  // are stable regardless of sampling order.
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    for (const std::string& v : spec.attributes[a].values) {
      builder.InternValue(static_cast<int>(a), v);
    }
  }

  // Pre-build samplers.
  std::vector<std::unique_ptr<DiscreteDistribution>> marginals(
      spec.attributes.size());
  std::vector<std::vector<std::unique_ptr<DiscreteDistribution>>>
      conditionals(spec.attributes.size());
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    const AttributeSpec& s = spec.attributes[a];
    if (s.parent < 0 || s.noise > 0.0) {
      marginals[a] = std::make_unique<DiscreteDistribution>(s.marginal);
    }
    if (s.parent >= 0) {
      conditionals[a].reserve(s.conditional.size());
      for (const auto& row : s.conditional) {
        conditionals[a].push_back(
            std::make_unique<DiscreteDistribution>(row));
      }
    }
  }

  Rng rng(seed);
  std::vector<ValueId> codes(spec.attributes.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      const AttributeSpec& s = spec.attributes[a];
      int value;
      if (s.parent >= 0 && (s.noise == 0.0 || !rng.Bernoulli(s.noise))) {
        ValueId pv = codes[static_cast<size_t>(s.parent)];
        value = conditionals[a][pv]->Sample(rng);
      } else {
        value = marginals[a]->Sample(rng);
      }
      codes[a] = static_cast<ValueId>(value);
    }
    PCBL_RETURN_IF_ERROR(builder.AddRowCodes(codes));
  }
  return builder.Build();
}

Result<Table> AugmentWithRandomRows(const Table& table, int64_t extra_rows,
                                    uint64_t seed) {
  if (extra_rows < 0) return InvalidArgumentError("negative extra rows");
  std::vector<std::string> names = table.schema().names();
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(std::move(names)));
  // Preserve dictionaries (id order) of the source table.
  for (int a = 0; a < table.num_attributes(); ++a) {
    for (const std::string& v : table.dictionary(a).values()) {
      builder.InternValue(a, v);
    }
  }
  std::vector<ValueId> codes(static_cast<size_t>(table.num_attributes()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      codes[static_cast<size_t>(a)] = table.value(r, a);
    }
    PCBL_RETURN_IF_ERROR(builder.AddRowCodes(codes));
  }
  Rng rng(seed);
  for (int64_t r = 0; r < extra_rows; ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      ValueId dom = table.DomainSize(a);
      codes[static_cast<size_t>(a)] =
          dom == 0 ? kNullValue : rng.UniformInt(dom);
    }
    PCBL_RETURN_IF_ERROR(builder.AddRowCodes(codes));
  }
  return builder.Build();
}

}  // namespace pcbl
