// The evaluation datasets (Sec. IV-A), reproduced synthetically.
//
// Real data is not redistributable in this repository; these generators
// match the published row counts, attribute counts, domain cardinalities
// and (where the paper reports them, e.g. COMPAS Fig. 1) the marginal and
// pairwise distributions. See DESIGN.md §2 for the substitution rationale.
#ifndef PCBL_WORKLOAD_DATASETS_H_
#define PCBL_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/table.h"
#include "util/status.h"

namespace pcbl {
namespace workload {

/// Default row counts, matching the paper.
inline constexpr int64_t kBlueNileRows = 116300;
inline constexpr int64_t kCompasRows = 60843;
inline constexpr int64_t kCreditCardRows = 30000;

/// BlueNile diamonds catalog: 7 categorical attributes (shape, cut, color,
/// clarity, polish, symmetry, fluorescence) with realistic cardinalities
/// and a correlated finishing-quality clique (cut ↔ polish ↔ symmetry).
Result<Table> MakeBlueNile(int64_t rows = kBlueNileRows,
                           uint64_t seed = 2021);

/// COMPAS: 17 attributes; demographics match the marginals and the
/// gender x race joint published in Fig. 1; the assessment-score clique
/// (Scale_ID, DisplayText, DecileScore, ScoreText, RecSupervisionLevel,
/// RecSupervisionLevelText) is near-functionally dependent, mirroring the
/// clique the paper's optimal label selects (Sec. IV-E).
Result<Table> MakeCompas(int64_t rows = kCompasRows, uint64_t seed = 2021);

/// Default-of-credit-card-clients: 24 attributes; numeric families
/// (LIMIT_BAL, AGE, PAY_0/2..6, BILL_AMT1..6, PAY_AMT1..6) are generated
/// from latent credit/spending factors and bucketized into 5 bins through
/// the library's Bucketizer, exactly as the paper preprocesses the real
/// dataset.
Result<Table> MakeCreditCard(int64_t rows = kCreditCardRows,
                             uint64_t seed = 2021);

/// The 18-tuple simplified-COMPAS fragment of Fig. 2 (gender, age group,
/// race, marital status), value for value. Used by the quickstart example
/// and the tests that pin the paper's worked examples (2.4-2.14, 3.7).
Table MakeFig2Demo();

/// A diagnostic dataset with two *disjoint* correlated cliques: pair_a0
/// near-copies pair_a1 and pair_b0 near-copies pair_b1, with the cliques
/// mutually independent (all domains of size 4). No single small label
/// covers both cliques, which is exactly the regime where the multi-label
/// extension (Sec. VI future work) beats one label at equal budget — see
/// bench_ablation_multilabel. `noise` softens the copies so every value
/// combination appears (clique labels have |PC| = 16 rather than 4).
Result<Table> MakeTwoClique(int64_t rows = 20000, uint64_t seed = 2021,
                            double noise = 0.15);

/// A named dataset handle for the experiment harness.
struct NamedDataset {
  std::string name;
  Table table;
};

/// All three paper datasets at the given scale factor (1.0 = paper size).
Result<std::vector<NamedDataset>> MakePaperDatasets(double scale = 1.0,
                                                    uint64_t seed = 2021);

}  // namespace workload
}  // namespace pcbl

#endif  // PCBL_WORKLOAD_DATASETS_H_
