// Synthetic categorical dataset generation.
//
// The paper evaluates on three real datasets (BlueNile, COMPAS, Credit
// Card) that are not redistributable here; per DESIGN.md each is
// substituted by a generator that reproduces the properties the algorithms
// actually exercise: row count, attribute count, per-attribute domain
// sizes, marginal skew, and correlated attribute cliques. The framework is
// a small Bayesian-network-style sampler: each attribute is either
// independent (marginal distribution) or conditioned on one earlier
// attribute (per-parent-value conditional rows), optionally mixed with
// noise to keep the dependence from being perfectly functional.
#ifndef PCBL_WORKLOAD_GENERATOR_H_
#define PCBL_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Specification of one generated attribute.
struct AttributeSpec {
  std::string name;
  /// Value labels; the domain in id order.
  std::vector<std::string> values;
  /// Marginal weights (need not be normalized). Required when parent < 0;
  /// also used as the noise distribution when noise > 0.
  std::vector<double> marginal;
  /// Index (into the spec list) of the parent attribute, or -1.
  int parent = -1;
  /// conditional[p][v]: weight of value v given parent value p.
  /// Required when parent >= 0; dimensions |Dom(parent)| x |values|.
  std::vector<std::vector<double>> conditional;
  /// With this probability the value is drawn from `marginal` instead of
  /// the conditional row — softens functional dependencies.
  double noise = 0.0;
};

/// A whole synthetic dataset.
struct DatasetSpec {
  std::string name;
  std::vector<AttributeSpec> attributes;
};

/// Validates the spec (dimensions, parent ordering, weights) and samples
/// `rows` tuples deterministically from `seed`.
Result<Table> GenerateDataset(const DatasetSpec& spec, int64_t rows,
                              uint64_t seed);

/// Appends `extra_rows` uniformly random tuples (each attribute uniform
/// over its existing domain) — the Fig. 7 scaling protocol ("gradually
/// increased the data size by adding randomly generated tuples").
Result<Table> AugmentWithRandomRows(const Table& table, int64_t extra_rows,
                                    uint64_t seed);

}  // namespace pcbl

#endif  // PCBL_WORKLOAD_GENERATOR_H_
