#include "pattern/kernel_dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "relation/table.h"
#include "util/str.h"

namespace pcbl {
namespace counting {

namespace {

// ---------------------------------------------------------------------------
// Portable reference kernels. These loops are written so the compiler can
// auto-vectorize them at the binary's baseline ISA, but their real job is
// to define the exact semantics every SIMD table must reproduce.
// ---------------------------------------------------------------------------

void ScalarEncodeA2(const uint32_t* c0, const uint32_t* c1, int s0,
                    int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
  }
}

void ScalarEncodeA2Nullable(const uint32_t* c0, const uint32_t* c1, int s0,
                            uint64_t sentinel, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const bool ok = v0 != kNullValue && v1 != kNullValue;
    const uint64_t packed = (static_cast<uint64_t>(v0) << s0) | v1;
    out[i] = ok ? packed : sentinel;
  }
}

void ScalarEncodeA3(const uint32_t* c0, const uint32_t* c1,
                    const uint32_t* c2, int s0, int s1, int64_t n,
                    uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) |
             (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
  }
}

void ScalarEncodeA3Nullable(const uint32_t* c0, const uint32_t* c1,
                            const uint32_t* c2, int s0, int s1, uint64_t n0,
                            uint64_t n1, uint64_t n2, uint64_t sentinel,
                            int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const uint32_t v2 = c2[i];
    const int nulls = static_cast<int>(v0 == kNullValue) +
                      static_cast<int>(v1 == kNullValue) +
                      static_cast<int>(v2 == kNullValue);
    const uint64_t code = ((v0 == kNullValue ? n0 : v0) << s0) |
                          ((v1 == kNullValue ? n1 : v1) << s1) |
                          (v2 == kNullValue ? n2 : v2);
    out[i] = nulls <= 1 ? code : sentinel;
  }
}

void ScalarGatherAccum(const uint32_t* col, int shift, uint64_t null_slot,
                       int64_t n, uint64_t* codes, uint8_t* arity) {
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t v = col[i];
    const bool bound = v != kNullValue;
    codes[i] |= (bound ? static_cast<uint64_t>(v) : null_slot) << shift;
    arity[i] += static_cast<uint8_t>(bound);
  }
}

// The fused dense fills keep the straightforward bitmap load-OR-store:
// scalar cost is dominated by the encode, and the 8x-smaller bitmap
// scratch stays cache-resident at the largest eligible code spaces.
void ScalarDenseFillA2(const uint32_t* c0, const uint32_t* c1, int s0,
                       int total_bits, int64_t n, uint64_t* bm) {
  (void)total_bits;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

void ScalarDenseFillA3(const uint32_t* c0, const uint32_t* c1,
                       const uint32_t* c2, int s0, int s1, int total_bits,
                       int64_t n, uint64_t* bm) {
  (void)total_bits;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) |
                          (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

constexpr SizingKernels kScalarKernels = {
    &ScalarEncodeA2,        &ScalarEncodeA2Nullable, &ScalarEncodeA3,
    &ScalarEncodeA3Nullable, &ScalarGatherAccum,     &ScalarDenseFillA2,
    &ScalarDenseFillA3,
};

// ---------------------------------------------------------------------------
// Resolution. The active table is one relaxed atomic pointer; resolution
// runs once (function-local static) and may be overridden afterwards by
// SetKernelIsa (tests, CLI flag).
// ---------------------------------------------------------------------------

const SizingKernels* TableFor(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return &kScalarKernels;
    case KernelIsa::kAvx2:
      return GetAvx2Kernels();
    case KernelIsa::kNeon:
      return GetNeonKernels();
  }
  return nullptr;
}

bool HostSupports(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#if defined(__x86_64__) && defined(__GNUC__)
      // The AVX2 TU is also built with -mbmi2 (every AVX2-era core has
      // BMI2), so a forced avx2 table must verify both feature bits.
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("bmi2") != 0;
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is baseline on arm64
#else
      return false;
#endif
  }
  return false;
}

struct DispatchState {
  std::atomic<const SizingKernels*> table{&kScalarKernels};
  std::atomic<KernelIsa> isa{KernelIsa::kScalar};
  std::atomic<bool> forced{false};
};

DispatchState& State() {
  static DispatchState state;
  // Resolution order: PCBL_FORCE_KERNEL when set and usable (a warning on
  // stderr when it is not — an env override must never turn into a
  // SIGILL), BestKernelIsa() otherwise. Thread-safe: function-local
  // static initialization runs exactly once.
  static const bool initialized = [] {
    KernelIsa isa = BestKernelIsa();
    bool forced = false;
    if (const char* env = std::getenv("PCBL_FORCE_KERNEL");
        env != nullptr && env[0] != '\0') {
      const std::string name = ToLower(env);
      if (name == "auto") {
        // explicit auto: same as unset
      } else if (name == "scalar" && KernelIsaAvailable(KernelIsa::kScalar)) {
        isa = KernelIsa::kScalar;
        forced = true;
      } else if (name == "avx2" && KernelIsaAvailable(KernelIsa::kAvx2)) {
        isa = KernelIsa::kAvx2;
        forced = true;
      } else if (name == "neon" && KernelIsaAvailable(KernelIsa::kNeon)) {
        isa = KernelIsa::kNeon;
        forced = true;
      } else {
        std::fprintf(stderr,
                     "pcbl: PCBL_FORCE_KERNEL=%s is not available on this "
                     "host; using %s\n",
                     env, KernelIsaName(isa));
      }
    }
    state.table.store(TableFor(isa), std::memory_order_relaxed);
    state.isa.store(isa, std::memory_order_relaxed);
    state.forced.store(forced, std::memory_order_relaxed);
    return true;
  }();
  (void)initialized;
  return state;
}

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
    case KernelIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

const SizingKernels& ScalarKernels() { return kScalarKernels; }

bool KernelIsaAvailable(KernelIsa isa) {
  return TableFor(isa) != nullptr && HostSupports(isa);
}

KernelIsa BestKernelIsa() {
  if (KernelIsaAvailable(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  if (KernelIsaAvailable(KernelIsa::kNeon)) return KernelIsa::kNeon;
  return KernelIsa::kScalar;
}

KernelIsa ActiveKernelIsa() {
  return State().isa.load(std::memory_order_relaxed);
}

bool KernelIsaForced() {
  return State().forced.load(std::memory_order_relaxed);
}

const SizingKernels& ActiveKernels() {
  return *State().table.load(std::memory_order_relaxed);
}

Status SetKernelIsa(KernelIsa isa) {
  if (!KernelIsaAvailable(isa)) {
    return InvalidArgumentError(
        StrCat("kernel ISA \"", KernelIsaName(isa),
               "\" is not available on this host"));
  }
  DispatchState& s = State();
  s.table.store(TableFor(isa), std::memory_order_relaxed);
  s.isa.store(isa, std::memory_order_relaxed);
  s.forced.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

Status SetKernelIsaByName(const std::string& name) {
  const std::string n = ToLower(name);
  if (n == "auto") {
    DispatchState& s = State();
    const KernelIsa best = BestKernelIsa();
    s.table.store(TableFor(best), std::memory_order_relaxed);
    s.isa.store(best, std::memory_order_relaxed);
    s.forced.store(false, std::memory_order_relaxed);
    return Status::Ok();
  }
  KernelIsa isa;
  if (n == "scalar") {
    isa = KernelIsa::kScalar;
  } else if (n == "avx2") {
    isa = KernelIsa::kAvx2;
  } else if (n == "neon") {
    isa = KernelIsa::kNeon;
  } else {
    return InvalidArgumentError(
        StrCat("unknown kernel \"", name,
               "\" (expected scalar, avx2, neon, or auto)"));
  }
  return SetKernelIsa(isa);
}

std::string KernelDispatchDescription() {
  std::string available = "scalar";
  if (KernelIsaAvailable(KernelIsa::kAvx2)) available += ",avx2";
  if (KernelIsaAvailable(KernelIsa::kNeon)) available += ",neon";
  return StrCat(KernelIsaName(ActiveKernelIsa()),
                KernelIsaForced() ? " (forced; available: "
                                  : " (auto-detected; available: ",
                available, ")");
}

}  // namespace counting
}  // namespace pcbl
