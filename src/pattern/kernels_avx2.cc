// AVX2 implementations of the sizing-kernel table (kernel_dispatch.h).
//
// This translation unit is compiled with -mavx2 (see CMakeLists.txt); no
// other TU may include AVX2 code, and nothing here may be inlined into
// portable code — all definitions are internal-linkage and only the table
// accessor escapes. On non-x86-64 targets the TU compiles to a stub
// returning nullptr.
//
// Every kernel must be bit-identical to its scalar reference in
// kernel_dispatch.cc for every input (differential-tested per ISA in
// pattern_packed_kernels_test.cc). NULL tests are exact 32-bit compares
// against kNullValue widened into the 64-bit lanes — no dense-regime
// top-bit shortcuts.
#include "pattern/kernel_dispatch.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "relation/value.h"

namespace pcbl {
namespace counting {
namespace {

// All lanes hold zero-extended uint32 values, so a 64-bit lane equals
// kNullValue (0xFFFFFFFF) exactly when the source slot was NULL.
inline __m256i NullLanes() { return _mm256_set1_epi64x(0xFFFFFFFFll); }

// Zero-extends 4 uint32 loads into one vector of 4 uint64 lanes.
inline __m256i Widen4(const uint32_t* p) {
  return _mm256_cvtepu32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m256i ShiftLeft(__m256i v, int s) {
  return _mm256_sll_epi64(v, _mm_cvtsi32_si128(s));
}

void EncodeA2Avx2(const uint32_t* c0, const uint32_t* c1, int s0,
                  int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v0 = Widen4(c0 + i);
    const __m256i v1 = Widen4(c1 + i);
    const __m256i code = _mm256_or_si256(ShiftLeft(v0, s0), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), code);
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
  }
}

void EncodeA2NullableAvx2(const uint32_t* c0, const uint32_t* c1, int s0,
                          uint64_t sentinel, int64_t n, uint64_t* out) {
  const __m256i null_v = NullLanes();
  const __m256i sent_v = _mm256_set1_epi64x(static_cast<long long>(sentinel));
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v0 = Widen4(c0 + i);
    const __m256i v1 = Widen4(c1 + i);
    const __m256i code = _mm256_or_si256(ShiftLeft(v0, s0), v1);
    const __m256i bad = _mm256_or_si256(_mm256_cmpeq_epi64(v0, null_v),
                                        _mm256_cmpeq_epi64(v1, null_v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_blendv_epi8(code, sent_v, bad));
  }
  for (; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const bool ok = v0 != kNullValue && v1 != kNullValue;
    out[i] = ok ? (static_cast<uint64_t>(v0) << s0) | v1 : sentinel;
  }
}

void EncodeA3Avx2(const uint32_t* c0, const uint32_t* c1,
                  const uint32_t* c2, int s0, int s1, int64_t n,
                  uint64_t* out) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v0 = Widen4(c0 + i);
    const __m256i v1 = Widen4(c1 + i);
    const __m256i v2 = Widen4(c2 + i);
    const __m256i code = _mm256_or_si256(
        _mm256_or_si256(ShiftLeft(v0, s0), ShiftLeft(v1, s1)), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), code);
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) |
             (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
  }
}

void EncodeA3NullableAvx2(const uint32_t* c0, const uint32_t* c1,
                          const uint32_t* c2, int s0, int s1, uint64_t n0,
                          uint64_t n1, uint64_t n2, uint64_t sentinel,
                          int64_t n, uint64_t* out) {
  const __m256i null_v = NullLanes();
  const __m256i sent_v = _mm256_set1_epi64x(static_cast<long long>(sentinel));
  const __m256i slot0 = _mm256_set1_epi64x(static_cast<long long>(n0));
  const __m256i slot1 = _mm256_set1_epi64x(static_cast<long long>(n1));
  const __m256i slot2 = _mm256_set1_epi64x(static_cast<long long>(n2));
  // cmpeq yields -1 per NULL lane; a lane sum <= -2 means >= 2 NULLs
  // (arity < 2), routing the row to the sentinel.
  const __m256i minus_one = _mm256_set1_epi64x(-1);
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v0 = Widen4(c0 + i);
    const __m256i v1 = Widen4(c1 + i);
    const __m256i v2 = Widen4(c2 + i);
    const __m256i m0 = _mm256_cmpeq_epi64(v0, null_v);
    const __m256i m1 = _mm256_cmpeq_epi64(v1, null_v);
    const __m256i m2 = _mm256_cmpeq_epi64(v2, null_v);
    const __m256i f0 = _mm256_blendv_epi8(v0, slot0, m0);
    const __m256i f1 = _mm256_blendv_epi8(v1, slot1, m1);
    const __m256i f2 = _mm256_blendv_epi8(v2, slot2, m2);
    const __m256i code = _mm256_or_si256(
        _mm256_or_si256(ShiftLeft(f0, s0), ShiftLeft(f1, s1)), f2);
    const __m256i null_sum =
        _mm256_add_epi64(_mm256_add_epi64(m0, m1), m2);
    const __m256i bad = _mm256_cmpgt_epi64(minus_one, null_sum);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_blendv_epi8(code, sent_v, bad));
  }
  for (; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const uint32_t v2 = c2[i];
    const int nulls = static_cast<int>(v0 == kNullValue) +
                      static_cast<int>(v1 == kNullValue) +
                      static_cast<int>(v2 == kNullValue);
    const uint64_t code = ((v0 == kNullValue ? n0 : v0) << s0) |
                          ((v1 == kNullValue ? n1 : v1) << s1) |
                          (v2 == kNullValue ? n2 : v2);
    out[i] = nulls <= 1 ? code : sentinel;
  }
}

void GatherAccumAvx2(const uint32_t* col, int shift, uint64_t null_slot,
                     int64_t n, uint64_t* codes, uint8_t* arity) {
  const __m256i null_v = NullLanes();
  const __m256i slot_v =
      _mm256_set1_epi64x(static_cast<long long>(null_slot));
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = Widen4(col + i);
    const __m256i is_null = _mm256_cmpeq_epi64(v, null_v);
    const __m256i slot = _mm256_blendv_epi8(v, slot_v, is_null);
    const __m256i acc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(codes + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(codes + i),
                        _mm256_or_si256(acc, ShiftLeft(slot, shift)));
    // 4 bound/NULL flags as the lanes' sign bits; the per-row uint8 arity
    // bump stays scalar (a 4-wide byte scatter is not worth the shuffle).
    const int null_mask =
        _mm256_movemask_pd(_mm256_castsi256_pd(is_null));
    arity[i + 0] += static_cast<uint8_t>(!(null_mask & 1));
    arity[i + 1] += static_cast<uint8_t>(!(null_mask & 2));
    arity[i + 2] += static_cast<uint8_t>(!(null_mask & 4));
    arity[i + 3] += static_cast<uint8_t>(!(null_mask & 8));
  }
  for (; i < n; ++i) {
    const uint32_t v = col[i];
    const bool bound = v != kNullValue;
    codes[i] |= (bound ? static_cast<uint64_t>(v) : null_slot) << shift;
    arity[i] += static_cast<uint8_t>(bound);
  }
}

// --------------------------------------------------------------------------
// Fused dense fills. The vector encode alone is only ~a quarter of the
// fill's cost; the wall is the presence update, which as a bitmap is a
// load-OR-store chain through one store port. For code spaces that fit in
// L1/L2 we therefore probe into a byte table instead — presence[code] = 1
// is a plain store with no read-modify-write — and sweep the bytes back
// into the caller's bitmap with one compare+movemask per 32 codes.
// Beyond that the byte table would thrash the cache, and the fused
// vector-encode + bitmap-scatter still beats the scalar loop on encode
// throughput alone.
// --------------------------------------------------------------------------

// Largest code space probed through the stack byte table: 2^17 bytes =
// 128 KiB, L2-resident and far below any worker-thread stack budget.
// Up to 2^15 (32 KiB, cache-hot) the byte table always wins; beyond
// that its clear + sweep must be amortized over enough rows, else the
// plain bitmap scatter is cheaper.
constexpr int kBytePresenceBits = 17;

inline bool UseBytePresence(int total_bits, int64_t n) {
  if (total_bits > kBytePresenceBits) return false;
  if (total_bits <= 15) return true;
  return n >= (int64_t{1} << total_bits) / 8;
}

inline void ScatterBitmap4(__m256i codes, uint64_t* bm) {
  const __m128i lo = _mm256_castsi256_si128(codes);
  const __m128i hi = _mm256_extracti128_si256(codes, 1);
  uint64_t c;
  c = static_cast<uint64_t>(_mm_cvtsi128_si64(lo));
  bm[c >> 6] |= uint64_t{1} << (c & 63);
  c = static_cast<uint64_t>(_mm_extract_epi64(lo, 1));
  bm[c >> 6] |= uint64_t{1} << (c & 63);
  c = static_cast<uint64_t>(_mm_cvtsi128_si64(hi));
  bm[c >> 6] |= uint64_t{1} << (c & 63);
  c = static_cast<uint64_t>(_mm_extract_epi64(hi, 1));
  bm[c >> 6] |= uint64_t{1} << (c & 63);
}

// ORs the 0/1 byte table into the bitmap, 64 codes per iteration: two
// 32-byte compares against zero collapse to sign masks that are exactly
// the bitmap word.
inline void OrPresenceIntoBitmap(const uint8_t* presence, int64_t space,
                                 uint64_t* bm) {
  const __m256i zero = _mm256_setzero_si256();
  int64_t b = 0;
  for (; b + 64 <= space; b += 64) {
    const __m256i lo = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(presence + b));
    const __m256i hi = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(presence + b + 32));
    const uint32_t mlo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi8(lo, zero)));
    const uint32_t mhi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpgt_epi8(hi, zero)));
    const uint64_t word = (static_cast<uint64_t>(mhi) << 32) | mlo;
    if (word != 0) bm[b >> 6] |= word;
  }
  for (; b < space; ++b) {
    if (presence[b] != 0) bm[b >> 6] |= uint64_t{1} << (b & 63);
  }
}

void DenseFillA2Avx2(const uint32_t* c0, const uint32_t* c1, int s0,
                     int total_bits, int64_t n, uint64_t* bm) {
  if (UseBytePresence(total_bits, n)) {
    // Byte-table codes fit 32-bit lanes (total_bits <= 17), so the
    // encode runs 8 rows per vector and spills through a stack buffer
    // for the byte stores.
    alignas(32) uint8_t presence[int64_t{1} << kBytePresenceBits];
    const int64_t space = int64_t{1} << total_bits;
    std::memset(presence, 0, static_cast<size_t>(space));
    // Two spill buffers per iteration so the byte stores of one vector
    // overlap the next vector's store-forward instead of serializing.
    alignas(32) uint32_t buf[16];
    const __m128i sh0 = _mm_cvtsi32_si128(s0);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m256i a0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c0 + i));
      const __m256i a1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c1 + i));
      const __m256i b0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c0 + i + 8));
      const __m256i b1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c1 + i + 8));
      _mm256_store_si256(reinterpret_cast<__m256i*>(buf),
                         _mm256_or_si256(_mm256_sll_epi32(a0, sh0), a1));
      _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8),
                         _mm256_or_si256(_mm256_sll_epi32(b0, sh0), b1));
      for (int r = 0; r < 16; ++r) presence[buf[r]] = 1;
    }
    for (; i < n; ++i) {
      presence[(static_cast<uint64_t>(c0[i]) << s0) | c1[i]] = 1;
    }
    OrPresenceIntoBitmap(presence, space, bm);
    return;
  }
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ScatterBitmap4(
        _mm256_or_si256(ShiftLeft(Widen4(c0 + i), s0), Widen4(c1 + i)), bm);
  }
  for (; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

void DenseFillA3Avx2(const uint32_t* c0, const uint32_t* c1,
                     const uint32_t* c2, int s0, int s1, int total_bits,
                     int64_t n, uint64_t* bm) {
  if (UseBytePresence(total_bits, n)) {
    alignas(32) uint8_t presence[int64_t{1} << kBytePresenceBits];
    const int64_t space = int64_t{1} << total_bits;
    std::memset(presence, 0, static_cast<size_t>(space));
    // Two spill buffers per iteration so the byte stores of one vector
    // overlap the next vector's store-forward instead of serializing.
    alignas(32) uint32_t buf[16];
    const __m128i sh0 = _mm_cvtsi32_si128(s0);
    const __m128i sh1 = _mm_cvtsi32_si128(s1);
    int64_t i = 0;
    for (; i + 16 <= n; i += 16) {
      const __m256i a0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c0 + i));
      const __m256i a1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c1 + i));
      const __m256i a2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c2 + i));
      const __m256i b0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c0 + i + 8));
      const __m256i b1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c1 + i + 8));
      const __m256i b2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(c2 + i + 8));
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(buf),
          _mm256_or_si256(_mm256_or_si256(_mm256_sll_epi32(a0, sh0),
                                          _mm256_sll_epi32(a1, sh1)),
                          a2));
      _mm256_store_si256(
          reinterpret_cast<__m256i*>(buf + 8),
          _mm256_or_si256(_mm256_or_si256(_mm256_sll_epi32(b0, sh0),
                                          _mm256_sll_epi32(b1, sh1)),
                          b2));
      for (int r = 0; r < 16; ++r) presence[buf[r]] = 1;
    }
    for (; i < n; ++i) {
      presence[(static_cast<uint64_t>(c0[i]) << s0) |
               (static_cast<uint64_t>(c1[i]) << s1) | c2[i]] = 1;
    }
    OrPresenceIntoBitmap(presence, space, bm);
    return;
  }
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    ScatterBitmap4(
        _mm256_or_si256(_mm256_or_si256(ShiftLeft(Widen4(c0 + i), s0),
                                        ShiftLeft(Widen4(c1 + i), s1)),
                        Widen4(c2 + i)),
        bm);
  }
  for (; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) |
                          (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

constexpr SizingKernels kAvx2Kernels = {
    &EncodeA2Avx2,         &EncodeA2NullableAvx2, &EncodeA3Avx2,
    &EncodeA3NullableAvx2, &GatherAccumAvx2,      &DenseFillA2Avx2,
    &DenseFillA3Avx2,
};

}  // namespace

const SizingKernels* GetAvx2Kernels() { return &kAvx2Kernels; }

}  // namespace counting
}  // namespace pcbl

#else  // !(x86-64 with AVX2 enabled for this TU)

namespace pcbl {
namespace counting {

const SizingKernels* GetAvx2Kernels() { return nullptr; }

}  // namespace counting
}  // namespace pcbl

#endif
