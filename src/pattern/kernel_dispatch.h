// Runtime-dispatched SIMD sizing kernels.
//
// The packed sizing kernels (packed_kernels.cc) spend their cycles in a
// handful of tight per-row loops: the arity-2/3 shift/OR encoders and the
// generic per-column gather step. Those loops are data-parallel with no
// cross-row dependencies, so they vectorize cleanly — but only if the
// compiler may emit the wider ISA, and `-mavx2` on the whole binary would
// make it crash on older x86-64. This header solves both problems with a
// classic dispatch table:
//
//  * SizingKernels is a table of function pointers over raw column
//    slices. Each entry has identical, exactly-specified semantics (see
//    the per-field comments) — every implementation must produce
//    bit-identical output for every input, which the differential grid in
//    pattern_packed_kernels_test.cc enforces per available ISA.
//  * Implementations live in per-ISA translation units compiled with
//    per-file ISA flags (kernels_avx2.cc with -mavx2, kernels_neon.cc on
//    aarch64 where NEON is baseline), so the rest of the binary stays
//    portable. A TU whose ISA is not targeted compiles to nothing and
//    its Get*Kernels() accessor returns nullptr.
//  * The active table is resolved once at first use from a cpuid probe
//    (__builtin_cpu_supports on x86-64; NEON is mandatory on aarch64),
//    overridable by the PCBL_FORCE_KERNEL environment variable or the
//    CLI's --kernel flag (SetKernelIsaByName — the central validation
//    point). Forcing an ISA the host cannot run is an error, not a
//    crash.
//
// NULL semantics are exact: a slot is NULL iff its ValueId equals
// kNullValue (0xFFFFFFFF), tested with a full compare — the kernels make
// no dense-regime top-bit assumptions, so one table serves the bitmap,
// count-array, and hash paths alike.
#ifndef PCBL_PATTERN_KERNEL_DISPATCH_H_
#define PCBL_PATTERN_KERNEL_DISPATCH_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pcbl {
namespace counting {

/// The instruction sets a sizing-kernel table can be built for.
enum class KernelIsa {
  kScalar = 0,  ///< portable C++ (always available; the reference)
  kAvx2 = 1,    ///< x86-64 AVX2, compiled in per-file with -mavx2
  kNeon = 2,    ///< aarch64 Advanced SIMD (baseline on arm64)
};

/// "scalar", "avx2", "neon".
const char* KernelIsaName(KernelIsa isa);

/// The vectorizable inner loops of the packed sizing kernels, as function
/// pointers over raw column slices. All row counts are in rows (not
/// bytes); all implementations must tolerate n == 0 and unaligned
/// pointers.
struct SizingKernels {
  /// NULL-free arity-2 encode: out[i] = (uint64(c0[i]) << s0) | c1[i].
  void (*encode_a2)(const uint32_t* c0, const uint32_t* c1, int s0,
                    int64_t n, uint64_t* out);

  /// NULL-aware arity-2 encode: rows where either slot is kNullValue have
  /// arity < 2 and route to `sentinel`; others encode as encode_a2.
  void (*encode_a2_nullable)(const uint32_t* c0, const uint32_t* c1,
                             int s0, uint64_t sentinel, int64_t n,
                             uint64_t* out);

  /// NULL-free arity-3 encode:
  /// out[i] = (uint64(c0[i]) << s0) | (uint64(c1[i]) << s1) | c2[i].
  void (*encode_a3)(const uint32_t* c0, const uint32_t* c1,
                    const uint32_t* c2, int s0, int s1, int64_t n,
                    uint64_t* out);

  /// NULL-aware arity-3 encode: each NULL slot contributes its layout
  /// null slot (n0/n1/n2); rows with more than one NULL have arity < 2
  /// and route to `sentinel`.
  void (*encode_a3_nullable)(const uint32_t* c0, const uint32_t* c1,
                             const uint32_t* c2, int s0, int s1,
                             uint64_t n0, uint64_t n1, uint64_t n2,
                             uint64_t sentinel, int64_t n, uint64_t* out);

  /// One column's contribution to a generic-width gather tile:
  /// codes[i] |= (col[i] != kNullValue ? col[i] : null_slot) << shift;
  /// arity[i] += (col[i] != kNullValue).
  void (*gather_accum)(const uint32_t* col, int shift, uint64_t null_slot,
                       int64_t n, uint64_t* codes, uint8_t* arity);

  /// Fused NULL-free arity-2 dense fill: ORs bit code(i) into `bm` for
  /// every row, where code(i) = (uint64(c0[i]) << s0) | c1[i] and all
  /// codes are < (1 << total_bits). `bm` holds at least
  /// (1 << total_bits) + 1 bits and may already have bits set.
  /// Fusing matters: the encode alone is a quarter of the fill's cost,
  /// so a vector encode only pays off when the same kernel also owns the
  /// probe — implementations may use any internal presence
  /// representation (e.g. an L1-resident byte table whose plain byte
  /// stores replace the bitmap's load-OR-store chain) as long as the
  /// resulting bitmap is exact.
  void (*dense_fill_a2)(const uint32_t* c0, const uint32_t* c1, int s0,
                        int total_bits, int64_t n, uint64_t* bm);

  /// Arity-3 counterpart:
  /// code(i) = (c0[i] << s0) | (c1[i] << s1) | c2[i].
  void (*dense_fill_a3)(const uint32_t* c0, const uint32_t* c1,
                        const uint32_t* c2, int s0, int s1, int total_bits,
                        int64_t n, uint64_t* bm);
};

/// The portable reference table (always available).
const SizingKernels& ScalarKernels();

/// The AVX2 table, or nullptr when the binary was built without the AVX2
/// translation unit (non-x86-64 targets).
const SizingKernels* GetAvx2Kernels();

/// The NEON table, or nullptr when the binary was built without the NEON
/// translation unit (non-aarch64 targets).
const SizingKernels* GetNeonKernels();

/// True when `isa` is both compiled into this binary and runnable on this
/// host (cpuid probe on x86-64).
bool KernelIsaAvailable(KernelIsa isa);

/// The best available ISA for this host: avx2 > neon > scalar.
KernelIsa BestKernelIsa();

/// The ISA of the table ActiveKernels() currently returns. Resolved on
/// first use: PCBL_FORCE_KERNEL (scalar|avx2|neon|auto) when set and
/// available, BestKernelIsa() otherwise.
KernelIsa ActiveKernelIsa();

/// True when the active ISA was forced (PCBL_FORCE_KERNEL or a
/// SetKernelIsa* call) rather than auto-detected.
bool KernelIsaForced();

/// The active kernel table. Cheap (one relaxed atomic load) — but hoist
/// out of per-row loops anyway.
const SizingKernels& ActiveKernels();

/// Forces the active table to `isa`. Fails with InvalidArgument when the
/// ISA is not available on this host; the active table is unchanged on
/// error. Process-global; not meant to be raced against in-flight scans
/// (tests and CLI startup call it, the hot path only reads).
Status SetKernelIsa(KernelIsa isa);

/// Central validation for the CLI's --kernel flag and PCBL_FORCE_KERNEL:
/// parses scalar|avx2|neon|auto (case-insensitive), then applies it
/// ("auto" re-resolves to BestKernelIsa() and clears the forced bit).
/// Unknown names and unavailable ISAs fail with InvalidArgument.
Status SetKernelIsaByName(const std::string& name);

/// One-line human description for CLI stats output, e.g.
/// "avx2 (auto-detected; available: scalar,avx2)".
std::string KernelDispatchDescription();

}  // namespace counting
}  // namespace pcbl

#endif  // PCBL_PATTERN_KERNEL_DISPATCH_H_
