#include "pattern/service_registry.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "persist/spill_store.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pcbl {

namespace {

// Two independently seeded accumulator lanes over the same byte stream
// give the fingerprint its 128 bits; a single 64-bit lane would make
// birthday collisions across a long-lived process merely improbable
// instead of unrealistic.
struct Lanes {
  uint64_t lo = 0x243f6a8885a308d3ULL;  // pi digits
  uint64_t hi = 0x13198a2e03707344ULL;

  void Mix(uint64_t v) {
    lo = HashCombine(lo, v);
    hi = HashCombine(hi, v ^ 0xa4093822299f31d0ULL);
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
};

}  // namespace

TableFingerprint FingerprintTable(const Table& table) {
  Lanes lanes;
  const int n = table.num_attributes();
  lanes.Mix(static_cast<uint64_t>(n));
  lanes.Mix(static_cast<uint64_t>(table.num_rows()));
  for (int a = 0; a < n; ++a) {
    lanes.MixString(table.schema().name(a));
    const Dictionary& dict = table.dictionary(a);
    lanes.Mix(static_cast<uint64_t>(dict.size()));
    for (const std::string& value : dict.values()) {
      lanes.MixString(value);
    }
  }
  // Column data: hash each column's raw code buffer in 64-bit strides
  // (NULL cells are the kNullValue code, so NULL positions are covered).
  for (int a = 0; a < n; ++a) {
    const std::vector<ValueId>& col = table.column(a);
    uint64_t acc = 0x452821e638d01377ULL ^ static_cast<uint64_t>(a);
    size_t i = 0;
    for (; i + 1 < col.size(); i += 2) {
      acc = HashCombine(acc, (static_cast<uint64_t>(col[i]) << 32) |
                                 static_cast<uint64_t>(col[i + 1]));
    }
    if (i < col.size()) {
      acc = HashCombine(acc, static_cast<uint64_t>(col[i]));
    }
    lanes.Mix(acc);
  }
  return TableFingerprint{lanes.lo, lanes.hi};
}

namespace {

// Approximate footprint of one registry-owned table copy: column codes
// plus dictionary strings and their index nodes. The accountant charges
// this alongside the engine's cache bytes so distinct-content acquires
// cannot grow process memory past the budget with empty caches.
int64_t ApproxTableBytes(const Table& table) {
  const int n = table.num_attributes();
  int64_t bytes = 64;
  bytes += static_cast<int64_t>(n) * table.num_rows() *
           static_cast<int64_t>(sizeof(ValueId));
  for (int a = 0; a < n; ++a) {
    const Dictionary& dict = table.dictionary(a);
    bytes += static_cast<int64_t>(dict.size()) * 48;  // string + index
    for (const std::string& value : dict.values()) {
      bytes += static_cast<int64_t>(value.size());
    }
  }
  return bytes;
}

}  // namespace

ServiceRegistry& ServiceRegistry::Global() {
  static ServiceRegistry* registry = new ServiceRegistry();
  return *registry;
}

std::shared_ptr<CountingService> ServiceRegistry::Acquire(
    const Table& table, const CountingEngineOptions& options) {
  const TableFingerprint fingerprint = FingerprintTable(table);
  std::lock_guard<std::mutex> lock(mu_);
  return AcquireLocked(
      fingerprint,
      [&table] { return std::make_shared<const Table>(table); }, options);
}

std::shared_ptr<CountingService> ServiceRegistry::Acquire(
    std::shared_ptr<const Table> table,
    const CountingEngineOptions& options) {
  PCBL_CHECK(table != nullptr);
  const TableFingerprint fingerprint = FingerprintTable(*table);
  std::lock_guard<std::mutex> lock(mu_);
  return AcquireLocked(
      fingerprint, [&table] { return std::move(table); }, options);
}

std::shared_ptr<CountingService> ServiceRegistry::AcquireLocked(
    const TableFingerprint& fingerprint,
    const std::function<std::shared_ptr<const Table>()>& own_table,
    const CountingEngineOptions& options) {
  ++stats_.acquires;
  auto it = services_.find(fingerprint);
  if (it == services_.end()) {
    Entry entry;
    entry.table = own_table();
    entry.table_bytes = ApproxTableBytes(*entry.table);
    // The service owns the table handle: it stays valid for any holder
    // even after the entry is evicted or the registry cleared.
    entry.service =
        std::make_shared<CountingService>(entry.table, options);
    it = services_.emplace(fingerprint, std::move(entry)).first;
    ++stats_.misses;
    RestoreFromSpillLocked(fingerprint, it->second);
  } else if (it->second.service->has_absorbed_appends()) {
    // The cached service absorbed appends (an incremental session grew
    // it) and no longer describes this fingerprint's content. Retire it
    // — existing holders keep the grown service alive — and rebuild a
    // fresh one from the entry's base-content table.
    it->second.service =
        std::make_shared<CountingService>(it->second.table, options);
    ++stats_.misses;
    RestoreFromSpillLocked(fingerprint, it->second);
  } else {
    ++stats_.hits;
  }
  it->second.last_acquired = ++clock_;
  std::shared_ptr<CountingService> service = it->second.service;
  TrimLocked();
  return service;
}

void ServiceRegistry::RestoreFromSpillLocked(
    const TableFingerprint& fingerprint, const Entry& entry) {
  if (spill_ == nullptr) return;
  // Only a base-content record may warm an acquire: a record carrying
  // appended rows describes *grown* content, and restoring it here
  // would hand base-content callers counts over data they never
  // acquired. (Diverged round-trips still work — through
  // CountingService::RestoreWarmState directly, for a consumer that
  // wants the grown state back.)
  std::optional<ServiceWarmState> state =
      spill_->GetWarmState(fingerprint, *entry.table, /*base_only=*/true);
  if (state.has_value()) entry.service->RestoreWarmState(*state);
}

bool ServiceRegistry::SpillEntryLocked(const TableFingerprint& fingerprint,
                                       const Entry& entry) {
  if (spill_ == nullptr) return false;
  // A diverged service's PC sets describe base + appended rows; keyed
  // under the base fingerprint they would only ever be rejected by the
  // base-only acquire path, so skip the write.
  if (entry.service->has_absorbed_appends()) return false;
  const ServiceWarmState state = entry.service->ExportWarmState();
  if (state.empty()) return false;
  return spill_->PutWarmState(fingerprint, *entry.table, state);
}

void ServiceRegistry::SetSpillDirectory(const std::string& directory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (directory.empty()) {
    spill_ = nullptr;
    return;
  }
  if (spill_ != nullptr && spill_->directory() == directory) return;
  persist::SpillStoreOptions options;
  options.directory = directory;
  spill_ = std::make_shared<persist::SpillStore>(std::move(options));
}

std::shared_ptr<persist::SpillStore> ServiceRegistry::spill_store() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_;
}

int64_t ServiceRegistry::SpillResident() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spill_ == nullptr) return 0;
  int64_t spilled = 0;
  for (const auto& [fingerprint, entry] : services_) {
    if (SpillEntryLocked(fingerprint, entry)) ++spilled;
  }
  return spilled;
}

void ServiceRegistry::SetMemoryBudget(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.memory_budget_bytes = bytes;
  TrimLocked();
}

void ServiceRegistry::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  TrimLocked();
}

int64_t ServiceRegistry::ResidentBytesLocked() const {
  int64_t resident = 0;
  for (const auto& [fp, entry] : services_) {
    resident += entry.table_bytes + entry.service->resident_bytes();
  }
  return resident;
}

void ServiceRegistry::TrimLocked() {
  if (options_.memory_budget_bytes <= 0) return;
  auto entry_bytes = [](const Entry& entry) {
    return entry.table_bytes + entry.service->resident_bytes();
  };
  int64_t resident = ResidentBytesLocked();
  if (resident <= options_.memory_budget_bytes) return;
  // Cold entries (no outside holder), least recently acquired first.
  std::vector<const TableFingerprint*> cold;
  for (const auto& [fp, entry] : services_) {
    if (entry.service.use_count() == 1) cold.push_back(&fp);
  }
  std::sort(cold.begin(), cold.end(),
            [&](const TableFingerprint* a, const TableFingerprint* b) {
              return services_.at(*a).last_acquired <
                     services_.at(*b).last_acquired;
            });
  for (const TableFingerprint* fp : cold) {
    if (resident <= options_.memory_budget_bytes) break;
    auto it = services_.find(*fp);
    // A cold entry (no outside holder) has no admitted queries or
    // in-flight waves by construction; the probe is belt-and-braces
    // against future acquire paths that might hand out references
    // without bumping use_count.
    if (it->second.service->in_flight() > 0) continue;
    // An eviction is exactly the "expensive state about to be lost"
    // moment: spill it first so the next acquire of this content —
    // this process or the next — starts warm instead of rescanning.
    SpillEntryLocked(*fp, it->second);
    it->second.service->MarkEvicted();
    resident -= entry_bytes(it->second);
    services_.erase(it);
    ++stats_.evictions;
  }
}

void ServiceRegistry::Clear() {
  // Detach the entries under the lock, then drain outside it: a query
  // refused on an evicted service reports back to the registry
  // (NoteEvictedRejection), and quiescing with mu_ held would also stall
  // every concurrent Acquire behind the slowest in-flight search.
  std::unordered_map<TableFingerprint, Entry, FingerprintHash> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    dropped.swap(services_);
  }
  for (auto& [fp, entry] : dropped) {
    // Mark first so api::Session stops admitting new queries, then wait
    // out whatever is still running — eviction never races a live wave.
    entry.service->MarkEvicted();
    entry.service->Quiesce();
  }
}

int64_t ServiceRegistry::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ResidentBytesLocked();
}

ServiceRegistryStats ServiceRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceRegistryStats stats = stats_;
  stats.services = static_cast<int64_t>(services_.size());
  stats.resident_bytes = ResidentBytesLocked();
  stats.evicted_rejections =
      evicted_rejections_.load(std::memory_order_relaxed);
  for (const auto& [fp, entry] : services_) {
    // results_mu_ is a leaf lock, safe to take under mu_.
    AccumulateServiceStats(*entry.service, &stats);
  }
  if (spill_ != nullptr) {
    const persist::SpillStoreStats spill = spill_->stats();
    stats.spill_hits = spill.hits;
    stats.spill_misses = spill.misses;
    stats.spill_rejects = spill.rejects;
    stats.spills = spill.spills;
    stats.spilled_bytes = spill.spilled_bytes;
  }
  return stats;
}

void AccumulateServiceStats(const CountingService& service,
                            ServiceRegistryStats* stats) {
  const ResultTierStats tier = service.result_tier_stats();
  stats->result_hits += tier.hits;
  stats->result_misses += tier.misses;
  stats->result_inflight_joins += tier.inflight_joins;
  stats->result_entries += tier.entries;
  stats->result_bytes += tier.bytes;
  const AppendBatchStats appends = service.append_stats();
  stats->append_batches += appends.batches;
  stats->append_requests += appends.requests;
  stats->interned_values += appends.interned_values;
}

}  // namespace pcbl
