// CountingService: one CountingEngine per dataset, shared by every
// consumer of that dataset's counts.
//
// PR 1's engine was constructed per LabelSearch call, so a second search
// over the same table — a bound sweep, a multi-label partition, a CLI
// re-run — rebuilt the PC-set cache from scratch. The service hoists the
// engine to dataset/session scope: LabelSearch::Naive/TopDown, the
// theory-reduction sweep, and the CLI all size candidates through the
// same engine, so repeated queries hit warm PC sets (a warm second
// search performs zero full-table scans for the candidates the first one
// sized — asserted in pattern_counting_service_test.cc).
//
// The service also owns the append story for growing datasets
// (invalidate-or-patch): AppendRow patches every cached PC set with the
// new row's restrictions (cheap for the paper's occasional-append
// regime), while AppendRows invalidates first when the batch is large
// enough that per-entry patching would cost more than the rescans it
// saves. Both arms stay exact — the engine tracks appended rows in a
// delta block that every subsequent scan includes, and folds the block
// into columnar base storage once it crosses the compaction threshold
// (see CountingEngine::CompactDeltas).
//
// Services are usually obtained from the process-wide ServiceRegistry
// (service_registry.h), which shares one warm service per table
// *content* across sessions and enforces a process memory budget over
// all services' caches.
//
// Thread-safety: the engine's mutating calls must be serialized; mutex()
// is the lock consumers hold for the duration of a search (const cache
// probes from a search's internal ParallelFor are safe under the
// caller's own lock, per the engine's contract).
#ifndef PCBL_PATTERN_COUNTING_SERVICE_H_
#define PCBL_PATTERN_COUNTING_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "pattern/counting_engine.h"
#include "relation/table.h"

namespace pcbl {

class CountingService {
 public:
  explicit CountingService(const Table& table,
                           CountingEngineOptions options = {})
      : engine_(table, options) {}

  /// Owning variant: the service keeps `table` alive for its own
  /// lifetime — the form the process-wide ServiceRegistry uses, so a
  /// service handed to a consumer never outlives the data it scans.
  explicit CountingService(std::shared_ptr<const Table> table,
                           CountingEngineOptions options = {})
      : owned_table_(std::move(table)), engine_(*owned_table_, options) {}

  CountingService(const CountingService&) = delete;
  CountingService& operator=(const CountingService&) = delete;

  /// The shared engine. Hold mutex() around mutating calls when the
  /// service is reachable from more than one thread.
  CountingEngine& engine() { return engine_; }
  const CountingEngine& engine() const { return engine_; }

  std::mutex& mutex() const { return mu_; }

  /// Applies per-search knobs (threads, enabled, cache budget) without
  /// discarding warm entries; shrinking the budget evicts down to it.
  void Configure(const CountingEngineOptions& options) {
    engine_.Reconfigure(options);
  }

  /// Patch arm of the append hook: the row's restriction is folded into
  /// every cached PC set and the row joins the engine's delta block.
  /// `codes` is one row over the full schema (kNullValue = missing; fresh
  /// values use ids extending the base code space in first-seen order,
  /// exactly as TableBuilder would assign them).
  void AppendRow(const std::vector<ValueId>& codes);

  /// Appends a batch, choosing the arm by cost: small batches patch the
  /// cache (one pass over the cached entries), large ones invalidate it
  /// first — rebuilding from scans is then cheaper than per-entry
  /// patching, and both arms are exact.
  void AppendRows(const std::vector<std::vector<ValueId>>& rows);

  /// The append hooks for callers that already hold mutex() — e.g. an
  /// api::Session, whose append must mutate the engine *and* its own
  /// VC / P_A maintenance state under one critical section so a
  /// concurrent search never observes half an append. Same
  /// invalidate-or-patch semantics as the self-locking forms.
  void AppendRowLocked(const std::vector<ValueId>& codes) {
    engine_.ApplyAppend({codes});
  }
  void AppendRowsLocked(const std::vector<std::vector<ValueId>>& rows);

  /// Drops every cached entry; appended rows (data) survive. Self-locks
  /// like the append hooks (Configure, by contrast, runs under the
  /// caller's search lock).
  void Invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    engine_.InvalidateCache();
  }

  const Table& table() const { return engine_.table(); }
  int64_t total_rows() const { return engine_.total_rows(); }
  const CountingEngineStats& stats() const { return engine_.stats(); }

  /// Resident bytes of this service's engine: cache entries plus any
  /// appended data (delta block / compacted base copy). Lock-free — the
  /// process-wide ServiceRegistry's memory accountant polls this while
  /// other threads may hold mutex() and mutate the engine.
  int64_t resident_bytes() const {
    return engine_.ResidentBytes() + engine_.AppendedBytesRelaxed();
  }

  /// True once appends flowed through this service: it then describes
  /// more data than the table it was built on. Lock-free, for the
  /// registry's divergence check on the acquire path.
  bool has_absorbed_appends() const {
    return engine_.AppendedRowsRelaxed() > 0;
  }

 private:
  // Declared before engine_: the engine scans this table when the
  // owning constructor was used (destruction runs in reverse order).
  std::shared_ptr<const Table> owned_table_;
  mutable std::mutex mu_;
  CountingEngine engine_;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTING_SERVICE_H_
