// CountingService: one CountingEngine per dataset, shared by every
// consumer of that dataset's counts — plus the wave scheduler that lets
// concurrent consumers share not just the warm cache but the *in-flight*
// sizing work.
//
// PR 1's engine was constructed per LabelSearch call, so a second search
// over the same table — a bound sweep, a multi-label partition, a CLI
// re-run — rebuilt the PC-set cache from scratch. The service hoists the
// engine to dataset/session scope: LabelSearch, the theory-reduction
// sweep, and the CLI all size candidates through the same engine, so
// repeated queries hit warm PC sets (a warm second search performs zero
// full-table scans for the candidates the first one sized — asserted in
// pattern_counting_service_test.cc).
//
// Concurrency (PR 5 — the full model lives in docs/CONCURRENCY.md):
//
//  * The wave scheduler. Before PR 5, concurrent searches serialized
//    *whole searches* on mutex(). Now a search enters the service
//    through the admission gate in shared mode (QueryAdmission) and
//    submits its per-wave sizing batches to WaveCountPatterns /
//    WavePatternCounts. A coordinator — the first waiting thread, no
//    dedicated thread exists — drains the shared wave queue, merges all
//    waiting requests into single CountPatternsBatchCollect /
//    PatternCountsBatch engine calls (masks deduped, budgets folded to
//    the most generous), and routes each mask's size and materialized
//    PC-set handle back to every requester: the per-waiter memo view a
//    search ranks from without ever re-probing the shared cache. N
//    concurrent identical searches therefore perform ~one set of scans
//    — even with memoization off, where the cache cannot help — and
//    their ranking phases overlap instead of queueing
//    (bench_micro_wave_scheduler). Results are byte-identical to the
//    serialized path: every engine answer is exact regardless of cache
//    state, and a request folded into a larger budget still satisfies
//    the early-exit contract ("any value > budget" may simply be the
//    exact one). The admission window (set_wave_admission_window) gives
//    near-simultaneous waves a brief chance to land in one batch; it is
//    skipped entirely when no other query is admitted, so solo searches
//    pay zero added latency.
//
//  * The admission gate. Queries are admitted shared; appenders
//    (AppendAdmission, which also takes mutex()) are exclusive. That
//    pins the engine's *data* (row count, delta block, effective
//    domains) for a query's whole lifetime — a search validated against
//    its VC / P_A snapshot can never observe half an append — while
//    engine *cache* mutations (the coordinator's merged waves, under
//    mutex()) proceed freely: they are physical, not semantic.
//
//  * The serialized path survives. mutex() still serializes whole
//    searches for legacy consumers (theory sweeps, IncrementalLabel,
//    SearchOptions::use_wave_scheduler = false — the differential
//    harness' reference arm): the coordinator takes mutex() per merged
//    wave, so both disciplines interleave safely. Lock order is always
//    gate -> mutex(); nothing acquires the gate while holding mutex().
//
//  * Registry eviction drains. MarkEvicted flips queries to a retryable
//    refusal (api::Session surfaces kUnavailable), Quiesce waits for
//    in-flight admissions and waves — ServiceRegistry::Clear runs both
//    before dropping an entry, so eviction never races a live wave.
//
// The service also owns the append story for growing datasets
// (invalidate-or-patch): AppendRow patches every cached PC set with the
// new row's restrictions (cheap for the paper's occasional-append
// regime), while AppendRows invalidates first when the batch is large
// enough that per-entry patching would cost more than the rescans it
// saves. Both arms stay exact — the engine tracks appended rows in a
// delta block that every subsequent scan includes, and folds the block
// into columnar base storage once it crosses the compaction threshold
// (see CountingEngine::CompactDeltas). The self-locking append hooks
// acquire the gate exclusively, so they also exclude wave-scheduled
// queries.
//
//  * Multi-appender group commit (PR 8). String-level appends
//    (AppendStrings / AppendTable — what api::Session routes through)
//    intern values centrally in the service's SharedInterner, so *any*
//    number of sessions may append concurrently and every sibling
//    resolves the appended strings on its next admission. Concurrent
//    appends group-commit: requests queue behind a leader (elected
//    exactly like the wave coordinator), the leader's wait for the
//    exclusive AppendAdmission is the merge window in which later
//    arrivals join its batch, and the whole batch commits in one
//    critical section — one result-cache invalidation, one engine hook,
//    one interner publication. Each request stays transactional inside
//    the batch: encoding runs against a staged interning transaction
//    with per-request savepoints, so a failed request (schema mismatch,
//    injected fault) rolls back exactly its staged values and rows and
//    the surviving requests commit with the codes a rebuild that never
//    saw the failed rows would assign. Reads are snapshot-isolated by
//    the gate: a query admitted at row count R runs entirely against R
//    rows even while a commit is waiting — the commit cannot enter
//    until the query leaves.
//
// Services are usually obtained from the process-wide ServiceRegistry
// (service_registry.h), which shares one warm service per table
// *content* across sessions and enforces a process memory budget over
// all services' caches.
#ifndef PCBL_PATTERN_COUNTING_SERVICE_H_
#define PCBL_PATTERN_COUNTING_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pattern/counting_engine.h"
#include "pattern/interning.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Observability counters of the wave scheduler (not part of the
/// exactness contract).
struct WaveSchedulerStats {
  int64_t waves = 0;           ///< merged engine batches executed
  int64_t merged_waves = 0;    ///< waves that covered > 1 request
  int64_t requests = 0;        ///< wave requests admitted
  int64_t request_masks = 0;   ///< masks summed over all requests
  int64_t executed_masks = 0;  ///< deduped masks the engine actually ran
                               ///< (request_masks - executed_masks =
                               ///<  scans saved by in-flight merging)
};

/// Observability counters of the group-commit append path. `pending` is
/// the current queue depth; everything else is monotonic. Not part of
/// the exactness contract.
struct AppendBatchStats {
  int64_t batches = 0;          ///< group commits executed
  int64_t merged_batches = 0;   ///< commits that carried > 1 request
  int64_t requests = 0;         ///< string-level append requests
  int64_t request_rows = 0;     ///< rows summed over all requests
  int64_t committed_rows = 0;   ///< rows actually appended
  int64_t failed_requests = 0;  ///< requests refused transactionally
  int64_t pending = 0;          ///< queued-but-uncommitted requests now
  int64_t interned_values = 0;  ///< dictionary-delta log length
};

/// Key of one whole-query result in the service's result tier: the
/// table's 128-bit content fingerprint mixed with the canonicalized
/// result-affecting fields of the query spec (api::CanonicalQueryKey).
/// Deterministic across processes — no pointers, no iteration order.
struct QueryResultKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const QueryResultKey& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const QueryResultKey& other) const {
    return !(*this == other);
  }
};

/// Observability counters of the result tier. `entries` / `bytes` are
/// the completed-result cache's current occupancy; everything else is
/// monotonic. Not part of the exactness contract.
struct ResultTierStats {
  int64_t hits = 0;            ///< completed-result cache hits
  int64_t misses = 0;          ///< lookups that became leaders (executed)
  int64_t inflight_joins = 0;  ///< queries parked on a leader's future
  int64_t bypasses = 0;        ///< in-flight key, caller could not park
                               ///< (serialized discipline; executed solo)
  int64_t insertions = 0;      ///< results published into the cache
  int64_t evictions = 0;       ///< entries dropped by the byte budget
  int64_t invalidations = 0;   ///< whole-cache clears (append, eviction)
  int64_t entries = 0;         ///< cached results right now
  int64_t bytes = 0;           ///< cached bytes right now
};

/// A cached whole-query result, type-erased: pattern/ cannot depend on
/// api/, so api::Session stores a shared_ptr<const api::QueryResult>
/// here and casts it back on the way out.
using QueryResultHandle = std::shared_ptr<const void>;

/// Outcome of CountingService::ResultLookupOrBegin — exactly one of the
/// three shapes, checked in this order by the caller:
///   hit    — `value` holds the cached result; done.
///   leader — this caller owns the key: execute, then ResultPublish
///            (or ResultAbort if the execution threw).
///   join   — `join.valid()`: park on it; get() returns the leader's
///            result (or rethrows its abort exception).
/// All three false/invalid: the key is in flight but the caller may not
/// park (may_join was false) — execute solo, publish nothing.
struct ResultProbe {
  bool hit = false;
  QueryResultHandle value;
  bool leader = false;
  std::shared_future<QueryResultHandle> join;
};

/// Everything a CountingService accumulates beyond its immutable base
/// table — the state worth carrying across a process restart. The spill
/// store (src/persist/) serializes this; ExportWarmState produces it and
/// RestoreWarmState replays it onto a freshly built service over a
/// content-identical base table, after which searches, true counts, and
/// profiles answer byte-identically to the service that exported it.
struct ServiceWarmState {
  /// Per-attribute interner delta logs: interner_deltas[a] holds the
  /// values appended beyond attribute a's base dictionary, in committed
  /// code order (code = base domain size + position).
  std::vector<std::vector<std::string>> interner_deltas;

  /// Appended rows, row-major with one ValueId per attribute in schema
  /// order (num_attributes stride), in append order. Codes beyond the
  /// base domain refer into interner_deltas.
  std::vector<ValueId> appended_rows;

  /// The engine's memoized PC sets, in CountingEngine::ExportCacheSnapshot
  /// order (FIFO first, pinned after). Entries reflect base + appended
  /// rows — they were patched at append time, so restore applies the
  /// rows first and imports the entries as-is.
  std::vector<CountingEngine::CacheSnapshotEntry> entries;

  bool empty() const {
    if (!appended_rows.empty() || !entries.empty()) return false;
    for (const std::vector<std::string>& log : interner_deltas) {
      if (!log.empty()) return false;
    }
    return true;
  }
};

class CountingService {
 public:
  /// Default byte budget of the completed-result cache.
  static constexpr int64_t kDefaultResultCacheBudget = int64_t{64} << 20;

  explicit CountingService(const Table& table,
                           CountingEngineOptions options = {})
      : engine_(table, options), interner_(table) {}

  /// Owning variant: the service keeps `table` alive for its own
  /// lifetime — the form the process-wide ServiceRegistry uses, so a
  /// service handed to a consumer never outlives the data it scans.
  explicit CountingService(std::shared_ptr<const Table> table,
                           CountingEngineOptions options = {})
      : owned_table_(std::move(table)),
        engine_(*owned_table_, options),
        interner_(*owned_table_) {}

  CountingService(const CountingService&) = delete;
  CountingService& operator=(const CountingService&) = delete;

  /// The shared engine. Hold mutex() around mutating calls when the
  /// service is reachable from more than one thread.
  CountingEngine& engine() { return engine_; }
  const CountingEngine& engine() const { return engine_; }

  std::mutex& mutex() const { return mu_; }

  /// Applies per-search knobs (threads, enabled, cache budget) without
  /// discarding warm entries; shrinking the budget evicts down to it.
  void Configure(const CountingEngineOptions& options) {
    engine_.Reconfigure(options);
  }

  // --- admission gate ----------------------------------------------------

  /// Admits a query in shared mode for the guard's lifetime: any number
  /// of queries run concurrently, appenders are excluded, so the
  /// engine's *data* cannot change under the query. Do not nest (the
  /// gate is writer-preferring; re-entry can deadlock behind a waiting
  /// appender) and do not acquire while holding mutex().
  class QueryAdmission {
   public:
    explicit QueryAdmission(CountingService& service) : service_(service) {
      service_.BeginQuery();
    }
    ~QueryAdmission() { service_.EndQuery(); }
    QueryAdmission(const QueryAdmission&) = delete;
    QueryAdmission& operator=(const QueryAdmission&) = delete;

   private:
    CountingService& service_;
  };

  /// Admits an appender exclusively *and* locks mutex(): no query is in
  /// flight, no wave is executing, and legacy mutex() consumers are
  /// excluded — the one critical section in which engine data (and an
  /// api::Session's VC / P_A maintenance state) may grow.
  class AppendAdmission {
   public:
    explicit AppendAdmission(CountingService& service) : service_(service) {
      service_.BeginAppend();
      lock_ = std::unique_lock<std::mutex>(service_.mu_);
    }
    ~AppendAdmission() {
      lock_.unlock();
      service_.EndAppend();
    }
    AppendAdmission(const AppendAdmission&) = delete;
    AppendAdmission& operator=(const AppendAdmission&) = delete;

   private:
    CountingService& service_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Queries currently admitted (shared holders of the gate).
  int64_t active_queries() const {
    return active_queries_relaxed_.load(std::memory_order_relaxed);
  }

  /// Admitted queries plus queued-but-unserved wave requests — the
  /// registry's "is anything running here" probe.
  int64_t in_flight() const;

  /// Blocks until nothing is in flight: no admitted query, no appender,
  /// no queued or executing wave. The registry quiesces an evicted
  /// service before dropping its entry, so eviction never races a live
  /// wave. Callers must not hold mutex() or the gate.
  void Quiesce();

  /// Marks the service as evicted from the process-wide registry. The
  /// service stays fully functional for existing holders (exactness is
  /// untouched), but api::Session refuses new queries on it with a
  /// retryable kUnavailable so callers re-acquire a shared, findable
  /// service instead of silently computing on a detached one. Sessions
  /// check once before admission (cheap fast path) and once after: the
  /// registry marks before it quiesces, and the gate/mutex acquisition
  /// orders the mark ahead of any admission Quiesce could have missed,
  /// so a query either drains under Quiesce or observes the mark. Also
  /// clears the result cache: a detached service answers no future
  /// queries, so holding its cached results would waste the bytes.
  void MarkEvicted();
  bool evicted() const { return evicted_.load(); }

  // --- result tier -------------------------------------------------------
  //
  // A two-level cache of whole-query results in front of the engine,
  // keyed by (content fingerprint, canonical spec) — see DESIGN.md §5.7.
  // Level 1 (in-flight table): the first arrival for a key becomes the
  // *leader* and executes; identical concurrent queries park on a shared
  // future and receive the leader's result. Level 2 (completed cache): a
  // bounded LRU of published results, so identical repeats are O(1).
  // All calls run under a query admission (gate-shared or mutex()), so
  // `rows` — the engine's total_rows() at lookup — is pinned for the
  // leader's whole execution and tags each entry against staleness;
  // belt-and-braces, since every append arm clears the cache eagerly
  // while holding the gate exclusively (no query, hence no lookup or
  // publish, is concurrent with an append). results_mu_ is a leaf lock:
  // nothing is acquired under it, so it may be taken while holding
  // mutex() (the serialized discipline) or the gate (the scheduled one).

  /// Probes both levels for `key` and registers this caller as leader on
  /// a miss. `may_join` must be false for callers holding mutex(): the
  /// leader's waves need mutex(), so parking such a caller on the
  /// leader's future would deadlock — they get the execute-solo shape
  /// instead. `budget_bytes` >= 0 re-budgets the completed cache
  /// (last writer wins, evicting down immediately); -1 leaves it alone.
  ResultProbe ResultLookupOrBegin(const QueryResultKey& key, int64_t rows,
                                  bool may_join, int64_t budget_bytes = -1);

  /// Resolves the leader's key: wakes every parked joiner with `value`
  /// and, when `cache` is set (callers pass status-ok only — a
  /// deterministic error is still routed to joiners but not retained),
  /// inserts it into the completed cache at `bytes`, evicting LRU
  /// entries over budget.
  void ResultPublish(const QueryResultKey& key, QueryResultHandle value,
                     int64_t bytes, bool cache);

  /// Resolves the leader's key with an exception: parked joiners rethrow
  /// `error` from their future, exactly as executing the query
  /// themselves would have thrown. Nothing is cached.
  void ResultAbort(const QueryResultKey& key, std::exception_ptr error);

  /// Drops every completed result (the in-flight table is untouched —
  /// it is provably empty when the append arms call this, and a live
  /// leader resolves its joiners regardless). Called by every append arm
  /// and by MarkEvicted.
  void InvalidateResults();

  ResultTierStats result_tier_stats() const;

  // --- wave scheduler ----------------------------------------------------

  /// Submits one sizing wave (the per-level / per-frontier batch of a
  /// search) to the scheduler and blocks until a coordinator has
  /// executed it, merged with whatever other requests were in flight.
  /// Element i of the result is CountPatterns(masks[i], budget) — with
  /// the early-exit caveat that an over-budget value may be the exact
  /// size when a merged sibling asked with a larger budget (still
  /// "> budget", so consumers' within-bound tests are unaffected).
  /// When `counts_out` is non-null it receives each mask's materialized
  /// PC-set handle (non-null whenever sizes[i] <= budget and the merged
  /// wave ran with the engine enabled): the caller's memo view for its
  /// ranking phase. `config` carries the query's engine knobs; a merged
  /// wave runs under the most capable fold of its requests' configs
  /// (enabled if any asks, max threads, max cache budget) — every
  /// answer is exact under any config, so the fold affects cost only.
  /// Callers hold the gate in shared mode (QueryAdmission), never
  /// mutex().
  std::vector<int64_t> WaveCountPatterns(
      const std::vector<AttrMask>& masks, int64_t budget,
      const CountingEngineOptions& config,
      std::vector<std::shared_ptr<const GroupCounts>>* counts_out = nullptr);

  /// PatternCountsBatch through the scheduler: element i is the full PC
  /// set of masks[i], exact and materialized regardless of size. Same
  /// admission rules as WaveCountPatterns.
  std::vector<std::shared_ptr<const GroupCounts>> WavePatternCounts(
      const std::vector<AttrMask>& masks,
      const CountingEngineOptions& config);

  /// How long a coordinator holds a wave open for near-simultaneous
  /// requests to join (it stops waiting the moment every admitted query
  /// has a request queued, and never waits when this service has a
  /// single admitted query). Zero disables the window.
  void set_wave_admission_window(std::chrono::microseconds window) {
    std::lock_guard<std::mutex> lock(wave_mu_);
    admission_window_ = window;
  }

  WaveSchedulerStats wave_stats() const {
    std::lock_guard<std::mutex> lock(wave_mu_);
    return wave_stats_;
  }

  /// Engine stats snapshot under mutex() — the only race-free way to
  /// read them while wave-scheduled queries are in flight.
  CountingEngineStats StatsSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return engine_.stats();
  }

  // --- appends -----------------------------------------------------------

  /// Patch arm of the append hook: the row's restriction is folded into
  /// every cached PC set and the row joins the engine's delta block.
  /// `codes` is one row over the full schema (kNullValue = missing; fresh
  /// values use ids extending the base code space in first-seen order,
  /// exactly as TableBuilder would assign them). Self-admitting: takes
  /// the gate exclusively (queries drain first) plus mutex().
  void AppendRow(const std::vector<ValueId>& codes);

  /// Appends a batch, choosing the arm by cost: small batches patch the
  /// cache (one pass over the cached entries), large ones invalidate it
  /// first — rebuilding from scans is then cheaper than per-entry
  /// patching, and both arms are exact.
  void AppendRows(const std::vector<std::vector<ValueId>>& rows);

  /// The append hooks for callers that already hold an AppendAdmission
  /// — e.g. an api::Session, whose append must mutate the engine *and*
  /// its own VC / P_A maintenance state under one critical section so a
  /// concurrent search never observes half an append. Same
  /// invalidate-or-patch semantics as the self-admitting forms.
  void AppendRowLocked(const std::vector<ValueId>& codes);
  void AppendRowsLocked(const std::vector<std::vector<ValueId>>& rows);

  // --- string-level appends (shared interning + group commit) ------------
  //
  // The multi-appender surface api::Session routes through. Values are
  // interned centrally in the service's SharedInterner (codes extend the
  // base code space in committed first-seen order, exactly as a
  // TableBuilder rebuild would assign them), so any number of sessions
  // append concurrently and every sibling resolves the appended strings.
  // Concurrent calls group-commit: a leader's wait for the exclusive
  // AppendAdmission is the merge window, and the merged batch pays one
  // result-cache invalidation + one engine hook + one interner
  // publication. Each call is transactional — on a non-ok status nothing
  // of that call's rows or values is visible anywhere.

  /// Appends rows of string values over the full schema (empty / "NULL"
  /// = missing, exactly like TableBuilder::AddRow). Blocks until this
  /// request's group commit completes; the status is this request's
  /// alone (a sibling's failure in the same batch does not affect it).
  Status AppendStrings(const std::vector<std::vector<std::string>>& rows);

  /// Appends every row of `delta` (same attribute names in the same
  /// order; values remapped by string, so `delta` may use its own
  /// dictionaries). Same group-commit semantics as AppendStrings.
  Status AppendTable(const Table& delta);

  /// The shared interning surface. Reads require a query admission
  /// (gate-shared or mutex()) — the gate orders commits before them.
  const SharedInterner& interner() const { return interner_; }

  /// Disables (or re-enables) group commit: each request then takes its
  /// own AppendAdmission and commits solo. The bench's baseline arm;
  /// results are identical either way.
  void set_append_group_commit(bool on) {
    append_group_commit_.store(on, std::memory_order_relaxed);
  }

  /// Test-only fault injection: invoked once per request after its rows
  /// encoded, before anything becomes visible; a non-ok status fails
  /// that request transactionally. `rows` is the request's row count —
  /// enough to discriminate requests inside a merged batch.
  void SetAppendFaultHookForTest(std::function<Status(int64_t rows)> hook) {
    std::lock_guard<std::mutex> lock(mu_);
    append_fault_hook_ = std::move(hook);
  }

  AppendBatchStats append_stats() const;

  /// Drops every cached entry; appended rows (data) survive. Self-locks
  /// mutex() (Configure, by contrast, runs under the caller's search
  /// lock). Exactness is cache-independent, so this is safe mid-wave.
  void Invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    engine_.InvalidateCache();
  }

  const Table& table() const { return engine_.table(); }
  int64_t total_rows() const { return engine_.total_rows(); }
  const CountingEngineStats& stats() const { return engine_.stats(); }

  /// Resident bytes of this service: engine cache entries, any appended
  /// data (delta block / compacted base copy), and the completed-result
  /// cache — so the registry's process budget covers cached results
  /// alongside PC sets. Lock-free — the process-wide ServiceRegistry's
  /// memory accountant polls this while other threads may hold mutex()
  /// and mutate the engine.
  int64_t resident_bytes() const {
    return engine_.ResidentBytes() + engine_.AppendedBytesRelaxed() +
           result_bytes_relaxed_.load(std::memory_order_relaxed);
  }

  /// True once appends flowed through this service: it then describes
  /// more data than the table it was built on. Lock-free, for the
  /// registry's divergence check on the acquire path.
  bool has_absorbed_appends() const {
    return engine_.AppendedRowsRelaxed() > 0;
  }

  // -- warm-start persistence (src/persist/, docs/PERSISTENCE.md) -------

  /// Snapshots the state worth spilling across a restart: interner
  /// deltas, appended rows, and every cached PC set. Self-locks
  /// mutex(); safe concurrently with queries (they take the same lock).
  /// The completed-result tier is deliberately absent — results are
  /// type-erased api objects, and a warm engine cache rebuilds them
  /// without scans.
  ServiceWarmState ExportWarmState() const;

  /// Replays a warm state onto this service, which must be freshly
  /// built over a base table content-identical to the exporter's (and
  /// must not have served appends yet — the spill store's fingerprint
  /// key guarantees the former, the registry's acquire path the
  /// latter). Order matters and is handled here: interner deltas commit
  /// first, appended rows apply while the cache is still empty (so
  /// nothing is patched twice), then the cache entries — already
  /// delta-patched at export time — import through the normal insert
  /// path. Self-locks mutex().
  void RestoreWarmState(const ServiceWarmState& state);

 private:
  // One queued wave request; outputs (or `error`) are written by the
  // coordinator before `done` flips under wave_mu_ (the mutex publishes
  // them). A wave that threw — e.g. bad_alloc while materializing —
  // fails every merged request: each waiter rethrows `error` from
  // SubmitWave, exactly as the serialized path would have thrown from
  // the engine call, and the scheduler itself stays unwedged.
  struct WaveRequest {
    const std::vector<AttrMask>* masks = nullptr;
    int64_t budget = -1;
    bool want_counts = false;  // PatternCounts semantics (exact sets)
    bool collect = false;      // sizing: also return materialized sets
    CountingEngineOptions config;
    std::vector<int64_t> sizes;
    std::vector<std::shared_ptr<const GroupCounts>> counts;
    std::exception_ptr error;
    bool done = false;
  };

  // One queued string-level append request. `status` and `done` are
  // written by the committing leader under append_mu_ (the mutex
  // publishes them); the payload pointers are caller-owned and outlive
  // the request (the caller blocks in SubmitAppend until done).
  struct AppendTicket {
    const std::vector<std::vector<std::string>>* rows = nullptr;  // xor
    const Table* delta = nullptr;                                 // xor
    Status status;
    bool done = false;
  };

  // Gate primitives (QueryAdmission / AppendAdmission wrap these).
  void BeginQuery();
  void EndQuery();
  void BeginAppend();
  void EndAppend();

  // Blocks until `ticket` committed (or failed); the calling thread
  // volunteers as append leader whenever none is active — mirroring
  // SubmitWave. With group commit off, commits the ticket solo under
  // its own AppendAdmission.
  Status SubmitAppend(AppendTicket& ticket);
  // One leader stint: acquire the exclusive admission (the merge
  // window), snapshot the queue, commit the batch, publish statuses.
  void RunAppendLeader();
  // Commits one batch inside the caller's AppendAdmission: interning
  // guard, per-ticket encode + savepoint rollback, one engine hook, one
  // interner publication.
  void CommitAppendBatch(const std::vector<AppendTicket*>& batch);
  // Validates + encodes one ticket's rows through the staged interning
  // transaction. Appends to `rows`; on error the caller rolls both back.
  Status EncodeTicket(const AppendTicket& ticket,
                      SharedInterner::Batch* stage,
                      std::vector<std::vector<ValueId>>* rows) const;
  static int64_t TicketRows(const AppendTicket& ticket);

  // Blocks until `req` is done; the calling thread volunteers as
  // coordinator whenever none is active.
  void SubmitWave(WaveRequest& req);

  // Drains the wave queue, one merged batch at a time, until it is
  // empty; entered and left holding `lock` (wave_mu_).
  void RunCoordinator(std::unique_lock<std::mutex>& lock);

  // Executes one merged batch against the engine (takes mutex()); fills
  // every request's outputs. Runs without wave_mu_ held.
  void ExecuteWave(const std::vector<WaveRequest*>& batch);

  // Declared before engine_: the engine scans this table when the
  // owning constructor was used (destruction runs in reverse order).
  std::shared_ptr<const Table> owned_table_;
  mutable std::mutex mu_;
  CountingEngine engine_;
  // Mutated only inside a group commit (exclusive gate + mu_); read
  // under any query admission. The test-only fault hook is guarded by
  // mu_ (set before threads start, read inside the commit section).
  SharedInterner interner_;
  std::function<Status(int64_t)> append_fault_hook_;

  // Admission gate: queries shared, appenders exclusive with writer
  // preference (a waiting appender blocks new queries, so a steady query
  // stream cannot starve appends).
  mutable std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int64_t gate_queries_ = 0;       // admitted queries
  int64_t appenders_waiting_ = 0;  // appenders blocked on admission
  bool appender_active_ = false;
  std::atomic<int64_t> active_queries_relaxed_{0};
  std::atomic<bool> evicted_{false};

  // Group-commit append state. append_mu_ guards the queue, the leader
  // flag, and the stats; it is never held while acquiring the gate (a
  // leader releases it before its AppendAdmission and re-locks it only
  // to snapshot / publish), so the order is gate -> mu_ -> append_mu_
  // with append_mu_ a leaf on that path.
  std::atomic<bool> append_group_commit_{true};
  mutable std::mutex append_mu_;
  std::condition_variable append_cv_;
  std::deque<AppendTicket*> append_queue_;
  bool append_leader_active_ = false;
  AppendBatchStats append_stats_;

  // Wave scheduler state. Lock order: wave_mu_ -> (released) -> mu_;
  // wave_mu_ is never held across engine work.
  mutable std::mutex wave_mu_;
  std::condition_variable wave_cv_;
  std::deque<WaveRequest*> wave_queue_;
  bool coordinator_active_ = false;
  std::chrono::microseconds admission_window_{500};
  WaveSchedulerStats wave_stats_;

  // Result tier state, all under results_mu_ — a leaf lock (taken after
  // gate / mutex() / wave_mu_, never holding anything else under it).
  // Promise resolution happens outside it so a waking joiner never
  // contends with the publisher.
  struct QueryResultKeyHash {
    size_t operator()(const QueryResultKey& key) const {
      return static_cast<size_t>(key.lo ^
                                 (key.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct ResultEntry {
    QueryResultKey key;
    QueryResultHandle value;
    int64_t bytes = 0;
    int64_t rows = 0;  // engine rows the result describes
  };
  struct InFlightResult {
    std::promise<QueryResultHandle> promise;
    std::shared_future<QueryResultHandle> future;
    int64_t rows = 0;
  };
  // Drops LRU-tail entries until the cached bytes fit the budget and
  // refreshes the accountant's lock-free mirror.
  void EvictResultsLocked();

  mutable std::mutex results_mu_;
  std::list<ResultEntry> result_lru_;  // front = most recently used
  std::unordered_map<QueryResultKey, std::list<ResultEntry>::iterator,
                     QueryResultKeyHash>
      result_map_;
  std::unordered_map<QueryResultKey, std::shared_ptr<InFlightResult>,
                     QueryResultKeyHash>
      result_inflight_;
  int64_t result_budget_ = kDefaultResultCacheBudget;
  int64_t result_bytes_ = 0;
  ResultTierStats result_stats_;
  std::atomic<int64_t> result_bytes_relaxed_{0};
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTING_SERVICE_H_
