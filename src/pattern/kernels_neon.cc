// NEON (aarch64 Advanced SIMD) implementations of the sizing-kernel
// table (kernel_dispatch.h). Advanced SIMD is baseline on arm64, so this
// TU needs no special flags — it simply compiles to a stub on other
// targets. Semantics are bit-identical to the scalar reference in
// kernel_dispatch.cc (differential-tested per ISA where the host can run
// it).
#include "pattern/kernel_dispatch.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "relation/value.h"

namespace pcbl {
namespace counting {
namespace {

// Zero-extends 2 uint32 loads into one vector of 2 uint64 lanes.
inline uint64x2_t Widen2(const uint32_t* p) {
  return vmovl_u32(vld1_u32(p));
}

inline uint64x2_t ShiftLeft(uint64x2_t v, int s) {
  return vshlq_u64(v, vdupq_n_s64(s));
}

// All-ones per 64-bit lane holding a widened NULL slot.
inline uint64x2_t IsNullLanes(uint64x2_t v) {
  return vceqq_u64(v, vdupq_n_u64(0xFFFFFFFFull));
}

void EncodeA2Neon(const uint32_t* c0, const uint32_t* c1, int s0,
                  int64_t n, uint64_t* out) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v0 = Widen2(c0 + i);
    const uint64x2_t v1 = Widen2(c1 + i);
    vst1q_u64(out + i, vorrq_u64(ShiftLeft(v0, s0), v1));
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
  }
}

void EncodeA2NullableNeon(const uint32_t* c0, const uint32_t* c1, int s0,
                          uint64_t sentinel, int64_t n, uint64_t* out) {
  const uint64x2_t sent_v = vdupq_n_u64(sentinel);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v0 = Widen2(c0 + i);
    const uint64x2_t v1 = Widen2(c1 + i);
    const uint64x2_t code = vorrq_u64(ShiftLeft(v0, s0), v1);
    const uint64x2_t bad = vorrq_u64(IsNullLanes(v0), IsNullLanes(v1));
    vst1q_u64(out + i, vbslq_u64(bad, sent_v, code));
  }
  for (; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const bool ok = v0 != kNullValue && v1 != kNullValue;
    out[i] = ok ? (static_cast<uint64_t>(v0) << s0) | v1 : sentinel;
  }
}

void EncodeA3Neon(const uint32_t* c0, const uint32_t* c1,
                  const uint32_t* c2, int s0, int s1, int64_t n,
                  uint64_t* out) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v0 = Widen2(c0 + i);
    const uint64x2_t v1 = Widen2(c1 + i);
    const uint64x2_t v2 = Widen2(c2 + i);
    vst1q_u64(out + i, vorrq_u64(vorrq_u64(ShiftLeft(v0, s0),
                                           ShiftLeft(v1, s1)),
                                 v2));
  }
  for (; i < n; ++i) {
    out[i] = (static_cast<uint64_t>(c0[i]) << s0) |
             (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
  }
}

void EncodeA3NullableNeon(const uint32_t* c0, const uint32_t* c1,
                          const uint32_t* c2, int s0, int s1, uint64_t n0,
                          uint64_t n1, uint64_t n2, uint64_t sentinel,
                          int64_t n, uint64_t* out) {
  const uint64x2_t sent_v = vdupq_n_u64(sentinel);
  const uint64x2_t slot0 = vdupq_n_u64(n0);
  const uint64x2_t slot1 = vdupq_n_u64(n1);
  const uint64x2_t slot2 = vdupq_n_u64(n2);
  // NULL masks are -1 per lane as int64; a lane sum <= -2 means >= 2
  // NULLs (arity < 2), routing the row to the sentinel.
  const int64x2_t minus_one = vdupq_n_s64(-1);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v0 = Widen2(c0 + i);
    const uint64x2_t v1 = Widen2(c1 + i);
    const uint64x2_t v2 = Widen2(c2 + i);
    const uint64x2_t m0 = IsNullLanes(v0);
    const uint64x2_t m1 = IsNullLanes(v1);
    const uint64x2_t m2 = IsNullLanes(v2);
    const uint64x2_t f0 = vbslq_u64(m0, slot0, v0);
    const uint64x2_t f1 = vbslq_u64(m1, slot1, v1);
    const uint64x2_t f2 = vbslq_u64(m2, slot2, v2);
    const uint64x2_t code = vorrq_u64(
        vorrq_u64(ShiftLeft(f0, s0), ShiftLeft(f1, s1)), f2);
    const int64x2_t null_sum =
        vaddq_s64(vaddq_s64(vreinterpretq_s64_u64(m0),
                            vreinterpretq_s64_u64(m1)),
                  vreinterpretq_s64_u64(m2));
    const uint64x2_t bad = vcgtq_s64(minus_one, null_sum);
    vst1q_u64(out + i, vbslq_u64(bad, sent_v, code));
  }
  for (; i < n; ++i) {
    const uint32_t v0 = c0[i];
    const uint32_t v1 = c1[i];
    const uint32_t v2 = c2[i];
    const int nulls = static_cast<int>(v0 == kNullValue) +
                      static_cast<int>(v1 == kNullValue) +
                      static_cast<int>(v2 == kNullValue);
    const uint64_t code = ((v0 == kNullValue ? n0 : v0) << s0) |
                          ((v1 == kNullValue ? n1 : v1) << s1) |
                          (v2 == kNullValue ? n2 : v2);
    out[i] = nulls <= 1 ? code : sentinel;
  }
}

void GatherAccumNeon(const uint32_t* col, int shift, uint64_t null_slot,
                     int64_t n, uint64_t* codes, uint8_t* arity) {
  const uint64x2_t slot_v = vdupq_n_u64(null_slot);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t v = Widen2(col + i);
    const uint64x2_t is_null = IsNullLanes(v);
    const uint64x2_t slot = vbslq_u64(is_null, slot_v, v);
    const uint64x2_t acc = vld1q_u64(codes + i);
    vst1q_u64(codes + i, vorrq_u64(acc, ShiftLeft(slot, shift)));
    arity[i + 0] +=
        static_cast<uint8_t>(vgetq_lane_u64(is_null, 0) == 0);
    arity[i + 1] +=
        static_cast<uint8_t>(vgetq_lane_u64(is_null, 1) == 0);
  }
  for (; i < n; ++i) {
    const uint32_t v = col[i];
    const bool bound = v != kNullValue;
    codes[i] |= (bound ? static_cast<uint64_t>(v) : null_slot) << shift;
    arity[i] += static_cast<uint8_t>(bound);
  }
}

// Fused dense fills: NEON encodes two rows per iteration and keeps the
// straightforward bitmap scatter — arm64 cores have enough store
// bandwidth that the byte-table detour the AVX2 TU takes has not been
// shown to pay here, and the simple form is easiest to keep
// bit-identical.
void DenseFillA2Neon(const uint32_t* c0, const uint32_t* c1, int s0,
                     int total_bits, int64_t n, uint64_t* bm) {
  (void)total_bits;
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t code =
        vorrq_u64(ShiftLeft(Widen2(c0 + i), s0), Widen2(c1 + i));
    const uint64_t a = vgetq_lane_u64(code, 0);
    const uint64_t b = vgetq_lane_u64(code, 1);
    bm[a >> 6] |= uint64_t{1} << (a & 63);
    bm[b >> 6] |= uint64_t{1} << (b & 63);
  }
  for (; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) | c1[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

void DenseFillA3Neon(const uint32_t* c0, const uint32_t* c1,
                     const uint32_t* c2, int s0, int s1, int total_bits,
                     int64_t n, uint64_t* bm) {
  (void)total_bits;
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t code = vorrq_u64(
        vorrq_u64(ShiftLeft(Widen2(c0 + i), s0),
                  ShiftLeft(Widen2(c1 + i), s1)),
        Widen2(c2 + i));
    const uint64_t a = vgetq_lane_u64(code, 0);
    const uint64_t b = vgetq_lane_u64(code, 1);
    bm[a >> 6] |= uint64_t{1} << (a & 63);
    bm[b >> 6] |= uint64_t{1} << (b & 63);
  }
  for (; i < n; ++i) {
    const uint64_t code = (static_cast<uint64_t>(c0[i]) << s0) |
                          (static_cast<uint64_t>(c1[i]) << s1) | c2[i];
    bm[code >> 6] |= uint64_t{1} << (code & 63);
  }
}

constexpr SizingKernels kNeonKernels = {
    &EncodeA2Neon,         &EncodeA2NullableNeon, &EncodeA3Neon,
    &EncodeA3NullableNeon, &GatherAccumNeon,      &DenseFillA2Neon,
    &DenseFillA3Neon,
};

}  // namespace

const SizingKernels* GetNeonKernels() { return &kNeonKernels; }

}  // namespace counting
}  // namespace pcbl

#else  // !aarch64

namespace pcbl {
namespace counting {

const SizingKernels* GetNeonKernels() { return nullptr; }

}  // namespace counting
}  // namespace pcbl

#endif
