// Bit-packed restriction codec: the fast sibling of the mixed-radix codec
// in restriction_codec.h.
//
// A restriction over an attribute subset S is a tuple of *slots*, one per
// attribute: slot = the ValueId for a bound attribute, |Dom| for NULL
// (unbound). The mixed-radix codec combines slots with multiplies over
// radix |Dom|+1; the packed codec instead gives each attribute a fixed
// bit field of ceil(log2(|Dom|+1)) bits and combines slots with shifts
// and ORs — no multiplies, and the per-attribute field extraction on
// decode is a shift+mask.
//
// The two encodings are order-isomorphic: both are strictly monotone in
// the lexicographic order of the slot tuple (attrs[0] most significant,
// NULL sorting last per attribute, because the NULL slot |Dom| is the
// largest slot value). Sorting packed codes therefore yields exactly the
// canonical PC-set emission order of MaterializeFromCodes, which is what
// keeps GroupCounts built from packed codes byte-identical to the
// mixed-radix (and sort-fallback) paths — differential-tested in
// pattern_packed_kernels_test.cc.
//
// Eligibility: the packed width Σ ceil(log2(|Dom|+1)) must fit in 63 bits
// so codes remain non-negative int64s (the open-addressing containers use
// -1 as the empty sentinel). 64- and 65-bit subsets fall back to the
// mixed-radix or sort strategies; the boundary is covered by tests.
#ifndef PCBL_PATTERN_PACKED_CODEC_H_
#define PCBL_PATTERN_PACKED_CODEC_H_

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "pattern/restriction_codec.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {
namespace counting {

/// Field layout of the packed restriction code over one attribute subset.
/// Position 0 (attrs[0], the smallest attribute index) is the most
/// significant field, matching the mixed-radix significance order.
struct PackedLayout {
  /// True when every field fits and the total width is <= 63 bits.
  bool ok = false;
  int width = 0;
  int total_bits = 0;
  /// Left shift of field j.
  int shift[kMaxAttributes];
  /// (1 << bits_j) - 1, for decode.
  uint64_t field_mask[kMaxAttributes];
  /// The NULL slot of field j (= |Dom(A_j)|).
  uint64_t null_slot[kMaxAttributes];
};

/// Builds the layout from explicit per-attribute domain sizes (in subset
/// position order). Domain sizes may exceed the table's when the engine
/// tracks appended rows with fresh values ("effective domains").
inline PackedLayout MakePackedLayout(const int64_t* dom_sizes, int width) {
  PackedLayout layout;
  layout.width = width;
  int total = 0;
  for (int j = 0; j < width; ++j) {
    const uint64_t null_slot = static_cast<uint64_t>(dom_sizes[j]);
    const int bits = std::bit_width(null_slot);  // slots span [0, |Dom|]
    layout.field_mask[j] = bits == 0 ? 0 : (uint64_t{1} << bits) - 1;
    layout.null_slot[j] = null_slot;
    total += bits;
  }
  layout.total_bits = total;
  if (total > 63) return layout;  // ok stays false
  // Assign shifts most-significant-first.
  int shift = total;
  for (int j = 0; j < width; ++j) {
    const int bits = std::bit_width(layout.null_slot[j]);
    shift -= bits;
    layout.shift[j] = shift;
  }
  layout.ok = true;
  return layout;
}

/// Layout over `attrs` of `table`.
inline PackedLayout MakePackedLayout(const Table& table,
                                     const std::vector<int>& attrs) {
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < attrs.size(); ++j) {
    doms[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  return MakePackedLayout(doms, static_cast<int>(attrs.size()));
}

/// True when the subset's restrictions can be packed into one int64.
inline bool PackedEligible(const Table& table, AttrMask mask) {
  std::vector<int> attrs = mask.ToIndices();
  return MakePackedLayout(table, attrs).ok;
}

/// Decodes a packed code back into per-attribute ValueIds (kNullValue for
/// unbound positions) — the packed counterpart of DecodeRestriction.
inline void DecodePacked(int64_t code, const PackedLayout& layout,
                         ValueId* out) {
  const uint64_t bits = static_cast<uint64_t>(code);
  for (int j = 0; j < layout.width; ++j) {
    const uint64_t slot = (bits >> layout.shift[j]) & layout.field_mask[j];
    out[j] = slot == layout.null_slot[j] ? kNullValue
                                         : static_cast<ValueId>(slot);
  }
}

/// Materializes (packed code, count) items as a GroupCounts. Sorting by
/// packed code is sorting by the canonical emission order (see the header
/// comment), so the result is byte-identical to MaterializeFromCodes over
/// the same groups.
inline GroupCounts MaterializeFromPackedCodes(
    AttrMask mask, std::vector<int> attrs, const PackedLayout& layout,
    std::vector<std::pair<int64_t, int64_t>> items) {
  std::sort(items.begin(), items.end());
  GroupCounts out;
  GroupCountsAccess::mask(out) = mask;
  GroupCountsAccess::attrs(out) = std::move(attrs);
  std::vector<ValueId>& keys = GroupCountsAccess::keys(out);
  std::vector<int64_t>& counts = GroupCountsAccess::counts(out);
  const size_t width = static_cast<size_t>(layout.width);
  keys.reserve(items.size() * width);
  counts.reserve(items.size());
  for (const auto& [code, c] : items) {
    const size_t base = keys.size();
    keys.resize(base + width);
    DecodePacked(code, layout, keys.data() + base);
    counts.push_back(c);
  }
  return out;
}

}  // namespace counting
}  // namespace pcbl

#endif  // PCBL_PATTERN_PACKED_CODEC_H_
