// Tiled, bit-packed candidate-sizing kernels (see packed_codec.h for the
// code layout and its order-isomorphism with the mixed-radix codec).
//
// These kernels are what makes sizing bandwidth-bound instead of
// compute-bound on packed-eligible subsets:
//
//  * restrictions are encoded with shifts/ORs instead of per-attribute
//    int64 multiplies,
//  * arity-2 and arity-3 subsets (the bulk of every searched lattice
//    wave) get branch-lean specializations with no inner attribute loop,
//  * wider subsets gather columns in row tiles so each column's slice is
//    streamed exactly once per tile while the tile's codes accumulate in
//    L1,
//  * distinctness checks use a dense bitmap over the packed key space
//    when it is small enough (one load+OR per row, no hashing), falling
//    back to the open-addressing CodeSet otherwise.
//
// Two further accelerations sit behind the same entry points:
//
//  * the inner encode loops run through the runtime-dispatched SIMD
//    kernel table (kernel_dispatch.h) — AVX2 on capable x86-64 hosts,
//    NEON on arm64, the portable scalar reference otherwise,
//  * exact (unbudgeted) scans can be split into cache-sized morsels
//    executed on several threads (MorselConfig): each morsel sizes its
//    contiguous row range into a thread-local partial (bitmap, count
//    array, CodeSet, or CodeCountMap), and the partials merge with
//    order-insensitive operations (OR / elementwise add / hash-merge).
//    Because every downstream materialization sorts by packed code, the
//    merged result is byte-identical to the serial scan for every
//    thread count — enforced by the differential grid in
//    pattern_packed_kernels_test.cc.
//
// Budgeted scans (budget >= 0) always run serially: the early-exit
// contract ("stop as soon as the count exceeds the budget") is a
// sequential property, and splitting it would change how much work an
// over-budget subset performs.
//
// Counts are byte-identical to the mixed-radix path for every input —
// the differential suites in pattern_packed_kernels_test.cc and
// pattern_counting_engine_test.cc enforce this.
#ifndef PCBL_PATTERN_PACKED_KERNELS_H_
#define PCBL_PATTERN_PACKED_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pattern/packed_codec.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {
namespace counting {

/// Column-major view of one attribute subset, plus an optional block of
/// appended rows (row-major, `delta_stride` ValueIds per row) that the
/// CountingEngine maintains for datasets grown after construction.
struct SubsetColumns {
  const ValueId* cols[kMaxAttributes];
  int width = 0;
  int64_t rows = 0;
  /// Whether position j can hold NULLs (from Table::NullCount, O(1));
  /// all-false lets the kernels run their branch-free NULL-free loops —
  /// the common case on the paper's datasets.
  bool nullable[kMaxAttributes];
  /// Appended rows; position j of the subset reads
  /// delta[r * delta_stride + delta_attr[j]].
  const ValueId* delta = nullptr;
  int64_t delta_rows = 0;
  int delta_stride = 0;
  int delta_attr[kMaxAttributes];

  bool any_nullable() const {
    for (int j = 0; j < width; ++j) {
      if (nullable[j]) return true;
    }
    return false;
  }
};

/// View over `attrs` of `table` (no appended rows).
SubsetColumns MakeSubsetColumns(const Table& table,
                                const std::vector<int>& attrs);

/// Morsel-parallelism knobs for one exact subset scan. The row range
/// (base rows followed by appended delta rows) is split into up to
/// `threads` contiguous morsels of at least `min_rows_per_morsel` rows
/// each; a subset too small to yield two such morsels scans serially.
/// `threads <= 1` or `min_rows_per_morsel <= 0` disables splitting.
/// Budgeted scans ignore the config entirely (see the header comment).
struct MorselConfig {
  int threads = 1;
  int64_t min_rows_per_morsel = 32768;
};

/// Number of morsels an exact scan over `total_rows` rows would use:
/// min(threads, total_rows / min_rows_per_morsel), at least 1.
int64_t MorselCount(int64_t total_rows, const MorselConfig& morsel);

/// |P_S| with the early-exit budget contract of CountDistinctPatterns:
/// exact when <= budget, otherwise any value > budget (budget < 0 =
/// exact). `layout.ok` must hold.
int64_t PackedCountDistinct(const SubsetColumns& view,
                            const PackedLayout& layout, int64_t budget,
                            const MorselConfig& morsel = {});

/// The full (packed code, count) group list of the subset, unsorted.
/// `groups_hint` pre-sizes the count map (pass the exact group count when
/// known — e.g. from a preceding PackedCountDistinct — to make the pass
/// rehash-free on every path, including each morsel-local partial; pass a
/// negative value when unknown).
std::vector<std::pair<int64_t, int64_t>> PackedCountGroups(
    const SubsetColumns& view, const PackedLayout& layout,
    int64_t groups_hint, const MorselConfig& morsel = {});

/// True when PackedCountDistinct would use the dense-bitmap path: the
/// packed key space is small enough that a bitmap probe (one load+OR)
/// beats hashing and its memset is amortized by the scan.
bool PackedDenseEligible(const PackedLayout& layout, int64_t rows);

/// True when PackedCountGroupsDense applies: the packed key space fits a
/// direct-addressing count array whose memset is amortized by the scan.
bool PackedDenseCountEligible(const PackedLayout& layout, int64_t rows);

/// One-pass budgeted count-and-materialize over a dense count array
/// (requires PackedDenseCountEligible). Returns the distinct count with
/// the usual early-exit contract; when it is within the budget, *items
/// receives the (packed code, count) groups in ascending code order —
/// already the canonical emission order, no sort needed.
int64_t PackedCountGroupsDense(const SubsetColumns& view,
                               const PackedLayout& layout, int64_t budget,
                               std::vector<std::pair<int64_t, int64_t>>* items,
                               const MorselConfig& morsel = {});

}  // namespace counting
}  // namespace pcbl

#endif  // PCBL_PATTERN_PACKED_KERNELS_H_
