// Tiled, bit-packed candidate-sizing kernels (see packed_codec.h for the
// code layout and its order-isomorphism with the mixed-radix codec).
//
// These kernels are what makes sizing bandwidth-bound instead of
// compute-bound on packed-eligible subsets:
//
//  * restrictions are encoded with shifts/ORs instead of per-attribute
//    int64 multiplies,
//  * arity-2 and arity-3 subsets (the bulk of every searched lattice
//    wave) get branch-lean specializations with no inner attribute loop,
//  * wider subsets gather columns in row tiles so each column's slice is
//    streamed exactly once per tile while the tile's codes accumulate in
//    L1,
//  * distinctness checks use a dense bitmap over the packed key space
//    when it is small enough (one load+OR per row, no hashing), falling
//    back to the open-addressing CodeSet otherwise.
//
// Counts are byte-identical to the mixed-radix path for every input —
// the differential suites in pattern_packed_kernels_test.cc and
// pattern_counting_engine_test.cc enforce this.
#ifndef PCBL_PATTERN_PACKED_KERNELS_H_
#define PCBL_PATTERN_PACKED_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pattern/packed_codec.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {
namespace counting {

/// Column-major view of one attribute subset, plus an optional block of
/// appended rows (row-major, `delta_stride` ValueIds per row) that the
/// CountingEngine maintains for datasets grown after construction.
struct SubsetColumns {
  const ValueId* cols[kMaxAttributes];
  int width = 0;
  int64_t rows = 0;
  /// Whether position j can hold NULLs (from Table::NullCount, O(1));
  /// all-false lets the kernels run their branch-free NULL-free loops —
  /// the common case on the paper's datasets.
  bool nullable[kMaxAttributes];
  /// Appended rows; position j of the subset reads
  /// delta[r * delta_stride + delta_attr[j]].
  const ValueId* delta = nullptr;
  int64_t delta_rows = 0;
  int delta_stride = 0;
  int delta_attr[kMaxAttributes];

  bool any_nullable() const {
    for (int j = 0; j < width; ++j) {
      if (nullable[j]) return true;
    }
    return false;
  }
};

/// View over `attrs` of `table` (no appended rows).
SubsetColumns MakeSubsetColumns(const Table& table,
                                const std::vector<int>& attrs);

/// |P_S| with the early-exit budget contract of CountDistinctPatterns:
/// exact when <= budget, otherwise any value > budget (budget < 0 =
/// exact). `layout.ok` must hold.
int64_t PackedCountDistinct(const SubsetColumns& view,
                            const PackedLayout& layout, int64_t budget);

/// The full (packed code, count) group list of the subset, unsorted.
/// `groups_hint` pre-sizes the count map (pass the exact group count when
/// known — e.g. from a preceding PackedCountDistinct — to make the pass
/// rehash-free; pass a negative value when unknown).
std::vector<std::pair<int64_t, int64_t>> PackedCountGroups(
    const SubsetColumns& view, const PackedLayout& layout,
    int64_t groups_hint);

/// True when PackedCountDistinct would use the dense-bitmap path: the
/// packed key space is small enough that a bitmap probe (one load+OR)
/// beats hashing and its memset is amortized by the scan.
bool PackedDenseEligible(const PackedLayout& layout, int64_t rows);

/// True when PackedCountGroupsDense applies: the packed key space fits a
/// direct-addressing count array whose memset is amortized by the scan.
bool PackedDenseCountEligible(const PackedLayout& layout, int64_t rows);

/// One-pass budgeted count-and-materialize over a dense count array
/// (requires PackedDenseCountEligible). Returns the distinct count with
/// the usual early-exit contract; when it is within the budget, *items
/// receives the (packed code, count) groups in ascending code order —
/// already the canonical emission order, no sort needed.
int64_t PackedCountGroupsDense(const SubsetColumns& view,
                               const PackedLayout& layout, int64_t budget,
                               std::vector<std::pair<int64_t, int64_t>>* items);

}  // namespace counting
}  // namespace pcbl

#endif  // PCBL_PATTERN_PACKED_KERNELS_H_
