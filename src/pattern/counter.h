// Group-by counting over attribute subsets — the engine behind both label
// construction (computing the PC set of Definition 2.9) and label sizing
// (|P_S|, the budget check of the search algorithms).
//
// Three strategies are provided and picked automatically:
//   * dense:  mixed-radix direct addressing when ∏|Dom| is small,
//   * hash:   64-bit-encodable keys into an open-addressing map,
//   * sort:   exact lexicographic sort-and-run-count fallback (always
//             applicable, used when the key space overflows 64 bits).
// Rows with a NULL in any grouped attribute contribute no pattern
// (Definition 2.3: NULL never satisfies an equality term).
#ifndef PCBL_PATTERN_COUNTER_H_
#define PCBL_PATTERN_COUNTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pattern/pattern.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {

/// Which group-by implementation to use.
enum class GroupByStrategy {
  kAuto,
  kDense,
  kHash,
  kSort,
};

/// The exact pattern counts over one attribute subset: the PC set of
/// L_S(D), restricted to patterns with positive count.
class GroupCounts {
 public:
  /// Attributes of S in increasing index order.
  const std::vector<int>& attrs() const { return attrs_; }
  AttrMask mask() const { return mask_; }

  /// Number of distinct patterns |P_S|.
  int64_t num_groups() const {
    return static_cast<int64_t>(counts_.size());
  }

  /// Key of group `g`: one ValueId per attribute, in attrs() order.
  const ValueId* key(int64_t g) const {
    return keys_.data() + static_cast<size_t>(g) * attrs_.size();
  }

  /// Count of group `g`.
  int64_t count(int64_t g) const {
    return counts_[static_cast<size_t>(g)];
  }

  /// Width of a key (number of grouped attributes).
  int key_width() const { return static_cast<int>(attrs_.size()); }

  /// Sum of all group counts (rows with no NULL in the grouped attributes).
  int64_t total_count() const;

  /// Materializes group `g` as a Pattern.
  Pattern ToPattern(int64_t g) const;

 private:
  friend struct GroupCountsAccess;
  std::vector<int> attrs_;
  AttrMask mask_;
  std::vector<ValueId> keys_;    // flat, num_groups * key_width
  std::vector<int64_t> counts_;  // per group
};

/// Computes the exact pattern counts of `table` grouped by `mask`.
GroupCounts ComputeGroupCounts(const Table& table, AttrMask mask,
                               GroupByStrategy strategy =
                                   GroupByStrategy::kAuto);

/// Counts distinct non-NULL combinations over `mask`, stopping early once
/// the count exceeds `budget` (when budget >= 0). Returns the exact count
/// when it is <= budget, otherwise any value > budget. This early exit is
/// what makes the naive search algorithm feasible: most candidate subsets
/// blow past the bound within a few hundred rows.
int64_t CountDistinctCombos(const Table& table, AttrMask mask,
                            int64_t budget = -1);

/// Mixed-radix encoding capacity: product of domain sizes of `mask`, or
/// nullopt when it would overflow int64 (or when any domain is empty while
/// the column still has rows — impossible in practice).
std::optional<int64_t> DenseKeySpace(const Table& table, AttrMask mask);

/// Which restriction-counting implementation to use. kAuto picks the
/// bit-packed kernels (packed_kernels.h) whenever the subset's packed
/// width fits in 63 bits, then the mixed-radix hash path when the
/// nullable key space fits an int64, then the sort fallback. All three
/// produce byte-identical GroupCounts / counts — the forced values exist
/// for differential tests and the sizing micro-benchmarks.
enum class RestrictionStrategy {
  kAuto,
  kPacked,
  kMixedRadix,
  kSort,
};

/// The PC set of L_S(D) under the missing-value semantics implied by the
/// paper's appendix A: tuples are grouped by their *non-NULL restriction*
/// to `mask`, and only restrictions binding at least two attributes are
/// stored (arity-0/1 information is already carried by |D| and VC). Keys
/// have width |mask| with kNullValue marking unbound attributes, and are
/// emitted in ascending mixed-radix order (NULL sorting last per
/// attribute).
///
/// On NULL-free data this is identical to ComputeGroupCounts for
/// |mask| >= 2, and empty for smaller masks. This is the semantics under
/// which Lemma A.8's label sizes and the Theorem 2.17 reduction are sound;
/// see DESIGN.md §5a.
GroupCounts ComputePatternCounts(const Table& table, AttrMask mask,
                                 RestrictionStrategy strategy =
                                     RestrictionStrategy::kAuto);

/// |P_S| under the same semantics, with the same early-exit budget
/// behaviour as CountDistinctCombos. This is the quantity the search
/// algorithms bound by B_s.
int64_t CountDistinctPatterns(const Table& table, AttrMask mask,
                              int64_t budget = -1,
                              RestrictionStrategy strategy =
                                  RestrictionStrategy::kAuto);

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTER_H_
