#include "pattern/counting_service.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

namespace {

// Patch-vs-invalidate pivot: patching costs one binary search + insertion
// per (row, cached entry) pair, a rescan costs O(rows) per future sizing.
// Beyond this much patch work the cache is cheaper to rebuild than to
// repair.
constexpr int64_t kMaxPatchWork = int64_t{1} << 22;

// Folds one request's engine config into the merged wave config: the
// most capable of the waiting queries wins. Every engine answer is exact
// under any config, so the fold changes cost attribution, never results
// (a disabled-engine request merged with an enabled one simply gets its
// exact values from the warmer path).
void FoldConfig(const CountingEngineOptions& request,
                CountingEngineOptions* merged, bool first) {
  if (first) {
    *merged = request;
    return;
  }
  merged->enabled = merged->enabled || request.enabled;
  merged->num_threads = std::max(merged->num_threads, request.num_threads);
  merged->cache_budget =
      std::max(merged->cache_budget, request.cache_budget);
  merged->delta_compact_threshold = std::max(
      merged->delta_compact_threshold, request.delta_compact_threshold);
  // Smallest positive threshold wins (finer morsels = more intra-subset
  // parallelism); only if every waiting query disabled it stays off.
  if (request.min_rows_per_morsel > 0 &&
      (merged->min_rows_per_morsel <= 0 ||
       request.min_rows_per_morsel < merged->min_rows_per_morsel)) {
    merged->min_rows_per_morsel = request.min_rows_per_morsel;
  }
}

}  // namespace

// --- admission gate --------------------------------------------------------

void CountingService::BeginQuery() {
  std::unique_lock<std::mutex> lock(gate_mu_);
  // Writer preference: a waiting appender blocks new queries, so a
  // steady query stream cannot starve appends.
  gate_cv_.wait(lock, [this] {
    return !appender_active_ && appenders_waiting_ == 0;
  });
  ++gate_queries_;
  active_queries_relaxed_.store(gate_queries_, std::memory_order_relaxed);
}

void CountingService::EndQuery() {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    --gate_queries_;
    active_queries_relaxed_.store(gate_queries_,
                                  std::memory_order_relaxed);
    if (gate_queries_ == 0) gate_cv_.notify_all();
  }
  // A coordinator idling in its admission window waits for the queue to
  // cover every admitted query; this query leaving shrinks that target,
  // so wake the coordinator to re-check instead of letting it burn the
  // window to the deadline.
  wave_cv_.notify_all();
}

void CountingService::BeginAppend() {
  std::unique_lock<std::mutex> lock(gate_mu_);
  ++appenders_waiting_;
  gate_cv_.wait(lock, [this] {
    return !appender_active_ && gate_queries_ == 0;
  });
  --appenders_waiting_;
  appender_active_ = true;
}

void CountingService::EndAppend() {
  std::lock_guard<std::mutex> lock(gate_mu_);
  appender_active_ = false;
  gate_cv_.notify_all();
}

int64_t CountingService::in_flight() const {
  int64_t n;
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    n = gate_queries_ + (appender_active_ ? 1 : 0);
  }
  {
    std::lock_guard<std::mutex> lock(wave_mu_);
    n += static_cast<int64_t>(wave_queue_.size());
    n += coordinator_active_ ? 1 : 0;
  }
  return n;
}

void CountingService::Quiesce() {
  // Two condition systems (gate, waves) drained in sequence, then
  // re-checked: a wave only exists inside an admitted query, so once the
  // gate reads empty twice around an empty wave queue, nothing was in
  // flight in between.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gate_mu_);
      gate_cv_.wait(lock, [this] {
        return gate_queries_ == 0 && !appender_active_;
      });
    }
    {
      std::unique_lock<std::mutex> lock(wave_mu_);
      wave_cv_.wait(lock, [this] {
        return wave_queue_.empty() && !coordinator_active_;
      });
    }
    std::lock_guard<std::mutex> lock(gate_mu_);
    if (gate_queries_ == 0 && !appender_active_) return;
  }
}

void CountingService::MarkEvicted() {
  evicted_.store(true);
  // A detached service serves no future queries; free its cached results
  // now instead of when the last holder drops the service.
  InvalidateResults();
}

// --- result tier -----------------------------------------------------------

ResultProbe CountingService::ResultLookupOrBegin(const QueryResultKey& key,
                                                 int64_t rows, bool may_join,
                                                 int64_t budget_bytes) {
  ResultProbe probe;
  std::lock_guard<std::mutex> lock(results_mu_);
  if (budget_bytes >= 0 && budget_bytes != result_budget_) {
    result_budget_ = budget_bytes;
    EvictResultsLocked();
  }
  auto cached = result_map_.find(key);
  if (cached != result_map_.end()) {
    if (cached->second->rows == rows) {
      result_lru_.splice(result_lru_.begin(), result_lru_, cached->second);
      ++result_stats_.hits;
      probe.hit = true;
      probe.value = cached->second->value;
      return probe;
    }
    // Stale row count. Unreachable while every append arm clears the
    // cache eagerly under its exclusive admission; dropped defensively
    // so a future append path that forgets to invalidate degrades to a
    // miss instead of a wrong answer.
    result_bytes_ -= cached->second->bytes;
    result_lru_.erase(cached->second);
    result_map_.erase(cached);
    result_bytes_relaxed_.store(result_bytes_, std::memory_order_relaxed);
  }
  auto in_flight = result_inflight_.find(key);
  if (in_flight != result_inflight_.end()) {
    if (may_join) {
      ++result_stats_.inflight_joins;
      probe.join = in_flight->second->future;
    } else {
      ++result_stats_.bypasses;
    }
    return probe;
  }
  auto entry = std::make_shared<InFlightResult>();
  entry->future = entry->promise.get_future().share();
  entry->rows = rows;
  result_inflight_.emplace(key, std::move(entry));
  ++result_stats_.misses;
  probe.leader = true;
  return probe;
}

void CountingService::ResultPublish(const QueryResultKey& key,
                                    QueryResultHandle value, int64_t bytes,
                                    bool cache) {
  std::shared_ptr<InFlightResult> leader;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    auto in_flight = result_inflight_.find(key);
    PCBL_CHECK(in_flight != result_inflight_.end());
    leader = in_flight->second;
    result_inflight_.erase(in_flight);
    if (cache && result_budget_ > 0 && bytes <= result_budget_) {
      result_lru_.push_front(
          ResultEntry{key, value, bytes, leader->rows});
      result_map_[key] = result_lru_.begin();
      result_bytes_ += bytes;
      ++result_stats_.insertions;
      EvictResultsLocked();
    }
  }
  // Outside results_mu_: set_value wakes every parked joiner.
  leader->promise.set_value(std::move(value));
}

void CountingService::ResultAbort(const QueryResultKey& key,
                                  std::exception_ptr error) {
  std::shared_ptr<InFlightResult> leader;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    auto in_flight = result_inflight_.find(key);
    PCBL_CHECK(in_flight != result_inflight_.end());
    leader = in_flight->second;
    result_inflight_.erase(in_flight);
  }
  leader->promise.set_exception(std::move(error));
}

void CountingService::InvalidateResults() {
  // Entry destruction (the cached results themselves) happens outside
  // the lock.
  std::list<ResultEntry> dropped;
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    dropped.swap(result_lru_);
    result_map_.clear();
    result_bytes_ = 0;
    result_bytes_relaxed_.store(0, std::memory_order_relaxed);
    ++result_stats_.invalidations;
  }
}

void CountingService::EvictResultsLocked() {
  while (result_bytes_ > result_budget_ && !result_lru_.empty()) {
    const ResultEntry& tail = result_lru_.back();
    result_bytes_ -= tail.bytes;
    result_map_.erase(tail.key);
    result_lru_.pop_back();
    ++result_stats_.evictions;
  }
  result_bytes_relaxed_.store(result_bytes_, std::memory_order_relaxed);
}

ResultTierStats CountingService::result_tier_stats() const {
  std::lock_guard<std::mutex> lock(results_mu_);
  ResultTierStats stats = result_stats_;
  stats.entries = static_cast<int64_t>(result_lru_.size());
  stats.bytes = result_bytes_;
  return stats;
}

// --- wave scheduler --------------------------------------------------------

std::vector<int64_t> CountingService::WaveCountPatterns(
    const std::vector<AttrMask>& masks, int64_t budget,
    const CountingEngineOptions& config,
    std::vector<std::shared_ptr<const GroupCounts>>* counts_out) {
  WaveRequest req;
  req.masks = &masks;
  req.budget = budget;
  req.want_counts = false;
  req.collect = counts_out != nullptr;
  req.config = config;
  SubmitWave(req);
  if (counts_out != nullptr) *counts_out = std::move(req.counts);
  return std::move(req.sizes);
}

std::vector<std::shared_ptr<const GroupCounts>>
CountingService::WavePatternCounts(const std::vector<AttrMask>& masks,
                                   const CountingEngineOptions& config) {
  WaveRequest req;
  req.masks = &masks;
  req.want_counts = true;
  req.config = config;
  SubmitWave(req);
  return std::move(req.counts);
}

void CountingService::SubmitWave(WaveRequest& req) {
  std::unique_lock<std::mutex> lock(wave_mu_);
  wave_queue_.push_back(&req);
  wave_stats_.requests += 1;
  wave_stats_.request_masks += static_cast<int64_t>(req.masks->size());
  // Wake a coordinator idling in its admission window — this request may
  // complete its batch.
  wave_cv_.notify_all();
  while (!req.done) {
    if (!coordinator_active_) {
      coordinator_active_ = true;
      // The stint must step down on every path — a throw that left
      // coordinator_active_ set would wedge the scheduler for good
      // (every later request would wait for a coordinator that no
      // longer exists). RunCoordinator already converts wave failures
      // into per-request `error`s; this guards the residual throws
      // (e.g. allocation inside the drain loop itself).
      try {
        RunCoordinator(lock);
      } catch (...) {
        coordinator_active_ = false;
        wave_cv_.notify_all();
        throw;
      }
      coordinator_active_ = false;
      wave_cv_.notify_all();
      // The coordinator stint drained the whole queue — our own request
      // included — so the loop exits on the next check.
      continue;
    }
    wave_cv_.wait(lock);
  }
  // A failed merged wave fails every rider the same way the serialized
  // engine call would have failed its single caller.
  if (req.error != nullptr) std::rethrow_exception(req.error);
}

void CountingService::RunCoordinator(std::unique_lock<std::mutex>& lock) {
  while (!wave_queue_.empty()) {
    // Admission window: when other queries are admitted but have not
    // enqueued their next wave yet, hold the batch open briefly so
    // near-simultaneous waves merge instead of executing twice. The wait
    // ends the moment every admitted query has a request queued (the
    // common case for phase-locked identical searches — microseconds),
    // and is skipped entirely for a solo query.
    if (admission_window_.count() > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + admission_window_;
      while (static_cast<int64_t>(wave_queue_.size()) <
                 active_queries_relaxed_.load(std::memory_order_relaxed) &&
             wave_cv_.wait_until(lock, deadline) !=
                 std::cv_status::timeout) {
      }
    }
    std::vector<WaveRequest*> batch(wave_queue_.begin(), wave_queue_.end());
    wave_queue_.clear();
    wave_stats_.waves += 1;
    if (batch.size() > 1) wave_stats_.merged_waves += 1;
    lock.unlock();
    std::exception_ptr error;
    try {
      ExecuteWave(batch);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    for (WaveRequest* req : batch) {
      req->error = error;
      req->done = true;
    }
    wave_cv_.notify_all();
    // Later-queued requests get a fresh attempt: a transient failure
    // (allocation pressure) must not poison the whole queue.
  }
}

void CountingService::ExecuteWave(const std::vector<WaveRequest*>& batch) {
  // Merge the batch: one deduped mask list per engine entry point.
  // `counts` requests subsume sizing requests for the same mask — a full
  // PC set answers a sizing exactly (its group count is within any
  // budget contract).
  CountingEngineOptions merged;
  std::unordered_map<uint64_t, size_t> count_slot;  // mask -> counts index
  std::unordered_map<uint64_t, size_t> size_slot;   // mask -> sizing index
  std::vector<AttrMask> count_masks;
  std::vector<AttrMask> size_masks;
  int64_t size_budget = 0;
  bool any_sizing = false;
  bool any_collect = false;
  bool first = true;
  for (const WaveRequest* req : batch) {
    FoldConfig(req->config, &merged, first);
    first = false;
    for (const AttrMask mask : *req->masks) {
      if (req->want_counts) {
        if (!count_slot.contains(mask.bits())) {
          count_slot.emplace(mask.bits(), count_masks.size());
          count_masks.push_back(mask);
        }
      } else {
        if (!any_sizing) {
          size_budget = req->budget;
        } else if (size_budget >= 0) {
          // The most generous budget wins: -1 (exact) absorbs all.
          size_budget = req->budget < 0
                            ? -1
                            : std::max(size_budget, req->budget);
        }
        any_sizing = true;
        any_collect = any_collect || req->collect;
        if (!size_slot.contains(mask.bits())) {
          size_slot.emplace(mask.bits(), size_masks.size());
          size_masks.push_back(mask);
        }
      }
    }
  }
  // Sizing masks also requested as full counts are served from the
  // counts call alone.
  if (!count_slot.empty() && !size_masks.empty()) {
    std::vector<AttrMask> kept;
    kept.reserve(size_masks.size());
    std::unordered_map<uint64_t, size_t> kept_slot;
    for (const AttrMask mask : size_masks) {
      if (count_slot.contains(mask.bits())) continue;
      kept_slot.emplace(mask.bits(), kept.size());
      kept.push_back(mask);
    }
    size_masks.swap(kept);
    size_slot.swap(kept_slot);
  }

  std::vector<std::shared_ptr<const GroupCounts>> count_results;
  std::vector<int64_t> size_results;
  std::vector<std::shared_ptr<const GroupCounts>> size_counts;
  {
    std::lock_guard<std::mutex> engine_lock(mu_);
    // The most-capable fold extends across waves: while other queries
    // are admitted, a wave must not shrink the cache budget below what
    // the engine already runs with — otherwise a low-budget query's
    // solo waves would evict the shared warm entries once per wave
    // (the serialized path paid that eviction once per search). A truly
    // solo query applies its config verbatim, exactly like Configure on
    // the serialized path.
    if (active_queries() > 1) {
      merged.cache_budget =
          std::max(merged.cache_budget, engine_.options().cache_budget);
    }
    engine_.Reconfigure(merged);
    if (!count_masks.empty()) {
      count_results = engine_.PatternCountsBatch(count_masks);
    }
    if (!size_masks.empty()) {
      size_results = engine_.CountPatternsBatchCollect(
          size_masks, size_budget, any_collect ? &size_counts : nullptr);
    }
  }
  {
    std::lock_guard<std::mutex> lock(wave_mu_);
    wave_stats_.executed_masks +=
        static_cast<int64_t>(count_masks.size() + size_masks.size());
  }

  // Route every mask's answers back to its requesters.
  for (WaveRequest* req : batch) {
    const size_t n = req->masks->size();
    if (req->want_counts) {
      req->counts.resize(n);
    } else {
      req->sizes.resize(n);
      if (req->collect) req->counts.resize(n);
    }
    for (size_t i = 0; i < n; ++i) {
      const uint64_t bits = (*req->masks)[i].bits();
      if (req->want_counts) {
        req->counts[i] = count_results[count_slot.at(bits)];
        continue;
      }
      auto from_counts = count_slot.find(bits);
      if (from_counts != count_slot.end()) {
        const std::shared_ptr<const GroupCounts>& pc =
            count_results[from_counts->second];
        req->sizes[i] = pc->num_groups();
        if (req->collect) req->counts[i] = pc;
        continue;
      }
      const size_t slot = size_slot.at(bits);
      req->sizes[i] = size_results[slot];
      if (req->collect && !size_counts.empty()) {
        req->counts[i] = size_counts[slot];
      }
    }
  }
}

// --- appends ---------------------------------------------------------------

void CountingService::AppendRow(const std::vector<ValueId>& codes) {
  AppendAdmission admission(*this);
  AppendRowLocked(codes);
}

void CountingService::AppendRows(
    const std::vector<std::vector<ValueId>>& rows) {
  AppendAdmission admission(*this);
  AppendRowsLocked(rows);
}

void CountingService::AppendRowLocked(const std::vector<ValueId>& codes) {
  // Results describe the pre-append rows; clear before the data grows
  // (the exclusive admission excludes every lookup and publish, so the
  // order matters only for crash hygiene — an interrupted append leaves
  // an empty cache, never a stale one).
  InvalidateResults();
  engine_.ApplyAppend({codes});
}

void CountingService::AppendRowsLocked(
    const std::vector<std::vector<ValueId>>& rows) {
  InvalidateResults();
  const int64_t cached = engine_.stats().cached_groups;
  const int64_t work = static_cast<int64_t>(rows.size()) * cached;
  if (work > kMaxPatchWork) {
    engine_.InvalidateCache();  // the invalidate arm
  }
  engine_.ApplyAppend(rows);
}

// --- string-level appends (shared interning + group commit) ----------------

Status CountingService::AppendStrings(
    const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return Status::Ok();
  AppendTicket ticket;
  ticket.rows = &rows;
  return SubmitAppend(ticket);
}

Status CountingService::AppendTable(const Table& delta) {
  AppendTicket ticket;
  ticket.delta = &delta;
  return SubmitAppend(ticket);
}

int64_t CountingService::TicketRows(const AppendTicket& ticket) {
  if (ticket.rows != nullptr) {
    return static_cast<int64_t>(ticket.rows->size());
  }
  return ticket.delta->num_rows();
}

Status CountingService::SubmitAppend(AppendTicket& ticket) {
  if (!append_group_commit_.load(std::memory_order_relaxed)) {
    // Solo arm: this request is its own batch (the bench's baseline).
    {
      std::lock_guard<std::mutex> lock(append_mu_);
      append_stats_.requests += 1;
      append_stats_.request_rows += TicketRows(ticket);
    }
    AppendAdmission admission(*this);
    CommitAppendBatch({&ticket});
    return ticket.status;
  }
  std::unique_lock<std::mutex> lock(append_mu_);
  append_queue_.push_back(&ticket);
  append_stats_.requests += 1;
  append_stats_.request_rows += TicketRows(ticket);
  while (!ticket.done) {
    if (!append_leader_active_) {
      append_leader_active_ = true;
      lock.unlock();
      // The stint must step down on every path — a throw that left the
      // flag set would wedge every later append behind a leader that no
      // longer exists (the wave coordinator has the same guard).
      try {
        RunAppendLeader();
      } catch (...) {
        lock.lock();
        append_leader_active_ = false;
        append_cv_.notify_all();
        throw;
      }
      lock.lock();
      append_leader_active_ = false;
      append_cv_.notify_all();
      // The stint committed the batch our own ticket was in — the loop
      // exits on the next check.
      continue;
    }
    append_cv_.wait(lock);
  }
  return ticket.status;
}

void CountingService::RunAppendLeader() {
  // The admission wait *is* the merge window: while this leader waits
  // for in-flight queries to drain, every concurrent append enqueues its
  // ticket and joins this batch. No timer needed — the window is exactly
  // as long as the gate is busy, and zero for a solo append on an idle
  // service.
  AppendAdmission admission(*this);
  std::vector<AppendTicket*> batch;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    batch.assign(append_queue_.begin(), append_queue_.end());
    append_queue_.clear();
  }
  // Non-empty by construction: the leader's own ticket was enqueued
  // before it volunteered and only a leader dequeues.
  PCBL_CHECK(!batch.empty());
  try {
    CommitAppendBatch(batch);
  } catch (...) {
    // Fail the whole batch rather than leave siblings parked forever;
    // the statuses are best-effort (the exception itself propagates to
    // this leader's caller, exactly as the serialized engine hook would
    // have thrown).
    std::lock_guard<std::mutex> lock(append_mu_);
    for (AppendTicket* t : batch) {
      if (!t->status.ok() || t->done) continue;
      t->status = InternalError("append group commit threw");
    }
    for (AppendTicket* t : batch) t->done = true;
    append_cv_.notify_all();
    throw;
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  for (AppendTicket* t : batch) t->done = true;
  append_cv_.notify_all();
}

void CountingService::CommitAppendBatch(
    const std::vector<AppendTicket*>& batch) {
  const Table& base = engine_.table();
  const int n = base.num_attributes();
  // Interning guard: a code-level consumer (AppendRow/AppendRows — e.g.
  // IncrementalLabel) may have grown the code space without the
  // interner. String-level appends could then assign codes that collide
  // with the anonymous ones, so they are refused instead.
  for (int a = 0; a < n; ++a) {
    if (engine_.EffectiveDomainSize(a) == interner_.NextCode(a)) continue;
    const Status refused = FailedPreconditionError(
        "this service's code space was grown by a code-level append "
        "(CountingService::AppendRow/AppendRows) that bypassed the "
        "shared interner; string-level appends can no longer assign "
        "consistent codes — open a fresh Dataset over the base content");
    for (AppendTicket* t : batch) t->status = refused;
    return;
  }
  SharedInterner::Batch stage(interner_);
  std::vector<std::vector<ValueId>> rows;
  int64_t merged = 0;
  int64_t failed = 0;
  for (AppendTicket* t : batch) {
    ++merged;
    const SharedInterner::Batch::Savepoint save = stage.Save();
    const size_t rows_before = rows.size();
    Status s = EncodeTicket(*t, &stage, &rows);
    if (s.ok() && append_fault_hook_ != nullptr) {
      s = append_fault_hook_(TicketRows(*t));
    }
    if (!s.ok()) {
      // Transactional per ticket: drop exactly this ticket's rows and
      // staged values; later tickets re-intern from the savepoint, so
      // their codes match a rebuild that never saw the failed rows.
      stage.RollbackTo(save);
      rows.resize(rows_before);
      t->status = std::move(s);
      ++failed;
      continue;
    }
    t->status = Status::Ok();
  }
  if (!rows.empty()) {
    // One critical-section body for the whole batch: one result-cache
    // invalidation, one invalidate-or-patch engine hook. The interner
    // publishes last — if the engine hook ever threw, no phantom
    // dictionary entries would survive it.
    if (rows.size() == 1) {
      AppendRowLocked(rows[0]);
    } else {
      AppendRowsLocked(rows);
    }
    interner_.Commit(std::move(stage));
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  append_stats_.batches += 1;
  if (merged > 1) append_stats_.merged_batches += 1;
  append_stats_.committed_rows += static_cast<int64_t>(rows.size());
  append_stats_.failed_requests += failed;
}

Status CountingService::EncodeTicket(
    const AppendTicket& ticket, SharedInterner::Batch* stage,
    std::vector<std::vector<ValueId>>* rows) const {
  const Table& base = engine_.table();
  const int n = base.num_attributes();
  if (ticket.rows != nullptr) {
    rows->reserve(rows->size() + ticket.rows->size());
    for (const std::vector<std::string>& row : *ticket.rows) {
      if (static_cast<int>(row.size()) != n) {
        return InvalidArgumentError(
            StrCat("row has ", row.size(), " values, schema has ", n));
      }
      std::vector<ValueId> codes(static_cast<size_t>(n), kNullValue);
      for (int a = 0; a < n; ++a) {
        const std::string& v = row[static_cast<size_t>(a)];
        if (v.empty() || v == "NULL") continue;  // TableBuilder rules
        codes[static_cast<size_t>(a)] = stage->Intern(a, v);
      }
      rows->push_back(std::move(codes));
    }
    return Status::Ok();
  }
  const Table& delta = *ticket.delta;
  if (delta.num_attributes() != n) {
    return InvalidArgumentError("delta schema width differs");
  }
  for (int a = 0; a < n; ++a) {
    if (delta.schema().name(a) != base.schema().name(a)) {
      return InvalidArgumentError(
          StrCat("delta attribute ", a, " is \"", delta.schema().name(a),
                 "\", expected \"", base.schema().name(a), "\""));
    }
  }
  // Remap delta codes, interning fresh values lazily — only values that
  // actually appear in a delta row, in row-major first-seen order,
  // exactly as a TableBuilder rebuild would. (Interning the delta's
  // whole dictionary up front would also intern values its rows never
  // use — e.g. a delta produced by FilterRows keeps its parent's full
  // dictionary — shifting fresh ids versus the rebuilt extended table
  // and silently breaking byte-identity.)
  std::vector<std::vector<ValueId>> remap(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    remap[static_cast<size_t>(a)].assign(delta.dictionary(a).size(),
                                         kNullValue);  // = not yet mapped
  }
  rows->reserve(rows->size() + static_cast<size_t>(delta.num_rows()));
  for (int64_t r = 0; r < delta.num_rows(); ++r) {
    std::vector<ValueId> codes(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      const ValueId v = delta.value(r, a);
      if (IsNull(v)) {
        codes[static_cast<size_t>(a)] = kNullValue;
        continue;
      }
      ValueId& mapped = remap[static_cast<size_t>(a)][v];
      if (IsNull(mapped)) {
        mapped = stage->Intern(a, delta.dictionary(a).GetString(v));
      }
      codes[static_cast<size_t>(a)] = mapped;
    }
    rows->push_back(std::move(codes));
  }
  return Status::Ok();
}

// --- warm-start persistence (docs/PERSISTENCE.md) --------------------------

ServiceWarmState CountingService::ExportWarmState() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceWarmState state;
  const Table& base = engine_.table();
  const int n = base.num_attributes();
  state.interner_deltas.resize(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    const int64_t base_domain = base.DomainSize(a);
    const int64_t added = interner_.AddedValues(a);
    std::vector<std::string>& log =
        state.interner_deltas[static_cast<size_t>(a)];
    log.reserve(static_cast<size_t>(added));
    for (int64_t i = 0; i < added; ++i) {
      log.push_back(
          interner_.GetString(a, static_cast<ValueId>(base_domain + i)));
    }
  }
  const int64_t appended = engine_.num_appended_rows();
  if (appended > 0 && n > 0) {
    state.appended_rows.resize(static_cast<size_t>(appended * n));
    engine_.CopyAppendedRows(0, appended, state.appended_rows.data());
  }
  state.entries = engine_.ExportCacheSnapshot();
  return state;
}

void CountingService::RestoreWarmState(const ServiceWarmState& state) {
  const int n = engine_.table().num_attributes();
  // Stage the interner deltas outside the lock (Batch reads only
  // committed state); everything else happens under it.
  SharedInterner::Batch batch(interner_);
  const size_t attrs =
      std::min(state.interner_deltas.size(), static_cast<size_t>(n));
  for (size_t a = 0; a < attrs; ++a) {
    for (const std::string& value : state.interner_deltas[a]) {
      (void)batch.Intern(static_cast<int>(a), value);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  interner_.Commit(std::move(batch));
  if (!state.appended_rows.empty() && n > 0) {
    const int64_t rows =
        static_cast<int64_t>(state.appended_rows.size()) / n;
    std::vector<std::vector<ValueId>> delta(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      const ValueId* row = state.appended_rows.data() + r * n;
      delta[static_cast<size_t>(r)].assign(row, row + n);
    }
    // The cache is still empty here, so ApplyAppend patches nothing —
    // the imported entries below already reflect these rows.
    engine_.ApplyAppend(delta);
  }
  engine_.ImportCacheSnapshot(state.entries);
}

AppendBatchStats CountingService::append_stats() const {
  AppendBatchStats stats;
  {
    std::lock_guard<std::mutex> lock(append_mu_);
    stats = append_stats_;
    stats.pending = static_cast<int64_t>(append_queue_.size());
  }
  stats.interned_values = interner_.AddedValuesRelaxed();
  return stats;
}

}  // namespace pcbl
