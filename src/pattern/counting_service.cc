#include "pattern/counting_service.h"

namespace pcbl {

namespace {

// Patch-vs-invalidate pivot: patching costs one binary search + insertion
// per (row, cached entry) pair, a rescan costs O(rows) per future sizing.
// Beyond this much patch work the cache is cheaper to rebuild than to
// repair.
constexpr int64_t kMaxPatchWork = int64_t{1} << 22;

}  // namespace

void CountingService::AppendRow(const std::vector<ValueId>& codes) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendRowLocked(codes);
}

void CountingService::AppendRows(
    const std::vector<std::vector<ValueId>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendRowsLocked(rows);
}

void CountingService::AppendRowsLocked(
    const std::vector<std::vector<ValueId>>& rows) {
  const int64_t cached = engine_.stats().cached_groups;
  const int64_t work = static_cast<int64_t>(rows.size()) * cached;
  if (work > kMaxPatchWork) {
    engine_.InvalidateCache();  // the invalidate arm
  }
  engine_.ApplyAppend(rows);
}

}  // namespace pcbl
