// SubsetTrie: a set-trie over AttrMasks answering best-superset queries.
//
// The CountingEngine's rollup planner needs, for a queried subset S, the
// cached entry T ⊃ S with the fewest groups (aggregating T's groups must
// beat a row scan). PR 1 answered this by scanning every popcount bucket
// above |S| — O(cached entries) per query, which an exponential subset
// sweep with thousands of cached high-level entries pays on every mask.
//
// This structure stores each mask as a root-to-node path over its
// attribute indices in increasing order (a set-trie in the sense of
// Savnik's "Index data structure for fast subset and superset queries").
// A superset query walks the trie keeping only children that can still
// cover the remaining required attributes: a child edge with attribute c
// is followable iff c <= q (q = smallest still-required attribute), since
// paths are increasing — once c > q no descendant can contain q. Each
// node carries the minimum entry weight of its subtree, so the search is
// best-first-prunable and typically touches a handful of nodes.
//
// Weights are the entries' group counts; the query returns the
// minimum-weight strict superset below a caller-supplied limit. Ties keep
// the first candidate in DFS (child-ascending) order, which is
// deterministic — and immaterial for the engine, since every ancestor
// rolls up to identical counts.
#ifndef PCBL_PATTERN_SUBSET_TRIE_H_
#define PCBL_PATTERN_SUBSET_TRIE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "util/attr_mask.h"

namespace pcbl {

class SubsetTrie {
 public:
  /// Inserts `mask` with the given weight, or updates the weight when the
  /// mask is already present.
  void Insert(AttrMask mask, int64_t weight);

  /// Removes `mask`; no-op when absent.
  void Erase(AttrMask mask);

  /// The minimum-weight *strict* superset of `mask` whose weight is below
  /// `weight_limit`, or nullopt. O(nodes touched), pruned by subtree
  /// minima.
  struct Match {
    AttrMask mask;
    int64_t weight = 0;
  };
  std::optional<Match> BestStrictSuperset(AttrMask mask,
                                          int64_t weight_limit) const;

  /// Drops every entry (nodes are recycled).
  void Clear();

  int64_t num_entries() const { return num_entries_; }

 private:
  static constexpr int64_t kNoEntry = -1;
  static constexpr int64_t kInf = INT64_MAX;

  struct Node {
    int attr = -1;    // edge label into this node (-1 for the root)
    int parent = -1;  // node index of the parent (-1 for the root)
    int64_t entry_weight = kNoEntry;
    uint64_t entry_bits = 0;
    int64_t subtree_min = kInf;
    /// (attr, node index), ascending by attr. Subsets are tiny (<= 64
    /// attrs) so linear probes beat any map.
    std::vector<std::pair<int, int>> children;
  };

  int ChildOf(int node, int attr) const;
  int ChildOrCreate(int node, int attr);
  // Recomputes subtree_min from `node` up to the root.
  void PullUpMin(int node);
  void FindBest(int node, uint64_t required, uint64_t query_bits,
                int64_t weight_limit, std::optional<Match>* best) const;

  std::vector<Node> nodes_ = {Node{}};  // nodes_[0] is the root
  int64_t num_entries_ = 0;
  // Entries per popcount level. A query whose level is >= the highest
  // occupied one cannot have a strict superset — the O(1) short-circuit
  // that keeps the searches' small-to-large traversal from ever walking
  // the trie (their cached masks are never above the queried level).
  int level_count_[kMaxAttributes + 1] = {0};
  int max_entry_level_ = 0;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_SUBSET_TRIE_H_
