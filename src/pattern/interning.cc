#include "pattern/interning.h"

#include <utility>

#include "util/logging.h"

namespace pcbl {

SharedInterner::SharedInterner(const Table& table)
    : table_(&table),
      added_(static_cast<size_t>(table.num_attributes())) {}

ValueId SharedInterner::Lookup(int attr, std::string_view value) const {
  const ValueId base = table_->dictionary(attr).Lookup(value);
  if (!IsNull(base)) return base;
  const AttrLog& log = added_[static_cast<size_t>(attr)];
  auto it = log.index.find(std::string(value));
  return it == log.index.end() ? kNullValue : it->second;
}

const std::string& SharedInterner::GetString(int attr, ValueId code) const {
  const ValueId base = table_->DomainSize(attr);
  if (code < base) return table_->dictionary(attr).GetString(code);
  const AttrLog& log = added_[static_cast<size_t>(attr)];
  const size_t pos = static_cast<size_t>(code - base);
  PCBL_CHECK(pos < log.values.size())
      << "code " << code << " exceeds attribute " << attr
      << "'s committed code space (" << NextCode(attr) << ")";
  return log.values[pos];
}

int64_t SharedInterner::NextCode(int attr) const {
  return static_cast<int64_t>(table_->DomainSize(attr)) +
         static_cast<int64_t>(added_[static_cast<size_t>(attr)].values.size());
}

int64_t SharedInterner::AddedValues(int attr) const {
  return static_cast<int64_t>(added_[static_cast<size_t>(attr)].values.size());
}

void SharedInterner::Commit(Batch&& batch) {
  PCBL_CHECK(batch.committed_ == this);
  int64_t published = 0;
  for (size_t a = 0; a < added_.size(); ++a) {
    Batch::AttrStage& stage = batch.staged_[a];
    if (stage.values.empty()) continue;
    AttrLog& log = added_[a];
    for (auto& [value, code] : stage.index) {
      log.index.emplace(value, code);
    }
    published += static_cast<int64_t>(stage.values.size());
    log.values.insert(log.values.end(),
                      std::make_move_iterator(stage.values.begin()),
                      std::make_move_iterator(stage.values.end()));
    stage.values.clear();
    stage.index.clear();
  }
  if (published > 0) {
    added_relaxed_.fetch_add(published, std::memory_order_relaxed);
  }
}

SharedInterner::Batch::Batch(const SharedInterner& committed)
    : committed_(&committed), staged_(committed.added_.size()) {}

ValueId SharedInterner::Batch::Intern(int attr, std::string_view value) {
  const ValueId known = committed_->Lookup(attr, value);
  if (!IsNull(known)) return known;
  AttrStage& stage = staged_[static_cast<size_t>(attr)];
  std::string key(value);
  auto it = stage.index.find(key);
  if (it != stage.index.end()) return it->second;
  const ValueId code = static_cast<ValueId>(
      committed_->NextCode(attr) + static_cast<int64_t>(stage.values.size()));
  stage.index.emplace(std::move(key), code);
  stage.values.emplace_back(value);
  return code;
}

SharedInterner::Batch::Savepoint SharedInterner::Batch::Save() const {
  Savepoint sp;
  sp.staged.reserve(staged_.size());
  for (const AttrStage& stage : staged_) {
    sp.staged.push_back(stage.values.size());
  }
  return sp;
}

void SharedInterner::Batch::RollbackTo(const Savepoint& sp) {
  PCBL_CHECK(sp.staged.size() == staged_.size());
  for (size_t a = 0; a < staged_.size(); ++a) {
    AttrStage& stage = staged_[a];
    PCBL_CHECK(sp.staged[a] <= stage.values.size());
    while (stage.values.size() > sp.staged[a]) {
      stage.index.erase(stage.values.back());
      stage.values.pop_back();
    }
  }
}

int64_t SharedInterner::Batch::staged_values() const {
  int64_t n = 0;
  for (const AttrStage& stage : staged_) {
    n += static_cast<int64_t>(stage.values.size());
  }
  return n;
}

}  // namespace pcbl
