// CountingEngine: the memoized, parallel candidate-sizing subsystem of the
// label search.
//
// The search algorithms (Sec. III / Algorithm 1) are dominated by sizing
// candidate attribute subsets: every examined subset S needs |P_S|, and
// every surviving candidate additionally needs its full PC set to build
// the label. Calling the one-shot counters in counter.h performs a serial
// full-table row scan per subset. This engine removes that bottleneck
// along four axes, while keeping results *byte-identical* to the one-shot
// counters for any thread count and cache budget:
//
//  1. Batching — a lattice level's candidate masks are sized together via
//     CountPatternsBatch, spreading the independent scans over a
//     ParallelFor.
//  2. Kernels — packed-eligible subsets (packed_codec.h) are sized by the
//     tiled bit-packed kernels of packed_kernels.h: shift/OR encoding,
//     arity-2/3 specializations, dense-bitmap distinctness. Non-eligible
//     subsets take the mixed-radix or sort paths of counter.h.
//  3. Memoization — sizing a subset within budget materializes its full
//     PC set as a by-product (same pass, same cost regime), and the
//     result is cached per AttrMask in a size-bounded cache with
//     deterministic FIFO eviction. Label::BuildFromCounts then reuses the
//     cached counts, so the ranking phase of the search never rescans the
//     table for a candidate the generation phase already counted.
//  4. Rollup — when a cached entry for a *superset* T ⊇ S exists, the
//     PC set of S is derived by aggregating T's groups (projecting each
//     group key onto S and re-grouping) instead of rescanning the table.
//     The best (fewest-groups) cached ancestor is found through a
//     SubsetTrie in near-constant time. Group counts are far smaller than
//     row counts on the paper's skewed datasets, and exactness is
//     preserved: a tuple's restriction to S is the projection of its
//     restriction to T, and any restriction dropped from T's PC set
//     (arity < 2 over T) projects to arity < 2 over S.
//
// Fallbacks keep the engine total: masks whose nullable key space
// overflows 64 bits, or for which no useful cached ancestor exists, take
// the direct scan path of counter.h (or the engine's own delta-aware sort
// fallback once rows were appended).
//
// The engine outlives a single search: CountingService (counting_service.h)
// keeps one engine per dataset so that repeated queries hit warm PC sets,
// and ApplyAppend lets a growing dataset patch the cached entries in
// place instead of discarding them (appended rows are tracked as a
// row-major delta block included by every scan, so answers stay exact
// against the extended data). Once the delta block outgrows
// options().delta_compact_threshold, CompactDeltas folds it into an
// engine-owned columnar base (byte-exact vs. a from-scratch rebuild of
// the extended table), so steady appends never degenerate into a
// row-major scan tax.
//
// Thread-safety: the const probes (CachedPatternCounts, stats, table) are
// safe to call concurrently with each other; the mutating calls
// (CountPatterns*, CountCombos, PatternCounts, ApplyAppend, Reconfigure)
// must be externally serialized (CountingService provides the lock).
// CountPatternsBatch parallelizes internally and commits cache updates in
// deterministic input order, so cache contents never depend on thread
// scheduling.
#ifndef PCBL_PATTERN_COUNTING_ENGINE_H_
#define PCBL_PATTERN_COUNTING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pattern/counter.h"
#include "pattern/subset_trie.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {

/// Tuning knobs of the counting engine.
struct CountingEngineOptions {
  /// Master switch: when false every call delegates to the one-shot
  /// counters in counter.h (no batching, no cache) — the byte-identical
  /// reference behaviour. A disabled engine still accepts appends: once
  /// rows were appended (the one-shot counters cannot see them) the
  /// delegate becomes the engine's own uncached delta-aware scan, which
  /// stays byte-identical to the one-shot counters over a rebuilt table.
  bool enabled = true;

  /// Worker threads for CountPatternsBatch (1 = serial). Results are
  /// identical for any value; only wall-clock changes.
  int num_threads = 1;

  /// Minimum rows per morsel for morsel-parallel exact scans
  /// (packed_kernels.h): a single subset's row range splits across
  /// threads only when every piece keeps at least this many rows, so
  /// small subsets never pay thread-spawn overhead. <= 0 disables
  /// intra-subset parallelism. Like num_threads, results are identical
  /// for any value — the per-morsel partials merge with order-insensitive
  /// operations and every materialization sorts.
  int64_t min_rows_per_morsel = 32768;

  /// Memoization budget in cached *group entries* summed over all cached
  /// PC sets (each entry also costs one slot of overhead). 0 disables
  /// caching entirely; sizing and counting still work, just without
  /// reuse. Eviction is FIFO by insertion order — deterministic.
  int64_t cache_budget = int64_t{1} << 20;

  /// Appended-row count beyond which ApplyAppend folds the delta block
  /// into the engine's columnar base storage (CompactDeltas). <= 0
  /// disables the automatic trigger; CompactDeltas can still be called
  /// explicitly. Results are byte-identical either way — compaction is a
  /// physical reorganization, not a semantic one.
  int64_t delta_compact_threshold = 4096;
};

/// Observability counters (bench/debug output; not part of the exactness
/// contract).
struct CountingEngineStats {
  int64_t sizings = 0;       ///< CountPatterns answers (incl. batched).
  int64_t cache_hits = 0;    ///< answered from an exact cached entry
  int64_t rollups = 0;       ///< derived by aggregating a cached superset
  int64_t direct_scans = 0;  ///< table scans attempted (incl. aborted)
  int64_t full_scans = 0;    ///< direct scans that ran to completion and
                             ///< materialized a PC set (the expensive
                             ///< regime a warm cache eliminates)
  int64_t evictions = 0;     ///< cache entries evicted
  int64_t cached_groups = 0; ///< current cache load (group entries)
  int64_t cached_bytes = 0;  ///< resident cache bytes (pinned included)
  int64_t patched_entries = 0;  ///< cached PC sets patched by appends
  int64_t invalidations = 0;    ///< whole-cache invalidations
  int64_t compactions = 0;      ///< delta blocks folded into the base
};

/// Owns all candidate sizing for one table (plus any rows appended through
/// ApplyAppend). The cache keys assume the base table never changes
/// underneath.
class CountingEngine {
 public:
  explicit CountingEngine(const Table& table,
                          CountingEngineOptions options = {});

  /// |P_S| of `mask` with the early-exit budget contract of
  /// CountDistinctPatterns: exact when <= budget, otherwise any value >
  /// budget (budget < 0 = exact). Within-budget results are cached with
  /// their full PC set.
  int64_t CountPatterns(AttrMask mask, int64_t budget = -1);

  /// Sizes `masks` concurrently over options.num_threads; element i is
  /// CountPatterns(masks[i], budget). Cache commits happen serially in
  /// input order after the parallel section.
  std::vector<int64_t> CountPatternsBatch(const std::vector<AttrMask>& masks,
                                          int64_t budget);

  /// CountPatternsBatch that additionally hands back each mask's
  /// materialized PC set: counts_out->at(i) is non-null exactly when the
  /// sizing materialized one (always when sizes[i] <= budget and the
  /// engine is enabled; never while disabled — nothing materializes
  /// there). This is the merged-batch entry point of the service's wave
  /// scheduler: each waiting query keeps the handles as its own memo
  /// view, so its ranking phase never has to re-probe a cache that other
  /// queries keep mutating. Sizes, cache contents and stats are
  /// byte-identical to CountPatternsBatch.
  std::vector<int64_t> CountPatternsBatchCollect(
      const std::vector<AttrMask>& masks, int64_t budget,
      std::vector<std::shared_ptr<const GroupCounts>>* counts_out);

  /// Distinct non-NULL combinations over `mask`, same contract as
  /// CountDistinctCombos. Served from the cache (exact entry or superset
  /// rollup) when possible.
  int64_t CountCombos(AttrMask mask, int64_t budget = -1);

  /// The full PC set of `mask`, identical to ComputePatternCounts.
  /// Served from the cache when possible; inserted into it otherwise.
  std::shared_ptr<const GroupCounts> PatternCounts(AttrMask mask);

  /// PatternCounts over a batch: element i is the PC set of masks[i],
  /// planned serially against the cache, executed in parallel over
  /// options.num_threads, and committed serially in input order (cache
  /// contents and stats are identical for any thread count, like
  /// CountPatternsBatch). The append-aware ranking phase of LabelSearch
  /// materializes every candidate through this — with appended rows the
  /// one-shot counters are out of play, so each returned set reflects
  /// base + delta exactly.
  std::vector<std::shared_ptr<const GroupCounts>> PatternCountsBatch(
      const std::vector<AttrMask>& masks);

  /// PatternCounts, but the entry is *pinned*: exempt from eviction and
  /// from the cache budget. Use to prime a rollup ancestor (e.g. the
  /// full attribute set) ahead of a subset sweep that would otherwise
  /// cycle it out of a FIFO cache.
  std::shared_ptr<const GroupCounts> PinnedPatternCounts(AttrMask mask);

  /// Read-only cache probe: the PC set of exactly `mask` if currently
  /// cached, nullptr otherwise. Safe to call concurrently (e.g. from the
  /// ranking ParallelFor) as long as no mutating call runs.
  std::shared_ptr<const GroupCounts> CachedPatternCounts(
      AttrMask mask) const;

  /// Applies new options in place without discarding warm cache entries.
  /// Shrinking the budget evicts FIFO down to the new limit (a budget of
  /// 0 clears every unpinned entry); pinned entries are untouched.
  /// Disabling the engine leaves cached entries in place for a later
  /// re-enable (they stay exact: appends keep patching them), but no
  /// call serves from or inserts into the cache while disabled.
  void Reconfigure(const CountingEngineOptions& options);

  /// Drops every cached entry (pinned included) — the invalidate arm of
  /// the append hook. Appended rows are data, not cache, and survive.
  void InvalidateCache();

  /// Extends the counted dataset by `rows` (row-major, one ValueId per
  /// attribute in schema order; kNullValue for missing; codes beyond the
  /// base table's domain denote freshly interned values — ids must extend
  /// the base code space the way TableBuilder would). Every cached PC set
  /// is *patched* with the new rows' restrictions, so warm entries stay
  /// exact against the extended data; subsequent scans include the rows.
  /// Fully general: works with a disabled engine (scans then route
  /// through the engine's uncached delta-aware paths) and with subsets
  /// whose extended key space is not 64-bit-encodable (sort fallback).
  /// Once the delta block exceeds options().delta_compact_threshold the
  /// call finishes by folding it into the columnar base (CompactDeltas).
  void ApplyAppend(const std::vector<std::vector<ValueId>>& rows);

  /// Folds the row-major delta block into engine-owned columnar base
  /// storage: subsequent scans stream columns exactly as over a table
  /// rebuilt with the appended rows, and the per-scan delta tax is gone.
  /// Byte-exact: effective domains, codecs, and cached entries are
  /// unchanged — only the physical layout moves. No-op without deltas.
  void CompactDeltas();

  /// Base rows (table or compacted storage) plus uncompacted delta rows.
  int64_t total_rows() const { return base_rows() + num_delta_rows(); }

  /// Rows appended through ApplyAppend since construction, compacted or
  /// not. Non-zero means the engine describes more data than table().
  int64_t num_appended_rows() const {
    return total_rows() - table_->num_rows();
  }

  /// Appended rows still sitting in the row-major delta block.
  int64_t num_delta_rows() const {
    const int n = table_->num_attributes();
    return n == 0 ? 0
                  : static_cast<int64_t>(delta_rows_.size()) / n;
  }

  /// Effective domain size of `attr`: the base table's, grown by fresh
  /// codes interned through appended rows — the domains every codec (and
  /// a rebuilt extended table) would use. Equals Table::DomainSize until
  /// the first append.
  int64_t EffectiveDomainSize(int attr) const { return DomSizeOf(attr); }

  /// Copies appended row `i` (0-based over the num_appended_rows() rows,
  /// in append order) into `out[0 .. num_attributes)`. Valid before and
  /// after compaction — this is how a consumer that missed the append
  /// notifications (e.g. a sibling api::Session over the same shared
  /// service) catches its VC / P_A maintenance up to the engine's data.
  void CopyAppendedRow(int64_t i, ValueId* out) const;

  /// Batched CopyAppendedRow: copies appended rows [first, first+count)
  /// row-major into `out[0 .. count * num_attributes)`. The delta-block
  /// suffix is one contiguous copy, so a sibling session syncing a large
  /// backlog avoids the per-row call and per-row allocation entirely.
  void CopyAppendedRows(int64_t first, int64_t count, ValueId* out) const;

  /// One cache entry as seen by the warm-start spill store
  /// (src/persist/): the mask, whether it is pinned, and a handle on the
  /// immutable PC set.
  struct CacheSnapshotEntry {
    uint64_t mask_bits = 0;
    bool pinned = false;
    std::shared_ptr<const GroupCounts> counts;
  };

  /// Exports every cached PC set: unpinned entries first in FIFO
  /// insertion order (so replaying them through ImportCacheSnapshot
  /// reproduces the eviction order), then pinned entries in ascending
  /// mask order (deterministic — pinned_ is an unordered set). Requires
  /// the same external serialization as the mutating calls.
  std::vector<CacheSnapshotEntry> ExportCacheSnapshot() const;

  /// Replays a snapshot through the normal insert path, in order: the
  /// budget, FIFO order, the rollup trie, and the resident-bytes
  /// accountant all see the entries exactly as if scans had
  /// materialized them — under a smaller budget the oldest entries
  /// simply evict again. Entries must describe this engine's current
  /// data (base table plus any appends already applied); already-cached
  /// masks are skipped.
  void ImportCacheSnapshot(const std::vector<CacheSnapshotEntry>& entries);

  /// Resident cache bytes (keys + counts + per-entry overhead, pinned
  /// included). Safe to read without external serialization — this is
  /// one of the two engine observables the process-wide registry polls
  /// while other threads hold the service lock (its memory accountant).
  int64_t ResidentBytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }

  /// num_appended_rows(), readable without external serialization (the
  /// registry's divergence check on the acquire path).
  int64_t AppendedRowsRelaxed() const {
    return appended_rows_relaxed_.load(std::memory_order_relaxed);
  }

  /// Bytes of appended data resident in the engine — the row-major
  /// delta block plus, once compacted, the engine-owned columnar copy
  /// of the base table. Lock-free like ResidentBytes; the registry's
  /// accountant charges these alongside the cache bytes.
  int64_t AppendedBytesRelaxed() const {
    return appended_bytes_relaxed_.load(std::memory_order_relaxed);
  }

  const CountingEngineStats& stats() const { return stats_; }
  const CountingEngineOptions& options() const { return options_; }
  const Table& table() const { return *table_; }

 private:
  // How a sizing was answered (for stats attribution). kTrivial covers
  // |mask| < 2: the PC set is empty by definition, no table work happens.
  enum class Path { kHit, kRollup, kDirect, kTrivial };

  // Outcome of one sizing attempt: `counts` is engaged when the full PC
  // set was materialized (always when `size` is within the budget);
  // otherwise `size` is some value > budget.
  struct Sizing {
    std::shared_ptr<const GroupCounts> counts;
    int64_t size = 0;
    Path path = Path::kDirect;
    bool full_scan = false;  // a direct scan ran to completion
  };

  // How a mask will be sized, decided serially against the cache.
  struct Plan {
    std::shared_ptr<const GroupCounts> hit;       // exact cache entry
    std::shared_ptr<const GroupCounts> ancestor;  // strict-superset entry
  };

  Plan MakePlan(AttrMask mask) const;

  // Executes a plan (thread-safe: touches only the table and the plan's
  // shared entries). `morsel_threads` is the thread budget a direct
  // scan's exact packed passes may spend on intra-subset morsels: solo
  // entry points pass options_.num_threads, batch entry points pass the
  // per-mask share left over after spreading masks across the batch
  // ParallelFor.
  Sizing ExecutePlan(AttrMask mask, const Plan& plan, int64_t budget,
                     int morsel_threads = 1) const;

  // Full-scan sizing with budget abort; materializes counts on success.
  // `materialize = false` skips the PC-set materialization (and, on the
  // packed path, its second scan) for callers that only need the size —
  // the disabled-engine delegate, which cannot cache the counts anyway.
  Sizing DirectSizing(AttrMask mask, int64_t budget,
                      bool materialize = true,
                      int morsel_threads = 1) const;

  // Sort-based sizing over base + delta rows for subsets whose nullable
  // key space overflows 64 bits: materializes row-major restriction keys
  // (arity >= 2), sorts lexicographically (the canonical order — see
  // KeyLess), and run-counts. The general arm that keeps appends total.
  Sizing SortFallbackSizing(AttrMask mask, int64_t budget,
                            bool materialize) const;

  // Sort-based distinct-combination count over base + delta rows (the
  // non-encodable sibling of the delta-aware combo scan).
  int64_t SortFallbackCombos(AttrMask mask, int64_t budget) const;

  // Aggregates `ancestor` groups down to `mask`; exact. Aborts past
  // `budget` like DirectSizing. `mask`'s key space must be encodable.
  Sizing RollupSizing(const GroupCounts& ancestor, AttrMask mask,
                      int64_t budget) const;

  // Updates stats for one answered sizing and caches its counts.
  void Commit(AttrMask mask, const Sizing& sizing);

  // Inserts a materialized PC set into the cache (FIFO eviction; pinned
  // entries bypass eviction and the budget).
  void CacheInsert(AttrMask mask, std::shared_ptr<const GroupCounts> counts,
                   bool pinned = false);

  // Evicts the FIFO-oldest unpinned entry (insertion_order_ non-empty).
  void EvictFront();

  // Evicts FIFO until the unpinned load fits options_.cache_budget.
  void EvictToBudget();

  // Effective domain size of `attr`: the base table's, grown by appended
  // rows' fresh codes. All codecs (packed, mixed-radix) run over these so
  // delta codes encode/decode exactly as a rebuilt table would.
  int64_t DomSizeOf(int attr) const {
    return eff_dom_.empty()
               ? static_cast<int64_t>(table_->DomainSize(attr))
               : eff_dom_[static_cast<size_t>(attr)];
  }

  // Returns a new GroupCounts equal to `entry` with the delta rows in
  // [first_row, end) applied, or nullptr when no row contributes.
  std::shared_ptr<const GroupCounts> PatchedEntry(
      const GroupCounts& entry,
      const std::vector<std::vector<ValueId>>& rows) const;

  // True once ApplyAppend extended the dataset beyond table() — the
  // one-shot counters (which only see the table) are then out of play.
  bool has_appended_state() const {
    return base_rows_ >= 0 || !delta_rows_.empty();
  }

  // Columnar base the scans stream: the table until the first
  // compaction, the engine-owned compacted columns afterwards.
  int64_t base_rows() const {
    return base_rows_ >= 0 ? base_rows_ : table_->num_rows();
  }
  const ValueId* BaseColumn(int attr) const {
    return base_rows_ >= 0 ? base_cols_[static_cast<size_t>(attr)].data()
                           : table_->column(attr).data();
  }
  bool BaseHasNulls(int attr) const {
    return base_rows_ >= 0 ? base_has_nulls_[static_cast<size_t>(attr)]
                           : table_->HasNulls(attr);
  }

  // Resident-bytes cost of one cached entry; tracked in stats_ and the
  // lock-free resident_bytes_ mirror on every insert/evict/patch.
  static int64_t EntryBytes(const GroupCounts& counts);
  void AddResidentBytes(int64_t delta) {
    stats_.cached_bytes += delta;
    resident_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }

  const Table* table_;
  CountingEngineOptions options_;
  CountingEngineStats stats_;

  // mask bits -> cached PC set; insertion_order_ drives FIFO eviction
  // (pinned entries are absent from it and from the budget). ancestors_
  // indexes every cached mask for the rollup planner's best-superset
  // query.
  std::unordered_map<uint64_t, std::shared_ptr<const GroupCounts>> cache_;
  std::deque<uint64_t> insertion_order_;
  std::unordered_set<uint64_t> pinned_;
  SubsetTrie ancestors_;

  // Rows appended after construction (row-major, num_attributes stride)
  // and the effective per-attribute domains they imply (empty until the
  // first append).
  std::vector<ValueId> delta_rows_;
  std::vector<int64_t> eff_dom_;

  // Compacted base storage: columnar copy of the table plus every delta
  // folded so far. base_rows_ < 0 until the first compaction (scans then
  // stream the table's own columns).
  std::vector<std::vector<ValueId>> base_cols_;
  std::vector<bool> base_has_nulls_;
  int64_t base_rows_ = -1;

  // Lock-free mirrors of stats_.cached_bytes, num_appended_rows(), and
  // the appended-data footprint for the registry's accountant and
  // divergence check.
  std::atomic<int64_t> resident_bytes_{0};
  std::atomic<int64_t> appended_rows_relaxed_{0};
  std::atomic<int64_t> appended_bytes_relaxed_{0};
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTING_ENGINE_H_
