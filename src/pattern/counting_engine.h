// CountingEngine: the memoized, parallel candidate-sizing subsystem of the
// label search.
//
// The search algorithms (Sec. III / Algorithm 1) are dominated by sizing
// candidate attribute subsets: every examined subset S needs |P_S|, and
// every surviving candidate additionally needs its full PC set to build
// the label. Calling the one-shot counters in counter.h performs a serial
// full-table row scan per subset. This engine removes that bottleneck
// along three axes, while keeping results *byte-identical* to the one-shot
// counters for any thread count and cache budget:
//
//  1. Batching — a lattice level's candidate masks are sized together via
//     CountPatternsBatch, spreading the independent scans over a
//     ParallelFor.
//  2. Memoization — sizing a subset within budget materializes its full
//     PC set as a by-product (same pass, same cost regime), and the
//     result is cached per AttrMask in a size-bounded cache with
//     deterministic FIFO eviction. Label::BuildFromCounts then reuses the
//     cached counts, so the ranking phase of the search never rescans the
//     table for a candidate the generation phase already counted.
//  3. Rollup — when a cached entry for a *superset* T ⊇ S exists, the
//     PC set of S is derived by aggregating T's groups (projecting each
//     group key onto S and re-grouping) instead of rescanning the table.
//     Group counts are far smaller than row counts on the paper's skewed
//     datasets, and exactness is preserved: a tuple's restriction to S is
//     the projection of its restriction to T, and any restriction dropped
//     from T's PC set (arity < 2 over T) projects to arity < 2 over S.
//
// Fallbacks keep the engine total: masks whose nullable key space
// overflows 64 bits, or for which no useful cached ancestor exists, take
// the direct scan path of counter.h.
//
// Thread-safety: the const probes (CachedPatternCounts, stats, table) are
// safe to call concurrently with each other; the mutating calls
// (CountPatterns*, CountCombos, PatternCounts) must be externally
// serialized. CountPatternsBatch parallelizes internally and commits cache
// updates in deterministic input order, so cache contents never depend on
// thread scheduling.
#ifndef PCBL_PATTERN_COUNTING_ENGINE_H_
#define PCBL_PATTERN_COUNTING_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pattern/counter.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {

/// Tuning knobs of the counting engine.
struct CountingEngineOptions {
  /// Master switch: when false every call delegates to the one-shot
  /// counters in counter.h (no batching, no cache) — the byte-identical
  /// reference behaviour.
  bool enabled = true;

  /// Worker threads for CountPatternsBatch (1 = serial). Results are
  /// identical for any value; only wall-clock changes.
  int num_threads = 1;

  /// Memoization budget in cached *group entries* summed over all cached
  /// PC sets (each entry also costs one slot of overhead). 0 disables
  /// caching entirely; sizing and counting still work, just without
  /// reuse. Eviction is FIFO by insertion order — deterministic.
  int64_t cache_budget = int64_t{1} << 20;
};

/// Observability counters (bench/debug output; not part of the exactness
/// contract).
struct CountingEngineStats {
  int64_t sizings = 0;       ///< CountPatterns answers (incl. batched).
  int64_t cache_hits = 0;    ///< answered from an exact cached entry
  int64_t rollups = 0;       ///< derived by aggregating a cached superset
  int64_t direct_scans = 0;  ///< full-table scans performed
  int64_t evictions = 0;     ///< cache entries evicted
  int64_t cached_groups = 0; ///< current cache load (group entries)
};

/// Owns all candidate sizing for one immutable table. Construct once per
/// search; the cache keys assume the table never changes underneath.
class CountingEngine {
 public:
  explicit CountingEngine(const Table& table,
                          CountingEngineOptions options = {});

  /// |P_S| of `mask` with the early-exit budget contract of
  /// CountDistinctPatterns: exact when <= budget, otherwise any value >
  /// budget (budget < 0 = exact). Within-budget results are cached with
  /// their full PC set.
  int64_t CountPatterns(AttrMask mask, int64_t budget = -1);

  /// Sizes `masks` concurrently over options.num_threads; element i is
  /// CountPatterns(masks[i], budget). Cache commits happen serially in
  /// input order after the parallel section.
  std::vector<int64_t> CountPatternsBatch(const std::vector<AttrMask>& masks,
                                          int64_t budget);

  /// Distinct non-NULL combinations over `mask`, same contract as
  /// CountDistinctCombos. Served from the cache (exact entry or superset
  /// rollup) when possible.
  int64_t CountCombos(AttrMask mask, int64_t budget = -1);

  /// The full PC set of `mask`, identical to ComputePatternCounts.
  /// Served from the cache when possible; inserted into it otherwise.
  std::shared_ptr<const GroupCounts> PatternCounts(AttrMask mask);

  /// PatternCounts, but the entry is *pinned*: exempt from eviction and
  /// from the cache budget. Use to prime a rollup ancestor (e.g. the
  /// full attribute set) ahead of a subset sweep that would otherwise
  /// cycle it out of a FIFO cache.
  std::shared_ptr<const GroupCounts> PinnedPatternCounts(AttrMask mask);

  /// Read-only cache probe: the PC set of exactly `mask` if currently
  /// cached, nullptr otherwise. Safe to call concurrently (e.g. from the
  /// ranking ParallelFor) as long as no mutating call runs.
  std::shared_ptr<const GroupCounts> CachedPatternCounts(
      AttrMask mask) const;

  const CountingEngineStats& stats() const { return stats_; }
  const CountingEngineOptions& options() const { return options_; }
  const Table& table() const { return *table_; }

 private:
  // How a sizing was answered (for stats attribution). kTrivial covers
  // |mask| < 2: the PC set is empty by definition, no table work happens.
  enum class Path { kHit, kRollup, kDirect, kTrivial };

  // Outcome of one sizing attempt: `counts` is engaged when the full PC
  // set was materialized (always when `size` is within the budget);
  // otherwise `size` is some value > budget.
  struct Sizing {
    std::shared_ptr<const GroupCounts> counts;
    int64_t size = 0;
    Path path = Path::kDirect;
  };

  // How a mask will be sized, decided serially against the cache.
  struct Plan {
    std::shared_ptr<const GroupCounts> hit;       // exact cache entry
    std::shared_ptr<const GroupCounts> ancestor;  // strict-superset entry
  };

  Plan MakePlan(AttrMask mask) const;

  // Executes a plan (thread-safe: touches only the table and the plan's
  // shared entries).
  Sizing ExecutePlan(AttrMask mask, const Plan& plan, int64_t budget) const;

  // Full-scan sizing with budget abort; materializes counts on success.
  Sizing DirectSizing(AttrMask mask, int64_t budget) const;

  // Aggregates `ancestor` groups down to `mask`; exact. Aborts past
  // `budget` like DirectSizing. `mask`'s key space must be encodable.
  Sizing RollupSizing(const GroupCounts& ancestor, AttrMask mask,
                      int64_t budget) const;

  // Updates stats for one answered sizing and caches its counts.
  void Commit(AttrMask mask, const Sizing& sizing);

  // Inserts a materialized PC set into the cache (FIFO eviction; pinned
  // entries bypass eviction and the budget).
  void CacheInsert(AttrMask mask, std::shared_ptr<const GroupCounts> counts,
                   bool pinned = false);

  const Table* table_;
  CountingEngineOptions options_;
  CountingEngineStats stats_;

  // mask bits -> cached PC set; insertion_order_ drives FIFO eviction
  // (pinned entries are absent from it and from the budget). by_level_
  // buckets cached masks by popcount so the ancestor lookup scans only
  // strictly larger subsets — during the searches' small-to-large
  // traversal those buckets are empty and planning is O(1).
  std::unordered_map<uint64_t, std::shared_ptr<const GroupCounts>> cache_;
  std::deque<uint64_t> insertion_order_;
  std::array<std::vector<uint64_t>, kMaxAttributes + 1> by_level_;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTING_ENGINE_H_
