// CountingEngine: the memoized, parallel candidate-sizing subsystem of the
// label search.
//
// The search algorithms (Sec. III / Algorithm 1) are dominated by sizing
// candidate attribute subsets: every examined subset S needs |P_S|, and
// every surviving candidate additionally needs its full PC set to build
// the label. Calling the one-shot counters in counter.h performs a serial
// full-table row scan per subset. This engine removes that bottleneck
// along four axes, while keeping results *byte-identical* to the one-shot
// counters for any thread count and cache budget:
//
//  1. Batching — a lattice level's candidate masks are sized together via
//     CountPatternsBatch, spreading the independent scans over a
//     ParallelFor.
//  2. Kernels — packed-eligible subsets (packed_codec.h) are sized by the
//     tiled bit-packed kernels of packed_kernels.h: shift/OR encoding,
//     arity-2/3 specializations, dense-bitmap distinctness. Non-eligible
//     subsets take the mixed-radix or sort paths of counter.h.
//  3. Memoization — sizing a subset within budget materializes its full
//     PC set as a by-product (same pass, same cost regime), and the
//     result is cached per AttrMask in a size-bounded cache with
//     deterministic FIFO eviction. Label::BuildFromCounts then reuses the
//     cached counts, so the ranking phase of the search never rescans the
//     table for a candidate the generation phase already counted.
//  4. Rollup — when a cached entry for a *superset* T ⊇ S exists, the
//     PC set of S is derived by aggregating T's groups (projecting each
//     group key onto S and re-grouping) instead of rescanning the table.
//     The best (fewest-groups) cached ancestor is found through a
//     SubsetTrie in near-constant time. Group counts are far smaller than
//     row counts on the paper's skewed datasets, and exactness is
//     preserved: a tuple's restriction to S is the projection of its
//     restriction to T, and any restriction dropped from T's PC set
//     (arity < 2 over T) projects to arity < 2 over S.
//
// Fallbacks keep the engine total: masks whose nullable key space
// overflows 64 bits, or for which no useful cached ancestor exists, take
// the direct scan path of counter.h.
//
// The engine outlives a single search: CountingService (counting_service.h)
// keeps one engine per dataset so that repeated queries hit warm PC sets,
// and ApplyAppend lets a growing dataset patch the cached entries in
// place instead of discarding them (appended rows are tracked as a
// row-major delta block included by every scan, so answers stay exact
// against the extended data).
//
// Thread-safety: the const probes (CachedPatternCounts, stats, table) are
// safe to call concurrently with each other; the mutating calls
// (CountPatterns*, CountCombos, PatternCounts, ApplyAppend, Reconfigure)
// must be externally serialized (CountingService provides the lock).
// CountPatternsBatch parallelizes internally and commits cache updates in
// deterministic input order, so cache contents never depend on thread
// scheduling.
#ifndef PCBL_PATTERN_COUNTING_ENGINE_H_
#define PCBL_PATTERN_COUNTING_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pattern/counter.h"
#include "pattern/subset_trie.h"
#include "relation/table.h"
#include "util/attr_mask.h"

namespace pcbl {

/// Tuning knobs of the counting engine.
struct CountingEngineOptions {
  /// Master switch: when false every call delegates to the one-shot
  /// counters in counter.h (no batching, no cache) — the byte-identical
  /// reference behaviour. May not be disabled once rows were appended
  /// (the one-shot counters cannot see the delta block).
  bool enabled = true;

  /// Worker threads for CountPatternsBatch (1 = serial). Results are
  /// identical for any value; only wall-clock changes.
  int num_threads = 1;

  /// Memoization budget in cached *group entries* summed over all cached
  /// PC sets (each entry also costs one slot of overhead). 0 disables
  /// caching entirely; sizing and counting still work, just without
  /// reuse. Eviction is FIFO by insertion order — deterministic.
  int64_t cache_budget = int64_t{1} << 20;
};

/// Observability counters (bench/debug output; not part of the exactness
/// contract).
struct CountingEngineStats {
  int64_t sizings = 0;       ///< CountPatterns answers (incl. batched).
  int64_t cache_hits = 0;    ///< answered from an exact cached entry
  int64_t rollups = 0;       ///< derived by aggregating a cached superset
  int64_t direct_scans = 0;  ///< table scans attempted (incl. aborted)
  int64_t full_scans = 0;    ///< direct scans that ran to completion and
                             ///< materialized a PC set (the expensive
                             ///< regime a warm cache eliminates)
  int64_t evictions = 0;     ///< cache entries evicted
  int64_t cached_groups = 0; ///< current cache load (group entries)
  int64_t patched_entries = 0;  ///< cached PC sets patched by appends
  int64_t invalidations = 0;    ///< whole-cache invalidations
};

/// Owns all candidate sizing for one table (plus any rows appended through
/// ApplyAppend). The cache keys assume the base table never changes
/// underneath.
class CountingEngine {
 public:
  explicit CountingEngine(const Table& table,
                          CountingEngineOptions options = {});

  /// |P_S| of `mask` with the early-exit budget contract of
  /// CountDistinctPatterns: exact when <= budget, otherwise any value >
  /// budget (budget < 0 = exact). Within-budget results are cached with
  /// their full PC set.
  int64_t CountPatterns(AttrMask mask, int64_t budget = -1);

  /// Sizes `masks` concurrently over options.num_threads; element i is
  /// CountPatterns(masks[i], budget). Cache commits happen serially in
  /// input order after the parallel section.
  std::vector<int64_t> CountPatternsBatch(const std::vector<AttrMask>& masks,
                                          int64_t budget);

  /// Distinct non-NULL combinations over `mask`, same contract as
  /// CountDistinctCombos. Served from the cache (exact entry or superset
  /// rollup) when possible.
  int64_t CountCombos(AttrMask mask, int64_t budget = -1);

  /// The full PC set of `mask`, identical to ComputePatternCounts.
  /// Served from the cache when possible; inserted into it otherwise.
  std::shared_ptr<const GroupCounts> PatternCounts(AttrMask mask);

  /// PatternCounts, but the entry is *pinned*: exempt from eviction and
  /// from the cache budget. Use to prime a rollup ancestor (e.g. the
  /// full attribute set) ahead of a subset sweep that would otherwise
  /// cycle it out of a FIFO cache.
  std::shared_ptr<const GroupCounts> PinnedPatternCounts(AttrMask mask);

  /// Read-only cache probe: the PC set of exactly `mask` if currently
  /// cached, nullptr otherwise. Safe to call concurrently (e.g. from the
  /// ranking ParallelFor) as long as no mutating call runs.
  std::shared_ptr<const GroupCounts> CachedPatternCounts(
      AttrMask mask) const;

  /// Applies new options in place without discarding warm cache entries.
  /// Shrinking the budget evicts FIFO down to the new limit (a budget of
  /// 0 clears every unpinned entry); pinned entries are untouched.
  void Reconfigure(const CountingEngineOptions& options);

  /// Drops every cached entry (pinned included) — the invalidate arm of
  /// the append hook. Appended rows are data, not cache, and survive.
  void InvalidateCache();

  /// Extends the counted dataset by `rows` (row-major, one ValueId per
  /// attribute in schema order; kNullValue for missing; codes beyond the
  /// base table's domain denote freshly interned values — ids must extend
  /// the base code space the way TableBuilder would). Every cached PC set
  /// is *patched* with the new rows' restrictions, so warm entries stay
  /// exact against the extended data; subsequent scans include the rows.
  /// Requires options().enabled; subsets whose extended key space is not
  /// 64-bit-encodable are not supported while deltas exist.
  void ApplyAppend(const std::vector<std::vector<ValueId>>& rows);

  /// Base-table rows plus appended rows.
  int64_t total_rows() const {
    return table_->num_rows() + num_delta_rows();
  }
  int64_t num_delta_rows() const {
    const int n = table_->num_attributes();
    return n == 0 ? 0
                  : static_cast<int64_t>(delta_rows_.size()) / n;
  }

  const CountingEngineStats& stats() const { return stats_; }
  const CountingEngineOptions& options() const { return options_; }
  const Table& table() const { return *table_; }

 private:
  // How a sizing was answered (for stats attribution). kTrivial covers
  // |mask| < 2: the PC set is empty by definition, no table work happens.
  enum class Path { kHit, kRollup, kDirect, kTrivial };

  // Outcome of one sizing attempt: `counts` is engaged when the full PC
  // set was materialized (always when `size` is within the budget);
  // otherwise `size` is some value > budget.
  struct Sizing {
    std::shared_ptr<const GroupCounts> counts;
    int64_t size = 0;
    Path path = Path::kDirect;
    bool full_scan = false;  // a direct scan ran to completion
  };

  // How a mask will be sized, decided serially against the cache.
  struct Plan {
    std::shared_ptr<const GroupCounts> hit;       // exact cache entry
    std::shared_ptr<const GroupCounts> ancestor;  // strict-superset entry
  };

  Plan MakePlan(AttrMask mask) const;

  // Executes a plan (thread-safe: touches only the table and the plan's
  // shared entries).
  Sizing ExecutePlan(AttrMask mask, const Plan& plan, int64_t budget) const;

  // Full-scan sizing with budget abort; materializes counts on success.
  Sizing DirectSizing(AttrMask mask, int64_t budget) const;

  // Aggregates `ancestor` groups down to `mask`; exact. Aborts past
  // `budget` like DirectSizing. `mask`'s key space must be encodable.
  Sizing RollupSizing(const GroupCounts& ancestor, AttrMask mask,
                      int64_t budget) const;

  // Updates stats for one answered sizing and caches its counts.
  void Commit(AttrMask mask, const Sizing& sizing);

  // Inserts a materialized PC set into the cache (FIFO eviction; pinned
  // entries bypass eviction and the budget).
  void CacheInsert(AttrMask mask, std::shared_ptr<const GroupCounts> counts,
                   bool pinned = false);

  // Evicts FIFO until the unpinned load fits options_.cache_budget.
  void EvictToBudget();

  // Effective domain size of `attr`: the base table's, grown by appended
  // rows' fresh codes. All codecs (packed, mixed-radix) run over these so
  // delta codes encode/decode exactly as a rebuilt table would.
  int64_t DomSizeOf(int attr) const {
    return eff_dom_.empty()
               ? static_cast<int64_t>(table_->DomainSize(attr))
               : eff_dom_[static_cast<size_t>(attr)];
  }

  // Returns a new GroupCounts equal to `entry` with the delta rows in
  // [first_row, end) applied, or nullptr when no row contributes.
  std::shared_ptr<const GroupCounts> PatchedEntry(
      const GroupCounts& entry,
      const std::vector<std::vector<ValueId>>& rows) const;

  const Table* table_;
  CountingEngineOptions options_;
  CountingEngineStats stats_;

  // mask bits -> cached PC set; insertion_order_ drives FIFO eviction
  // (pinned entries are absent from it and from the budget). ancestors_
  // indexes every cached mask for the rollup planner's best-superset
  // query.
  std::unordered_map<uint64_t, std::shared_ptr<const GroupCounts>> cache_;
  std::deque<uint64_t> insertion_order_;
  std::unordered_set<uint64_t> pinned_;
  SubsetTrie ancestors_;

  // Rows appended after construction (row-major, num_attributes stride)
  // and the effective per-attribute domains they imply (empty until the
  // first append).
  std::vector<ValueId> delta_rows_;
  std::vector<int64_t> eff_dom_;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_COUNTING_ENGINE_H_
