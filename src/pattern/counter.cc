#include "pattern/counter.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "pattern/packed_codec.h"
#include "pattern/packed_kernels.h"
#include "pattern/restriction_codec.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pcbl {

using counting::CodeCountMap;
using counting::CodeSet;
using counting::NullableRadixMultipliers;

namespace {

using Access = GroupCountsAccess;

// Upper bound on the dense direct-addressing array (entries).
constexpr int64_t kDenseLimit = int64_t{1} << 22;

// Returns the attribute indices of `mask`, ascending.
std::vector<int> MaskAttrs(AttrMask mask) { return mask.ToIndices(); }

// Encodes the values of `row` over `attrs` in mixed radix; returns false
// when the row has a NULL in any grouped attribute.
inline bool EncodeRow(const Table& table, const std::vector<int>& attrs,
                      const std::vector<int64_t>& radix_mult, int64_t row,
                      int64_t* out) {
  int64_t code = 0;
  for (size_t j = 0; j < attrs.size(); ++j) {
    ValueId v = table.value(row, attrs[j]);
    if (IsNull(v)) return false;
    code += static_cast<int64_t>(v) * radix_mult[j];
  }
  *out = code;
  return true;
}

// Precomputes mixed-radix multipliers; attrs[0] is the most significant.
std::vector<int64_t> RadixMultipliers(const Table& table,
                                      const std::vector<int>& attrs) {
  std::vector<int64_t> mult(attrs.size());
  int64_t m = 1;
  for (size_t j = attrs.size(); j-- > 0;) {
    mult[j] = m;
    m *= std::max<int64_t>(1, table.DomainSize(attrs[j]));
  }
  return mult;
}

void DecodeKey(int64_t code, const Table& table,
               const std::vector<int>& attrs,
               const std::vector<int64_t>& radix_mult, ValueId* out) {
  for (size_t j = 0; j < attrs.size(); ++j) {
    int64_t q = code / radix_mult[j];
    out[j] = static_cast<ValueId>(
        q % std::max<int64_t>(1, table.DomainSize(attrs[j])));
  }
}

GroupCounts DenseGroupBy(const Table& table, AttrMask mask,
                         int64_t key_space) {
  GroupCounts out;
  Access::mask(out) = mask;
  std::vector<int>& attrs = Access::attrs(out);
  std::vector<ValueId>& keys = Access::keys(out);
  std::vector<int64_t>& group_counts = Access::counts(out);
  attrs = MaskAttrs(mask);
  std::vector<int64_t> mult = RadixMultipliers(table, attrs);
  std::vector<int64_t> counts(static_cast<size_t>(key_space), 0);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    int64_t code;
    if (EncodeRow(table, attrs, mult, r, &code)) {
      ++counts[static_cast<size_t>(code)];
    }
  }
  size_t width = attrs.size();
  for (int64_t code = 0; code < key_space; ++code) {
    int64_t c = counts[static_cast<size_t>(code)];
    if (c == 0) continue;
    size_t base = keys.size();
    keys.resize(base + width);
    DecodeKey(code, table, attrs, mult, keys.data() + base);
    group_counts.push_back(c);
  }
  return out;
}

GroupCounts HashGroupBy(const Table& table, AttrMask mask) {
  GroupCounts out;
  Access::mask(out) = mask;
  std::vector<int>& attrs = Access::attrs(out);
  std::vector<ValueId>& keys = Access::keys(out);
  std::vector<int64_t>& group_counts = Access::counts(out);
  attrs = MaskAttrs(mask);
  std::vector<int64_t> mult = RadixMultipliers(table, attrs);
  std::unordered_map<int64_t, int64_t> counts;
  counts.reserve(1024);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    int64_t code;
    if (EncodeRow(table, attrs, mult, r, &code)) ++counts[code];
  }
  // Emit in ascending code order for determinism.
  std::vector<std::pair<int64_t, int64_t>> items(counts.begin(),
                                                 counts.end());
  std::sort(items.begin(), items.end());
  size_t width = attrs.size();
  for (const auto& [code, c] : items) {
    size_t base = keys.size();
    keys.resize(base + width);
    DecodeKey(code, table, attrs, mult, keys.data() + base);
    group_counts.push_back(c);
  }
  return out;
}

GroupCounts SortGroupBy(const Table& table, AttrMask mask) {
  GroupCounts out;
  Access::mask(out) = mask;
  std::vector<int>& attrs = Access::attrs(out);
  std::vector<ValueId>& keys = Access::keys(out);
  std::vector<int64_t>& group_counts = Access::counts(out);
  attrs = MaskAttrs(mask);
  size_t width = attrs.size();
  // Materialize row-major keys of rows without NULLs.
  std::vector<ValueId> rows;
  rows.reserve(static_cast<size_t>(table.num_rows()) * width);
  std::vector<ValueId> key(width);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    bool ok = true;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = table.value(r, attrs[j]);
      if (IsNull(v)) {
        ok = false;
        break;
      }
      key[j] = v;
    }
    if (ok) rows.insert(rows.end(), key.begin(), key.end());
  }
  size_t n = width == 0 ? 0 : rows.size() / width;
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = rows.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });
  // Count runs.
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    keys.insert(keys.end(), ki, ki + width);
    group_counts.push_back(static_cast<int64_t>(j - i));
    i = j;
  }
  if (width == 0 && table.num_rows() > 0) {
    // Grouping by the empty set: one group counting all rows.
    group_counts.push_back(table.num_rows());
  }
  return out;
}

}  // namespace

int64_t GroupCounts::total_count() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

Pattern GroupCounts::ToPattern(int64_t g) const {
  std::vector<PatternTerm> terms;
  terms.reserve(attrs_.size());
  const ValueId* k = key(g);
  for (size_t j = 0; j < attrs_.size(); ++j) {
    terms.push_back(PatternTerm{attrs_[j], k[j]});
  }
  auto result = Pattern::Create(std::move(terms));
  PCBL_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

std::optional<int64_t> DenseKeySpace(const Table& table, AttrMask mask) {
  int64_t space = 1;
  for (int a : mask.ToIndices()) {
    int64_t dom = std::max<int64_t>(1, table.DomainSize(a));
    if (space > std::numeric_limits<int64_t>::max() / dom) {
      return std::nullopt;
    }
    space *= dom;
  }
  return space;
}

GroupCounts ComputeGroupCounts(const Table& table, AttrMask mask,
                               GroupByStrategy strategy) {
  std::optional<int64_t> space = DenseKeySpace(table, mask);
  if (strategy == GroupByStrategy::kAuto) {
    if (space.has_value() && *space <= kDenseLimit &&
        *space <= 8 * table.num_rows() + 1024) {
      strategy = GroupByStrategy::kDense;
    } else if (space.has_value()) {
      strategy = GroupByStrategy::kHash;
    } else {
      strategy = GroupByStrategy::kSort;
    }
  }
  switch (strategy) {
    case GroupByStrategy::kDense:
      PCBL_CHECK(space.has_value() && *space <= kDenseLimit)
          << "dense group-by requested but key space too large";
      return DenseGroupBy(table, mask, *space);
    case GroupByStrategy::kHash:
      PCBL_CHECK(space.has_value())
          << "hash group-by requires a 64-bit-encodable key space";
      return HashGroupBy(table, mask);
    case GroupByStrategy::kSort:
      return SortGroupBy(table, mask);
    case GroupByStrategy::kAuto:
      break;
  }
  PCBL_CHECK(false) << "unreachable";
  return GroupCounts();
}

namespace {

// Sort-based fallback for restriction counting when the nullable key
// space overflows 64 bits (does not occur in the paper's datasets).
GroupCounts SortRestrictionCounts(const Table& table, AttrMask mask) {
  GroupCounts out;
  Access::mask(out) = mask;
  std::vector<int>& attrs = Access::attrs(out);
  std::vector<ValueId>& keys = Access::keys(out);
  std::vector<int64_t>& group_counts = Access::counts(out);
  attrs = MaskAttrs(mask);
  size_t width = attrs.size();
  if (width < 2) return out;
  std::vector<ValueId> rows;
  rows.reserve(static_cast<size_t>(table.num_rows()) * width);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    int arity = 0;
    size_t base = rows.size();
    rows.resize(base + width);
    for (size_t j = 0; j < width; ++j) {
      ValueId v = table.value(r, attrs[j]);
      rows[base + j] = v;
      if (!IsNull(v)) ++arity;
    }
    if (arity < 2) rows.resize(base);  // drop low-arity restrictions
  }
  size_t n = rows.size() / width;
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = rows.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    keys.insert(keys.end(), ki, ki + width);
    group_counts.push_back(static_cast<int64_t>(j - i));
    i = j;
  }
  return out;
}

// Counting-only variant of SortRestrictionCounts with the same early-exit
// budget contract as CountDistinctPatterns: the sort itself cannot be
// skipped, but run counting stops (and no keys/counts are materialized)
// once the distinct count exceeds `budget`.
int64_t SortRestrictionCountsSize(const Table& table, AttrMask mask,
                                  int64_t budget) {
  std::vector<int> attrs = MaskAttrs(mask);
  size_t width = attrs.size();
  if (width < 2) return 0;
  std::vector<ValueId> rows;
  rows.reserve(static_cast<size_t>(table.num_rows()) * width);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    int arity = 0;
    size_t base = rows.size();
    rows.resize(base + width);
    for (size_t j = 0; j < width; ++j) {
      ValueId v = table.value(r, attrs[j]);
      rows[base + j] = v;
      if (!IsNull(v)) ++arity;
    }
    if (arity < 2) rows.resize(base);  // drop low-arity restrictions
  }
  size_t n = rows.size() / width;
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = rows.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });
  int64_t distinct = 0;
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    ++distinct;
    if (budget >= 0 && distinct > budget) return distinct;
    i = j;
  }
  return distinct;
}

}  // namespace

GroupCounts ComputePatternCounts(const Table& table, AttrMask mask,
                                 RestrictionStrategy strategy) {
  std::vector<int> attrs = MaskAttrs(mask);
  size_t width = attrs.size();
  if (width < 2) {
    // Arity-1 info lives in VC; nothing to store beyond the layout.
    GroupCounts out;
    Access::mask(out) = mask;
    Access::attrs(out) = std::move(attrs);
    return out;
  }

  counting::PackedLayout layout = counting::MakePackedLayout(table, attrs);
  if (strategy == RestrictionStrategy::kAuto && layout.ok) {
    strategy = RestrictionStrategy::kPacked;
  }
  if (strategy == RestrictionStrategy::kPacked) {
    PCBL_CHECK(layout.ok) << "subset is not packed-eligible";
    counting::SubsetColumns view = counting::MakeSubsetColumns(table, attrs);
    return counting::MaterializeFromPackedCodes(
        mask, std::move(attrs), layout,
        counting::PackedCountGroups(view, layout, /*groups_hint=*/-1));
  }

  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(table, attrs, &encodable);
  if (strategy == RestrictionStrategy::kAuto ||
      strategy == RestrictionStrategy::kMixedRadix) {
    if (!encodable) {
      PCBL_CHECK(strategy == RestrictionStrategy::kAuto)
          << "key space is not 64-bit-encodable";
      return SortRestrictionCounts(table, mask);
    }
  } else {
    return SortRestrictionCounts(table, mask);  // kSort forced
  }

  // Hoist column pointers and NULL slots (see CountDistinctPatterns).
  const ValueId* cols[kMaxAttributes];
  int64_t null_slot[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = table.column(attrs[j]).data();
    null_slot[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  CodeCountMap counts(counting::SizingReserve(-1, table.num_rows()));
  const int64_t rows = table.num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = cols[j][r];
      int64_t slot;
      if (IsNull(v)) {
        slot = null_slot[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity >= 2) counts.Increment(code);
  }
  return counting::MaterializeFromCodes(table, mask, attrs, mult,
                                        counts.Items());
}

int64_t CountDistinctPatterns(const Table& table, AttrMask mask,
                              int64_t budget,
                              RestrictionStrategy strategy) {
  std::vector<int> attrs = MaskAttrs(mask);
  const size_t width = attrs.size();
  if (width < 2) return 0;

  counting::PackedLayout layout = counting::MakePackedLayout(table, attrs);
  if (strategy == RestrictionStrategy::kAuto && layout.ok) {
    strategy = RestrictionStrategy::kPacked;
  }
  if (strategy == RestrictionStrategy::kPacked) {
    PCBL_CHECK(layout.ok) << "subset is not packed-eligible";
    counting::SubsetColumns view = counting::MakeSubsetColumns(table, attrs);
    return counting::PackedCountDistinct(view, layout, budget);
  }

  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(table, attrs, &encodable);
  if (strategy == RestrictionStrategy::kSort || !encodable) {
    PCBL_CHECK(strategy != RestrictionStrategy::kMixedRadix)
        << "key space is not 64-bit-encodable";
    return SortRestrictionCountsSize(table, mask, budget);
  }
  // Hoist per-attribute column pointers and NULL slots out of the row
  // loop; Table::value() would pay a double indirection per cell.
  const ValueId* cols[kMaxAttributes];
  int64_t null_slot[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = table.column(attrs[j]).data();
    null_slot[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  CodeSet seen(counting::SizingReserve(budget, table.num_rows()));
  const int64_t rows = table.num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = cols[j][r];
      int64_t slot;
      if (IsNull(v)) {
        slot = null_slot[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) continue;
    if (seen.Insert(code) && budget >= 0 && seen.size() > budget) {
      return seen.size();
    }
  }
  return seen.size();
}

int64_t CountDistinctCombos(const Table& table, AttrMask mask,
                            int64_t budget) {
  if (mask.empty()) return table.num_rows() > 0 ? 1 : 0;
  std::vector<int> attrs = MaskAttrs(mask);
  std::optional<int64_t> space = DenseKeySpace(table, mask);
  if (space.has_value()) {
    // When even the full key space cannot exceed the budget, the group
    // count certainly does not; but we still need the exact number, so only
    // the scan below decides. Use an open-addressing set with early exit
    // (same optimization as CountDistinctPatterns).
    std::vector<int64_t> mult = RadixMultipliers(table, attrs);
    CodeSet seen(budget >= 0 ? static_cast<size_t>(budget) + 2 : 1024);
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      int64_t code;
      if (!EncodeRow(table, attrs, mult, r, &code)) continue;
      if (seen.Insert(code) && budget >= 0 && seen.size() > budget) {
        return seen.size();
      }
    }
    return seen.size();
  }
  // Key space overflows 64 bits: fall back to an exact sort-based count
  // (no early exit; this regime does not occur in the paper's datasets).
  GroupCounts gc = ComputeGroupCounts(table, mask, GroupByStrategy::kSort);
  return gc.num_groups();
}

}  // namespace pcbl
