#include "pattern/counting_engine.h"

#include <algorithm>
#include <utility>

#include "pattern/restriction_codec.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pcbl {

using counting::CodeCountMap;
using counting::CodeSet;
using counting::MaterializeFromCodes;
using counting::NullableRadixMultipliers;

CountingEngine::CountingEngine(const Table& table,
                               CountingEngineOptions options)
    : table_(&table), options_(options) {}

CountingEngine::Plan CountingEngine::MakePlan(AttrMask mask) const {
  Plan plan;
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    plan.hit = it->second;
    return plan;
  }
  // Best strict superset: fewest groups. Only the popcount buckets above
  // the mask's level can hold supersets, so the small-to-large search
  // traversal never scans anything here. Aggregating the ancestor's
  // groups must beat a row scan, so anything with >= num_rows groups is
  // not worth using. Ties are broken arbitrarily — every ancestor yields
  // the same exact counts, so results do not depend on the choice.
  int64_t best = table_->num_rows();
  for (int level = mask.Count() + 1;
       level <= table_->num_attributes() && level <= kMaxAttributes;
       ++level) {
    for (uint64_t bits : by_level_[static_cast<size_t>(level)]) {
      if ((bits & mask.bits()) != mask.bits()) continue;
      const auto& entry = cache_.find(bits)->second;
      if (entry->num_groups() < best) {
        best = entry->num_groups();
        plan.ancestor = entry;
      }
    }
  }
  return plan;
}

CountingEngine::Sizing CountingEngine::DirectSizing(AttrMask mask,
                                                    int64_t budget) const {
  Sizing out;
  out.path = Path::kDirect;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  if (width < 2) {
    // Arity-1 information lives in VC; the PC set is empty (but carries
    // the attribute layout, matching ComputePatternCounts). No table
    // work happens.
    out.path = Path::kTrivial;
    out.counts = std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
    return out;
  }
  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(*table_, attrs, &encodable);
  if (!encodable) {
    // Non-64-bit-encodable key space: delegate to the sort-based one-shot
    // counters (corner regime; two passes when within budget).
    out.size = CountDistinctPatterns(*table_, mask, budget);
    if (budget >= 0 && out.size > budget) return out;
    out.counts = std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
    return out;
  }
  // One pass: count *and* materialize, aborting once the distinct count
  // blows the budget (the common case for most examined subsets).
  const ValueId* cols[kMaxAttributes];
  int64_t null_slot[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = table_->column(attrs[j]).data();
    null_slot[j] = static_cast<int64_t>(table_->DomainSize(attrs[j]));
  }
  CodeCountMap counts(budget >= 0 ? static_cast<size_t>(budget) + 2 : 1024);
  const int64_t rows = table_->num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = cols[j][r];
      int64_t slot;
      if (IsNull(v)) {
        slot = null_slot[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) continue;
    counts.Increment(code);
    if (budget >= 0 && counts.size() > budget) {
      out.size = counts.size();
      return out;
    }
  }
  out.size = counts.size();
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(*table_, mask, attrs, mult, counts.Items()));
  return out;
}

CountingEngine::Sizing CountingEngine::RollupSizing(
    const GroupCounts& ancestor, AttrMask mask, int64_t budget) const {
  Sizing out;
  out.path = Path::kRollup;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(*table_, attrs, &encodable);
  PCBL_DCHECK(encodable);  // caller checked
  // Position of each mask attribute inside the ancestor's (ascending)
  // attribute list.
  const std::vector<int>& anc_attrs = ancestor.attrs();
  int pos[kMaxAttributes];
  size_t a = 0;
  for (size_t j = 0; j < width; ++j) {
    while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
    PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
    pos[j] = static_cast<int>(a);
  }
  int64_t null_slot[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    null_slot[j] = static_cast<int64_t>(table_->DomainSize(attrs[j]));
  }
  // Aggregate ancestor groups instead of table rows. Exact because every
  // tuple's restriction to `mask` is the projection of its restriction to
  // the ancestor set, and tuples absent from the ancestor's PC set (arity
  // < 2 there) project to arity < 2 here as well.
  CodeCountMap counts(budget >= 0 ? static_cast<size_t>(budget) + 2 : 1024);
  const int64_t groups = ancestor.num_groups();
  for (int64_t g = 0; g < groups; ++g) {
    const ValueId* key = ancestor.key(g);
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = key[pos[j]];
      int64_t slot;
      if (IsNull(v)) {
        slot = null_slot[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) continue;
    counts.Add(code, ancestor.count(g));
    if (budget >= 0 && counts.size() > budget) {
      out.size = counts.size();
      return out;
    }
  }
  out.size = counts.size();
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(*table_, mask, attrs, mult, counts.Items()));
  return out;
}

CountingEngine::Sizing CountingEngine::ExecutePlan(AttrMask mask,
                                                   const Plan& plan,
                                                   int64_t budget) const {
  if (plan.hit != nullptr) {
    Sizing out;
    out.path = Path::kHit;
    out.counts = plan.hit;
    out.size = plan.hit->num_groups();
    return out;
  }
  if (plan.ancestor != nullptr && mask.Count() >= 2) {
    std::vector<int> attrs = mask.ToIndices();
    bool encodable = false;
    NullableRadixMultipliers(*table_, attrs, &encodable);
    if (encodable) return RollupSizing(*plan.ancestor, mask, budget);
  }
  return DirectSizing(mask, budget);
}

void CountingEngine::Commit(AttrMask mask, const Sizing& sizing) {
  ++stats_.sizings;
  switch (sizing.path) {
    case Path::kHit:
      ++stats_.cache_hits;
      return;  // already cached
    case Path::kRollup:
      ++stats_.rollups;
      break;
    case Path::kDirect:
      ++stats_.direct_scans;
      break;
    case Path::kTrivial:
      break;
  }
  if (sizing.counts != nullptr && mask.Count() >= 2) {
    CacheInsert(mask, sizing.counts);
  }
}

void CountingEngine::CacheInsert(AttrMask mask,
                                 std::shared_ptr<const GroupCounts> counts,
                                 bool pinned) {
  if (!pinned && options_.cache_budget <= 0) return;
  const int64_t cost = counts->num_groups() + 1;
  if (!pinned && cost > options_.cache_budget) return;
  if (cache_.contains(mask.bits())) return;
  auto evict_from_level = [&](uint64_t bits) {
    std::vector<uint64_t>& bucket =
        by_level_[static_cast<size_t>(AttrMask(bits).Count())];
    auto pos = std::find(bucket.begin(), bucket.end(), bits);
    PCBL_DCHECK(pos != bucket.end());
    bucket.erase(pos);
  };
  if (!pinned) {
    while (stats_.cached_groups + cost > options_.cache_budget &&
           !insertion_order_.empty()) {
      uint64_t victim = insertion_order_.front();
      insertion_order_.pop_front();
      auto it = cache_.find(victim);
      PCBL_DCHECK(it != cache_.end());
      stats_.cached_groups -= it->second->num_groups() + 1;
      cache_.erase(it);
      evict_from_level(victim);
      ++stats_.evictions;
    }
    insertion_order_.push_back(mask.bits());
    stats_.cached_groups += cost;
  }
  cache_.emplace(mask.bits(), std::move(counts));
  by_level_[static_cast<size_t>(mask.Count())].push_back(mask.bits());
}

int64_t CountingEngine::CountPatterns(AttrMask mask, int64_t budget) {
  if (!options_.enabled) {
    return CountDistinctPatterns(*table_, mask, budget);
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), budget);
  Commit(mask, sizing);
  return sizing.counts != nullptr ? sizing.counts->num_groups()
                                  : sizing.size;
}

std::vector<int64_t> CountingEngine::CountPatternsBatch(
    const std::vector<AttrMask>& masks, int64_t budget) {
  std::vector<int64_t> sizes(masks.size(), 0);
  if (!options_.enabled) {
    for (size_t i = 0; i < masks.size(); ++i) {
      sizes[i] = CountDistinctPatterns(*table_, masks[i], budget);
    }
    return sizes;
  }
  // Plans are decided serially against the current cache, executed in
  // parallel (read-only work over the table and the planned entries), and
  // committed serially in input order — cache contents and stats are
  // therefore identical for any thread count.
  std::vector<Plan> plans(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) plans[i] = MakePlan(masks[i]);
  std::vector<Sizing> outcomes(masks.size());
  ParallelFor(static_cast<int64_t>(masks.size()), options_.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                outcomes[s] = ExecutePlan(masks[s], plans[s], budget);
              });
  for (size_t i = 0; i < masks.size(); ++i) {
    // A mask repeated within one batch commits once; later copies become
    // plain hits against the entry the first copy inserted.
    if (outcomes[i].path != Path::kHit &&
        cache_.contains(masks[i].bits())) {
      outcomes[i].path = Path::kHit;
    }
    Commit(masks[i], outcomes[i]);
    sizes[i] = outcomes[i].counts != nullptr
                   ? outcomes[i].counts->num_groups()
                   : outcomes[i].size;
  }
  return sizes;
}

int64_t CountingEngine::CountCombos(AttrMask mask, int64_t budget) {
  if (!options_.enabled || mask.Count() < 2) {
    return CountDistinctCombos(*table_, mask, budget);
  }
  Plan plan = MakePlan(mask);
  if (plan.hit != nullptr) {
    // Full combos are exactly the fully-bound groups of the PC set (each
    // a distinct key), since |mask| >= 2 restrictions are all stored.
    ++stats_.cache_hits;
    const GroupCounts& pc = *plan.hit;
    const int width = pc.key_width();
    int64_t combos = 0;
    for (int64_t g = 0; g < pc.num_groups(); ++g) {
      const ValueId* key = pc.key(g);
      bool full = true;
      for (int j = 0; j < width; ++j) {
        if (IsNull(key[j])) {
          full = false;
          break;
        }
      }
      if (!full) continue;
      ++combos;
      if (budget >= 0 && combos > budget) return combos;
    }
    return combos;
  }
  if (plan.ancestor != nullptr) {
    std::optional<int64_t> space = DenseKeySpace(*table_, mask);
    if (space.has_value()) {
      ++stats_.rollups;
      std::vector<int> attrs = mask.ToIndices();
      const size_t width = attrs.size();
      const std::vector<int>& anc_attrs = plan.ancestor->attrs();
      int pos[kMaxAttributes];
      size_t a = 0;
      for (size_t j = 0; j < width; ++j) {
        while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
        PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
        pos[j] = static_cast<int>(a);
      }
      // Distinct fully-bound projections of the ancestor's groups. Exact:
      // every tuple with a NULL-free mask combination has arity >= 2 in
      // the ancestor set, so its group is present there.
      std::vector<int64_t> mult(width);
      int64_t m = 1;
      for (size_t j = width; j-- > 0;) {
        mult[j] = m;
        m *= std::max<int64_t>(1, table_->DomainSize(attrs[j]));
      }
      CodeSet seen(budget >= 0 ? static_cast<size_t>(budget) + 2 : 256);
      for (int64_t g = 0; g < plan.ancestor->num_groups(); ++g) {
        const ValueId* key = plan.ancestor->key(g);
        int64_t code = 0;
        bool full = true;
        for (size_t j = 0; j < width; ++j) {
          ValueId v = key[pos[j]];
          if (IsNull(v)) {
            full = false;
            break;
          }
          code += static_cast<int64_t>(v) * mult[j];
        }
        if (!full) continue;
        if (seen.Insert(code) && budget >= 0 && seen.size() > budget) {
          return seen.size();
        }
      }
      return seen.size();
    }
  }
  ++stats_.direct_scans;
  return CountDistinctCombos(*table_, mask, budget);
}

std::shared_ptr<const GroupCounts> CountingEngine::PatternCounts(
    AttrMask mask) {
  if (!options_.enabled) {
    return std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1);
  Commit(mask, sizing);
  PCBL_CHECK(sizing.counts != nullptr);  // unbudgeted sizing materializes
  return sizing.counts;
}

std::shared_ptr<const GroupCounts> CountingEngine::PinnedPatternCounts(
    AttrMask mask) {
  if (!options_.enabled) return PatternCounts(mask);
  // Promote an existing evictable entry: pull it out of the FIFO and the
  // budget so the sweep it anchors cannot cycle it out.
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    auto pos = std::find(insertion_order_.begin(), insertion_order_.end(),
                         mask.bits());
    if (pos != insertion_order_.end()) {
      insertion_order_.erase(pos);
      stats_.cached_groups -= it->second->num_groups() + 1;
    }
    return it->second;
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1);
  ++stats_.sizings;
  if (sizing.path == Path::kRollup) ++stats_.rollups;
  if (sizing.path == Path::kDirect) ++stats_.direct_scans;
  PCBL_CHECK(sizing.counts != nullptr);
  if (mask.Count() >= 2) {
    CacheInsert(mask, sizing.counts, /*pinned=*/true);
  }
  return sizing.counts;
}

std::shared_ptr<const GroupCounts> CountingEngine::CachedPatternCounts(
    AttrMask mask) const {
  auto it = cache_.find(mask.bits());
  return it == cache_.end() ? nullptr : it->second;
}

}  // namespace pcbl
