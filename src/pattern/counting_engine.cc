#include "pattern/counting_engine.h"

#include <algorithm>
#include <utility>

#include "pattern/packed_codec.h"
#include "pattern/packed_kernels.h"
#include "pattern/restriction_codec.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pcbl {

using counting::CodeCountMap;
using counting::CodeSet;
using counting::MakePackedLayout;
using counting::MakeSubsetColumns;
using counting::MaterializeFromCodes;
using counting::MaterializeFromPackedCodes;
using counting::NullableRadixMultipliers;
using counting::PackedCountDistinct;
using counting::PackedCountGroups;
using counting::PackedLayout;
using counting::SizingReserve;
using counting::SubsetColumns;

namespace {

// Canonical group order on raw keys: kNullValue is the numerically
// largest ValueId, so plain lexicographic comparison sorts NULL last per
// attribute — exactly the emission order of the codecs.
inline bool KeyLess(const ValueId* a, const ValueId* b, int width) {
  return std::lexicographical_compare(a, a + width, b, b + width);
}

}  // namespace

CountingEngine::CountingEngine(const Table& table,
                               CountingEngineOptions options)
    : table_(&table), options_(options) {}

CountingEngine::Plan CountingEngine::MakePlan(AttrMask mask) const {
  Plan plan;
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    plan.hit = it->second;
    return plan;
  }
  // Best strict superset: fewest groups, found through the subset trie in
  // near-constant time. Aggregating the ancestor's groups must beat a row
  // scan, so anything with >= total_rows groups is not worth using. Ties
  // are broken deterministically by the trie's DFS order — and every
  // ancestor yields the same exact counts, so results do not depend on
  // the choice.
  auto best = ancestors_.BestStrictSuperset(mask, total_rows());
  if (best.has_value()) {
    auto anc = cache_.find(best->mask.bits());
    PCBL_DCHECK(anc != cache_.end());
    plan.ancestor = anc->second;
  }
  return plan;
}

CountingEngine::Sizing CountingEngine::DirectSizing(AttrMask mask,
                                                    int64_t budget) const {
  Sizing out;
  out.path = Path::kDirect;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  if (width < 2) {
    // Arity-1 information lives in VC; the PC set is empty (but carries
    // the attribute layout, matching ComputePatternCounts). No table
    // work happens.
    out.path = Path::kTrivial;
    out.counts = std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
    return out;
  }
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);

  SubsetColumns view = MakeSubsetColumns(*table_, attrs);
  if (!delta_rows_.empty()) {
    view.delta = delta_rows_.data();
    view.delta_rows = num_delta_rows();
    view.delta_stride = table_->num_attributes();
    for (size_t j = 0; j < width; ++j) {
      view.delta_attr[j] = attrs[j];
    }
  }

  const PackedLayout layout =
      MakePackedLayout(doms, static_cast<int>(width));
  if (layout.ok) {
    if (counting::PackedDenseCountEligible(layout, total_rows())) {
      // Small key space: one direct-addressing pass counts and
      // materializes together, and its ascending-code sweep is already
      // the canonical emission order.
      std::vector<std::pair<int64_t, int64_t>> items;
      out.size =
          counting::PackedCountGroupsDense(view, layout, budget, &items);
      if (budget >= 0 && out.size > budget) return out;
      out.counts = std::make_shared<const GroupCounts>(
          MaterializeFromPackedCodes(mask, std::move(attrs), layout,
                                     std::move(items)));
      out.full_scan = true;
      return out;
    }
    // Sizing pass over packed codes (dense bitmap or open addressing);
    // over-budget subsets — the common case — stop here. Within-budget
    // ones materialize in a second pass whose map is reserved at the now
    // exact group count, so it never rehashes.
    out.size = PackedCountDistinct(view, layout, budget);
    if (budget >= 0 && out.size > budget) return out;
    out.counts =
        std::make_shared<const GroupCounts>(MaterializeFromPackedCodes(
            mask, std::move(attrs), layout,
            PackedCountGroups(view, layout, /*groups_hint=*/out.size)));
    out.full_scan = true;
    return out;
  }

  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(doms, width, &encodable);
  if (!encodable) {
    // Non-64-bit-encodable key space: delegate to the sort-based one-shot
    // counters (corner regime; two passes when within budget).
    PCBL_CHECK(delta_rows_.empty())
        << "appended rows require a 64-bit-encodable key space";
    out.size = CountDistinctPatterns(*table_, mask, budget);
    if (budget >= 0 && out.size > budget) return out;
    out.counts = std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
    out.full_scan = true;
    return out;
  }
  // Mixed-radix one-pass: count *and* materialize, aborting once the
  // distinct count blows the budget.
  CodeCountMap counts(SizingReserve(budget, total_rows()));
  auto add_row = [&](auto value_at) -> bool {
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = value_at(j);
      int64_t slot;
      if (IsNull(v)) {
        slot = doms[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) return true;
    counts.Increment(code);
    return !(budget >= 0 && counts.size() > budget);
  };
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = table_->column(attrs[j]).data();
  }
  const int64_t rows = table_->num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    if (!add_row([&](size_t j) { return cols[j][r]; })) {
      out.size = counts.size();
      return out;
    }
  }
  const int64_t stride = table_->num_attributes();
  const int64_t deltas = num_delta_rows();
  for (int64_t r = 0; r < deltas; ++r) {
    const ValueId* row = delta_rows_.data() + r * stride;
    if (!add_row([&](size_t j) { return row[attrs[j]]; })) {
      out.size = counts.size();
      return out;
    }
  }
  out.size = counts.size();
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(mask, attrs, doms, mult, counts.Items()));
  out.full_scan = true;
  return out;
}

CountingEngine::Sizing CountingEngine::RollupSizing(
    const GroupCounts& ancestor, AttrMask mask, int64_t budget) const {
  Sizing out;
  out.path = Path::kRollup;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);
  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(doms, width, &encodable);
  PCBL_DCHECK(encodable);  // caller checked
  // Position of each mask attribute inside the ancestor's (ascending)
  // attribute list.
  const std::vector<int>& anc_attrs = ancestor.attrs();
  int pos[kMaxAttributes];
  size_t a = 0;
  for (size_t j = 0; j < width; ++j) {
    while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
    PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
    pos[j] = static_cast<int>(a);
  }
  // Aggregate ancestor groups instead of table rows. Exact because every
  // tuple's restriction to `mask` is the projection of its restriction to
  // the ancestor set, and tuples absent from the ancestor's PC set (arity
  // < 2 there) project to arity < 2 here as well.
  CodeCountMap counts(SizingReserve(budget, ancestor.num_groups()));
  const int64_t groups = ancestor.num_groups();
  for (int64_t g = 0; g < groups; ++g) {
    const ValueId* key = ancestor.key(g);
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = key[pos[j]];
      int64_t slot;
      if (IsNull(v)) {
        slot = doms[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) continue;
    counts.Add(code, ancestor.count(g));
    if (budget >= 0 && counts.size() > budget) {
      out.size = counts.size();
      return out;
    }
  }
  out.size = counts.size();
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(mask, attrs, doms, mult, counts.Items()));
  return out;
}

CountingEngine::Sizing CountingEngine::ExecutePlan(AttrMask mask,
                                                   const Plan& plan,
                                                   int64_t budget) const {
  if (plan.hit != nullptr) {
    Sizing out;
    out.path = Path::kHit;
    out.counts = plan.hit;
    out.size = plan.hit->num_groups();
    return out;
  }
  if (plan.ancestor != nullptr && mask.Count() >= 2) {
    std::vector<int> attrs = mask.ToIndices();
    int64_t doms[kMaxAttributes];
    for (size_t j = 0; j < attrs.size(); ++j) doms[j] = DomSizeOf(attrs[j]);
    bool encodable = false;
    NullableRadixMultipliers(doms, attrs.size(), &encodable);
    if (encodable) return RollupSizing(*plan.ancestor, mask, budget);
  }
  return DirectSizing(mask, budget);
}

void CountingEngine::Commit(AttrMask mask, const Sizing& sizing) {
  ++stats_.sizings;
  switch (sizing.path) {
    case Path::kHit:
      ++stats_.cache_hits;
      return;  // already cached
    case Path::kRollup:
      ++stats_.rollups;
      break;
    case Path::kDirect:
      ++stats_.direct_scans;
      if (sizing.full_scan) ++stats_.full_scans;
      break;
    case Path::kTrivial:
      break;
  }
  if (sizing.counts != nullptr && mask.Count() >= 2) {
    CacheInsert(mask, sizing.counts);
  }
}

void CountingEngine::EvictToBudget() {
  while (stats_.cached_groups > options_.cache_budget &&
         !insertion_order_.empty()) {
    uint64_t victim = insertion_order_.front();
    insertion_order_.pop_front();
    auto it = cache_.find(victim);
    PCBL_DCHECK(it != cache_.end());
    stats_.cached_groups -= it->second->num_groups() + 1;
    cache_.erase(it);
    ancestors_.Erase(AttrMask(victim));
    ++stats_.evictions;
  }
}

void CountingEngine::CacheInsert(AttrMask mask,
                                 std::shared_ptr<const GroupCounts> counts,
                                 bool pinned) {
  if (!pinned && options_.cache_budget <= 0) return;
  const int64_t cost = counts->num_groups() + 1;
  if (!pinned && cost > options_.cache_budget) return;
  if (cache_.contains(mask.bits())) return;
  if (!pinned) {
    while (stats_.cached_groups + cost > options_.cache_budget &&
           !insertion_order_.empty()) {
      uint64_t victim = insertion_order_.front();
      insertion_order_.pop_front();
      auto it = cache_.find(victim);
      PCBL_DCHECK(it != cache_.end());
      stats_.cached_groups -= it->second->num_groups() + 1;
      cache_.erase(it);
      ancestors_.Erase(AttrMask(victim));
      ++stats_.evictions;
    }
    insertion_order_.push_back(mask.bits());
    stats_.cached_groups += cost;
  } else {
    pinned_.insert(mask.bits());
  }
  ancestors_.Insert(mask, counts->num_groups());
  cache_.emplace(mask.bits(), std::move(counts));
}

void CountingEngine::Reconfigure(const CountingEngineOptions& options) {
  PCBL_CHECK(options.enabled || delta_rows_.empty())
      << "the engine cannot be disabled once rows were appended";
  options_ = options;
  EvictToBudget();
}

void CountingEngine::InvalidateCache() {
  cache_.clear();
  insertion_order_.clear();
  pinned_.clear();
  ancestors_.Clear();
  stats_.cached_groups = 0;
  ++stats_.invalidations;
}

std::shared_ptr<const GroupCounts> CountingEngine::PatchedEntry(
    const GroupCounts& entry,
    const std::vector<std::vector<ValueId>>& rows) const {
  const std::vector<int>& attrs = entry.attrs();
  const int width = entry.key_width();
  // Restrictions of arity >= 2 contributed by the new rows.
  std::vector<ValueId> fresh;
  for (const std::vector<ValueId>& row : rows) {
    int arity = 0;
    const size_t base = fresh.size();
    fresh.resize(base + static_cast<size_t>(width));
    for (int j = 0; j < width; ++j) {
      const ValueId v = row[static_cast<size_t>(attrs[j])];
      fresh[base + static_cast<size_t>(j)] = v;
      arity += static_cast<int>(!IsNull(v));
    }
    if (arity < 2) fresh.resize(base);
  }
  if (fresh.empty()) return nullptr;

  auto patched = std::make_shared<GroupCounts>(entry);
  std::vector<ValueId>& keys = GroupCountsAccess::keys(*patched);
  std::vector<int64_t>& counts = GroupCountsAccess::counts(*patched);
  const size_t n_fresh = fresh.size() / static_cast<size_t>(width);
  for (size_t i = 0; i < n_fresh; ++i) {
    const ValueId* key = fresh.data() + i * static_cast<size_t>(width);
    // Binary search for the canonical position of the key.
    int64_t lo = 0;
    int64_t hi = static_cast<int64_t>(counts.size());
    while (lo < hi) {
      const int64_t mid = (lo + hi) / 2;
      if (KeyLess(keys.data() + mid * width, key, width)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < static_cast<int64_t>(counts.size()) &&
        std::equal(key, key + width, keys.data() + lo * width)) {
      ++counts[static_cast<size_t>(lo)];
    } else {
      keys.insert(keys.begin() + lo * width, key, key + width);
      counts.insert(counts.begin() + lo, 1);
    }
  }
  return patched;
}

void CountingEngine::ApplyAppend(
    const std::vector<std::vector<ValueId>>& rows) {
  PCBL_CHECK(options_.enabled)
      << "appending rows requires the counting engine enabled";
  if (rows.empty()) return;
  const int n = table_->num_attributes();
  if (eff_dom_.empty()) {
    eff_dom_.resize(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      eff_dom_[static_cast<size_t>(a)] =
          static_cast<int64_t>(table_->DomainSize(a));
    }
  }
  for (const std::vector<ValueId>& row : rows) {
    PCBL_CHECK(static_cast<int>(row.size()) == n)
        << "appended row width mismatches the schema";
    for (int a = 0; a < n; ++a) {
      const ValueId v = row[static_cast<size_t>(a)];
      if (!IsNull(v) &&
          static_cast<int64_t>(v) >= eff_dom_[static_cast<size_t>(a)]) {
        eff_dom_[static_cast<size_t>(a)] = static_cast<int64_t>(v) + 1;
      }
    }
    delta_rows_.insert(delta_rows_.end(), row.begin(), row.end());
  }
  if (cache_.empty()) return;
  // Patch every cached entry in place (copy-on-write: probes may hold
  // references to the old shared state).
  for (auto& [bits, entry] : cache_) {
    std::shared_ptr<const GroupCounts> patched = PatchedEntry(*entry, rows);
    if (patched == nullptr) continue;
    const int64_t grown = patched->num_groups() - entry->num_groups();
    entry = std::move(patched);
    ++stats_.patched_entries;
    ancestors_.Insert(AttrMask(bits), entry->num_groups());
    if (grown != 0 && !pinned_.contains(bits)) {
      stats_.cached_groups += grown;
    }
  }
  EvictToBudget();
}

int64_t CountingEngine::CountPatterns(AttrMask mask, int64_t budget) {
  if (!options_.enabled) {
    return CountDistinctPatterns(*table_, mask, budget);
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), budget);
  Commit(mask, sizing);
  return sizing.counts != nullptr ? sizing.counts->num_groups()
                                  : sizing.size;
}

std::vector<int64_t> CountingEngine::CountPatternsBatch(
    const std::vector<AttrMask>& masks, int64_t budget) {
  std::vector<int64_t> sizes(masks.size(), 0);
  if (!options_.enabled) {
    for (size_t i = 0; i < masks.size(); ++i) {
      sizes[i] = CountDistinctPatterns(*table_, masks[i], budget);
    }
    return sizes;
  }
  // Plans are decided serially against the current cache, executed in
  // parallel (read-only work over the table and the planned entries), and
  // committed serially in input order — cache contents and stats are
  // therefore identical for any thread count.
  std::vector<Plan> plans(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) plans[i] = MakePlan(masks[i]);
  std::vector<Sizing> outcomes(masks.size());
  ParallelFor(static_cast<int64_t>(masks.size()), options_.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                outcomes[s] = ExecutePlan(masks[s], plans[s], budget);
              });
  for (size_t i = 0; i < masks.size(); ++i) {
    // A mask repeated within one batch commits once; later copies become
    // plain hits against the entry the first copy inserted.
    if (outcomes[i].path != Path::kHit &&
        cache_.contains(masks[i].bits())) {
      outcomes[i].path = Path::kHit;
    }
    Commit(masks[i], outcomes[i]);
    sizes[i] = outcomes[i].counts != nullptr
                   ? outcomes[i].counts->num_groups()
                   : outcomes[i].size;
  }
  return sizes;
}

int64_t CountingEngine::CountCombos(AttrMask mask, int64_t budget) {
  // Reference behaviour when there is nothing the one-shot counter cannot
  // see; with appended rows every width goes through the delta-aware
  // paths below (ApplyAppend guarantees options_.enabled).
  if (delta_rows_.empty() && (!options_.enabled || mask.Count() < 2)) {
    return CountDistinctCombos(*table_, mask, budget);
  }
  if (mask.empty()) return total_rows() > 0 ? 1 : 0;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);
  Plan plan = width >= 2 ? MakePlan(mask) : Plan{};
  if (plan.hit != nullptr) {
    // Full combos are exactly the fully-bound groups of the PC set (each
    // a distinct key), since |mask| >= 2 restrictions are all stored.
    ++stats_.cache_hits;
    const GroupCounts& pc = *plan.hit;
    const int kw = pc.key_width();
    int64_t combos = 0;
    for (int64_t g = 0; g < pc.num_groups(); ++g) {
      const ValueId* key = pc.key(g);
      bool full = true;
      for (int j = 0; j < kw; ++j) {
        if (IsNull(key[j])) {
          full = false;
          break;
        }
      }
      if (!full) continue;
      ++combos;
      if (budget >= 0 && combos > budget) return combos;
    }
    return combos;
  }
  // Non-null mixed-radix multipliers over the (effective) domains; the
  // dense key space must fit an int64 for both the rollup and the
  // delta-aware scan below.
  bool encodable = true;
  std::vector<int64_t> mult(width);
  {
    int64_t m = 1;
    for (size_t j = width; j-- > 0;) {
      mult[j] = m;
      int64_t dom = std::max<int64_t>(1, doms[j]);
      if (m > std::numeric_limits<int64_t>::max() / dom) {
        encodable = false;
        break;
      }
      m *= dom;
    }
  }
  if (plan.ancestor != nullptr && encodable) {
    ++stats_.rollups;
    const std::vector<int>& anc_attrs = plan.ancestor->attrs();
    int pos[kMaxAttributes];
    size_t a = 0;
    for (size_t j = 0; j < width; ++j) {
      while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
      PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
      pos[j] = static_cast<int>(a);
    }
    // Distinct fully-bound projections of the ancestor's groups. Exact:
    // every tuple with a NULL-free mask combination has arity >= 2 in
    // the ancestor set, so its group is present there.
    CodeSet seen(SizingReserve(budget, plan.ancestor->num_groups()));
    for (int64_t g = 0; g < plan.ancestor->num_groups(); ++g) {
      const ValueId* key = plan.ancestor->key(g);
      int64_t code = 0;
      bool full = true;
      for (size_t j = 0; j < width; ++j) {
        ValueId v = key[pos[j]];
        if (IsNull(v)) {
          full = false;
          break;
        }
        code += static_cast<int64_t>(v) * mult[j];
      }
      if (!full) continue;
      if (seen.Insert(code) && budget >= 0 && seen.size() > budget) {
        return seen.size();
      }
    }
    return seen.size();
  }
  if (delta_rows_.empty()) {
    ++stats_.direct_scans;
    return CountDistinctCombos(*table_, mask, budget);
  }
  // Delta-aware combo scan (the one-shot counter cannot see the appended
  // rows).
  PCBL_CHECK(encodable)
      << "appended rows require a 64-bit-encodable key space";
  ++stats_.direct_scans;
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = table_->column(attrs[j]).data();
  }
  CodeSet seen(SizingReserve(budget, total_rows()));
  auto add_row = [&](auto value_at) -> bool {
    int64_t code = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = value_at(j);
      if (IsNull(v)) return true;
      code += static_cast<int64_t>(v) * mult[j];
    }
    return !(seen.Insert(code) && budget >= 0 && seen.size() > budget);
  };
  const int64_t rows = table_->num_rows();
  for (int64_t r = 0; r < rows; ++r) {
    if (!add_row([&](size_t j) { return cols[j][r]; })) return seen.size();
  }
  const int64_t stride = table_->num_attributes();
  const int64_t deltas = num_delta_rows();
  for (int64_t r = 0; r < deltas; ++r) {
    const ValueId* row = delta_rows_.data() + r * stride;
    if (!add_row([&](size_t j) { return row[attrs[j]]; })) {
      return seen.size();
    }
  }
  return seen.size();
}

std::shared_ptr<const GroupCounts> CountingEngine::PatternCounts(
    AttrMask mask) {
  if (!options_.enabled) {
    return std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1);
  Commit(mask, sizing);
  PCBL_CHECK(sizing.counts != nullptr);  // unbudgeted sizing materializes
  return sizing.counts;
}

std::shared_ptr<const GroupCounts> CountingEngine::PinnedPatternCounts(
    AttrMask mask) {
  if (!options_.enabled) return PatternCounts(mask);
  // Promote an existing evictable entry: pull it out of the FIFO and the
  // budget so the sweep it anchors cannot cycle it out.
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    auto pos = std::find(insertion_order_.begin(), insertion_order_.end(),
                         mask.bits());
    if (pos != insertion_order_.end()) {
      insertion_order_.erase(pos);
      stats_.cached_groups -= it->second->num_groups() + 1;
      pinned_.insert(mask.bits());
    }
    return it->second;
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1);
  ++stats_.sizings;
  if (sizing.path == Path::kRollup) ++stats_.rollups;
  if (sizing.path == Path::kDirect) {
    ++stats_.direct_scans;
    if (sizing.full_scan) ++stats_.full_scans;
  }
  PCBL_CHECK(sizing.counts != nullptr);
  if (mask.Count() >= 2) {
    CacheInsert(mask, sizing.counts, /*pinned=*/true);
  }
  return sizing.counts;
}

std::shared_ptr<const GroupCounts> CountingEngine::CachedPatternCounts(
    AttrMask mask) const {
  auto it = cache_.find(mask.bits());
  return it == cache_.end() ? nullptr : it->second;
}

}  // namespace pcbl
