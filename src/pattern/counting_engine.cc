#include "pattern/counting_engine.h"

#include <algorithm>
#include <utility>

#include "pattern/packed_codec.h"
#include "pattern/packed_kernels.h"
#include "pattern/restriction_codec.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pcbl {

using counting::CodeCountMap;
using counting::CodeSet;
using counting::MakePackedLayout;
using counting::MaterializeFromCodes;
using counting::MaterializeFromPackedCodes;
using counting::NullableRadixMultipliers;
using counting::PackedCountDistinct;
using counting::PackedCountGroups;
using counting::PackedLayout;
using counting::SizingReserve;
using counting::SubsetColumns;

namespace {

// Canonical group order on raw keys: kNullValue is the numerically
// largest ValueId, so plain lexicographic comparison sorts NULL last per
// attribute — exactly the emission order of the codecs.
inline bool KeyLess(const ValueId* a, const ValueId* b, int width) {
  return std::lexicographical_compare(a, a + width, b, b + width);
}

// Fixed per-entry overhead charged by the memory accountant on top of
// the key/count payload: map node, FIFO slot, trie node, shared_ptr
// control block.
constexpr int64_t kCacheEntryOverheadBytes = 64;

// Streams every base row, then every delta row, of one attribute subset
// through `fn`, which receives a value_at(j) accessor and returns false
// to stop the scan early. The one row loop shared by the mixed-radix
// and sort-fallback scan paths.
template <typename Fn>
void ForEachSubsetRow(const ValueId* const* cols, int64_t rows,
                      const ValueId* delta, int64_t delta_rows,
                      int64_t delta_stride, const int* attrs, Fn&& fn) {
  for (int64_t r = 0; r < rows; ++r) {
    if (!fn([&](size_t j) { return cols[j][r]; })) return;
  }
  for (int64_t r = 0; r < delta_rows; ++r) {
    const ValueId* row = delta + r * delta_stride;
    if (!fn([&](size_t j) { return row[attrs[j]]; })) return;
  }
}

// Sorts row-major keys and emits (run start, run length) pairs in the
// canonical lexicographic order; shared by the sort-fallback sizing and
// combo paths.
template <typename EmitRun>
void ForEachSortedRun(std::vector<ValueId>& keys, size_t width,
                      EmitRun&& emit) {
  const size_t n = width == 0 ? 0 : keys.size() / width;
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = keys.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    if (!emit(ki, static_cast<int64_t>(j - i))) return;
    i = j;
  }
}

}  // namespace

int64_t CountingEngine::EntryBytes(const GroupCounts& counts) {
  return counts.num_groups() *
             (counts.key_width() * static_cast<int64_t>(sizeof(ValueId)) +
              static_cast<int64_t>(sizeof(int64_t))) +
         kCacheEntryOverheadBytes;
}

CountingEngine::CountingEngine(const Table& table,
                               CountingEngineOptions options)
    : table_(&table), options_(options) {}

CountingEngine::Plan CountingEngine::MakePlan(AttrMask mask) const {
  Plan plan;
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    plan.hit = it->second;
    return plan;
  }
  // Best strict superset: fewest groups, found through the subset trie in
  // near-constant time. Aggregating the ancestor's groups must beat a row
  // scan, so anything with >= total_rows groups is not worth using. Ties
  // are broken deterministically by the trie's DFS order — and every
  // ancestor yields the same exact counts, so results do not depend on
  // the choice.
  auto best = ancestors_.BestStrictSuperset(mask, total_rows());
  if (best.has_value()) {
    auto anc = cache_.find(best->mask.bits());
    PCBL_DCHECK(anc != cache_.end());
    plan.ancestor = anc->second;
  }
  return plan;
}

CountingEngine::Sizing CountingEngine::DirectSizing(
    AttrMask mask, int64_t budget, bool materialize,
    int morsel_threads) const {
  Sizing out;
  out.path = Path::kDirect;
  // Exact packed passes may split this one subset across threads
  // (packed_kernels.h); budgeted passes ignore the config, so the
  // early-exit contract is untouched.
  const counting::MorselConfig morsel{morsel_threads,
                                      options_.min_rows_per_morsel};
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  if (width < 2) {
    // Arity-1 information lives in VC; the PC set is empty (but carries
    // the attribute layout, matching ComputePatternCounts). No table
    // work happens.
    out.path = Path::kTrivial;
    out.counts = std::make_shared<const GroupCounts>(
        ComputePatternCounts(*table_, mask));
    return out;
  }
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);

  // The scanned view streams the effective base columns (the table, or
  // the compacted storage once deltas were folded) plus any uncompacted
  // delta rows.
  SubsetColumns view;
  view.width = static_cast<int>(width);
  view.rows = base_rows();
  for (size_t j = 0; j < width; ++j) {
    view.cols[j] = BaseColumn(attrs[j]);
    view.nullable[j] = BaseHasNulls(attrs[j]);
  }
  if (!delta_rows_.empty()) {
    view.delta = delta_rows_.data();
    view.delta_rows = num_delta_rows();
    view.delta_stride = table_->num_attributes();
    for (size_t j = 0; j < width; ++j) {
      view.delta_attr[j] = attrs[j];
    }
  }

  const PackedLayout layout =
      MakePackedLayout(doms, static_cast<int>(width));
  if (layout.ok) {
    if (counting::PackedDenseCountEligible(layout, total_rows())) {
      // Small key space: one direct-addressing pass counts and
      // materializes together, and its ascending-code sweep is already
      // the canonical emission order.
      std::vector<std::pair<int64_t, int64_t>> items;
      out.size = counting::PackedCountGroupsDense(view, layout, budget,
                                                  &items, morsel);
      if (budget >= 0 && out.size > budget) return out;
      if (!materialize) return out;
      out.counts = std::make_shared<const GroupCounts>(
          MaterializeFromPackedCodes(mask, std::move(attrs), layout,
                                     std::move(items)));
      out.full_scan = true;
      return out;
    }
    // Sizing pass over packed codes (dense bitmap or open addressing);
    // over-budget subsets — the common case — stop here. Within-budget
    // ones materialize in a second pass whose map is reserved at the now
    // exact group count, so it never rehashes.
    out.size = PackedCountDistinct(view, layout, budget, morsel);
    if ((budget >= 0 && out.size > budget) || !materialize) return out;
    out.counts =
        std::make_shared<const GroupCounts>(MaterializeFromPackedCodes(
            mask, std::move(attrs), layout,
            PackedCountGroups(view, layout, /*groups_hint=*/out.size,
                              morsel)));
    out.full_scan = true;
    return out;
  }

  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(doms, width, &encodable);
  if (!encodable) {
    // Non-64-bit-encodable key space (corner regime). Without appended
    // state the sort-based one-shot counters are the reference; with it
    // the engine's own delta-aware sort fallback keeps the path total.
    if (!has_appended_state()) {
      out.size = CountDistinctPatterns(*table_, mask, budget);
      if ((budget >= 0 && out.size > budget) || !materialize) return out;
      out.counts = std::make_shared<const GroupCounts>(
          ComputePatternCounts(*table_, mask));
      out.full_scan = true;
      return out;
    }
    return SortFallbackSizing(mask, budget, materialize);
  }
  // Mixed-radix one-pass: count *and* materialize, aborting once the
  // distinct count blows the budget.
  CodeCountMap counts(SizingReserve(budget, total_rows()));
  auto add_row = [&](auto value_at) -> bool {
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = value_at(j);
      int64_t slot;
      if (IsNull(v)) {
        slot = doms[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) return true;
    counts.Increment(code);
    return !(budget >= 0 && counts.size() > budget);
  };
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = BaseColumn(attrs[j]);
  }
  ForEachSubsetRow(cols, base_rows(), delta_rows_.data(), num_delta_rows(),
                   table_->num_attributes(), attrs.data(), add_row);
  out.size = counts.size();
  if ((budget >= 0 && out.size > budget) || !materialize) return out;
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(mask, attrs, doms, mult, counts.Items()));
  out.full_scan = true;
  return out;
}

CountingEngine::Sizing CountingEngine::SortFallbackSizing(
    AttrMask mask, int64_t budget, bool materialize) const {
  Sizing out;
  out.path = Path::kDirect;
  const std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  PCBL_DCHECK(width >= 2);
  // Row-major restriction keys of arity >= 2 over base + delta rows;
  // raw ValueIds, so no code space is needed at all.
  std::vector<ValueId> keys;
  keys.reserve(static_cast<size_t>(total_rows()) * width);
  auto add_row = [&](auto value_at) {
    int arity = 0;
    const size_t base = keys.size();
    keys.resize(base + width);
    for (size_t j = 0; j < width; ++j) {
      const ValueId v = value_at(j);
      keys[base + j] = v;
      arity += static_cast<int>(!IsNull(v));
    }
    if (arity < 2) keys.resize(base);  // drop low-arity restrictions
    return true;
  };
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) cols[j] = BaseColumn(attrs[j]);
  ForEachSubsetRow(cols, base_rows(), delta_rows_.data(), num_delta_rows(),
                   table_->num_attributes(), attrs.data(), add_row);
  if (!materialize) {
    int64_t distinct = 0;
    ForEachSortedRun(keys, width, [&](const ValueId*, int64_t) {
      ++distinct;
      return !(budget >= 0 && distinct > budget);
    });
    out.size = distinct;
    return out;
  }
  // One sort serves both the sizing and (within budget) the
  // materialization: runs emit in canonical order already.
  GroupCounts counts;
  GroupCountsAccess::mask(counts) = mask;
  GroupCountsAccess::attrs(counts) = attrs;
  std::vector<ValueId>& out_keys = GroupCountsAccess::keys(counts);
  std::vector<int64_t>& out_counts = GroupCountsAccess::counts(counts);
  bool aborted = false;
  ForEachSortedRun(keys, width, [&](const ValueId* key, int64_t run) {
    out_keys.insert(out_keys.end(), key, key + width);
    out_counts.push_back(run);
    if (budget >= 0 &&
        static_cast<int64_t>(out_counts.size()) > budget) {
      aborted = true;
      return false;
    }
    return true;
  });
  out.size = counts.num_groups();
  if (aborted) return out;
  out.counts = std::make_shared<const GroupCounts>(std::move(counts));
  out.full_scan = true;
  return out;
}

int64_t CountingEngine::SortFallbackCombos(AttrMask mask,
                                           int64_t budget) const {
  const std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  // NULL-free combination keys over base + delta rows.
  std::vector<ValueId> keys;
  keys.reserve(static_cast<size_t>(total_rows()) * width);
  auto add_row = [&](auto value_at) {
    const size_t base = keys.size();
    keys.resize(base + width);
    for (size_t j = 0; j < width; ++j) {
      const ValueId v = value_at(j);
      if (IsNull(v)) {
        keys.resize(base);
        return true;
      }
      keys[base + j] = v;
    }
    return true;
  };
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) cols[j] = BaseColumn(attrs[j]);
  ForEachSubsetRow(cols, base_rows(), delta_rows_.data(), num_delta_rows(),
                   table_->num_attributes(), attrs.data(), add_row);
  int64_t distinct = 0;
  ForEachSortedRun(keys, width, [&](const ValueId*, int64_t) {
    ++distinct;
    return !(budget >= 0 && distinct > budget);
  });
  return distinct;
}

CountingEngine::Sizing CountingEngine::RollupSizing(
    const GroupCounts& ancestor, AttrMask mask, int64_t budget) const {
  Sizing out;
  out.path = Path::kRollup;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);
  bool encodable = false;
  std::vector<int64_t> mult =
      NullableRadixMultipliers(doms, width, &encodable);
  PCBL_DCHECK(encodable);  // caller checked
  // Position of each mask attribute inside the ancestor's (ascending)
  // attribute list.
  const std::vector<int>& anc_attrs = ancestor.attrs();
  int pos[kMaxAttributes];
  size_t a = 0;
  for (size_t j = 0; j < width; ++j) {
    while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
    PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
    pos[j] = static_cast<int>(a);
  }
  // Aggregate ancestor groups instead of table rows. Exact because every
  // tuple's restriction to `mask` is the projection of its restriction to
  // the ancestor set, and tuples absent from the ancestor's PC set (arity
  // < 2 there) project to arity < 2 here as well.
  CodeCountMap counts(SizingReserve(budget, ancestor.num_groups()));
  const int64_t groups = ancestor.num_groups();
  for (int64_t g = 0; g < groups; ++g) {
    const ValueId* key = ancestor.key(g);
    int64_t code = 0;
    int arity = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = key[pos[j]];
      int64_t slot;
      if (IsNull(v)) {
        slot = doms[j];
      } else {
        slot = static_cast<int64_t>(v);
        ++arity;
      }
      code += slot * mult[j];
    }
    if (arity < 2) continue;
    counts.Add(code, ancestor.count(g));
    if (budget >= 0 && counts.size() > budget) {
      out.size = counts.size();
      return out;
    }
  }
  out.size = counts.size();
  out.counts = std::make_shared<const GroupCounts>(
      MaterializeFromCodes(mask, attrs, doms, mult, counts.Items()));
  return out;
}

CountingEngine::Sizing CountingEngine::ExecutePlan(AttrMask mask,
                                                   const Plan& plan,
                                                   int64_t budget,
                                                   int morsel_threads) const {
  if (plan.hit != nullptr) {
    Sizing out;
    out.path = Path::kHit;
    out.counts = plan.hit;
    out.size = plan.hit->num_groups();
    return out;
  }
  if (plan.ancestor != nullptr && mask.Count() >= 2) {
    std::vector<int> attrs = mask.ToIndices();
    int64_t doms[kMaxAttributes];
    for (size_t j = 0; j < attrs.size(); ++j) doms[j] = DomSizeOf(attrs[j]);
    bool encodable = false;
    NullableRadixMultipliers(doms, attrs.size(), &encodable);
    if (encodable) return RollupSizing(*plan.ancestor, mask, budget);
  }
  return DirectSizing(mask, budget, /*materialize=*/true, morsel_threads);
}

namespace {

// Per-mask morsel-thread share of one batch: the batch ParallelFor
// spreads `masks` over num_threads workers, so each concurrently
// executing scan may spend the leftover factor on intra-subset morsels.
// A solo-mask batch (the wave scheduler's degenerate case) gets the
// whole thread budget; a batch saturating the workers gets 1.
int BatchMorselThreads(size_t masks, int num_threads) {
  const int concurrent =
      std::max(1, std::min(static_cast<int>(masks), num_threads));
  return std::max(1, num_threads / concurrent);
}

}  // namespace

void CountingEngine::Commit(AttrMask mask, const Sizing& sizing) {
  ++stats_.sizings;
  switch (sizing.path) {
    case Path::kHit:
      ++stats_.cache_hits;
      return;  // already cached
    case Path::kRollup:
      ++stats_.rollups;
      break;
    case Path::kDirect:
      ++stats_.direct_scans;
      if (sizing.full_scan) ++stats_.full_scans;
      break;
    case Path::kTrivial:
      break;
  }
  if (sizing.counts != nullptr && mask.Count() >= 2 && options_.enabled) {
    CacheInsert(mask, sizing.counts);
  }
}

void CountingEngine::EvictFront() {
  uint64_t victim = insertion_order_.front();
  insertion_order_.pop_front();
  auto it = cache_.find(victim);
  PCBL_DCHECK(it != cache_.end());
  stats_.cached_groups -= it->second->num_groups() + 1;
  AddResidentBytes(-EntryBytes(*it->second));
  cache_.erase(it);
  ancestors_.Erase(AttrMask(victim));
  ++stats_.evictions;
}

void CountingEngine::EvictToBudget() {
  while (stats_.cached_groups > options_.cache_budget &&
         !insertion_order_.empty()) {
    EvictFront();
  }
}

void CountingEngine::CacheInsert(AttrMask mask,
                                 std::shared_ptr<const GroupCounts> counts,
                                 bool pinned) {
  if (!pinned && options_.cache_budget <= 0) return;
  const int64_t cost = counts->num_groups() + 1;
  if (!pinned && cost > options_.cache_budget) return;
  if (cache_.contains(mask.bits())) return;
  if (!pinned) {
    while (stats_.cached_groups + cost > options_.cache_budget &&
           !insertion_order_.empty()) {
      EvictFront();
    }
    insertion_order_.push_back(mask.bits());
    stats_.cached_groups += cost;
  } else {
    pinned_.insert(mask.bits());
  }
  AddResidentBytes(EntryBytes(*counts));
  ancestors_.Insert(mask, counts->num_groups());
  cache_.emplace(mask.bits(), std::move(counts));
}

std::vector<CountingEngine::CacheSnapshotEntry>
CountingEngine::ExportCacheSnapshot() const {
  std::vector<CacheSnapshotEntry> out;
  out.reserve(cache_.size());
  for (uint64_t bits : insertion_order_) {
    auto it = cache_.find(bits);
    PCBL_DCHECK(it != cache_.end());
    if (it != cache_.end()) out.push_back({bits, false, it->second});
  }
  std::vector<uint64_t> pinned(pinned_.begin(), pinned_.end());
  std::sort(pinned.begin(), pinned.end());
  for (uint64_t bits : pinned) {
    auto it = cache_.find(bits);
    PCBL_DCHECK(it != cache_.end());
    if (it != cache_.end()) out.push_back({bits, true, it->second});
  }
  return out;
}

void CountingEngine::ImportCacheSnapshot(
    const std::vector<CacheSnapshotEntry>& entries) {
  for (const CacheSnapshotEntry& entry : entries) {
    if (entry.counts == nullptr) continue;
    CacheInsert(AttrMask(entry.mask_bits), entry.counts, entry.pinned);
  }
}

void CountingEngine::Reconfigure(const CountingEngineOptions& options) {
  options_ = options;
  EvictToBudget();
}

void CountingEngine::InvalidateCache() {
  cache_.clear();
  insertion_order_.clear();
  pinned_.clear();
  ancestors_.Clear();
  stats_.cached_groups = 0;
  AddResidentBytes(-stats_.cached_bytes);
  ++stats_.invalidations;
}

std::shared_ptr<const GroupCounts> CountingEngine::PatchedEntry(
    const GroupCounts& entry,
    const std::vector<std::vector<ValueId>>& rows) const {
  const std::vector<int>& attrs = entry.attrs();
  const int width = entry.key_width();
  // Restrictions of arity >= 2 contributed by the new rows.
  std::vector<ValueId> fresh;
  for (const std::vector<ValueId>& row : rows) {
    int arity = 0;
    const size_t base = fresh.size();
    fresh.resize(base + static_cast<size_t>(width));
    for (int j = 0; j < width; ++j) {
      const ValueId v = row[static_cast<size_t>(attrs[j])];
      fresh[base + static_cast<size_t>(j)] = v;
      arity += static_cast<int>(!IsNull(v));
    }
    if (arity < 2) fresh.resize(base);
  }
  if (fresh.empty()) return nullptr;

  auto patched = std::make_shared<GroupCounts>(entry);
  std::vector<ValueId>& keys = GroupCountsAccess::keys(*patched);
  std::vector<int64_t>& counts = GroupCountsAccess::counts(*patched);
  const size_t n_fresh = fresh.size() / static_cast<size_t>(width);
  for (size_t i = 0; i < n_fresh; ++i) {
    const ValueId* key = fresh.data() + i * static_cast<size_t>(width);
    // Binary search for the canonical position of the key.
    int64_t lo = 0;
    int64_t hi = static_cast<int64_t>(counts.size());
    while (lo < hi) {
      const int64_t mid = (lo + hi) / 2;
      if (KeyLess(keys.data() + mid * width, key, width)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < static_cast<int64_t>(counts.size()) &&
        std::equal(key, key + width, keys.data() + lo * width)) {
      ++counts[static_cast<size_t>(lo)];
    } else {
      keys.insert(keys.begin() + lo * width, key, key + width);
      counts.insert(counts.begin() + lo, 1);
    }
  }
  return patched;
}

void CountingEngine::ApplyAppend(
    const std::vector<std::vector<ValueId>>& rows) {
  if (rows.empty()) return;
  const int n = table_->num_attributes();
  if (eff_dom_.empty()) {
    eff_dom_.resize(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      eff_dom_[static_cast<size_t>(a)] =
          static_cast<int64_t>(table_->DomainSize(a));
    }
  }
  for (const std::vector<ValueId>& row : rows) {
    PCBL_CHECK(static_cast<int>(row.size()) == n)
        << "appended row width mismatches the schema";
    for (int a = 0; a < n; ++a) {
      const ValueId v = row[static_cast<size_t>(a)];
      if (!IsNull(v) &&
          static_cast<int64_t>(v) >= eff_dom_[static_cast<size_t>(a)]) {
        eff_dom_[static_cast<size_t>(a)] = static_cast<int64_t>(v) + 1;
      }
    }
    delta_rows_.insert(delta_rows_.end(), row.begin(), row.end());
  }
  appended_rows_relaxed_.store(num_appended_rows(),
                               std::memory_order_relaxed);
  appended_bytes_relaxed_.fetch_add(
      static_cast<int64_t>(rows.size()) * n *
          static_cast<int64_t>(sizeof(ValueId)),
      std::memory_order_relaxed);
  // Patch every cached entry in place (copy-on-write: probes may hold
  // references to the old shared state).
  for (auto& [bits, entry] : cache_) {
    std::shared_ptr<const GroupCounts> patched = PatchedEntry(*entry, rows);
    if (patched == nullptr) continue;
    const int64_t grown = patched->num_groups() - entry->num_groups();
    AddResidentBytes(EntryBytes(*patched) - EntryBytes(*entry));
    entry = std::move(patched);
    ++stats_.patched_entries;
    ancestors_.Insert(AttrMask(bits), entry->num_groups());
    if (grown != 0 && !pinned_.contains(bits)) {
      stats_.cached_groups += grown;
    }
  }
  EvictToBudget();
  if (options_.delta_compact_threshold > 0 &&
      num_delta_rows() >= options_.delta_compact_threshold) {
    CompactDeltas();
  }
}

void CountingEngine::CompactDeltas() {
  const int64_t deltas = num_delta_rows();
  if (deltas == 0) return;
  const int n = table_->num_attributes();
  if (base_rows_ < 0) {
    // First compaction: take a columnar copy of the table. From here on
    // the engine owns the base storage and the table is only consulted
    // for schema/domain metadata.
    base_cols_.resize(static_cast<size_t>(n));
    base_has_nulls_.resize(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      base_cols_[static_cast<size_t>(a)] = table_->column(a);
      base_has_nulls_[static_cast<size_t>(a)] = table_->HasNulls(a);
    }
    base_rows_ = table_->num_rows();
    // The columnar copy of the table is new resident data; the folded
    // delta bytes are already charged and merely change layout.
    appended_bytes_relaxed_.fetch_add(
        static_cast<int64_t>(n) * table_->num_rows() *
            static_cast<int64_t>(sizeof(ValueId)),
        std::memory_order_relaxed);
  }
  for (int a = 0; a < n; ++a) {
    std::vector<ValueId>& col = base_cols_[static_cast<size_t>(a)];
    col.reserve(col.size() + static_cast<size_t>(deltas));
    bool nulls = base_has_nulls_[static_cast<size_t>(a)];
    for (int64_t r = 0; r < deltas; ++r) {
      const ValueId v = delta_rows_[static_cast<size_t>(r * n + a)];
      col.push_back(v);
      nulls = nulls || IsNull(v);
    }
    base_has_nulls_[static_cast<size_t>(a)] = nulls;
  }
  base_rows_ += deltas;
  delta_rows_.clear();
  delta_rows_.shrink_to_fit();
  ++stats_.compactions;
}

int64_t CountingEngine::CountPatterns(AttrMask mask, int64_t budget) {
  if (!options_.enabled) {
    if (!has_appended_state()) {
      return CountDistinctPatterns(*table_, mask, budget);
    }
    // Disabled engine over appended data: the one-shot counters cannot
    // see it, so run the uncached direct scan. Size-only — nothing can
    // cache the PC set while disabled, so materializing it (and the
    // packed path's second scan) would be pure waste.
    Sizing sizing = DirectSizing(mask, budget, /*materialize=*/false,
                                 options_.num_threads);
    Commit(mask, sizing);
    return sizing.counts != nullptr ? sizing.counts->num_groups()
                                    : sizing.size;
  }
  Sizing sizing =
      ExecutePlan(mask, MakePlan(mask), budget, options_.num_threads);
  Commit(mask, sizing);
  return sizing.counts != nullptr ? sizing.counts->num_groups()
                                  : sizing.size;
}

std::vector<int64_t> CountingEngine::CountPatternsBatch(
    const std::vector<AttrMask>& masks, int64_t budget) {
  return CountPatternsBatchCollect(masks, budget, /*counts_out=*/nullptr);
}

std::vector<int64_t> CountingEngine::CountPatternsBatchCollect(
    const std::vector<AttrMask>& masks, int64_t budget,
    std::vector<std::shared_ptr<const GroupCounts>>* counts_out) {
  std::vector<int64_t> sizes(masks.size(), 0);
  if (counts_out != nullptr) {
    counts_out->assign(masks.size(), nullptr);
  }
  if (!options_.enabled) {
    for (size_t i = 0; i < masks.size(); ++i) {
      sizes[i] = CountPatterns(masks[i], budget);
    }
    return sizes;
  }
  // Plans are decided serially against the current cache, executed in
  // parallel (read-only work over the table and the planned entries), and
  // committed serially in input order — cache contents and stats are
  // therefore identical for any thread count.
  std::vector<Plan> plans(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) plans[i] = MakePlan(masks[i]);
  std::vector<Sizing> outcomes(masks.size());
  const int morsel_threads =
      BatchMorselThreads(masks.size(), options_.num_threads);
  ParallelFor(static_cast<int64_t>(masks.size()), options_.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                outcomes[s] =
                    ExecutePlan(masks[s], plans[s], budget, morsel_threads);
              });
  for (size_t i = 0; i < masks.size(); ++i) {
    // A mask repeated within one batch commits once; later copies become
    // plain hits against the entry the first copy inserted.
    if (outcomes[i].path != Path::kHit &&
        cache_.contains(masks[i].bits())) {
      outcomes[i].path = Path::kHit;
    }
    Commit(masks[i], outcomes[i]);
    sizes[i] = outcomes[i].counts != nullptr
                   ? outcomes[i].counts->num_groups()
                   : outcomes[i].size;
    if (counts_out != nullptr) {
      (*counts_out)[i] = outcomes[i].counts;
    }
  }
  return sizes;
}

int64_t CountingEngine::CountCombos(AttrMask mask, int64_t budget) {
  // Reference behaviour when there is nothing the one-shot counter cannot
  // see; with appended rows (delta block or compacted base) every width
  // goes through the delta-aware paths below.
  if (!has_appended_state() && (!options_.enabled || mask.Count() < 2)) {
    return CountDistinctCombos(*table_, mask, budget);
  }
  if (mask.empty()) return total_rows() > 0 ? 1 : 0;
  std::vector<int> attrs = mask.ToIndices();
  const size_t width = attrs.size();
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) doms[j] = DomSizeOf(attrs[j]);
  // Disabled engines must not serve memoized answers.
  Plan plan =
      (options_.enabled && width >= 2) ? MakePlan(mask) : Plan{};
  if (plan.hit != nullptr) {
    // Full combos are exactly the fully-bound groups of the PC set (each
    // a distinct key), since |mask| >= 2 restrictions are all stored.
    ++stats_.cache_hits;
    const GroupCounts& pc = *plan.hit;
    const int kw = pc.key_width();
    int64_t combos = 0;
    for (int64_t g = 0; g < pc.num_groups(); ++g) {
      const ValueId* key = pc.key(g);
      bool full = true;
      for (int j = 0; j < kw; ++j) {
        if (IsNull(key[j])) {
          full = false;
          break;
        }
      }
      if (!full) continue;
      ++combos;
      if (budget >= 0 && combos > budget) return combos;
    }
    return combos;
  }
  // Non-null mixed-radix multipliers over the (effective) domains; the
  // dense key space must fit an int64 for both the rollup and the
  // delta-aware scan below.
  bool encodable = true;
  std::vector<int64_t> mult(width);
  {
    int64_t m = 1;
    for (size_t j = width; j-- > 0;) {
      mult[j] = m;
      int64_t dom = std::max<int64_t>(1, doms[j]);
      if (m > std::numeric_limits<int64_t>::max() / dom) {
        encodable = false;
        break;
      }
      m *= dom;
    }
  }
  if (plan.ancestor != nullptr && encodable) {
    ++stats_.rollups;
    const std::vector<int>& anc_attrs = plan.ancestor->attrs();
    int pos[kMaxAttributes];
    size_t a = 0;
    for (size_t j = 0; j < width; ++j) {
      while (a < anc_attrs.size() && anc_attrs[a] < attrs[j]) ++a;
      PCBL_DCHECK(a < anc_attrs.size() && anc_attrs[a] == attrs[j]);
      pos[j] = static_cast<int>(a);
    }
    // Distinct fully-bound projections of the ancestor's groups. Exact:
    // every tuple with a NULL-free mask combination has arity >= 2 in
    // the ancestor set, so its group is present there.
    CodeSet seen(SizingReserve(budget, plan.ancestor->num_groups()));
    for (int64_t g = 0; g < plan.ancestor->num_groups(); ++g) {
      const ValueId* key = plan.ancestor->key(g);
      int64_t code = 0;
      bool full = true;
      for (size_t j = 0; j < width; ++j) {
        ValueId v = key[pos[j]];
        if (IsNull(v)) {
          full = false;
          break;
        }
        code += static_cast<int64_t>(v) * mult[j];
      }
      if (!full) continue;
      if (seen.Insert(code) && budget >= 0 && seen.size() > budget) {
        return seen.size();
      }
    }
    return seen.size();
  }
  if (!has_appended_state()) {
    ++stats_.direct_scans;
    return CountDistinctCombos(*table_, mask, budget);
  }
  // Delta-aware combo scan (the one-shot counter cannot see the appended
  // rows); non-encodable key spaces take the sort fallback.
  ++stats_.direct_scans;
  if (!encodable) return SortFallbackCombos(mask, budget);
  const ValueId* cols[kMaxAttributes];
  for (size_t j = 0; j < width; ++j) {
    cols[j] = BaseColumn(attrs[j]);
  }
  CodeSet seen(SizingReserve(budget, total_rows()));
  auto add_row = [&](auto value_at) -> bool {
    int64_t code = 0;
    for (size_t j = 0; j < width; ++j) {
      ValueId v = value_at(j);
      if (IsNull(v)) return true;
      code += static_cast<int64_t>(v) * mult[j];
    }
    return !(seen.Insert(code) && budget >= 0 && seen.size() > budget);
  };
  ForEachSubsetRow(cols, base_rows(), delta_rows_.data(), num_delta_rows(),
                   table_->num_attributes(), attrs.data(), add_row);
  return seen.size();
}

std::shared_ptr<const GroupCounts> CountingEngine::PatternCounts(
    AttrMask mask) {
  if (!options_.enabled) {
    if (!has_appended_state()) {
      return std::make_shared<const GroupCounts>(
          ComputePatternCounts(*table_, mask));
    }
    Sizing sizing = DirectSizing(mask, /*budget=*/-1, /*materialize=*/true,
                                 options_.num_threads);
    Commit(mask, sizing);
    PCBL_CHECK(sizing.counts != nullptr);
    return sizing.counts;
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1,
                              options_.num_threads);
  Commit(mask, sizing);
  PCBL_CHECK(sizing.counts != nullptr);  // unbudgeted sizing materializes
  return sizing.counts;
}

std::vector<std::shared_ptr<const GroupCounts>>
CountingEngine::PatternCountsBatch(const std::vector<AttrMask>& masks) {
  std::vector<std::shared_ptr<const GroupCounts>> out(masks.size());
  if (!options_.enabled) {
    for (size_t i = 0; i < masks.size(); ++i) {
      out[i] = PatternCounts(masks[i]);
    }
    return out;
  }
  // Same discipline as CountPatternsBatch: serial plans, parallel
  // execution, serial input-order commits.
  std::vector<Plan> plans(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) plans[i] = MakePlan(masks[i]);
  std::vector<Sizing> outcomes(masks.size());
  const int morsel_threads =
      BatchMorselThreads(masks.size(), options_.num_threads);
  ParallelFor(static_cast<int64_t>(masks.size()), options_.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                outcomes[s] = ExecutePlan(masks[s], plans[s],
                                          /*budget=*/-1, morsel_threads);
              });
  for (size_t i = 0; i < masks.size(); ++i) {
    if (outcomes[i].path != Path::kHit &&
        cache_.contains(masks[i].bits())) {
      outcomes[i].path = Path::kHit;  // a duplicate already committed
    }
    Commit(masks[i], outcomes[i]);
    PCBL_CHECK(outcomes[i].counts != nullptr);
    out[i] = outcomes[i].counts;
  }
  return out;
}

void CountingEngine::CopyAppendedRow(int64_t i, ValueId* out) const {
  PCBL_DCHECK(i >= 0 && i < num_appended_rows());
  const int n = table_->num_attributes();
  const int64_t global = table_->num_rows() + i;
  if (base_rows_ >= 0 && global < base_rows_) {
    // Compacted into the engine-owned columnar base.
    for (int a = 0; a < n; ++a) {
      out[a] = base_cols_[static_cast<size_t>(a)]
                         [static_cast<size_t>(global)];
    }
    return;
  }
  const int64_t d = global - base_rows();  // index into the delta block
  for (int a = 0; a < n; ++a) {
    out[a] = delta_rows_[static_cast<size_t>(d * n + a)];
  }
}

void CountingEngine::CopyAppendedRows(int64_t first, int64_t count,
                                      ValueId* out) const {
  PCBL_DCHECK(first >= 0 && count >= 0 &&
              first + count <= num_appended_rows());
  const int n = table_->num_attributes();
  int64_t global = table_->num_rows() + first;
  const int64_t end = global + count;
  // Prefix compacted into the engine-owned columnar base: gather
  // column-wise values back into rows.
  while (global < end && base_rows_ >= 0 && global < base_rows_) {
    for (int a = 0; a < n; ++a) {
      *out++ = base_cols_[static_cast<size_t>(a)]
                         [static_cast<size_t>(global)];
    }
    ++global;
  }
  if (global >= end) return;
  // Delta-block suffix: already row-major — one contiguous copy.
  const int64_t d = global - base_rows();
  std::copy_n(delta_rows_.data() + static_cast<size_t>(d * n),
              static_cast<size_t>((end - global) * n), out);
}

std::shared_ptr<const GroupCounts> CountingEngine::PinnedPatternCounts(
    AttrMask mask) {
  if (!options_.enabled) return PatternCounts(mask);
  // Promote an existing evictable entry: pull it out of the FIFO and the
  // budget so the sweep it anchors cannot cycle it out.
  auto it = cache_.find(mask.bits());
  if (it != cache_.end()) {
    auto pos = std::find(insertion_order_.begin(), insertion_order_.end(),
                         mask.bits());
    if (pos != insertion_order_.end()) {
      insertion_order_.erase(pos);
      stats_.cached_groups -= it->second->num_groups() + 1;
      pinned_.insert(mask.bits());
    }
    return it->second;
  }
  Sizing sizing = ExecutePlan(mask, MakePlan(mask), /*budget=*/-1,
                              options_.num_threads);
  ++stats_.sizings;
  if (sizing.path == Path::kRollup) ++stats_.rollups;
  if (sizing.path == Path::kDirect) {
    ++stats_.direct_scans;
    if (sizing.full_scan) ++stats_.full_scans;
  }
  PCBL_CHECK(sizing.counts != nullptr);
  if (mask.Count() >= 2) {
    CacheInsert(mask, sizing.counts, /*pinned=*/true);
  }
  return sizing.counts;
}

std::shared_ptr<const GroupCounts> CountingEngine::CachedPatternCounts(
    AttrMask mask) const {
  auto it = cache_.find(mask.bits());
  return it == cache_.end() ? nullptr : it->second;
}

}  // namespace pcbl
