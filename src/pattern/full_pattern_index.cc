#include "pattern/full_pattern_index.h"

#include <algorithm>

#include "util/logging.h"

namespace pcbl {

FullPatternIndex FullPatternIndex::Build(const Table& table) {
  FullPatternIndex idx;
  idx.width_ = table.num_attributes();
  size_t width = static_cast<size_t>(idx.width_);

  // Materialize row-major keys of NULL-free rows.
  std::vector<ValueId> rows;
  rows.reserve(static_cast<size_t>(table.num_rows()) * width);
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    bool ok = true;
    for (size_t a = 0; a < width; ++a) {
      if (IsNull(table.value(r, static_cast<int>(a)))) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      ++idx.rows_skipped_;
      continue;
    }
    for (size_t a = 0; a < width; ++a) {
      rows.push_back(table.value(r, static_cast<int>(a)));
    }
    ++idx.rows_indexed_;
  }

  size_t n = width == 0 ? 0 : rows.size() / width;
  std::vector<int64_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<int64_t>(i);
  const ValueId* data = rows.data();
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ValueId* ka = data + static_cast<size_t>(a) * width;
    const ValueId* kb = data + static_cast<size_t>(b) * width;
    return std::lexicographical_compare(ka, ka + width, kb, kb + width);
  });

  // Count runs into (start offset, count) pairs.
  struct Group {
    int64_t row;  // index into `order`
    int64_t count;
  };
  std::vector<Group> groups;
  size_t i = 0;
  while (i < n) {
    const ValueId* ki = data + static_cast<size_t>(order[i]) * width;
    size_t j = i + 1;
    while (j < n) {
      const ValueId* kj = data + static_cast<size_t>(order[j]) * width;
      if (!std::equal(ki, ki + width, kj)) break;
      ++j;
    }
    groups.push_back(Group{order[i], static_cast<int64_t>(j - i)});
    i = j;
  }

  // Order by count descending; break ties by key for determinism.
  std::stable_sort(groups.begin(), groups.end(),
                   [](const Group& a, const Group& b) {
                     return a.count > b.count;
                   });

  idx.codes_.reserve(groups.size() * width);
  idx.counts_.reserve(groups.size());
  for (const Group& g : groups) {
    const ValueId* k = data + static_cast<size_t>(g.row) * width;
    idx.codes_.insert(idx.codes_.end(), k, k + width);
    idx.counts_.push_back(g.count);
  }
  return idx;
}

void FullPatternIndex::ApplyAppend(
    const std::vector<std::vector<ValueId>>& rows) {
  const size_t width = static_cast<size_t>(width_);
  std::vector<ValueId> flat;
  flat.reserve(rows.size() * width);
  for (const auto& row : rows) {
    PCBL_CHECK(row.size() == width);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  ApplyAppend(flat.data(), static_cast<int64_t>(rows.size()));
}

void FullPatternIndex::ApplyAppend(const ValueId* rows, int64_t num_rows) {
  const size_t width = static_cast<size_t>(width_);
  // NULL-free appended rows, flat row-major (NULL rows are skipped like
  // in Build).
  std::vector<ValueId> fresh;
  for (int64_t r = 0; r < num_rows; ++r) {
    const ValueId* row = rows + static_cast<size_t>(r) * width;
    bool ok = true;
    for (size_t a = 0; a < width; ++a) {
      if (IsNull(row[a])) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      ++rows_skipped_;
      continue;
    }
    fresh.insert(fresh.end(), row, row + width);
    ++rows_indexed_;
  }
  if (width == 0 || fresh.empty()) return;

  // Merge the existing groups with the fresh rows: lex-sort all (key,
  // count) pairs, sum equal keys, then restore Build's canonical order —
  // a stable count-descending sort over the lex order.
  struct Entry {
    const ValueId* key;
    int64_t count;
  };
  const size_t fresh_rows = fresh.size() / width;
  std::vector<Entry> entries;
  entries.reserve(counts_.size() + fresh_rows);
  for (int64_t g = 0; g < num_patterns(); ++g) {
    entries.push_back(Entry{codes(g), counts_[static_cast<size_t>(g)]});
  }
  for (size_t r = 0; r < fresh_rows; ++r) {
    entries.push_back(Entry{fresh.data() + r * width, 1});
  }
  std::sort(entries.begin(), entries.end(),
            [width](const Entry& a, const Entry& b) {
              return std::lexicographical_compare(a.key, a.key + width,
                                                  b.key, b.key + width);
            });
  std::vector<Entry> merged;
  merged.reserve(entries.size());
  for (const Entry& e : entries) {
    if (!merged.empty() &&
        std::equal(merged.back().key, merged.back().key + width, e.key)) {
      merged.back().count += e.count;
    } else {
      merged.push_back(e);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.count > b.count;
                   });

  std::vector<ValueId> codes;
  std::vector<int64_t> counts;
  codes.reserve(merged.size() * width);
  counts.reserve(merged.size());
  for (const Entry& e : merged) {
    codes.insert(codes.end(), e.key, e.key + width);
    counts.push_back(e.count);
  }
  codes_ = std::move(codes);
  counts_ = std::move(counts);
}

Pattern FullPatternIndex::ToPattern(int64_t i) const {
  PCBL_CHECK(i >= 0 && i < num_patterns());
  std::vector<PatternTerm> terms;
  terms.reserve(static_cast<size_t>(width_));
  const ValueId* k = codes(i);
  for (int a = 0; a < width_; ++a) {
    terms.push_back(PatternTerm{a, k[a]});
  }
  auto result = Pattern::Create(std::move(terms));
  PCBL_CHECK(result.ok()) << result.status();
  return std::move(result).value();
}

}  // namespace pcbl
