#include "pattern/pattern.h"

#include <algorithm>

#include "util/str.h"

namespace pcbl {

Result<Pattern> Pattern::Create(std::vector<PatternTerm> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const PatternTerm& a, const PatternTerm& b) {
              return a.attr < b.attr;
            });
  Pattern p;
  for (const PatternTerm& t : terms) {
    if (t.attr < 0 || t.attr >= kMaxAttributes) {
      return InvalidArgumentError(
          StrCat("attribute index ", t.attr, " out of range"));
    }
    if (IsNull(t.value)) {
      return InvalidArgumentError(
          StrCat("pattern term for attribute ", t.attr,
                 " binds NULL; patterns only bind concrete values"));
    }
    if (p.attrs_.Test(t.attr)) {
      return InvalidArgumentError(
          StrCat("duplicate attribute ", t.attr, " in pattern"));
    }
    p.attrs_.Set(t.attr);
  }
  p.terms_ = std::move(terms);
  return p;
}

Result<Pattern> Pattern::Parse(
    const Table& table,
    const std::vector<std::pair<std::string, std::string>>& named_terms) {
  std::vector<PatternTerm> terms;
  terms.reserve(named_terms.size());
  for (const auto& [attr_name, value] : named_terms) {
    PCBL_ASSIGN_OR_RETURN(int attr,
                          table.schema().FindAttribute(attr_name));
    ValueId v = table.dictionary(attr).Lookup(value);
    if (IsNull(v)) {
      return NotFoundError(StrCat("value '", value,
                                  "' does not appear in attribute '",
                                  attr_name, "'"));
    }
    terms.push_back(PatternTerm{attr, v});
  }
  return Create(std::move(terms));
}

Result<ValueId> Pattern::ValueFor(int attr) const {
  for (const PatternTerm& t : terms_) {
    if (t.attr == attr) return t.value;
  }
  return NotFoundError(StrCat("attribute ", attr, " not in pattern"));
}

Pattern Pattern::Restrict(AttrMask mask) const {
  Pattern p;
  for (const PatternTerm& t : terms_) {
    if (mask.Test(t.attr)) {
      p.terms_.push_back(t);
      p.attrs_.Set(t.attr);
    }
  }
  return p;
}

bool Pattern::MatchesRow(const Table& table, int64_t row) const {
  for (const PatternTerm& t : terms_) {
    if (table.value(row, t.attr) != t.value) return false;
  }
  return true;
}

std::string Pattern::ToString(const Table& table) const {
  std::string out = "{";
  bool first = true;
  for (const PatternTerm& t : terms_) {
    if (!first) out += ", ";
    out += table.schema().name(t.attr);
    out += "=";
    out += table.dictionary(t.attr).GetString(t.value);
    first = false;
  }
  out += "}";
  return out;
}

int64_t CountMatches(const Table& table, const Pattern& p) {
  int64_t count = 0;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (p.MatchesRow(table, r)) ++count;
  }
  return count;
}

}  // namespace pcbl
