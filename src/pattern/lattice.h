// The labels lattice (Definition 3.4) and its traversal primitives.
//
// Vertices are attribute subsets (AttrMask); S1 is a parent of S2 when
// S2 = S1 ∪ {A} for a single attribute A. gen(S) (Definition 3.5) extends
// S only with attributes of index greater than idx(S) = max index in S, so
// a top-down scan generates every subset exactly once (Proposition 3.8).
#ifndef PCBL_PATTERN_LATTICE_H_
#define PCBL_PATTERN_LATTICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/attr_mask.h"

namespace pcbl {

/// gen(S) per Definition 3.5: {S ∪ {A_j} : idx(S) < j <= n-1}; for the
/// empty set, all singletons. `n` is the number of attributes.
std::vector<AttrMask> Gen(AttrMask s, int n);

/// All children of S in the lattice: S ∪ {A} for every A ∉ S.
std::vector<AttrMask> Children(AttrMask s, int n);

/// All parents of S in the lattice: S \ {A} for every A ∈ S.
std::vector<AttrMask> Parents(AttrMask s);

/// Invokes `fn` for every size-k subset of {0,...,n-1}, in ascending
/// bitmask order (Gosper's hack).
void ForEachSubsetOfSize(int n, int k,
                         const std::function<void(AttrMask)>& fn);

/// Resumable version of ForEachSubsetOfSize, same order: lets callers
/// consume a lattice level in bounded chunks (for batch sizing with
/// time-limit checks) without materializing all C(n, k) masks up front.
class SubsetOfSizeEnumerator {
 public:
  SubsetOfSizeEnumerator(int n, int k);

  /// Writes the next subset into *out; returns false when exhausted.
  bool Next(AttrMask* out);

 private:
  int n_ = 0;
  uint64_t v_ = 0;
  bool done_ = false;
  bool empty_set_pending_ = false;
};

/// Invokes `fn` for every non-empty subset of `universe` (2^|universe|-1
/// calls), in descending bitmask order, using O(1) space.
void ForEachSubsetOf(AttrMask universe,
                     const std::function<void(AttrMask)>& fn);

/// Binomial coefficient C(n, k) (saturating at int64 max).
int64_t Binomial(int n, int k);

}  // namespace pcbl

#endif  // PCBL_PATTERN_LATTICE_H_
