// SharedInterner: the string-interning surface of one CountingService —
// the per-content dictionary-delta log that lets *any* session append
// string rows and any sibling session resolve the appended values.
//
// The base table's dictionaries stay immutable (they are shared by every
// content-equal Dataset); values first seen in appended rows live here,
// with codes extending the base code space exactly as TableBuilder would
// assign them — first-seen order across committed appends. Because the
// log is owned by the service (and therefore by the ServiceRegistry
// entry for this fingerprint), a value interned by one session resolves
// in every sibling on its next admission: the pre-PR-8 "sibling sessions
// cannot resolve appended strings" caveat is gone by construction.
//
// Concurrency: mutation happens only inside a group-commit under
// CountingService::AppendAdmission (exclusive gate + service mutex);
// reads happen under a query admission (gate-shared or the service
// mutex). The gate's exclusive/shared handoff orders every committed
// write before any subsequent read, so the log needs no internal lock —
// the same discipline as the engine's delta block.
#ifndef PCBL_PATTERN_INTERNING_H_
#define PCBL_PATTERN_INTERNING_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relation/table.h"

namespace pcbl {

class SharedInterner {
 public:
  explicit SharedInterner(const Table& table);

  SharedInterner(const SharedInterner&) = delete;
  SharedInterner& operator=(const SharedInterner&) = delete;

  /// Committed code of `value` in `attr`: the base dictionary first,
  /// then the delta log. kNullValue when the value appears nowhere.
  ValueId Lookup(int attr, std::string_view value) const;

  /// String of the committed code `code` (base or delta). CHECKs range.
  const std::string& GetString(int attr, ValueId code) const;

  /// The code the next commit would allocate for `attr` — the number of
  /// committed values (base dictionary + delta log). Equals the
  /// engine's EffectiveDomainSize while every append flows through the
  /// interner; a divergence means a code-level append bypassed it.
  int64_t NextCode(int attr) const;

  /// Delta-log length of `attr` (values beyond the base dictionary).
  int64_t AddedValues(int attr) const;

  /// Total delta-log length across attributes, readable lock-free (the
  /// registry's stats paths poll this without an admission).
  int64_t AddedValuesRelaxed() const {
    return added_relaxed_.load(std::memory_order_relaxed);
  }

  class Batch;

  /// Publishes a batch's staged values into the delta log, in staging
  /// order (codes were pre-allocated sequentially by the batch). Called
  /// after the engine hook succeeded, under the same AppendAdmission
  /// that staged the batch.
  void Commit(Batch&& batch);

 private:
  friend class Batch;

  struct AttrLog {
    std::unordered_map<std::string, ValueId> index;  // value -> code
    std::vector<std::string> values;  // code = base domain + position
  };

  const Table* table_;
  std::vector<AttrLog> added_;
  std::atomic<int64_t> added_relaxed_{0};
};

/// One group-commit's staged interning transaction. Lookups layer the
/// staged values over the committed state, codes are allocated
/// sequentially past NextCode, and a per-request savepoint rolls back
/// exactly the values that request staged — so a failed request leaves
/// no phantom dictionary entries, and the codes later requests receive
/// match what a from-scratch rebuild that never saw the failed rows
/// would assign.
class SharedInterner::Batch {
 public:
  explicit Batch(const SharedInterner& committed);

  /// Code of `value` in `attr`, staging a new value when it is unknown
  /// to both the committed state and this batch.
  ValueId Intern(int attr, std::string_view value);

  struct Savepoint {
    std::vector<size_t> staged;  // per-attr staged-value counts
  };
  Savepoint Save() const;
  void RollbackTo(const Savepoint& sp);

  /// Values staged so far (across attributes).
  int64_t staged_values() const;

 private:
  friend class SharedInterner;

  struct AttrStage {
    std::unordered_map<std::string, ValueId> index;
    std::vector<std::string> values;  // code = committed NextCode + pos
  };

  const SharedInterner* committed_;
  std::vector<AttrStage> staged_;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_INTERNING_H_
