#include "pattern/packed_kernels.h"

#include <algorithm>
#include <cstring>

#include "pattern/restriction_codec.h"
#include "util/logging.h"

namespace pcbl {
namespace counting {

namespace {

// Generic-kernel tile: large enough to amortize the per-attribute loop
// switch, small enough that codes + arity stay in L1 (~9 KiB).
constexpr int64_t kTileRows = 1024;

// Dense-bitmap ceiling: 2^26 bits = 8 MiB. The relative gate in
// PackedDenseEligible keeps small tables from paying a memset larger
// than their scan.
constexpr int kDenseBitsLimit = 26;

// Streams every arity>=2 restriction code of the view through `emit`
// (bool emit(uint64_t): return false to abort the scan). Arity-2/3 get
// specialized loops; wider subsets go through the tiled gather.
template <typename Emit>
void ForEachPackedCode(const SubsetColumns& view, const PackedLayout& layout,
                       Emit&& emit) {
  const int width = view.width;
  PCBL_DCHECK(width >= 2 && layout.ok);
  auto delta_value = [&](int64_t r, int j) -> ValueId {
    return view.delta[r * view.delta_stride + view.delta_attr[j]];
  };
  if (width == 2) {
    // Arity >= 2 over two attributes means both bound: NULL rows drop and
    // the NULL slot never appears in the codes. NULL-free columns skip
    // the per-row checks entirely.
    const ValueId* c0 = view.cols[0];
    const ValueId* c1 = view.cols[1];
    const int s0 = layout.shift[0];
    if (!view.nullable[0] && !view.nullable[1]) {
      for (int64_t r = 0; r < view.rows; ++r) {
        if (!emit((static_cast<uint64_t>(c0[r]) << s0) | c1[r])) return;
      }
    } else {
      for (int64_t r = 0; r < view.rows; ++r) {
        const ValueId v0 = c0[r];
        const ValueId v1 = c1[r];
        if (IsNull(v0) || IsNull(v1)) continue;
        if (!emit((static_cast<uint64_t>(v0) << s0) | v1)) return;
      }
    }
    for (int64_t r = 0; r < view.delta_rows; ++r) {
      const ValueId v0 = delta_value(r, 0);
      const ValueId v1 = delta_value(r, 1);
      if (IsNull(v0) || IsNull(v1)) continue;
      if (!emit((static_cast<uint64_t>(v0) << s0) | v1)) return;
    }
    return;
  }
  if (width == 3) {
    const ValueId* c0 = view.cols[0];
    const ValueId* c1 = view.cols[1];
    const ValueId* c2 = view.cols[2];
    const int s0 = layout.shift[0];
    const int s1 = layout.shift[1];
    const uint64_t n0 = layout.null_slot[0];
    const uint64_t n1 = layout.null_slot[1];
    const uint64_t n2 = layout.null_slot[2];
    auto row = [&](ValueId v0, ValueId v1, ValueId v2) {
      const bool m0 = IsNull(v0);
      const bool m1 = IsNull(v1);
      const bool m2 = IsNull(v2);
      if (static_cast<int>(m0) + static_cast<int>(m1) +
              static_cast<int>(m2) > 1) {
        return true;  // arity < 2
      }
      const uint64_t code = ((m0 ? n0 : v0) << s0) | ((m1 ? n1 : v1) << s1) |
                            (m2 ? n2 : v2);
      return emit(code);
    };
    if (!view.nullable[0] && !view.nullable[1] && !view.nullable[2]) {
      for (int64_t r = 0; r < view.rows; ++r) {
        const uint64_t code = (static_cast<uint64_t>(c0[r]) << s0) |
                              (static_cast<uint64_t>(c1[r]) << s1) | c2[r];
        if (!emit(code)) return;
      }
    } else {
      for (int64_t r = 0; r < view.rows; ++r) {
        if (!row(c0[r], c1[r], c2[r])) return;
      }
    }
    for (int64_t r = 0; r < view.delta_rows; ++r) {
      if (!row(delta_value(r, 0), delta_value(r, 1), delta_value(r, 2))) {
        return;
      }
    }
    return;
  }
  // Generic width: gather in row tiles. Each attribute's column slice is
  // streamed once per tile in a tight shift/OR loop (vectorizable, no
  // cross-row dependencies); the tile's codes and arities stay in L1.
  uint64_t codes[kTileRows];
  uint8_t arity[kTileRows];
  for (int64_t base = 0; base < view.rows; base += kTileRows) {
    const int64_t n = std::min(kTileRows, view.rows - base);
    std::memset(codes, 0, static_cast<size_t>(n) * sizeof(codes[0]));
    std::memset(arity, 0, static_cast<size_t>(n) * sizeof(arity[0]));
    for (int j = 0; j < width; ++j) {
      const ValueId* col = view.cols[j] + base;
      const int shift = layout.shift[j];
      const uint64_t null_slot = layout.null_slot[j];
      for (int64_t r = 0; r < n; ++r) {
        const ValueId v = col[r];
        const bool bound = !IsNull(v);
        codes[r] |= (bound ? static_cast<uint64_t>(v) : null_slot) << shift;
        arity[r] += static_cast<uint8_t>(bound);
      }
    }
    for (int64_t r = 0; r < n; ++r) {
      if (arity[r] < 2) continue;
      if (!emit(codes[r])) return;
    }
  }
  for (int64_t r = 0; r < view.delta_rows; ++r) {
    uint64_t code = 0;
    int bound = 0;
    for (int j = 0; j < width; ++j) {
      const ValueId v = delta_value(r, j);
      const bool nn = !IsNull(v);
      code |= (nn ? static_cast<uint64_t>(v) : layout.null_slot[j])
              << layout.shift[j];
      bound += static_cast<int>(nn);
    }
    if (bound < 2) continue;
    if (!emit(code)) return;
  }
}

}  // namespace

SubsetColumns MakeSubsetColumns(const Table& table,
                                const std::vector<int>& attrs) {
  SubsetColumns view;
  view.width = static_cast<int>(attrs.size());
  view.rows = table.num_rows();
  for (size_t j = 0; j < attrs.size(); ++j) {
    view.cols[j] = table.column(attrs[j]).data();
    view.nullable[j] = table.HasNulls(attrs[j]);
  }
  return view;
}

bool PackedDenseCountEligible(const PackedLayout& layout, int64_t rows) {
  if (!layout.ok || layout.total_bits > 22) return false;
  const int64_t space = int64_t{1} << layout.total_bits;
  // The count array's clear + sweep must stay small next to the row scan
  // (mirrors the dense group-by gate in counter.cc).
  return space <= 2 * rows + 1024;
}

int64_t PackedCountGroupsDense(
    const SubsetColumns& view, const PackedLayout& layout, int64_t budget,
    std::vector<std::pair<int64_t, int64_t>>* items) {
  PCBL_DCHECK(
      PackedDenseCountEligible(layout, view.rows + view.delta_rows));
  const size_t space = size_t{1} << layout.total_bits;
  std::vector<uint32_t> counts(space, 0);
  uint32_t* c = counts.data();
  int64_t distinct = 0;
  bool aborted = false;
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    distinct += static_cast<int64_t>(c[code]++ == 0);
    if (budget >= 0 && distinct > budget) {
      aborted = true;
      return false;
    }
    return true;
  });
  if (aborted) return distinct;
  items->clear();
  items->reserve(static_cast<size_t>(distinct));
  for (size_t code = 0; code < space; ++code) {
    if (c[code] != 0) {
      items->emplace_back(static_cast<int64_t>(code),
                          static_cast<int64_t>(c[code]));
    }
  }
  return distinct;
}

bool PackedDenseEligible(const PackedLayout& layout, int64_t rows) {
  if (!layout.ok || layout.total_bits > kDenseBitsLimit) return false;
  const int64_t words = (int64_t{1} << layout.total_bits) / 64 + 1;
  // The memset of `words` must stay small next to the row scan.
  return words <= rows + 8192;
}

int64_t PackedCountDistinct(const SubsetColumns& view,
                            const PackedLayout& layout, int64_t budget) {
  const int64_t total_rows = view.rows + view.delta_rows;
  if (PackedDenseEligible(layout, total_rows)) {
    // One extra word holds the arity-2 kernel's NULL sentinel bit (code
    // 2^total_bits), which lets its fill loop run branch-free.
    const size_t words =
        static_cast<size_t>((int64_t{1} << layout.total_bits) / 64 + 2);
    std::vector<uint64_t> bitmap(words, 0);
    uint64_t* bm = bitmap.data();
    if (budget < 0) {
      // Exact counting: fill without testing (a pure OR-store per row —
      // no read-test dependency, no running counter), then popcount.
      // Arity 2/3 get fully branch-free encoders — NULL/low-arity rows
      // route to the sentinel bit via a select — writing into *two*
      // interleaved accumulators: hot groups hammer the same word, and
      // splitting even/odd rows across copies halves that
      // read-modify-write dependency chain.
      const uint64_t sentinel = uint64_t{1} << layout.total_bits;
      auto fill_interleaved = [&](auto encode) {
        std::vector<uint64_t> shadow(words * 3, 0);
        uint64_t* bs1 = shadow.data();
        uint64_t* bs2 = bs1 + words;
        uint64_t* bs3 = bs2 + words;
        int64_t r = 0;
        for (; r + 3 < view.rows; r += 4) {
          const uint64_t a = encode(r);
          const uint64_t b = encode(r + 1);
          const uint64_t c = encode(r + 2);
          const uint64_t d = encode(r + 3);
          bm[a >> 6] |= uint64_t{1} << (a & 63);
          bs1[b >> 6] |= uint64_t{1} << (b & 63);
          bs2[c >> 6] |= uint64_t{1} << (c & 63);
          bs3[d >> 6] |= uint64_t{1} << (d & 63);
        }
        for (; r < view.rows; ++r) {
          const uint64_t a = encode(r);
          bm[a >> 6] |= uint64_t{1} << (a & 63);
        }
        for (size_t w = 0; w < words; ++w) {
          bm[w] |= bs1[w] | bs2[w] | bs3[w];
        }
      };
      if (view.width == 2) {
        const int s0 = layout.shift[0];
        const ValueId* c0 = view.cols[0];
        const ValueId* c1 = view.cols[1];
        if (!view.nullable[0] && !view.nullable[1]) {
          // NULL-free columns (the paper's datasets): pure shift/OR.
          fill_interleaved([&](int64_t r) -> uint64_t {
            return (static_cast<uint64_t>(c0[r]) << s0) | c1[r];
          });
        } else {
          fill_interleaved([&](int64_t r) -> uint64_t {
            const ValueId v0 = c0[r];
            const ValueId v1 = c1[r];
            // Dense-eligible fields are < 2^26, so only NULL (0xFFFFFFFF)
            // carries the top bit.
            const bool ok = ((v0 | v1) >> 31) == 0;
            const uint64_t packed = (static_cast<uint64_t>(v0) << s0) | v1;
            return ok ? packed : sentinel;
          });
        }
        for (int64_t r = 0; r < view.delta_rows; ++r) {
          const ValueId* row = view.delta + r * view.delta_stride;
          const ValueId v0 = row[view.delta_attr[0]];
          const ValueId v1 = row[view.delta_attr[1]];
          const bool ok = !IsNull(v0) && !IsNull(v1);
          const uint64_t packed = (static_cast<uint64_t>(v0) << s0) | v1;
          const uint64_t code = ok ? packed : sentinel;
          bm[code >> 6] |= uint64_t{1} << (code & 63);
        }
      } else if (view.width == 3) {
        // Branch-free: slot selection is a single unsigned min (NULL =
        // 0xFFFFFFFF exceeds every dense-eligible null slot), low-arity
        // rows route to the sentinel via a select.
        const int s0 = layout.shift[0];
        const int s1 = layout.shift[1];
        const uint32_t n0 = static_cast<uint32_t>(layout.null_slot[0]);
        const uint32_t n1 = static_cast<uint32_t>(layout.null_slot[1]);
        const uint32_t n2 = static_cast<uint32_t>(layout.null_slot[2]);
        const ValueId* c0 = view.cols[0];
        const ValueId* c1 = view.cols[1];
        const ValueId* c2 = view.cols[2];
        if (!view.nullable[0] && !view.nullable[1] && !view.nullable[2]) {
          fill_interleaved([&](int64_t r) -> uint64_t {
            return (static_cast<uint64_t>(c0[r]) << s0) |
                   (static_cast<uint64_t>(c1[r]) << s1) | c2[r];
          });
        } else {
          fill_interleaved([&](int64_t r) -> uint64_t {
            const uint32_t v0 = c0[r];
            const uint32_t v1 = c1[r];
            const uint32_t v2 = c2[r];
            // Top bit set iff NULL: dense-eligible fields are < 2^26.
            const uint32_t null_count =
                (v0 >> 31) + (v1 >> 31) + (v2 >> 31);
            const uint64_t code =
                (static_cast<uint64_t>(std::min(v0, n0)) << s0) |
                (static_cast<uint64_t>(std::min(v1, n1)) << s1) |
                std::min(v2, n2);
            return null_count <= 1 ? code : sentinel;
          });
        }
        for (int64_t r = 0; r < view.delta_rows; ++r) {
          const ValueId* row = view.delta + r * view.delta_stride;
          const uint32_t v0 = row[view.delta_attr[0]];
          const uint32_t v1 = row[view.delta_attr[1]];
          const uint32_t v2 = row[view.delta_attr[2]];
          const uint32_t null_count = static_cast<uint32_t>(IsNull(v0)) +
                                      static_cast<uint32_t>(IsNull(v1)) +
                                      static_cast<uint32_t>(IsNull(v2));
          const uint64_t packed =
              (static_cast<uint64_t>(std::min(v0, n0)) << s0) |
              (static_cast<uint64_t>(std::min(v1, n1)) << s1) |
              std::min(v2, n2);
          const uint64_t code = null_count <= 1 ? packed : sentinel;
          bm[code >> 6] |= uint64_t{1} << (code & 63);
        }
      } else {
        ForEachPackedCode(view, layout, [&](uint64_t code) {
          bm[code >> 6] |= uint64_t{1} << (code & 63);
          return true;
        });
      }
      bm[sentinel >> 6] &= ~(uint64_t{1} << (sentinel & 63));
      int64_t distinct = 0;
      for (uint64_t word : bitmap) distinct += std::popcount(word);
      return distinct;
    }
    int64_t distinct = 0;
    ForEachPackedCode(view, layout, [&](uint64_t code) {
      const uint64_t bit = uint64_t{1} << (code & 63);
      uint64_t& word = bm[code >> 6];
      if ((word & bit) == 0) {
        word |= bit;
        if (++distinct > budget) return false;
      }
      return true;
    });
    return distinct;
  }
  CodeSet seen(SizingReserve(budget, total_rows));
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    return !(seen.Insert(static_cast<int64_t>(code)) && budget >= 0 &&
             seen.size() > budget);
  });
  return seen.size();
}

std::vector<std::pair<int64_t, int64_t>> PackedCountGroups(
    const SubsetColumns& view, const PackedLayout& layout,
    int64_t groups_hint) {
  const int64_t total_rows = view.rows + view.delta_rows;
  CodeCountMap counts(groups_hint >= 0
                          ? static_cast<size_t>(groups_hint) + 1
                          : SizingReserve(-1, total_rows));
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    counts.Increment(static_cast<int64_t>(code));
    return true;
  });
  return counts.Items();
}

}  // namespace counting
}  // namespace pcbl
