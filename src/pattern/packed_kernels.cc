#include "pattern/packed_kernels.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "pattern/kernel_dispatch.h"
#include "pattern/restriction_codec.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace pcbl {
namespace counting {

namespace {

// Encode tile: large enough to amortize the per-tile setup, small enough
// that codes + arity stay in L1 (~9 KiB).
constexpr int64_t kTileRows = 1024;

// Dense-bitmap ceiling: 2^26 bits = 8 MiB. The relative gate in
// PackedDenseEligible keeps small tables from paying a memset larger
// than their scan.
constexpr int kDenseBitsLimit = 26;

// Dropped rows (NULL / arity < 2) encode to this code, one past the top
// of the packed key space, so the SIMD encoders can run branch-free and
// downstream consumers either skip it (emit loops) or give it a bit that
// is cleared before counting (dense bitmap).
inline uint64_t SentinelCode(const PackedLayout& layout) {
  return uint64_t{1} << layout.total_bits;
}

// Encodes base rows [base, base + n) of an arity-2 view through the
// active kernel table. NULL-free columns take the pure shift/OR kernel.
inline void EncodeBaseTileA2(const SubsetColumns& view,
                             const PackedLayout& layout,
                             const SizingKernels& k, uint64_t sentinel,
                             int64_t base, int64_t n, uint64_t* out) {
  const ValueId* c0 = view.cols[0] + base;
  const ValueId* c1 = view.cols[1] + base;
  if (!view.nullable[0] && !view.nullable[1]) {
    k.encode_a2(c0, c1, layout.shift[0], n, out);
  } else {
    k.encode_a2_nullable(c0, c1, layout.shift[0], sentinel, n, out);
  }
}

// Arity-3 equivalent; the nullable kernel substitutes layout null slots
// for single-NULL rows and routes >1-NULL rows to the sentinel.
inline void EncodeBaseTileA3(const SubsetColumns& view,
                             const PackedLayout& layout,
                             const SizingKernels& k, uint64_t sentinel,
                             int64_t base, int64_t n, uint64_t* out) {
  const ValueId* c0 = view.cols[0] + base;
  const ValueId* c1 = view.cols[1] + base;
  const ValueId* c2 = view.cols[2] + base;
  if (!view.nullable[0] && !view.nullable[1] && !view.nullable[2]) {
    k.encode_a3(c0, c1, c2, layout.shift[0], layout.shift[1], n, out);
  } else {
    k.encode_a3_nullable(c0, c1, c2, layout.shift[0], layout.shift[1],
                         layout.null_slot[0], layout.null_slot[1],
                         layout.null_slot[2], sentinel, n, out);
  }
}

// Delta rows are row-major and few (the engine compacts them into the
// base columns past a threshold), so they encode scalar, any width.
inline uint64_t EncodeDeltaRow(const SubsetColumns& view,
                               const PackedLayout& layout,
                               uint64_t sentinel, int64_t r) {
  const ValueId* row = view.delta + r * view.delta_stride;
  uint64_t code = 0;
  int bound = 0;
  for (int j = 0; j < view.width; ++j) {
    const ValueId v = row[view.delta_attr[j]];
    const bool nn = !IsNull(v);
    code |= (nn ? static_cast<uint64_t>(v) : layout.null_slot[j])
            << layout.shift[j];
    bound += static_cast<int>(nn);
  }
  return bound >= 2 ? code : sentinel;
}

// Streams every arity>=2 restriction code of the view through `emit`
// (bool emit(uint64_t): return false to abort the scan). Arity-2/3
// tiles encode through the dispatched SIMD kernels with dropped rows
// routed to the sentinel (skipped here, so emission order and the
// budget early-exit contract are unchanged — an abort merely wastes the
// rest of one already-encoded tile); wider subsets go through the tiled
// per-column gather.
template <typename Emit>
void ForEachPackedCode(const SubsetColumns& view, const PackedLayout& layout,
                       Emit&& emit) {
  const int width = view.width;
  PCBL_DCHECK(width >= 2 && layout.ok);
  const SizingKernels& k = ActiveKernels();
  const uint64_t sentinel = SentinelCode(layout);
  if (width == 2 || width == 3) {
    uint64_t codes[kTileRows];
    for (int64_t base = 0; base < view.rows; base += kTileRows) {
      const int64_t n = std::min(kTileRows, view.rows - base);
      if (width == 2) {
        EncodeBaseTileA2(view, layout, k, sentinel, base, n, codes);
      } else {
        EncodeBaseTileA3(view, layout, k, sentinel, base, n, codes);
      }
      for (int64_t r = 0; r < n; ++r) {
        const uint64_t code = codes[r];
        if (code == sentinel) continue;
        if (!emit(code)) return;
      }
    }
    for (int64_t r = 0; r < view.delta_rows; ++r) {
      const uint64_t code = EncodeDeltaRow(view, layout, sentinel, r);
      if (code == sentinel) continue;
      if (!emit(code)) return;
    }
    return;
  }
  // Generic width: gather in row tiles. Each attribute's column slice is
  // streamed once per tile through the dispatched gather kernel (a tight
  // shift/OR loop with no cross-row dependencies); the tile's codes and
  // arities stay in L1.
  uint64_t codes[kTileRows];
  uint8_t arity[kTileRows];
  for (int64_t base = 0; base < view.rows; base += kTileRows) {
    const int64_t n = std::min(kTileRows, view.rows - base);
    std::memset(codes, 0, static_cast<size_t>(n) * sizeof(codes[0]));
    std::memset(arity, 0, static_cast<size_t>(n) * sizeof(arity[0]));
    for (int j = 0; j < width; ++j) {
      k.gather_accum(view.cols[j] + base, layout.shift[j],
                     layout.null_slot[j], n, codes, arity);
    }
    for (int64_t r = 0; r < n; ++r) {
      if (arity[r] < 2) continue;
      if (!emit(codes[r])) return;
    }
  }
  for (int64_t r = 0; r < view.delta_rows; ++r) {
    const uint64_t code = EncodeDeltaRow(view, layout, sentinel, r);
    if (code == sentinel) continue;
    if (!emit(code)) return;
  }
}

// The [lo, hi) slice of the view's concatenated row range (base rows
// first, then delta rows) as another SubsetColumns — what one morsel
// scans. Slicing is pure pointer arithmetic; column/attr metadata is
// shared with the parent view.
SubsetColumns MorselSlice(const SubsetColumns& view, int64_t lo,
                          int64_t hi) {
  SubsetColumns s = view;
  const int64_t blo = std::min(lo, view.rows);
  const int64_t bhi = std::min(hi, view.rows);
  for (int j = 0; j < view.width; ++j) s.cols[j] = view.cols[j] + blo;
  s.rows = bhi - blo;
  const int64_t dlo = std::max<int64_t>(0, lo - view.rows);
  const int64_t dhi = std::max<int64_t>(0, hi - view.rows);
  s.delta = view.delta == nullptr ? nullptr
                                  : view.delta + dlo * view.delta_stride;
  s.delta_rows = dhi - dlo;
  return s;
}

// Equal contiguous ranges; morsel m of nm covers
// [total * m / nm, total * (m + 1) / nm).
inline int64_t MorselBound(int64_t total_rows, int64_t nm, int64_t m) {
  return total_rows * m / nm;
}

// OR-fills `bm` (words incl. the sentinel word) with one bit per
// distinct arity>=2 code of the view — plus the sentinel bit when any
// row dropped, which the caller clears before counting. NULL-free
// arity-2/3 base rows take the fused dense_fill kernels (the dominant
// shape: every implementation owns both the encode and the presence
// update, see kernel_dispatch.h). Nullable views encode through tiles
// and scatter into four interleaved accumulators: hot groups hammer the
// same word, and spreading consecutive rows across copies breaks that
// read-modify-write dependency chain.
void FillDenseBitmap(const SubsetColumns& view, const PackedLayout& layout,
                     uint64_t* bm, size_t words) {
  const uint64_t sentinel = SentinelCode(layout);
  if (view.width == 2 || view.width == 3) {
    const SizingKernels& k = ActiveKernels();
    const bool null_free =
        !view.nullable[0] && !view.nullable[1] &&
        (view.width == 2 || !view.nullable[2]);
    if (null_free) {
      if (view.width == 2) {
        k.dense_fill_a2(view.cols[0], view.cols[1], layout.shift[0],
                        layout.total_bits, view.rows, bm);
      } else {
        k.dense_fill_a3(view.cols[0], view.cols[1], view.cols[2],
                        layout.shift[0], layout.shift[1], layout.total_bits,
                        view.rows, bm);
      }
      for (int64_t r = 0; r < view.delta_rows; ++r) {
        const uint64_t code = EncodeDeltaRow(view, layout, sentinel, r);
        bm[code >> 6] |= uint64_t{1} << (code & 63);
      }
      return;
    }
    std::vector<uint64_t> shadow(words * 3, 0);
    uint64_t* bs1 = shadow.data();
    uint64_t* bs2 = bs1 + words;
    uint64_t* bs3 = bs2 + words;
    uint64_t codes[kTileRows];
    for (int64_t base = 0; base < view.rows; base += kTileRows) {
      const int64_t n = std::min(kTileRows, view.rows - base);
      if (view.width == 2) {
        EncodeBaseTileA2(view, layout, k, sentinel, base, n, codes);
      } else {
        EncodeBaseTileA3(view, layout, k, sentinel, base, n, codes);
      }
      int64_t r = 0;
      for (; r + 3 < n; r += 4) {
        const uint64_t a = codes[r];
        const uint64_t b = codes[r + 1];
        const uint64_t c = codes[r + 2];
        const uint64_t d = codes[r + 3];
        bm[a >> 6] |= uint64_t{1} << (a & 63);
        bs1[b >> 6] |= uint64_t{1} << (b & 63);
        bs2[c >> 6] |= uint64_t{1} << (c & 63);
        bs3[d >> 6] |= uint64_t{1} << (d & 63);
      }
      for (; r < n; ++r) {
        const uint64_t a = codes[r];
        bm[a >> 6] |= uint64_t{1} << (a & 63);
      }
    }
    for (size_t w = 0; w < words; ++w) {
      bm[w] |= bs1[w] | bs2[w] | bs3[w];
    }
    for (int64_t r = 0; r < view.delta_rows; ++r) {
      const uint64_t code = EncodeDeltaRow(view, layout, sentinel, r);
      bm[code >> 6] |= uint64_t{1} << (code & 63);
    }
    return;
  }
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    bm[code >> 6] |= uint64_t{1} << (code & 63);
    return true;
  });
}

}  // namespace

SubsetColumns MakeSubsetColumns(const Table& table,
                                const std::vector<int>& attrs) {
  SubsetColumns view;
  view.width = static_cast<int>(attrs.size());
  view.rows = table.num_rows();
  for (size_t j = 0; j < attrs.size(); ++j) {
    view.cols[j] = table.column(attrs[j]).data();
    view.nullable[j] = table.HasNulls(attrs[j]);
  }
  return view;
}

int64_t MorselCount(int64_t total_rows, const MorselConfig& morsel) {
  if (morsel.threads <= 1 || morsel.min_rows_per_morsel <= 0) return 1;
  const int64_t by_rows = total_rows / morsel.min_rows_per_morsel;
  return std::max<int64_t>(
      1, std::min<int64_t>(morsel.threads, by_rows));
}

bool PackedDenseCountEligible(const PackedLayout& layout, int64_t rows) {
  if (!layout.ok || layout.total_bits > 22) return false;
  const int64_t space = int64_t{1} << layout.total_bits;
  // The count array's clear + sweep must stay small next to the row scan
  // (mirrors the dense group-by gate in counter.cc).
  return space <= 2 * rows + 1024;
}

int64_t PackedCountGroupsDense(
    const SubsetColumns& view, const PackedLayout& layout, int64_t budget,
    std::vector<std::pair<int64_t, int64_t>>* items,
    const MorselConfig& morsel) {
  PCBL_DCHECK(
      PackedDenseCountEligible(layout, view.rows + view.delta_rows));
  const size_t space = size_t{1} << layout.total_bits;
  const int64_t total_rows = view.rows + view.delta_rows;
  const int64_t nm = budget < 0 ? MorselCount(total_rows, morsel) : 1;
  std::vector<uint32_t> counts(space, 0);
  uint32_t* c = counts.data();
  if (nm > 1) {
    // Exact scan: each morsel counts into its own direct-addressing
    // array, merged by elementwise addition — commutative, so the merged
    // array (and the ascending sweep below) is identical for every
    // morsel split.
    std::vector<std::vector<uint32_t>> parts(static_cast<size_t>(nm - 1));
    ParallelFor(nm, static_cast<int>(nm), [&](int64_t m) {
      const SubsetColumns slice =
          MorselSlice(view, MorselBound(total_rows, nm, m),
                      MorselBound(total_rows, nm, m + 1));
      uint32_t* part = c;
      if (m > 0) {
        parts[static_cast<size_t>(m - 1)].assign(space, 0);
        part = parts[static_cast<size_t>(m - 1)].data();
      }
      ForEachPackedCode(slice, layout, [&](uint64_t code) {
        ++part[code];
        return true;
      });
    });
    for (const std::vector<uint32_t>& part : parts) {
      const uint32_t* p = part.data();
      for (size_t w = 0; w < space; ++w) c[w] += p[w];
    }
    int64_t distinct = 0;
    items->clear();
    for (size_t code = 0; code < space; ++code) {
      if (c[code] != 0) {
        ++distinct;
        items->emplace_back(static_cast<int64_t>(code),
                            static_cast<int64_t>(c[code]));
      }
    }
    return distinct;
  }
  int64_t distinct = 0;
  bool aborted = false;
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    distinct += static_cast<int64_t>(c[code]++ == 0);
    if (budget >= 0 && distinct > budget) {
      aborted = true;
      return false;
    }
    return true;
  });
  if (aborted) return distinct;
  items->clear();
  items->reserve(static_cast<size_t>(distinct));
  for (size_t code = 0; code < space; ++code) {
    if (c[code] != 0) {
      items->emplace_back(static_cast<int64_t>(code),
                          static_cast<int64_t>(c[code]));
    }
  }
  return distinct;
}

bool PackedDenseEligible(const PackedLayout& layout, int64_t rows) {
  if (!layout.ok || layout.total_bits > kDenseBitsLimit) return false;
  const int64_t words = (int64_t{1} << layout.total_bits) / 64 + 1;
  // The memset of `words` must stay small next to the row scan.
  return words <= rows + 8192;
}

int64_t PackedCountDistinct(const SubsetColumns& view,
                            const PackedLayout& layout, int64_t budget,
                            const MorselConfig& morsel) {
  const int64_t total_rows = view.rows + view.delta_rows;
  const int64_t nm = budget < 0 ? MorselCount(total_rows, morsel) : 1;
  if (PackedDenseEligible(layout, total_rows)) {
    // One extra word holds the encoders' NULL sentinel bit (code
    // 2^total_bits), which lets the fill loops run branch-free.
    const size_t words =
        static_cast<size_t>((int64_t{1} << layout.total_bits) / 64 + 2);
    const uint64_t sentinel = SentinelCode(layout);
    if (budget < 0) {
      // Exact counting: fill without testing (a pure OR-store per row —
      // no read-test dependency, no running counter), then popcount.
      // With morsels, each thread fills a private bitmap over its row
      // range; OR is commutative, so the merged bitmap is split-
      // independent.
      std::vector<uint64_t> bitmap(words, 0);
      uint64_t* bm = bitmap.data();
      if (nm > 1) {
        std::vector<std::vector<uint64_t>> parts(
            static_cast<size_t>(nm - 1));
        ParallelFor(nm, static_cast<int>(nm), [&](int64_t m) {
          const SubsetColumns slice =
              MorselSlice(view, MorselBound(total_rows, nm, m),
                          MorselBound(total_rows, nm, m + 1));
          uint64_t* part = bm;
          if (m > 0) {
            parts[static_cast<size_t>(m - 1)].assign(words, 0);
            part = parts[static_cast<size_t>(m - 1)].data();
          }
          FillDenseBitmap(slice, layout, part, words);
        });
        for (const std::vector<uint64_t>& part : parts) {
          const uint64_t* p = part.data();
          for (size_t w = 0; w < words; ++w) bm[w] |= p[w];
        }
      } else {
        FillDenseBitmap(view, layout, bm, words);
      }
      bm[sentinel >> 6] &= ~(uint64_t{1} << (sentinel & 63));
      int64_t distinct = 0;
      for (uint64_t word : bitmap) distinct += std::popcount(word);
      return distinct;
    }
    std::vector<uint64_t> bitmap(words, 0);
    uint64_t* bm = bitmap.data();
    int64_t distinct = 0;
    ForEachPackedCode(view, layout, [&](uint64_t code) {
      const uint64_t bit = uint64_t{1} << (code & 63);
      uint64_t& word = bm[code >> 6];
      if ((word & bit) == 0) {
        word |= bit;
        if (++distinct > budget) return false;
      }
      return true;
    });
    return distinct;
  }
  if (nm > 1) {
    // Exact hash path: per-morsel CodeSets merged pairwise into the
    // first. The union's size is split-independent, and each partial
    // reserves for its own row count so the merge stays cheap.
    std::vector<std::unique_ptr<CodeSet>> parts(static_cast<size_t>(nm));
    ParallelFor(nm, static_cast<int>(nm), [&](int64_t m) {
      const SubsetColumns slice =
          MorselSlice(view, MorselBound(total_rows, nm, m),
                      MorselBound(total_rows, nm, m + 1));
      auto seen = std::make_unique<CodeSet>(
          SizingReserve(-1, slice.rows + slice.delta_rows));
      ForEachPackedCode(slice, layout, [&](uint64_t code) {
        seen->Insert(static_cast<int64_t>(code));
        return true;
      });
      parts[static_cast<size_t>(m)] = std::move(seen);
    });
    CodeSet& merged = *parts[0];
    for (size_t m = 1; m < parts.size(); ++m) {
      parts[m]->ForEach([&](int64_t code) { merged.Insert(code); });
    }
    return merged.size();
  }
  CodeSet seen(SizingReserve(budget, total_rows));
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    return !(seen.Insert(static_cast<int64_t>(code)) && budget >= 0 &&
             seen.size() > budget);
  });
  return seen.size();
}

std::vector<std::pair<int64_t, int64_t>> PackedCountGroups(
    const SubsetColumns& view, const PackedLayout& layout,
    int64_t groups_hint, const MorselConfig& morsel) {
  const int64_t total_rows = view.rows + view.delta_rows;
  // A morsel's distinct-group count is bounded by the subset's, so the
  // hint pre-sizes each partial (and the merge target) the same way —
  // every hinted pass is rehash-free, asserted below.
  auto reserve = [&](int64_t rows) {
    return groups_hint >= 0 ? static_cast<size_t>(groups_hint) + 1
                            : SizingReserve(-1, rows);
  };
  const int64_t nm = MorselCount(total_rows, morsel);
  if (nm > 1) {
    std::vector<std::unique_ptr<CodeCountMap>> parts(
        static_cast<size_t>(nm));
    ParallelFor(nm, static_cast<int>(nm), [&](int64_t m) {
      const SubsetColumns slice =
          MorselSlice(view, MorselBound(total_rows, nm, m),
                      MorselBound(total_rows, nm, m + 1));
      auto counts = std::make_unique<CodeCountMap>(
          reserve(slice.rows + slice.delta_rows));
      ForEachPackedCode(slice, layout, [&](uint64_t code) {
        counts->Increment(static_cast<int64_t>(code));
        return true;
      });
      parts[static_cast<size_t>(m)] = std::move(counts);
    });
    CodeCountMap& merged = *parts[0];
    for (size_t m = 1; m < parts.size(); ++m) {
      parts[m]->ForEach(
          [&](int64_t code, int64_t count) { merged.Add(code, count); });
    }
    PCBL_DCHECK(groups_hint < 0 || merged.rehashes() == 0);
    return merged.Items();
  }
  CodeCountMap counts(reserve(total_rows));
  ForEachPackedCode(view, layout, [&](uint64_t code) {
    counts.Increment(static_cast<int64_t>(code));
    return true;
  });
  PCBL_DCHECK(groups_hint < 0 || counts.rehashes() == 0);
  return counts.Items();
}

}  // namespace counting
}  // namespace pcbl
