#include "pattern/subset_trie.h"

#include <algorithm>

#include "util/logging.h"

namespace pcbl {

int SubsetTrie::ChildOf(int node, int attr) const {
  const auto& children = nodes_[static_cast<size_t>(node)].children;
  for (const auto& [a, idx] : children) {
    if (a == attr) return idx;
    if (a > attr) break;  // ascending
  }
  return -1;
}

int SubsetTrie::ChildOrCreate(int node, int attr) {
  int existing = ChildOf(node, attr);
  if (existing >= 0) return existing;
  const int idx = static_cast<int>(nodes_.size());
  Node child;
  child.attr = attr;
  child.parent = node;
  nodes_.push_back(child);
  auto& children = nodes_[static_cast<size_t>(node)].children;
  children.insert(
      std::upper_bound(children.begin(), children.end(),
                       std::make_pair(attr, -1)),
      {attr, idx});
  return idx;
}

void SubsetTrie::PullUpMin(int node) {
  while (node >= 0) {
    Node& n = nodes_[static_cast<size_t>(node)];
    int64_t m = n.entry_weight == kNoEntry ? kInf : n.entry_weight;
    for (const auto& [a, idx] : n.children) {
      m = std::min(m, nodes_[static_cast<size_t>(idx)].subtree_min);
    }
    if (n.subtree_min == m) break;  // ancestors already consistent
    n.subtree_min = m;
    node = n.parent;
  }
}

void SubsetTrie::Insert(AttrMask mask, int64_t weight) {
  PCBL_DCHECK(weight >= 0);
  int node = 0;
  for (int attr : AttrMaskBits(mask)) node = ChildOrCreate(node, attr);
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.entry_weight == kNoEntry) {
    ++num_entries_;
    const int level = mask.Count();
    ++level_count_[level];
    max_entry_level_ = std::max(max_entry_level_, level);
  }
  n.entry_weight = weight;
  n.entry_bits = mask.bits();
  PullUpMin(node);
}

void SubsetTrie::Erase(AttrMask mask) {
  int node = 0;
  for (int attr : AttrMaskBits(mask)) {
    node = ChildOf(node, attr);
    if (node < 0) return;
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.entry_weight == kNoEntry) return;
  n.entry_weight = kNoEntry;
  --num_entries_;
  const int level = mask.Count();
  if (--level_count_[level] == 0 && level == max_entry_level_) {
    while (max_entry_level_ > 0 && level_count_[max_entry_level_] == 0) {
      --max_entry_level_;
    }
  }
  PullUpMin(node);
}

void SubsetTrie::Clear() {
  nodes_.clear();
  nodes_.push_back(Node{});
  num_entries_ = 0;
  std::fill(std::begin(level_count_), std::end(level_count_), 0);
  max_entry_level_ = 0;
}

void SubsetTrie::FindBest(int node, uint64_t required, uint64_t query_bits,
                          int64_t weight_limit,
                          std::optional<Match>* best) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  const int64_t cutoff = best->has_value() ? (*best)->weight : weight_limit;
  if (n.subtree_min >= cutoff) return;  // nothing better below
  if (required == 0 && n.entry_weight != kNoEntry &&
      n.entry_weight < cutoff && n.entry_bits != query_bits) {
    *best = Match{AttrMask(n.entry_bits), n.entry_weight};
  }
  // q = smallest still-required attribute. A child edge c > q cannot lead
  // to q (paths ascend), so the ascending child scan stops there.
  const int q = required == 0 ? kMaxAttributes
                              : std::countr_zero(required);
  for (const auto& [attr, idx] : n.children) {
    if (attr > q) break;
    const uint64_t next_required =
        attr == q ? required & (required - 1) : required;
    FindBest(idx, next_required, query_bits, weight_limit, best);
  }
}

std::optional<SubsetTrie::Match> SubsetTrie::BestStrictSuperset(
    AttrMask mask, int64_t weight_limit) const {
  // A strict superset has more attributes than the query; without any
  // entry above the query's level the DFS cannot find one (the hot case
  // during the searches' small-to-large traversal).
  if (mask.Count() >= max_entry_level_) return std::nullopt;
  std::optional<Match> best;
  FindBest(0, mask.bits(), mask.bits(), weight_limit, &best);
  return best;
}

}  // namespace pcbl
