// FullPatternIndex: the pattern set P_A of all full patterns present in a
// dataset, with counts, sorted by count descending.
//
// The paper's experiments evaluate label error against P = P_A — every
// pattern that binds all attributes and appears in the data (Sec. IV-A).
// Those patterns are exactly the distinct complete rows; their counts are
// the row multiplicities. The descending count order enables the
// early-termination trick of Sec. IV-C when computing maximal error.
// Rows containing NULLs produce no full pattern and are excluded.
#ifndef PCBL_PATTERN_FULL_PATTERN_INDEX_H_
#define PCBL_PATTERN_FULL_PATTERN_INDEX_H_

#include <cstdint>
#include <vector>

#include "pattern/pattern.h"
#include "relation/table.h"

namespace pcbl {

/// Distinct complete rows of a table with their multiplicities, ordered by
/// multiplicity (count) descending.
class FullPatternIndex {
 public:
  /// Builds the index with one scan + sort.
  static FullPatternIndex Build(const Table& table);

  /// Extends the index by appended rows (row-major codes over the full
  /// schema, kNullValue = missing; rows with a NULL produce no full
  /// pattern, exactly as in Build). The result is byte-identical to
  /// Build over the table extended by `rows` — the canonical order
  /// (count descending, ties by lexicographic key) is restored with one
  /// merge + sort over the group set, no table rescan. This is the P_A
  /// maintenance arm of the append-aware search path (api/session.h).
  void ApplyAppend(const std::vector<std::vector<ValueId>>& rows);

  /// Flat variant: `rows` is num_rows * num_attributes() codes,
  /// row-major — the layout CountingEngine::CopyAppendedRows produces,
  /// so a session's P_A catch-up avoids a per-row vector per appended
  /// row. Identical semantics to the nested form.
  void ApplyAppend(const ValueId* rows, int64_t num_rows);

  /// Number of distinct full patterns |P_A|.
  int64_t num_patterns() const {
    return static_cast<int64_t>(counts_.size());
  }

  /// Codes of pattern `i` (width = num_attributes, no NULLs).
  const ValueId* codes(int64_t i) const {
    return codes_.data() + static_cast<size_t>(i) * width_;
  }

  /// Count c_D(p_i).
  int64_t count(int64_t i) const { return counts_[static_cast<size_t>(i)]; }

  /// Number of attributes per pattern.
  int width() const { return width_; }

  /// Rows included (no NULLs) — equals the sum of all counts.
  int64_t rows_indexed() const { return rows_indexed_; }

  /// Rows skipped because of NULL cells.
  int64_t rows_skipped() const { return rows_skipped_; }

  /// Materializes pattern `i` as a Pattern object.
  Pattern ToPattern(int64_t i) const;

 private:
  int width_ = 0;
  std::vector<ValueId> codes_;   // flat, num_patterns * width
  std::vector<int64_t> counts_;  // descending
  int64_t rows_indexed_ = 0;
  int64_t rows_skipped_ = 0;
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_FULL_PATTERN_INDEX_H_
