// Shared internals of the pattern-counting layer: the nullable mixed-radix
// restriction codec and the open-addressing code containers used by both
// the one-shot counting functions (counter.cc) and the memoizing
// CountingEngine. Not part of the public API surface — include only from
// src/pattern.
//
// A *restriction code* encodes one tuple's non-NULL restriction to an
// attribute subset S as a single int64: each attribute contributes
// |Dom| + 1 slots, the last one marking NULL (unbound). Codes order
// restrictions by ascending mixed-radix value with NULL sorting last per
// attribute — the canonical PC-set emission order.
#ifndef PCBL_PATTERN_RESTRICTION_CODEC_H_
#define PCBL_PATTERN_RESTRICTION_CODEC_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "pattern/counter.h"
#include "relation/table.h"
#include "util/hash.h"

namespace pcbl {

/// Build-time access to GroupCounts internals, shared by the counting
/// implementations (counter.cc, counting_engine.cc).
struct GroupCountsAccess {
  static std::vector<int>& attrs(GroupCounts& g) { return g.attrs_; }
  static AttrMask& mask(GroupCounts& g) { return g.mask_; }
  static std::vector<ValueId>& keys(GroupCounts& g) { return g.keys_; }
  static std::vector<int64_t>& counts(GroupCounts& g) { return g.counts_; }
};

namespace counting {

/// Reservation hint for the code containers of one sizing pass. When a
/// budget early-exit hint is present the pass inserts at most budget + 1
/// distinct codes before aborting, so reserving budget + 2 makes it
/// rehash-free; without a budget the row count bounds the distinct count
/// (clamped so near-unique subsets of huge tables do not pre-touch a
/// gigantic empty map).
inline size_t SizingReserve(int64_t budget, int64_t rows) {
  if (budget >= 0) return static_cast<size_t>(budget) + 2;
  return static_cast<size_t>(
      std::clamp<int64_t>(rows, 256, int64_t{1} << 16));
}

/// Mixed-radix multipliers over domain size + 1 (the extra slot encodes
/// NULL), for restriction keys; dom_sizes[0] / attrs[0] is the most
/// significant. Sets *ok to false (and returns a partial vector) when the
/// key space overflows int64.
inline std::vector<int64_t> NullableRadixMultipliers(
    const int64_t* dom_sizes, size_t width, bool* ok) {
  std::vector<int64_t> mult(width);
  int64_t m = 1;
  *ok = true;
  for (size_t j = width; j-- > 0;) {
    mult[j] = m;
    int64_t dom = dom_sizes[j] + 1;
    if (m > std::numeric_limits<int64_t>::max() / dom) {
      *ok = false;
      return mult;
    }
    m *= dom;
  }
  return mult;
}

inline std::vector<int64_t> NullableRadixMultipliers(
    const Table& table, const std::vector<int>& attrs, bool* ok) {
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < attrs.size(); ++j) {
    doms[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  return NullableRadixMultipliers(doms, attrs.size(), ok);
}

/// Decodes a restriction code back into per-attribute ValueIds (kNullValue
/// for unbound positions), inverse of the encoding above.
inline void DecodeRestriction(int64_t code, const int64_t* dom_sizes,
                              size_t width,
                              const std::vector<int64_t>& mult,
                              ValueId* out) {
  for (size_t j = 0; j < width; ++j) {
    int64_t dom = dom_sizes[j];
    int64_t slot = (code / mult[j]) % (dom + 1);
    out[j] = slot == dom ? kNullValue : static_cast<ValueId>(slot);
  }
}

inline void DecodeRestriction(int64_t code, const Table& table,
                              const std::vector<int>& attrs,
                              const std::vector<int64_t>& mult,
                              ValueId* out) {
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < attrs.size(); ++j) {
    doms[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  DecodeRestriction(code, doms, attrs.size(), mult, out);
}

/// Materializes a (code, count) list as a GroupCounts over `attrs`:
/// sorts by code — the canonical emission order (ascending mixed-radix,
/// NULL last per attribute) — and decodes each key via the nullable
/// codec. ComputePatternCounts and the CountingEngine's mixed-radix path
/// emit through this; the packed path emits through
/// MaterializeFromPackedCodes, whose code order is isomorphic — which is
/// what keeps every path's output byte-identical.
inline GroupCounts MaterializeFromCodes(
    AttrMask mask, const std::vector<int>& attrs, const int64_t* dom_sizes,
    const std::vector<int64_t>& mult,
    std::vector<std::pair<int64_t, int64_t>> items) {
  std::sort(items.begin(), items.end());
  GroupCounts out;
  GroupCountsAccess::mask(out) = mask;
  GroupCountsAccess::attrs(out) = attrs;
  std::vector<ValueId>& keys = GroupCountsAccess::keys(out);
  std::vector<int64_t>& counts = GroupCountsAccess::counts(out);
  const size_t width = attrs.size();
  keys.reserve(items.size() * width);
  counts.reserve(items.size());
  for (const auto& [code, c] : items) {
    size_t base = keys.size();
    keys.resize(base + width);
    DecodeRestriction(code, dom_sizes, width, mult, keys.data() + base);
    counts.push_back(c);
  }
  return out;
}

inline GroupCounts MaterializeFromCodes(
    const Table& table, AttrMask mask, const std::vector<int>& attrs,
    const std::vector<int64_t>& mult,
    std::vector<std::pair<int64_t, int64_t>> items) {
  int64_t doms[kMaxAttributes];
  for (size_t j = 0; j < attrs.size(); ++j) {
    doms[j] = static_cast<int64_t>(table.DomainSize(attrs[j]));
  }
  return MaterializeFromCodes(mask, attrs, doms, mult, std::move(items));
}

/// Open-addressing set of 64-bit codes for the sizing hot loop: the search
/// algorithms call the distinct counters millions of times, so the
/// std::unordered_set allocation/probing cost dominates without this.
class CodeSet {
 public:
  explicit CodeSet(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  /// Returns true when the code was newly inserted.
  bool Insert(int64_t code) {
    if (size_ * 2 >= slots_.size()) Grow();
    size_t i = static_cast<size_t>(Mix64(static_cast<uint64_t>(code))) &
               mask_;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == code) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = code;
    ++size_;
    return true;
  }

  int64_t size() const { return static_cast<int64_t>(size_); }

  /// Visits every inserted code, in table order (capacity-dependent —
  /// callers needing a deterministic order must sort downstream, which
  /// every materialization path already does). Used by the morsel-merge
  /// in packed_kernels.cc to fold thread-local partials together.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (int64_t code : slots_) {
      if (code != kEmpty) fn(code);
    }
  }

  /// Number of growth rehashes since construction. A correctly sized
  /// reservation (SizingReserve) keeps this at 0 for budgeted passes —
  /// asserted by a regression check in bench_micro_counting_engine.
  int64_t rehashes() const { return rehashes_; }

 private:
  // An improbable sentinel; real codes are non-negative mixed-radix
  // values, so kEmpty can never collide.
  static constexpr int64_t kEmpty = -1;

  void Grow() {
    ++rehashes_;
    std::vector<int64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    for (int64_t code : old) {
      if (code == kEmpty) continue;
      size_t i = static_cast<size_t>(Mix64(static_cast<uint64_t>(code))) &
                 mask_;
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = code;
    }
  }

  std::vector<int64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  int64_t rehashes_ = 0;
};

/// Open-addressing code -> count map for the counting hot paths (the
/// search builds thousands of candidate labels per run). Code and count
/// are stored interleaved so a probe touches one cache line — the
/// increment costs the same memory traffic as a CodeSet insert.
class CodeCountMap {
 public:
  explicit CodeCountMap(size_t expected) {
    size_t cap = 32;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, Slot{kEmpty, 0});
    mask_ = cap - 1;
  }

  /// Adds `delta` to the count of `code`; returns true when the code was
  /// newly inserted.
  bool Add(int64_t code, int64_t delta) {
    if (size_ * 2 >= slots_.size()) Grow();
    size_t i = static_cast<size_t>(Mix64(static_cast<uint64_t>(code))) &
               mask_;
    while (slots_[i].code != kEmpty && slots_[i].code != code) {
      i = (i + 1) & mask_;
    }
    bool fresh = slots_[i].code == kEmpty;
    if (fresh) {
      slots_[i].code = code;
      ++size_;
    }
    slots_[i].count += delta;
    return fresh;
  }

  void Increment(int64_t code) { Add(code, 1); }

  /// Number of distinct codes inserted so far.
  int64_t size() const { return static_cast<int64_t>(size_); }

  /// Number of growth rehashes since construction (see CodeSet).
  int64_t rehashes() const { return rehashes_; }

  /// Visits every (code, count) pair, in table order (see
  /// CodeSet::ForEach for the ordering caveat).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.code != kEmpty) fn(s.code, s.count);
    }
  }

  /// The (code, count) pairs in table order (callers sort for
  /// determinism).
  std::vector<std::pair<int64_t, int64_t>> Items() const {
    std::vector<std::pair<int64_t, int64_t>> items;
    items.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.code != kEmpty) items.emplace_back(s.code, s.count);
    }
    return items;
  }

 private:
  static constexpr int64_t kEmpty = -1;  // codes are non-negative

  struct Slot {
    int64_t code;
    int64_t count;
  };

  void Grow() {
    ++rehashes_;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{kEmpty, 0});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.code == kEmpty) continue;
      size_t j = static_cast<size_t>(
                     Mix64(static_cast<uint64_t>(s.code))) &
                 mask_;
      while (slots_[j].code != kEmpty) j = (j + 1) & mask_;
      slots_[j] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  int64_t rehashes_ = 0;
};

}  // namespace counting
}  // namespace pcbl

#endif  // PCBL_PATTERN_RESTRICTION_CODEC_H_
