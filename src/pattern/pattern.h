// Pattern: an attribute-value combination (Definition 2.1).
//
// A pattern p = {A_i1 = a1, ..., A_ik = ak} is stored as terms sorted by
// attribute index. A tuple satisfies p when it equals every term's value
// (Definition 2.3); NULL cells never match.
#ifndef PCBL_PATTERN_PATTERN_H_
#define PCBL_PATTERN_PATTERN_H_

#include <string>
#include <utility>
#include <vector>

#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// One conjunct of a pattern: attribute index = value code.
struct PatternTerm {
  int attr = 0;
  ValueId value = 0;

  bool operator==(const PatternTerm& o) const {
    return attr == o.attr && value == o.value;
  }
};

/// An attribute-value combination over a table's schema.
class Pattern {
 public:
  /// The empty pattern (satisfied by every tuple).
  Pattern() = default;

  /// Builds a pattern from terms. Fails on duplicate attributes, negative
  /// indices, or NULL values. Terms are sorted by attribute index.
  static Result<Pattern> Create(std::vector<PatternTerm> terms);

  /// Parses named terms like {"gender","Female"} against a table's schema
  /// and dictionaries. Unknown attribute or value is an error.
  static Result<Pattern> Parse(
      const Table& table,
      const std::vector<std::pair<std::string, std::string>>& named_terms);

  /// Attr(p): the set of attributes mentioned.
  AttrMask attributes() const { return attrs_; }

  /// Number of terms (|Attr(p)|).
  int size() const { return static_cast<int>(terms_.size()); }
  bool empty() const { return terms_.empty(); }

  /// Terms in increasing attribute order.
  const std::vector<PatternTerm>& terms() const { return terms_; }

  /// The value bound to `attr`, or error when `attr` ∉ Attr(p).
  Result<ValueId> ValueFor(int attr) const;

  /// p|S: the restriction of p to the attributes in `mask` (Sec. II-B).
  Pattern Restrict(AttrMask mask) const;

  /// True when tuple `row` of `table` satisfies this pattern.
  bool MatchesRow(const Table& table, int64_t row) const;

  /// Renders as "{gender=Female, race=Hispanic}" using the table's
  /// dictionaries.
  std::string ToString(const Table& table) const;

  bool operator==(const Pattern& o) const { return terms_ == o.terms_; }

 private:
  std::vector<PatternTerm> terms_;  // sorted by attr
  AttrMask attrs_;
};

/// Counts the tuples of `table` satisfying `p` — c_D(p) (Definition 2.3) —
/// by a full scan. Exact but O(rows); the label machinery uses
/// GroupCounts/Label lookups instead for bulk work.
int64_t CountMatches(const Table& table, const Pattern& p);

}  // namespace pcbl

#endif  // PCBL_PATTERN_PATTERN_H_
