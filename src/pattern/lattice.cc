#include "pattern/lattice.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace pcbl {

std::vector<AttrMask> Gen(AttrMask s, int n) {
  PCBL_DCHECK(n >= 0 && n <= kMaxAttributes);
  std::vector<AttrMask> out;
  int start = s.empty() ? 0 : s.MaxIndex() + 1;
  for (int j = start; j < n; ++j) {
    out.push_back(s.With(j));
  }
  return out;
}

std::vector<AttrMask> Children(AttrMask s, int n) {
  std::vector<AttrMask> out;
  for (int j = 0; j < n; ++j) {
    if (!s.Test(j)) out.push_back(s.With(j));
  }
  return out;
}

std::vector<AttrMask> Parents(AttrMask s) {
  std::vector<AttrMask> out;
  for (int j : s.ToIndices()) {
    out.push_back(s.Without(j));
  }
  return out;
}

void ForEachSubsetOfSize(int n, int k,
                         const std::function<void(AttrMask)>& fn) {
  SubsetOfSizeEnumerator subsets(n, k);
  AttrMask s;
  while (subsets.Next(&s)) fn(s);
}

SubsetOfSizeEnumerator::SubsetOfSizeEnumerator(int n, int k) : n_(n) {
  PCBL_CHECK(n >= 0 && n <= kMaxAttributes);
  PCBL_CHECK(k >= 0);
  if (k > n) {
    done_ = true;
  } else if (k == 0) {
    empty_set_pending_ = true;
  } else {
    v_ = (k == 64) ? ~0ULL : ((1ULL << k) - 1);
  }
}

bool SubsetOfSizeEnumerator::Next(AttrMask* out) {
  if (done_) return false;
  if (empty_set_pending_) {
    empty_set_pending_ = false;
    done_ = true;
    *out = AttrMask();
    return true;
  }
  *out = AttrMask(v_);
  // Gosper's hack: next bit permutation with the same popcount.
  uint64_t c = v_ & (~v_ + 1);
  uint64_t r = v_ + c;
  if (r == 0) {
    done_ = true;  // overflow: done
  } else {
    v_ = (((r ^ v_) >> 2) / c) | r;
    if (n_ < 64 && (v_ >> n_) != 0) done_ = true;
  }
  return true;
}

void ForEachSubsetOf(AttrMask universe,
                     const std::function<void(AttrMask)>& fn) {
  // Classic submask enumeration: s -> (s-1) & u visits every non-empty
  // submask exactly once, in descending numeric order, using O(1) space.
  uint64_t u = universe.bits();
  uint64_t s = u;
  while (s != 0) {
    fn(AttrMask(s));
    s = (s - 1) & u;
  }
}

int64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  int64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, keeping exact integer arithmetic.
    int64_t num = n - k + i;
    if (result > std::numeric_limits<int64_t>::max() / num) {
      return std::numeric_limits<int64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

}  // namespace pcbl
