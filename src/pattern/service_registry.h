// ServiceRegistry: one warm CountingService per dataset, process-wide.
//
// PR 2's CountingService scoped the counting cache to a dataset *handle*:
// every LabelSearch, CLI invocation, or incremental session that built its
// own Table — even over byte-identical data — also built its own engine
// and paid the full-table scans again. The registry closes that gap by
// keying services on a *content fingerprint* of the table (schema +
// dictionaries + column data): any consumer that acquires a service for
// equal data gets the same shared service, so the second consumer's
// candidates are answered from the first one's warm PC sets with zero
// full-table scans (asserted via CountingEngineStats::full_scans in
// service_registry_test.cc).
//
// Lifetime: each service *owns* the table it scans (the first
// acquirer's table is copied into shared ownership unless it arrives as
// a shared_ptr), so a handed-out service stays fully valid even after
// its entry is evicted or the registry cleared. Fingerprinted equality
// also makes code spaces interchangeable: dictionary ids are assigned
// in first-seen order, so content-equal tables encode every value
// identically and a caller may use its own codes against the shared
// service.
//
// Divergence: a service that absorbed appends (an incremental session
// grew it) no longer describes its fingerprint's content, so the next
// acquire of that fingerprint retires the entry — holders keep the
// grown service — and rebuilds a fresh service for the base content
// (counted as a miss).
//
// Memory accounting: every engine tracks its resident cache bytes
// (CountingEngineStats::cached_bytes, mirrored lock-free through
// CountingService::resident_bytes); each entry additionally charges the
// approximate footprint of its owned table copy. The registry sums both
// and, when the total exceeds the configurable process budget, evicts
// whole *cold* services — least-recently-acquired first, and only those
// no consumer currently holds (use_count == 1). Hot services are never
// torn down mid-search; an evicted service stays valid for any holder
// that still references it, it just stops being findable.
//
// Thread-safety: every method is safe to call concurrently. The registry
// lock is never held while engine work runs; consumers serialize engine
// access through the service's own mutex(), exactly as with a
// hand-constructed CountingService.
#ifndef PCBL_PATTERN_SERVICE_REGISTRY_H_
#define PCBL_PATTERN_SERVICE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "pattern/counting_service.h"
#include "relation/table.h"

namespace pcbl {

namespace persist {
class SpillStore;
}  // namespace persist

/// 128-bit content hash of a table: schema names, per-attribute
/// dictionary contents, and column data (incl. NULL positions). Two
/// tables with equal fingerprints have identical code spaces.
struct TableFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const TableFingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
  bool operator!=(const TableFingerprint& other) const {
    return !(*this == other);
  }
};

TableFingerprint FingerprintTable(const Table& table);

/// Tuning knobs of the registry.
struct ServiceRegistryOptions {
  /// Process-wide budget on the summed resident bytes (engine caches +
  /// owned table copies) of all registered services; crossing it evicts
  /// cold services (LRU by last acquire). <= 0 means unbounded.
  int64_t memory_budget_bytes = int64_t{256} << 20;
};

/// Observability counters of the registry (monotonic except residents).
struct ServiceRegistryStats {
  int64_t acquires = 0;       ///< Acquire calls
  int64_t hits = 0;           ///< served an existing service
  int64_t misses = 0;         ///< built a new service (engine constructed)
  int64_t evictions = 0;      ///< cold services dropped by the accountant
  int64_t services = 0;       ///< currently registered services
  int64_t resident_bytes = 0; ///< summed cache + table bytes right now
  /// Queries refused (retryable kUnavailable) because their session's
  /// service had been evicted — the "lost the race with eviction" count
  /// an operator watches to size the memory budget.
  int64_t evicted_rejections = 0;
  /// Result-tier counters summed over the currently resident services
  /// (an evicted service takes its counts with it): whole-query
  /// completed-cache hits, leader executions, queries that parked on an
  /// identical in-flight query, and the cache's current occupancy. The
  /// cached bytes are already part of resident_bytes — this breaks them
  /// out for the operator. See CountingService::result_tier_stats().
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  int64_t result_inflight_joins = 0;
  int64_t result_entries = 0;
  int64_t result_bytes = 0;
  /// Append-path counters summed over the currently resident services:
  /// group commits executed, string-level append requests served, and
  /// values interned beyond the base dictionaries. The batches/requests
  /// ratio is the group-commit merge factor an operator watches under
  /// concurrent ingest. See CountingService::append_stats().
  int64_t append_batches = 0;
  int64_t append_requests = 0;
  int64_t interned_values = 0;
  /// Warm-start spill-store counters (docs/PERSISTENCE.md): zero until
  /// SetSpillDirectory points the registry at a cache directory. Loads
  /// that restored a warm service / found no spill file / refused one
  /// (corrupt, foreign version, diverged), records written, and the
  /// bytes they cost on disk.
  int64_t spill_hits = 0;
  int64_t spill_misses = 0;
  int64_t spill_rejects = 0;
  int64_t spills = 0;
  int64_t spilled_bytes = 0;
};

/// Folds one service's result-tier and append-path counters into
/// `stats` (the result_* / append_* / interned_values fields only).
/// Shared by ServiceRegistry::stats() and `pcbl serve`'s per-tenant
/// stats rows, so both views sum the same counters the same way.
void AccumulateServiceStats(const CountingService& service,
                            ServiceRegistryStats* stats);

class ServiceRegistry {
 public:
  explicit ServiceRegistry(ServiceRegistryOptions options = {})
      : options_(options) {}

  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  /// The process-wide instance shared by searches, the CLI, and the
  /// theory sweeps.
  static ServiceRegistry& Global();

  /// Returns the shared service for `table`'s content, creating it on
  /// first acquire (the table is copied into service ownership, so the
  /// result outlives both the caller's instance and the registry
  /// entry). On a hit, `options` are NOT applied — per-query knobs go
  /// through CountingService::Configure under the consumer's lock,
  /// exactly as LabelSearch does.
  std::shared_ptr<CountingService> Acquire(
      const Table& table, const CountingEngineOptions& options = {});

  /// Same, but shares ownership of the caller's table instead of
  /// copying it on a miss.
  std::shared_ptr<CountingService> Acquire(
      std::shared_ptr<const Table> table,
      const CountingEngineOptions& options = {});

  /// Adjusts the process budget and immediately enforces it.
  void SetMemoryBudget(int64_t bytes);

  /// Evicts cold services until the resident total fits the budget.
  /// Called automatically by every Acquire.
  void Trim();

  /// Drops every entry regardless of temperature (outstanding
  /// shared_ptrs keep their services — and the tables those own —
  /// alive). Each dropped service is marked evicted (api::Session then
  /// refuses new queries on it with a retryable kUnavailable) and its
  /// in-flight admissions and waves are drained before the entry goes —
  /// eviction never races a live wave. Primarily for tests.
  void Clear();

  /// Points the registry at a spill directory (persist::SpillStore,
  /// docs/PERSISTENCE.md): acquire-misses then consult the store first
  /// (a validated warm-state record restores the new service's interner
  /// deltas, appended rows, and cached PC sets before it is handed
  /// out), and eviction spills a warm non-diverged service's state on
  /// the way out. An empty directory disables spilling; changing the
  /// directory replaces the store (counters restart from zero).
  void SetSpillDirectory(const std::string& directory);

  /// The active spill store (null while disabled). Consumers that
  /// persist their own artifacts — e.g. `pcbl build` spilling a
  /// completed label — go through this handle so everything lands in
  /// one directory under one budget.
  std::shared_ptr<persist::SpillStore> spill_store() const;

  /// Spills every resident warm non-diverged service's state now — the
  /// orderly-shutdown hook (`pcbl serve` calls it after the listener
  /// stops, the batch CLIs before exit). Returns the number of services
  /// spilled. No-op without a spill directory.
  int64_t SpillResident();

  /// Records one query refused because its service was evicted; called
  /// by api::Session, surfaced through stats().evicted_rejections (and
  /// the CLI's registry line).
  void NoteEvictedRejection() {
    evicted_rejections_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Summed resident bytes (engine caches + owned table copies) over
  /// all registered services.
  int64_t ResidentBytes() const;

  ServiceRegistryStats stats() const;

 private:
  struct Entry {
    // The base-content table. The service shares ownership; the entry's
    // handle exists to rebuild a fresh service when the current one
    // diverges (absorbed appends).
    std::shared_ptr<const Table> table;
    int64_t table_bytes = 0;  // accountant's charge for the copy
    std::shared_ptr<CountingService> service;
    uint64_t last_acquired = 0;  // registry clock ticks
  };

  struct FingerprintHash {
    size_t operator()(const TableFingerprint& f) const {
      return static_cast<size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  // All called under mu_.
  std::shared_ptr<CountingService> AcquireLocked(
      const TableFingerprint& fingerprint,
      const std::function<std::shared_ptr<const Table>()>& own_table,
      const CountingEngineOptions& options);
  void TrimLocked();
  int64_t ResidentBytesLocked() const;
  // Spills one entry's warm state (no-op when the store is off, the
  // service diverged, or there is nothing warm to keep). True when a
  // record was written.
  bool SpillEntryLocked(const TableFingerprint& fingerprint,
                        const Entry& entry);
  // Restores a just-built service from the spill store (no-op when the
  // store is off, the record is missing, or validation refuses it — the
  // service then simply starts cold).
  void RestoreFromSpillLocked(const TableFingerprint& fingerprint,
                              const Entry& entry);

  mutable std::mutex mu_;
  ServiceRegistryOptions options_;
  ServiceRegistryStats stats_;
  uint64_t clock_ = 0;
  std::unordered_map<TableFingerprint, Entry, FingerprintHash> services_;
  // Warm-start persistence; null while disabled. Guarded by mu_ (the
  // store itself is thread-safe — the shared_ptr lets spill_store()
  // hand out a stable handle).
  std::shared_ptr<persist::SpillStore> spill_;
  // Outside mu_: bumped on the query path (api::Session) while Clear may
  // be quiescing services under mu_ — an atomic avoids the lock cycle.
  std::atomic<int64_t> evicted_rejections_{0};
};

}  // namespace pcbl

#endif  // PCBL_PATTERN_SERVICE_REGISTRY_H_
