// Explicit pattern sets for the optimal-label problem.
//
// Definition 2.15 leaves the evaluated pattern set P as an input: "Our
// problem definition is more flexible, and allows the user to define a
// different pattern set, e.g., patterns that include only sensitive
// attributes." The experiments use P = P_A (FullPatternIndex), but the
// search also accepts a PatternSet built from any pattern list or from all
// value combinations over a chosen (e.g. sensitive) attribute subset.
// Patterns are kept sorted by true count descending so the Sec. IV-C
// early-termination scan applies.
#ifndef PCBL_CORE_PATTERN_SET_H_
#define PCBL_CORE_PATTERN_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "pattern/pattern.h"
#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// A set of evaluation patterns with their true counts, ordered by count
/// descending.
class PatternSet {
 public:
  /// Builds from explicit patterns; counts are computed by scanning
  /// `table` (exact). Patterns with zero count are kept (their q-error is
  /// skipped during evaluation, mirroring EvaluateOverPatterns).
  static PatternSet FromPatterns(const Table& table,
                                 std::vector<Pattern> patterns);

  /// Builds from patterns with precomputed counts (sizes must match).
  static Result<PatternSet> FromPatternsAndCounts(
      std::vector<Pattern> patterns, std::vector<int64_t> counts);

  /// All value combinations over exactly `attrs` that appear in the data
  /// (the set P_S of Definition 2.9): "patterns that include only
  /// sensitive attributes".
  static PatternSet OverAttributes(const Table& table, AttrMask attrs);

  int64_t size() const { return static_cast<int64_t>(patterns_.size()); }
  const Pattern& pattern(int64_t i) const {
    return patterns_[static_cast<size_t>(i)];
  }
  int64_t count(int64_t i) const { return counts_[static_cast<size_t>(i)]; }

  const std::vector<Pattern>& patterns() const { return patterns_; }
  const std::vector<int64_t>& counts() const { return counts_; }

 private:
  std::vector<Pattern> patterns_;  // sorted by count descending
  std::vector<int64_t> counts_;
};

}  // namespace pcbl

#endif  // PCBL_CORE_PATTERN_SET_H_
