#include "core/estimator.h"

#include "util/logging.h"

namespace pcbl {

double CardinalityEstimator::EstimateFullPattern(const ValueId* codes,
                                                 int width) const {
  std::vector<PatternTerm> terms;
  terms.reserve(static_cast<size_t>(width));
  for (int a = 0; a < width; ++a) {
    terms.push_back(PatternTerm{a, codes[a]});
  }
  auto p = Pattern::Create(std::move(terms));
  PCBL_CHECK(p.ok()) << p.status();
  return EstimateCount(*p);
}

}  // namespace pcbl
