// Label: the paper's core artifact (Definition 2.9).
//
// A label L_S(D) of dataset D using attribute subset S contains
//   PC — the count of every pattern over exactly S with positive count, and
//   VC — the count of every individual attribute value of D.
// Its size is |PC|; VC is shared by all labels of the same dataset.
// Labels support exact lookups (complete assignments over S), marginal
// counts (partial assignments, by summing PC), and the estimation function
// of Definition 2.11 via EstimateCount().
#ifndef PCBL_CORE_LABEL_H_
#define PCBL_CORE_LABEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "pattern/counter.h"
#include "pattern/pattern.h"
#include "relation/stats.h"
#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// An immutable pattern-count-based label over one dataset.
class Label {
 public:
  /// An empty placeholder label (no dataset, no counts). Use Build() to
  /// construct a meaningful label.
  Label() = default;

  /// Builds L_S(D). When `vc` is null the VC set is computed from the
  /// table; pass a shared instance when building many labels of the same
  /// dataset (the search algorithms do).
  static Label Build(const Table& table, AttrMask s,
                     std::shared_ptr<const ValueCounts> vc = nullptr);

  /// Same, but reuses an already-computed PC set instead of rescanning the
  /// table. `pc` must equal ComputePatternCounts(table, s) — the
  /// CountingEngine cache provides exactly that, which lets the search's
  /// ranking phase build candidate labels without recounting.
  static Label BuildFromCounts(const Table& table, AttrMask s,
                               GroupCounts pc,
                               std::shared_ptr<const ValueCounts> vc =
                                   nullptr);

  /// BuildFromCounts for a dataset extended beyond `table` by appended
  /// rows: `total_rows` is the extended |D| and `domain_sizes[a]` the
  /// effective domain of every attribute (the counting engine's
  /// EffectiveDomainSize — what a rebuilt extended table would report).
  /// `pc` and `vc` must describe the extended data too; `vc` is
  /// required, since it cannot be recomputed from the base table. The
  /// resulting label is byte-identical to Build over the rebuilt
  /// extended table — the append-aware search path of LabelSearch /
  /// api::Session builds every candidate through this.
  static Label BuildFromCountsExtended(
      const Table& table, AttrMask s, GroupCounts pc,
      std::shared_ptr<const ValueCounts> vc, int64_t total_rows,
      const std::vector<int64_t>& domain_sizes);

  /// The attribute subset S.
  AttrMask attributes() const { return attrs_; }

  /// Label size |PC| (the quantity bounded by B_s).
  int64_t size() const { return pc_.num_groups(); }

  /// The PC set.
  const GroupCounts& pattern_counts() const { return pc_; }

  /// The VC set (shared across labels of the same dataset).
  const ValueCounts& value_counts() const { return *vc_; }
  std::shared_ptr<const ValueCounts> shared_value_counts() const {
    return vc_;
  }

  /// |D| — number of tuples of the labeled dataset.
  int64_t total_rows() const { return total_rows_; }

  /// c_D(p|S): the count of p restricted to S ∩ Attr(p), answered from
  /// the label alone. Exact PC lookup when the restriction binds all of
  /// S; otherwise a containment sum over PC entries (entries whose bound
  /// values agree with the restriction). For the empty restriction this
  /// is |D|. On NULL-free data this equals the true restricted count
  /// whenever the restriction binds >= 1 attribute of a |S| >= 2 label;
  /// with missing values it is the PC-derived count under which the
  /// appendix-A hardness reduction is sound (see DESIGN.md §5a).
  int64_t RestrictedCount(const Pattern& p) const;

  /// Fast path of RestrictedCount for a full pattern given as row codes
  /// (codes[a] for every attribute a; no NULLs): direct PC lookup.
  int64_t RestrictedCountForCodes(const ValueId* codes) const;

  /// Est(p, l) per Definition 2.11 (generalized to Attr(p) ⊅ S via
  /// restriction to S ∩ Attr(p), as in Proposition 3.2's proof).
  double EstimateCount(const Pattern& p) const;

  /// Est for a full pattern given as row codes — the hot loop of error
  /// evaluation.
  double EstimateFullPattern(const ValueId* codes, int width) const;

  /// Err(l, p) = |c_D(p) − Est(p, l)| (Definition 2.13); `actual` is the
  /// caller-supplied true count.
  double AbsoluteError(const Pattern& p, int64_t actual) const;

 private:
  // Looks up a complete PC key (values for every attribute of S, in
  // ascending attribute order). Returns 0 when absent.
  int64_t LookupPcKey(const ValueId* key) const;

  AttrMask attrs_;
  GroupCounts pc_;
  std::shared_ptr<const ValueCounts> vc_;
  int64_t total_rows_ = 0;

  // Estimation accelerators.
  std::vector<double> inv_totals_;    // 1 / NonNullTotal(a) per attribute
  std::vector<int64_t> radix_mult_;   // mixed-radix multipliers over S
  std::vector<ValueId> domain_sizes_; // |Dom| per S-attribute (NULL slot)
  bool encodable_ = false;            // key space fits in int64
  std::vector<int64_t> pc_codes_;     // encoded PC keys, ascending
  std::vector<int> attr_pos_;         // attr index -> position in S, or -1
};

}  // namespace pcbl

#endif  // PCBL_CORE_LABEL_H_
