// Label diffing — comparing two labels of successive dataset versions.
//
// Labels ship as dataset metadata (Sec. I); when a dataset is re-released,
// the natural question is what changed *as seen through the labels*,
// without access to either version's rows. This module compares two
// PortableLabels attribute by attribute (marginal distribution shift,
// measured as total-variation distance) and pattern by pattern (PC
// entries that appeared, vanished, or changed count), giving data
// consumers a versioned-metadata change log: exactly the information
// needed to decide whether conclusions drawn from the old release (group
// representation, skew, dependence) still stand.
//
// Attributes are matched by name; the PC sections are only compared when
// both labels use the same attribute set S (otherwise the diff degrades
// gracefully and says so).
#ifndef PCBL_CORE_LABEL_DIFF_H_
#define PCBL_CORE_LABEL_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/portable_label.h"
#include "util/status.h"

namespace pcbl {

/// Marginal-distribution change of one attribute.
struct AttributeShift {
  std::string attribute;
  /// Total-variation distance between the old and new value distributions
  /// (0 = identical, 1 = disjoint). Values absent on one side contribute
  /// their full mass.
  double total_variation = 0.0;
  /// Values present only in the new / only in the old label.
  std::vector<std::string> added_values;
  std::vector<std::string> removed_values;
};

/// One PC entry's change.
struct PatternChange {
  /// Values aligned with DiffLabels' s_attribute_names.
  std::vector<std::string> values;
  /// Counts before/after; 0 on the missing side.
  int64_t old_count = 0;
  int64_t new_count = 0;
};

/// The change log between two labels.
struct LabelDiff {
  /// |D| before/after.
  int64_t old_rows = 0;
  int64_t new_rows = 0;
  /// Attributes present only in the new / only in the old label.
  std::vector<std::string> added_attributes;
  std::vector<std::string> removed_attributes;
  /// Per-common-attribute marginal shift, ordered by total variation
  /// descending.
  std::vector<AttributeShift> shifts;
  /// True when both labels store PC over the same attribute names; the
  /// pattern_changes section is only populated then.
  bool comparable_patterns = false;
  /// S (names) of the compared PC sections, in the old label's order.
  std::vector<std::string> s_attribute_names;
  /// Appeared / vanished / count-changed patterns, ordered by
  /// |new - old| descending. Unchanged entries are omitted.
  std::vector<PatternChange> pattern_changes;

  /// max over attributes of total_variation (0 when no common attributes).
  double max_total_variation() const;
};

/// Computes the change log from `old_label` to `new_label`.
LabelDiff DiffLabels(const PortableLabel& old_label,
                     const PortableLabel& new_label);

/// Renders the diff as a human-readable report; `max_rows` caps each list
/// (0 = unlimited).
std::string RenderLabelDiff(const LabelDiff& diff, int max_rows = 20);

}  // namespace pcbl

#endif  // PCBL_CORE_LABEL_DIFF_H_
