// Uniform interface over pattern-count estimation methods.
//
// The paper compares its labels (PCBL) against a PostgreSQL-style 1-D
// statistics estimator and uniform-sampling estimation (Sec. IV-B). The
// error-evaluation harness works against this interface so that all three
// (plus the degenerate independence estimator) are measured identically.
#ifndef PCBL_CORE_ESTIMATOR_H_
#define PCBL_CORE_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/label.h"
#include "pattern/pattern.h"
#include "relation/value.h"

namespace pcbl {

/// Estimates the count of a pattern in a dataset from compact metadata.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated c_D(p).
  virtual double EstimateCount(const Pattern& p) const = 0;

  /// Estimated count of the full pattern given by row codes (one ValueId
  /// per attribute, no NULLs). Default: materializes a Pattern.
  virtual double EstimateFullPattern(const ValueId* codes, int width) const;

  /// Display name (e.g. "PCBL", "Postgres", "Sample").
  virtual std::string name() const = 0;

  /// Comparable size of the stored metadata, in count-entries — the unit
  /// of the paper's size bound B_s.
  virtual int64_t FootprintEntries() const = 0;
};

/// Adapts a Label to the CardinalityEstimator interface ("PCBL").
class LabelEstimator : public CardinalityEstimator {
 public:
  explicit LabelEstimator(Label label) : label_(std::move(label)) {}

  double EstimateCount(const Pattern& p) const override {
    return label_.EstimateCount(p);
  }
  double EstimateFullPattern(const ValueId* codes, int width) const override {
    return label_.EstimateFullPattern(codes, width);
  }
  std::string name() const override { return "PCBL"; }
  int64_t FootprintEntries() const override { return label_.size(); }

  const Label& label() const { return label_; }

 private:
  Label label_;
};

}  // namespace pcbl

#endif  // PCBL_CORE_ESTIMATOR_H_
