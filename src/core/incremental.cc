#include "core/incremental.h"

#include <utility>

#include "pattern/counter.h"
#include "pattern/service_registry.h"
#include "relation/stats.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

Result<IncrementalLabel> IncrementalLabel::Create(
    const Table& base, AttrMask s, int64_t size_bound,
    std::shared_ptr<CountingService> service) {
  const int n = base.num_attributes();
  if (n == 0) return InvalidArgumentError("table has no attributes");
  if (!s.IsSubsetOf(AttrMask::All(n))) {
    return InvalidArgumentError("attribute set exceeds the schema");
  }
  if (size_bound < 0) {
    return InvalidArgumentError("size bound must be non-negative");
  }
  IncrementalLabel label;
  label.width_ = n;
  label.attrs_ = s;
  label.s_attrs_ = s.ToIndices();
  label.attr_names_ = base.schema().names();
  label.size_bound_ = size_bound;
  label.total_rows_ = base.num_rows();

  label.dictionaries_.reserve(static_cast<size_t>(n));
  label.vc_.resize(static_cast<size_t>(n));
  label.totals_.assign(static_cast<size_t>(n), 0);
  const ValueCounts vc = ValueCounts::Compute(base);
  for (int a = 0; a < n; ++a) {
    label.dictionaries_.push_back(base.dictionary(a));  // copy, will grow
    label.vc_[static_cast<size_t>(a)] = vc.CountsFor(a);
    label.totals_[static_cast<size_t>(a)] = vc.NonNullTotal(a);
  }

  if (service != nullptr) {
    // Pointer identity is the cheap common case (a LabelSearch's own
    // service); a registry-acquired service wraps its own copy of the
    // table, so fall back to content equality — equal fingerprints imply
    // identical code spaces, which is all the append hook needs. (The
    // appended-rows check happens below, under the service lock — other
    // sessions may be appending concurrently.)
    if (&service->table() != &base &&
        FingerprintTable(service->table()) != FingerprintTable(base)) {
      return InvalidArgumentError(
          "counting service describes a different table");
    }
  }

  // The PC seed: through the dataset's service when available (a warm
  // cache — e.g. after a label search that selected `s` — answers this
  // without a table scan), else a one-shot count.
  std::shared_ptr<const GroupCounts> shared_pc;
  const GroupCounts* pc_ptr;
  GroupCounts local_pc;
  if (service != nullptr) {
    // A disabled engine is fine: the append hook still tracks the rows
    // (the engine's delta-aware scans answer exactly), it just cannot
    // serve the seed from a warm cache.
    std::lock_guard<std::mutex> lock(service->mutex());
    // Checked under the lock: a service another session already grew
    // describes more data than `base`, and this label would seed stale.
    if (service->engine().num_appended_rows() != 0) {
      return InvalidArgumentError(
          "counting service has already absorbed appended rows");
    }
    shared_pc = service->engine().PatternCounts(s);
    pc_ptr = shared_pc.get();
  } else {
    local_pc = ComputePatternCounts(base, s);
    pc_ptr = &local_pc;
  }
  const GroupCounts& pc = *pc_ptr;
  for (int64_t g = 0; g < pc.num_groups(); ++g) {
    const ValueId* key = pc.key(g);
    label.pc_.emplace(std::vector<ValueId>(key, key + pc.key_width()),
                      pc.count(g));
  }

  label.base_rows_ = label.total_rows_;
  label.base_patterns_ = static_cast<int64_t>(label.pc_.size());
  label.service_ = std::move(service);
  return label;
}

void IncrementalLabel::ApplyRow(const std::vector<ValueId>& codes) {
  ++total_rows_;
  for (int a = 0; a < width_; ++a) {
    const ValueId v = codes[static_cast<size_t>(a)];
    if (IsNull(v)) continue;
    auto& counts = vc_[static_cast<size_t>(a)];
    if (v >= counts.size()) counts.resize(v + 1, 0);
    ++counts[v];
    ++totals_[static_cast<size_t>(a)];
  }
  // The row's restriction to S, stored when it binds >= 2 attributes
  // (ComputePatternCounts semantics).
  if (s_attrs_.size() < 2) return;
  std::vector<ValueId> key(s_attrs_.size());
  int arity = 0;
  for (size_t j = 0; j < s_attrs_.size(); ++j) {
    key[j] = codes[static_cast<size_t>(s_attrs_[j])];
    if (!IsNull(key[j])) ++arity;
  }
  if (arity >= 2) ++pc_[std::move(key)];
}

Status IncrementalLabel::AppendRow(const std::vector<std::string>& values) {
  if (static_cast<int>(values.size()) != width_) {
    return InvalidArgumentError(
        StrCat("row has ", values.size(), " values, schema has ", width_));
  }
  std::vector<ValueId> codes(static_cast<size_t>(width_), kNullValue);
  for (int a = 0; a < width_; ++a) {
    const std::string& v = values[static_cast<size_t>(a)];
    if (v.empty() || v == "NULL") continue;  // TableBuilder::AddRow semantics
    codes[static_cast<size_t>(a)] = dictionaries_[static_cast<size_t>(a)]
                                        .Intern(v);
  }
  ApplyRow(codes);
  // Invalidate-or-patch hook: single-row appends take the patch arm —
  // the service folds the restriction into every cached PC set.
  if (service_ != nullptr) service_->AppendRow(codes);
  return Status::Ok();
}

Status IncrementalLabel::AppendTable(const Table& delta) {
  if (delta.num_attributes() != width_) {
    return InvalidArgumentError("delta schema width differs");
  }
  for (int a = 0; a < width_; ++a) {
    if (delta.schema().name(a) != attr_names_[static_cast<size_t>(a)]) {
      return InvalidArgumentError(
          StrCat("delta attribute ", a, " is \"", delta.schema().name(a),
                 "\", expected \"", attr_names_[static_cast<size_t>(a)],
                 "\""));
    }
  }
  // Remap delta codes to our codes, interning fresh values lazily —
  // only values a delta row actually uses, in row-major first-seen
  // order, exactly as a TableBuilder rebuild would assign them (a
  // delta's dictionary may carry values its rows never use, e.g. after
  // FilterRows; interning those would shift fresh ids vs. the rebuild).
  std::vector<std::vector<ValueId>> remap(static_cast<size_t>(width_));
  for (int a = 0; a < width_; ++a) {
    remap[static_cast<size_t>(a)].assign(delta.dictionary(a).size(),
                                         kNullValue);  // = not yet mapped
  }
  std::vector<ValueId> codes(static_cast<size_t>(width_));
  std::vector<std::vector<ValueId>> notified;
  if (service_ != nullptr) {
    notified.reserve(static_cast<size_t>(delta.num_rows()));
  }
  for (int64_t r = 0; r < delta.num_rows(); ++r) {
    for (int a = 0; a < width_; ++a) {
      const ValueId v = delta.value(r, a);
      if (IsNull(v)) {
        codes[static_cast<size_t>(a)] = kNullValue;
        continue;
      }
      ValueId& mapped = remap[static_cast<size_t>(a)][v];
      if (IsNull(mapped)) {
        mapped = dictionaries_[static_cast<size_t>(a)].Intern(
            delta.dictionary(a).GetString(v));
      }
      codes[static_cast<size_t>(a)] = mapped;
    }
    ApplyRow(codes);
    if (service_ != nullptr) notified.push_back(codes);
  }
  // Bulk appends go through the batched hook, which invalidates instead
  // of patching when repairing every cached entry would cost more than
  // the rescans it saves.
  if (service_ != nullptr && !notified.empty()) {
    service_->AppendRows(notified);
  }
  return Status::Ok();
}

double IncrementalLabel::RestrictedCount(
    const std::vector<ValueId>& bound) const {
  bool all_bound = true;
  bool none_bound = true;
  for (int attr : s_attrs_) {
    if (IsNull(bound[static_cast<size_t>(attr)])) {
      all_bound = false;
    } else {
      none_bound = false;
    }
  }
  if (none_bound) return static_cast<double>(total_rows_);
  if (all_bound) {
    std::vector<ValueId> key(s_attrs_.size());
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      key[j] = bound[static_cast<size_t>(s_attrs_[j])];
    }
    const auto it = pc_.find(key);
    return it == pc_.end() ? 0.0 : static_cast<double>(it->second);
  }
  int64_t sum = 0;
  for (const auto& [key, count] : pc_) {
    bool agrees = true;
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      const ValueId want = bound[static_cast<size_t>(s_attrs_[j])];
      if (!IsNull(want) && key[j] != want) {
        agrees = false;
        break;
      }
    }
    if (agrees) sum += count;
  }
  return static_cast<double>(sum);
}

double IncrementalLabel::EstimateCount(const Pattern& p) const {
  std::vector<ValueId> bound(static_cast<size_t>(width_), kNullValue);
  for (const PatternTerm& t : p.terms()) {
    bound[static_cast<size_t>(t.attr)] = t.value;
  }
  double est = RestrictedCount(bound);
  for (const PatternTerm& t : p.terms()) {
    if (attrs_.Test(t.attr)) continue;
    const auto& counts = vc_[static_cast<size_t>(t.attr)];
    const int64_t numer = t.value < counts.size() ? counts[t.value] : 0;
    const int64_t denom = totals_[static_cast<size_t>(t.attr)];
    est *= denom > 0 ? static_cast<double>(numer) /
                           static_cast<double>(denom)
                     : 0.0;
  }
  return est;
}

double IncrementalLabel::EstimateFullPattern(const ValueId* codes,
                                             int width) const {
  if (width != width_) {
    return CardinalityEstimator::EstimateFullPattern(codes, width);
  }
  double est;
  if (s_attrs_.empty()) {
    est = static_cast<double>(total_rows_);
  } else {
    std::vector<ValueId> key(s_attrs_.size());
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      key[j] = codes[s_attrs_[j]];
    }
    const auto it = pc_.find(key);
    est = it == pc_.end() ? 0.0 : static_cast<double>(it->second);
  }
  if (est == 0.0) return 0.0;
  for (int a = 0; a < width_; ++a) {
    if (attrs_.Test(a)) continue;
    const auto& counts = vc_[static_cast<size_t>(a)];
    const int64_t numer = codes[a] < counts.size() ? counts[codes[a]] : 0;
    const int64_t denom = totals_[static_cast<size_t>(a)];
    est *= denom > 0 ? static_cast<double>(numer) /
                           static_cast<double>(denom)
                     : 0.0;
  }
  return est;
}

LabelDrift IncrementalLabel::drift() const {
  LabelDrift d;
  d.base_rows = base_rows_;
  d.appended_rows = total_rows_ - base_rows_;
  d.base_patterns = base_patterns_;
  d.new_patterns = static_cast<int64_t>(pc_.size()) - base_patterns_;
  d.bound_exceeded = !within_bound();
  return d;
}

int64_t IncrementalLabel::ValueCount(int attr, std::string_view value) const {
  if (attr < 0 || attr >= width_) return 0;
  const ValueId code = dictionaries_[static_cast<size_t>(attr)].Lookup(value);
  if (IsNull(code)) return 0;
  const auto& counts = vc_[static_cast<size_t>(attr)];
  return code < counts.size() ? counts[code] : 0;
}

}  // namespace pcbl
