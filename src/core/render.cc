#include "core/render.h"

#include <algorithm>
#include <vector>

#include "util/str.h"

namespace pcbl {
namespace {

struct Row {
  std::string c0, c1, c2, c3;
};

void EmitRows(std::string& out, const std::vector<Row>& rows) {
  size_t w0 = 0, w1 = 0, w2 = 0, w3 = 0;
  for (const Row& r : rows) {
    w0 = std::max(w0, r.c0.size());
    w1 = std::max(w1, r.c1.size());
    w2 = std::max(w2, r.c2.size());
    w3 = std::max(w3, r.c3.size());
  }
  size_t total = w0 + w1 + w2 + w3 + 3 * 2;  // three 2-space gutters
  out += StrCat("  ", std::string(total, '-'), "\n");
  for (const Row& r : rows) {
    std::string line = "  ";
    line += r.c0;
    line.append(w0 - r.c0.size(), ' ');
    line += "  ";
    line += r.c1;
    line.append(w1 - r.c1.size(), ' ');
    line += "  ";
    line.append(w2 - r.c2.size(), ' ');  // right-align counts
    line += r.c2;
    line += "  ";
    line.append(w3 - r.c3.size(), ' ');  // right-align percents
    line += r.c3;
    out += line;
    out += "\n";
  }
}

std::string Percent(int64_t count, int64_t total) {
  if (total <= 0) return "";
  double frac = static_cast<double>(count) / static_cast<double>(total);
  if (frac >= 0.0095) return StrFormat("%.0f%%", frac * 100.0);
  return StrFormat("%.1f%%", frac * 100.0);
}

}  // namespace

std::string RenderNutritionLabel(const PortableLabel& label,
                                 const ErrorReport* error,
                                 const RenderOptions& options) {
  std::string out;
  if (!label.dataset_name.empty()) {
    out += StrCat("Dataset: ", label.dataset_name, "\n");
  }
  out += StrCat("Total size: ", WithThousandsSeparators(label.total_rows),
                "\n\n");

  // --- VC section -------------------------------------------------------
  std::vector<Row> vc_rows;
  vc_rows.push_back(Row{"Attribute", "Value", "Count", ""});
  for (size_t a = 0; a < label.attribute_names.size(); ++a) {
    auto entries = label.value_counts[a];  // copy: sorted for display
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
    size_t limit = entries.size();
    if (options.max_values_per_attribute > 0) {
      limit = std::min<size_t>(
          limit, static_cast<size_t>(options.max_values_per_attribute));
    }
    for (size_t i = 0; i < limit; ++i) {
      Row r;
      r.c0 = (i == 0) ? label.attribute_names[a] : "";
      r.c1 = entries[i].first;
      r.c2 = WithThousandsSeparators(entries[i].second);
      r.c3 = Percent(entries[i].second, label.total_rows);
      vc_rows.push_back(std::move(r));
    }
    if (limit < entries.size()) {
      vc_rows.push_back(Row{
          "", StrCat("... (", entries.size() - limit, " more values)"), "",
          ""});
    }
  }
  EmitRows(out, vc_rows);

  // --- PC section -------------------------------------------------------
  if (!label.label_attributes.empty()) {
    out += "\n";
    std::vector<std::string> names;
    for (int a : label.label_attributes) {
      names.push_back(label.attribute_names[static_cast<size_t>(a)]);
    }
    out += StrCat("Pattern counts over { ", Join(names, ", "), " }:\n");
    std::vector<Row> pc_rows;
    pc_rows.push_back(Row{"Pattern", "", "Count", ""});
    auto patterns = label.pattern_counts;  // copy: sorted for display
    std::sort(patterns.begin(), patterns.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
    size_t limit = patterns.size();
    if (options.max_pattern_rows > 0) {
      limit = std::min<size_t>(limit,
                               static_cast<size_t>(options.max_pattern_rows));
    }
    for (size_t i = 0; i < limit; ++i) {
      Row r;
      r.c0 = Join(patterns[i].first, " / ");
      r.c2 = WithThousandsSeparators(patterns[i].second);
      r.c3 = Percent(patterns[i].second, label.total_rows);
      pc_rows.push_back(std::move(r));
    }
    if (limit < patterns.size()) {
      pc_rows.push_back(Row{
          StrCat("... (", patterns.size() - limit, " more patterns)"), "",
          "", ""});
    }
    EmitRows(out, pc_rows);
  }

  // --- Error summary ----------------------------------------------------
  if (error != nullptr && options.include_error_summary) {
    out += "\n";
    std::vector<Row> err_rows;
    err_rows.push_back(
        Row{"Average Error", "",
            WithThousandsSeparators(static_cast<int64_t>(error->mean_abs)),
            Percent(static_cast<int64_t>(error->mean_abs),
                    label.total_rows)});
    err_rows.push_back(
        Row{"Maximal Error", "",
            WithThousandsSeparators(static_cast<int64_t>(error->max_abs)),
            Percent(static_cast<int64_t>(error->max_abs),
                    label.total_rows)});
    err_rows.push_back(
        Row{"Standard deviation", "",
            WithThousandsSeparators(static_cast<int64_t>(error->std_abs)),
            ""});
    EmitRows(out, err_rows);
  }
  return out;
}

}  // namespace pcbl
