#include "core/error.h"

#include <algorithm>
#include <cmath>

#include "core/pattern_set.h"
#include "util/logging.h"
#include "util/stats_accumulator.h"

namespace pcbl {

double QError(int64_t actual, double estimate) {
  PCBL_DCHECK(actual > 0) << "q-error needs positive true counts";
  // Counts are integers: an estimate below one row reads as "0 rows", and
  // the paper sets est := 1 whenever the estimation is 0 (Sec. IV-B).
  // Clamping to one row is the standard planner convention and keeps the
  // metric finite for the tiny independence products of wide patterns.
  double est = std::max(estimate, 1.0);
  double a = static_cast<double>(actual);
  return std::max(a / est, est / a);
}

ErrorReport EvaluateOverFullPatterns(const FullPatternIndex& index,
                                     const CardinalityEstimator& estimator,
                                     ErrorMode mode) {
  ErrorReport report;
  report.total = index.num_patterns();
  StatsAccumulator abs_acc;
  StatsAccumulator q_acc;
  double max_abs = 0.0;
  double max_q = 0.0;
  const int width = index.width();
  for (int64_t i = 0; i < index.num_patterns(); ++i) {
    int64_t actual = index.count(i);
    if (mode == ErrorMode::kEarlyTermination &&
        static_cast<double>(actual) < max_abs) {
      // Counts are descending; the paper's Sec. IV-C rule stops here.
      report.early_terminated = true;
      break;
    }
    double est = estimator.EstimateFullPattern(index.codes(i), width);
    double err = std::fabs(static_cast<double>(actual) - est);
    abs_acc.Add(err);
    double q = QError(actual, est);
    q_acc.Add(q);
    if (err > max_abs) max_abs = err;
    if (q > max_q) max_q = q;
  }
  report.max_abs = max_abs;
  report.mean_abs = abs_acc.mean();
  report.std_abs = abs_acc.stddev();
  report.max_q = max_q;
  report.mean_q = q_acc.mean();
  report.evaluated = abs_acc.count();
  return report;
}

ErrorReport EvaluateOverPatternSet(const PatternSet& set,
                                   const CardinalityEstimator& estimator,
                                   ErrorMode mode) {
  ErrorReport report;
  report.total = set.size();
  StatsAccumulator abs_acc;
  StatsAccumulator q_acc;
  double max_abs = 0.0;
  double max_q = 0.0;
  for (int64_t i = 0; i < set.size(); ++i) {
    int64_t actual = set.count(i);
    if (mode == ErrorMode::kEarlyTermination &&
        static_cast<double>(actual) < max_abs) {
      report.early_terminated = true;
      break;
    }
    double est = estimator.EstimateCount(set.pattern(i));
    double err = std::fabs(static_cast<double>(actual) - est);
    abs_acc.Add(err);
    if (err > max_abs) max_abs = err;
    if (actual > 0) {
      double q = QError(actual, est);
      q_acc.Add(q);
      if (q > max_q) max_q = q;
    }
  }
  report.max_abs = max_abs;
  report.mean_abs = abs_acc.mean();
  report.std_abs = abs_acc.stddev();
  report.max_q = max_q;
  report.mean_q = q_acc.mean();
  report.evaluated = abs_acc.count();
  return report;
}

double MetricValue(const ErrorReport& report, OptimizationMetric metric) {
  switch (metric) {
    case OptimizationMetric::kMaxAbsolute:
      return report.max_abs;
    case OptimizationMetric::kMeanAbsolute:
      return report.mean_abs;
    case OptimizationMetric::kMaxQError:
      return report.max_q;
    case OptimizationMetric::kMeanQError:
      return report.mean_q;
  }
  return report.max_abs;
}

const char* MetricName(OptimizationMetric metric) {
  switch (metric) {
    case OptimizationMetric::kMaxAbsolute:
      return "max-absolute";
    case OptimizationMetric::kMeanAbsolute:
      return "mean-absolute";
    case OptimizationMetric::kMaxQError:
      return "max-q";
    case OptimizationMetric::kMeanQError:
      return "mean-q";
  }
  return "max-absolute";
}

ErrorReport EvaluateOverPatterns(const std::vector<Pattern>& patterns,
                                 const std::vector<int64_t>& actuals,
                                 const CardinalityEstimator& estimator) {
  PCBL_CHECK_EQ(patterns.size(), actuals.size());
  ErrorReport report;
  report.total = static_cast<int64_t>(patterns.size());
  StatsAccumulator abs_acc;
  StatsAccumulator q_acc;
  double max_abs = 0.0;
  double max_q = 0.0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    double est = estimator.EstimateCount(patterns[i]);
    double err = std::fabs(static_cast<double>(actuals[i]) - est);
    abs_acc.Add(err);
    if (err > max_abs) max_abs = err;
    if (actuals[i] > 0) {
      double q = QError(actuals[i], est);
      q_acc.Add(q);
      if (q > max_q) max_q = q;
    }
  }
  report.max_abs = max_abs;
  report.mean_abs = abs_acc.mean();
  report.std_abs = abs_acc.stddev();
  report.max_q = max_q;
  report.mean_q = q_acc.mean();
  report.evaluated = abs_acc.count();
  return report;
}

}  // namespace pcbl
