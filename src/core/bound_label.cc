#include "core/bound_label.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

Result<BoundPortableLabel> BoundPortableLabel::Bind(const PortableLabel& label,
                                                    const Table& table) {
  BoundPortableLabel bound;
  bound.width_ = table.num_attributes();
  bound.total_rows_ = label.total_rows;

  if (label.value_counts.size() != label.attribute_names.size()) {
    return InvalidArgumentError(
        "portable label VC does not cover its attribute list");
  }

  // Label attribute position -> table attribute index.
  std::vector<int> to_table(label.attribute_names.size(), -1);
  for (size_t i = 0; i < label.attribute_names.size(); ++i) {
    auto idx = table.schema().FindAttribute(label.attribute_names[i]);
    if (!idx.ok()) {
      return NotFoundError(StrCat("label attribute \"",
                                  label.attribute_names[i],
                                  "\" not in the table schema"));
    }
    to_table[i] = *idx;
  }

  // VC: translate value strings to table codes; the denominator is the
  // label's own total per attribute (Definition 2.11 divides by label
  // counts, not by the bound table's).
  bound.vc_counts_.assign(static_cast<size_t>(bound.width_), {});
  bound.inv_totals_.assign(static_cast<size_t>(bound.width_), 0.0);
  for (size_t i = 0; i < label.value_counts.size(); ++i) {
    const int attr = to_table[i];
    auto& per_code = bound.vc_counts_[static_cast<size_t>(attr)];
    per_code.assign(static_cast<size_t>(table.DomainSize(attr)), 0);
    int64_t total = 0;
    for (const auto& [value, count] : label.value_counts[i]) {
      total += count;
      const ValueId code = table.dictionary(attr).Lookup(value);
      if (!IsNull(code)) per_code[code] = count;
    }
    bound.inv_totals_[static_cast<size_t>(attr)] =
        total > 0 ? 1.0 / static_cast<double>(total) : 0.0;
  }

  // S, in table attribute order; remember the permutation of PC columns.
  std::vector<std::pair<int, size_t>> order;  // (table attr, PC column)
  for (size_t j = 0; j < label.label_attributes.size(); ++j) {
    const int li = label.label_attributes[j];
    if (li < 0 || static_cast<size_t>(li) >= to_table.size()) {
      return InvalidArgumentError("portable label S index out of range");
    }
    order.emplace_back(to_table[static_cast<size_t>(li)], j);
  }
  std::sort(order.begin(), order.end());
  for (const auto& [attr, col] : order) {
    if (bound.attrs_.Test(attr)) {
      return InvalidArgumentError("portable label S has duplicate attributes");
    }
    bound.attrs_.Set(attr);
    bound.s_attrs_.push_back(attr);
  }

  // PC: re-encode each pattern row into table codes over s_attrs_.
  for (const auto& [values, count] : label.pattern_counts) {
    if (values.size() != order.size()) {
      return InvalidArgumentError(
          "portable label PC row arity does not match S");
    }
    std::vector<ValueId> key(order.size());
    for (size_t k = 0; k < order.size(); ++k) {
      const auto& [attr, col] = order[k];
      // Unknown values stay kNullValue: the entry can never be the exact
      // lookup target but still participates in containment sums.
      key[k] = table.dictionary(attr).Lookup(values[col]);
    }
    auto [it, inserted] = bound.pc_.emplace(std::move(key), count);
    if (!inserted) it->second += count;
    bound.pc_counts_.push_back(count);
  }
  return bound;
}

double BoundPortableLabel::RestrictedCount(
    const std::vector<ValueId>& bound) const {
  bool all_bound = true;
  bool none_bound = true;
  for (int attr : s_attrs_) {
    if (IsNull(bound[static_cast<size_t>(attr)])) {
      all_bound = false;
    } else {
      none_bound = false;
    }
  }
  if (none_bound) return static_cast<double>(total_rows_);
  if (all_bound) {
    std::vector<ValueId> key(s_attrs_.size());
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      key[j] = bound[static_cast<size_t>(s_attrs_[j])];
    }
    const auto it = pc_.find(key);
    return it == pc_.end() ? 0.0 : static_cast<double>(it->second);
  }
  // Containment: sum the entries agreeing with every bound S-attribute.
  int64_t sum = 0;
  for (const auto& [key, count] : pc_) {
    bool agrees = true;
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      const ValueId want = bound[static_cast<size_t>(s_attrs_[j])];
      if (!IsNull(want) && key[j] != want) {
        agrees = false;
        break;
      }
    }
    if (agrees) sum += count;
  }
  return static_cast<double>(sum);
}

double BoundPortableLabel::EstimateCount(const Pattern& p) const {
  std::vector<ValueId> bound(static_cast<size_t>(width_), kNullValue);
  for (const PatternTerm& t : p.terms()) {
    bound[static_cast<size_t>(t.attr)] = t.value;
  }
  double est = RestrictedCount(bound);
  for (const PatternTerm& t : p.terms()) {
    if (attrs_.Test(t.attr)) continue;
    const auto& per_code = vc_counts_[static_cast<size_t>(t.attr)];
    const int64_t numer =
        t.value < per_code.size() ? per_code[t.value] : 0;
    est *= static_cast<double>(numer) *
           inv_totals_[static_cast<size_t>(t.attr)];
  }
  return est;
}

double BoundPortableLabel::EstimateFullPattern(const ValueId* codes,
                                               int width) const {
  if (width != width_) {
    return CardinalityEstimator::EstimateFullPattern(codes, width);
  }
  double est;
  if (s_attrs_.empty()) {
    est = static_cast<double>(total_rows_);
  } else {
    std::vector<ValueId> key(s_attrs_.size());
    for (size_t j = 0; j < s_attrs_.size(); ++j) {
      key[j] = codes[s_attrs_[j]];
    }
    const auto it = pc_.find(key);
    est = it == pc_.end() ? 0.0 : static_cast<double>(it->second);
  }
  if (est == 0.0) return 0.0;
  for (int a = 0; a < width_; ++a) {
    if (attrs_.Test(a)) continue;
    const auto& per_code = vc_counts_[static_cast<size_t>(a)];
    const int64_t numer = codes[a] < per_code.size() ? per_code[codes[a]] : 0;
    est *= static_cast<double>(numer) * inv_totals_[static_cast<size_t>(a)];
  }
  return est;
}

}  // namespace pcbl
