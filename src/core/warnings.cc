#include "core/warnings.h"

#include <algorithm>
#include <cmath>

#include "util/str.h"

namespace pcbl {

namespace {

// max(x, 1) — the q-error-style clamp used for deviation ratios.
double ClampOne(double x) { return x < 1.0 ? 1.0 : x; }

double DeviationRatio(double estimated, double independence) {
  const double a = ClampOne(estimated);
  const double b = ClampOne(independence);
  return a > b ? a / b : b / a;
}

}  // namespace

const char* WarningKindName(WarningKind kind) {
  switch (kind) {
    case WarningKind::kUnderrepresented:
      return "underrepresented";
    case WarningKind::kSkewed:
      return "skewed";
    case WarningKind::kCorrelated:
      return "correlated";
  }
  return "?";
}

std::string FitnessWarning::GroupString() const {
  std::vector<std::string> parts;
  parts.reserve(group.size());
  for (const auto& [attr, value] : group) {
    parts.push_back(StrCat(attr, "=", value));
  }
  return Join(parts, ", ");
}

Result<std::vector<FitnessWarning>> AuditLabel(
    const PortableLabel& label, std::vector<std::string> attributes,
    const AuditOptions& options, const PatternEstimator& estimator) {
  if (options.max_arity < 1) {
    return InvalidArgumentError("max_arity must be at least 1");
  }
  if (attributes.empty()) attributes = label.attribute_names;

  // Resolve names to label indices.
  std::vector<int> attr_idx;
  attr_idx.reserve(attributes.size());
  for (const std::string& name : attributes) {
    int found = -1;
    for (size_t i = 0; i < label.attribute_names.size(); ++i) {
      if (label.attribute_names[i] == name) {
        found = static_cast<int>(i);
        break;
      }
    }
    if (found < 0) {
      return NotFoundError(
          StrCat("attribute \"", name, "\" is not in the label"));
    }
    attr_idx.push_back(found);
  }
  std::sort(attr_idx.begin(), attr_idx.end());
  if (std::adjacent_find(attr_idx.begin(), attr_idx.end()) !=
      attr_idx.end()) {
    return InvalidArgumentError("duplicate attribute in the audit list");
  }

  const double total = static_cast<double>(label.total_rows);
  const double skew_rows = options.max_group_share * total;
  std::vector<FitnessWarning> underrepresented;
  std::vector<FitnessWarning> skewed;
  std::vector<FitnessWarning> correlated;

  // Enumerate attribute combinations of arity 1..max_arity via bitmask
  // over the (small) audit list.
  const int m = static_cast<int>(attr_idx.size());
  if (m > 30) return InvalidArgumentError("audit list too long (> 30)");
  for (uint32_t bits = 1; bits < (1u << m); ++bits) {
    const int arity = __builtin_popcount(bits);
    if (arity > options.max_arity) continue;
    std::vector<int> combo;  // label attribute indices
    for (int j = 0; j < m; ++j) {
      if ((bits >> j) & 1u) combo.push_back(attr_idx[static_cast<size_t>(j)]);
    }
    // Cross-product size guard.
    int64_t groups = 1;
    bool skip = false;
    for (int a : combo) {
      const auto& vc = label.value_counts[static_cast<size_t>(a)];
      if (vc.empty()) {
        skip = true;
        break;
      }
      if (groups > options.max_groups_per_combination /
                       static_cast<int64_t>(vc.size())) {
        skip = true;
        break;
      }
      groups *= static_cast<int64_t>(vc.size());
    }
    if (skip) continue;

    // The per-attribute marginal totals are loop-invariant across the
    // value odometer below; compute them once per combination.
    std::vector<int64_t> attr_totals(combo.size(), 0);
    for (size_t j = 0; j < combo.size(); ++j) {
      const auto& vc = label.value_counts[static_cast<size_t>(combo[j])];
      for (const auto& [v, c] : vc) {
        (void)v;
        attr_totals[j] += c;
      }
    }

    // Odometer over the value combinations.
    std::vector<size_t> pos(combo.size(), 0);
    for (;;) {
      std::vector<std::pair<std::string, std::string>> group;
      group.reserve(combo.size());
      double independence = total;
      for (size_t j = 0; j < combo.size(); ++j) {
        const int a = combo[j];
        const auto& vc = label.value_counts[static_cast<size_t>(a)];
        const auto& [value, count] = vc[pos[j]];
        group.emplace_back(label.attribute_names[static_cast<size_t>(a)],
                           value);
        independence *= attr_totals[j] > 0
                            ? static_cast<double>(count) /
                                  static_cast<double>(attr_totals[j])
                            : 0.0;
      }
      auto est = estimator ? estimator(group) : label.EstimateCount(group);
      if (!est.ok()) return est.status();

      if (*est < static_cast<double>(options.min_group_count)) {
        FitnessWarning w;
        w.kind = WarningKind::kUnderrepresented;
        w.group = group;
        w.estimated = *est;
        w.reference = static_cast<double>(options.min_group_count);
        underrepresented.push_back(std::move(w));
      } else if (*est > skew_rows) {
        FitnessWarning w;
        w.kind = WarningKind::kSkewed;
        w.group = group;
        w.estimated = *est;
        w.reference = skew_rows;
        skewed.push_back(std::move(w));
      }
      if (combo.size() == 2 &&
          DeviationRatio(*est, independence) >= options.correlation_factor) {
        FitnessWarning w;
        w.kind = WarningKind::kCorrelated;
        w.group = group;
        w.estimated = *est;
        w.reference = independence;
        correlated.push_back(std::move(w));
      }

      // Advance the odometer.
      size_t j = 0;
      for (; j < pos.size(); ++j) {
        if (++pos[j] <
            label.value_counts[static_cast<size_t>(combo[j])].size()) {
          break;
        }
        pos[j] = 0;
      }
      if (j == pos.size()) break;
    }
  }

  std::sort(underrepresented.begin(), underrepresented.end(),
            [](const FitnessWarning& a, const FitnessWarning& b) {
              return a.estimated < b.estimated;
            });
  std::sort(skewed.begin(), skewed.end(),
            [](const FitnessWarning& a, const FitnessWarning& b) {
              return a.estimated > b.estimated;
            });
  std::sort(correlated.begin(), correlated.end(),
            [](const FitnessWarning& a, const FitnessWarning& b) {
              return DeviationRatio(a.estimated, a.reference) >
                     DeviationRatio(b.estimated, b.reference);
            });

  std::vector<FitnessWarning> out;
  out.reserve(underrepresented.size() + skewed.size() + correlated.size());
  for (auto* bucket : {&underrepresented, &skewed, &correlated}) {
    for (FitnessWarning& w : *bucket) out.push_back(std::move(w));
  }
  return out;
}

}  // namespace pcbl
