#include "core/multi_label.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace pcbl {

MultiLabelEstimator::MultiLabelEstimator(std::vector<Label> labels,
                                         CombineStrategy strategy)
    : labels_(std::move(labels)), strategy_(strategy) {
  PCBL_CHECK(!labels_.empty()) << "MultiLabelEstimator needs >= 1 label";
}

size_t MultiLabelEstimator::PickLabel(AttrMask pattern_attrs) const {
  size_t best = 0;
  int best_overlap = -1;
  int64_t best_size = -1;
  for (size_t i = 0; i < labels_.size(); ++i) {
    int overlap =
        labels_[i].attributes().Intersect(pattern_attrs).Count();
    int64_t size = labels_[i].size();
    if (overlap > best_overlap ||
        (overlap == best_overlap && size > best_size)) {
      best = i;
      best_overlap = overlap;
      best_size = size;
    }
  }
  return best;
}

double MultiLabelEstimator::EstimateFactorized(const Pattern& p) const {
  const Label& first = labels_[0];
  const double total = static_cast<double>(first.total_rows());
  if (p.empty() || total <= 0.0) return total;
  double est = total;
  AttrMask uncovered = p.attributes();
  // Greedy disjoint cover: the label with the largest still-uncovered
  // overlap claims that block; repeat until no label adds coverage.
  while (!uncovered.empty()) {
    size_t best = 0;
    int best_overlap = 0;
    for (size_t i = 0; i < labels_.size(); ++i) {
      const int overlap =
          labels_[i].attributes().Intersect(uncovered).Count();
      if (overlap > best_overlap) {
        best = i;
        best_overlap = overlap;
      }
    }
    if (best_overlap == 0) break;
    const AttrMask block =
        labels_[best].attributes().Intersect(uncovered);
    const double block_count = static_cast<double>(
        labels_[best].RestrictedCount(p.Restrict(block)));
    if (block_count <= 0.0) return 0.0;
    est *= block_count / total;
    uncovered = uncovered.Minus(block);
  }
  // Whatever no label covers contributes its VC factor, exactly as the
  // single-label estimation function treats attributes outside S.
  for (const PatternTerm& t : p.terms()) {
    if (!uncovered.Test(t.attr)) continue;
    const ValueCounts& vc = first.value_counts();
    const int64_t denom = vc.NonNullTotal(t.attr);
    est *= denom > 0 ? static_cast<double>(vc.Count(t.attr, t.value)) /
                           static_cast<double>(denom)
                     : 0.0;
  }
  return est;
}

double MultiLabelEstimator::EstimateCount(const Pattern& p) const {
  switch (strategy_) {
    case CombineStrategy::kMaxOverlap:
      return labels_[PickLabel(p.attributes())].EstimateCount(p);
    case CombineStrategy::kFactorized:
      return EstimateFactorized(p);
    case CombineStrategy::kGeometricMean: {
      double log_sum = 0.0;
      for (const Label& l : labels_) {
        double est = l.EstimateCount(p);
        if (est <= 0.0) return 0.0;
        log_sum += std::log(est);
      }
      return std::exp(log_sum / static_cast<double>(labels_.size()));
    }
    case CombineStrategy::kMedian: {
      std::vector<double> ests;
      ests.reserve(labels_.size());
      for (const Label& l : labels_) ests.push_back(l.EstimateCount(p));
      std::sort(ests.begin(), ests.end());
      size_t n = ests.size();
      return n % 2 == 1 ? ests[n / 2]
                        : 0.5 * (ests[n / 2 - 1] + ests[n / 2]);
    }
  }
  return 0.0;
}

double MultiLabelEstimator::EstimateFullPattern(const ValueId* codes,
                                                int width) const {
  switch (strategy_) {
    case CombineStrategy::kMaxOverlap:
      // Full patterns bind every attribute, so overlap == |S_i|; the
      // widest label wins.
      return labels_[PickLabel(AttrMask::All(width))].EstimateFullPattern(
          codes, width);
    case CombineStrategy::kFactorized: {
      std::vector<PatternTerm> terms;
      terms.reserve(static_cast<size_t>(width));
      for (int a = 0; a < width; ++a) terms.push_back({a, codes[a]});
      auto p = Pattern::Create(std::move(terms));
      PCBL_DCHECK(p.ok());
      return EstimateFactorized(*p);
    }
    case CombineStrategy::kGeometricMean: {
      double log_sum = 0.0;
      for (const Label& l : labels_) {
        double est = l.EstimateFullPattern(codes, width);
        if (est <= 0.0) return 0.0;
        log_sum += std::log(est);
      }
      return std::exp(log_sum / static_cast<double>(labels_.size()));
    }
    case CombineStrategy::kMedian: {
      std::vector<double> ests;
      ests.reserve(labels_.size());
      for (const Label& l : labels_) {
        ests.push_back(l.EstimateFullPattern(codes, width));
      }
      std::sort(ests.begin(), ests.end());
      size_t n = ests.size();
      return n % 2 == 1 ? ests[n / 2]
                        : 0.5 * (ests[n / 2 - 1] + ests[n / 2]);
    }
  }
  return 0.0;
}

int64_t MultiLabelEstimator::FootprintEntries() const {
  int64_t total = 0;
  for (const Label& l : labels_) total += l.size();
  return total;
}

Result<MultiLabelResult> SearchLabelSet(const Table& table,
                                        const MultiSearchOptions& options) {
  if (options.total_bound < 1) {
    return InvalidArgumentError("total_bound must be >= 1");
  }
  if (options.max_labels < 1) {
    return InvalidArgumentError("max_labels must be >= 1");
  }

  LabelSearch search(table);
  const FullPatternIndex& patterns = search.full_patterns();

  // Plan A: a single label with the whole budget (the paper's setting).
  SearchOptions single_options;
  single_options.size_bound = options.total_bound;
  SearchResult single = search.TopDown(single_options);

  MultiLabelResult best;
  best.label_attrs.push_back(single.best_attrs);
  best.labels.push_back(single.label);
  best.total_size = single.label.size();
  best.error = single.error;
  if (options.max_labels == 1) return best;

  // Plan B: seed with the optimum of an even budget split, then greedily
  // add candidate labels (from that search's surviving candidate set)
  // while budget remains and the combined max error improves. The split
  // relaxes from max_labels-way down to 2-way: a k-way split can be
  // infeasible (no label fits total/k) while a coarser one still is.
  SearchResult seed;
  bool have_seed = false;
  for (int k = options.max_labels; k >= 2 && !have_seed; --k) {
    SearchOptions seed_options;
    seed_options.size_bound =
        std::max<int64_t>(1, options.total_bound / k);
    seed_options.record_candidates = true;
    seed = search.TopDown(seed_options);
    have_seed = !seed.best_attrs.empty();
  }
  if (!have_seed) return best;  // nothing fits any split
  auto vc = seed.label.shared_value_counts();

  // Bound the greedy pool: strongest single-label candidates first.
  std::vector<CandidateInfo> pool = seed.candidates;
  std::sort(pool.begin(), pool.end(),
            [](const CandidateInfo& a, const CandidateInfo& b) {
              return a.max_error < b.max_error;
            });
  if (options.max_pool > 0 &&
      pool.size() > static_cast<size_t>(options.max_pool)) {
    pool.resize(static_cast<size_t>(options.max_pool));
  }

  MultiLabelResult plan_b;
  plan_b.label_attrs.push_back(seed.best_attrs);
  plan_b.labels.push_back(seed.label);
  plan_b.total_size = seed.label.size();
  plan_b.error = seed.error;
  int64_t remaining = options.total_bound - seed.label.size();

  for (int round = 1; round < options.max_labels && remaining > 0;
       ++round) {
    double best_metric = plan_b.error.max_abs;
    AttrMask chosen;
    bool improved = false;
    for (const CandidateInfo& c : pool) {
      if (c.label_size > remaining || c.label_size <= 0) continue;
      bool already_used = false;
      for (AttrMask used : plan_b.label_attrs) {
        if (used == c.attrs) {
          already_used = true;
          break;
        }
      }
      if (already_used) continue;
      std::vector<Label> trial = plan_b.labels;
      trial.push_back(Label::Build(table, c.attrs, vc));
      MultiLabelEstimator estimator(std::move(trial), options.strategy);
      ErrorReport report = EvaluateOverFullPatterns(
          patterns, estimator, ErrorMode::kEarlyTermination);
      if (report.max_abs < best_metric) {
        best_metric = report.max_abs;
        chosen = c.attrs;
        improved = true;
      }
    }
    if (!improved) break;
    plan_b.labels.push_back(Label::Build(table, chosen, vc));
    plan_b.label_attrs.push_back(chosen);
    remaining -= plan_b.labels.back().size();
    plan_b.total_size += plan_b.labels.back().size();
    MultiLabelEstimator combined(plan_b.labels, options.strategy);
    plan_b.error = EvaluateOverFullPatterns(patterns, combined,
                                            ErrorMode::kExact);
  }

  // Certify and pick the better plan (ties favour the simpler single
  // label).
  if (plan_b.labels.size() > 1 &&
      plan_b.error.max_abs < best.error.max_abs) {
    return plan_b;
  }
  return best;
}

}  // namespace pcbl
