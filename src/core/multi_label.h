// Multi-label estimation — the extension the paper's conclusion sketches
// ("More complex approaches could consider overlapping combinations of
// patterns, derive best estimates from multiple labels...", Sec. II-C /
// VI).
//
// A MultiLabelEstimator holds several labels of the same dataset and
// combines their per-pattern estimates. SearchLabelSet() greedily spends a
// total size budget across up to `max_labels` labels: the first label is
// Algorithm 1's optimum; each further label is the within-budget candidate
// that most reduces the combined error. The ablation bench
// (bench_ablation_multilabel) measures when splitting one budget across
// two labels beats a single larger label.
#ifndef PCBL_CORE_MULTI_LABEL_H_
#define PCBL_CORE_MULTI_LABEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/estimator.h"
#include "core/label.h"
#include "core/search.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// How estimates from multiple labels are combined.
enum class CombineStrategy {
  /// Use the label whose attribute set overlaps Attr(p) the most (fewest
  /// independence factors); ties break toward the larger label.
  kMaxOverlap,
  /// Geometric mean of all labels' estimates (zeros propagate).
  kGeometricMean,
  /// Median of all labels' estimates.
  kMedian,
  /// Cover Attr(p) with disjoint blocks, greedily assigning each label
  /// the still-uncovered attributes it knows, then multiply block
  /// selectivities (each block's restricted count over |D|) with VC
  /// factors for whatever no label covers. The only strategy that
  /// *composes* joint information from several labels — with two labels
  /// over disjoint correlated cliques it estimates both cliques jointly,
  /// where the others can use at most one (see bench_ablation_multilabel's
  /// TwoClique section).
  kFactorized,
};

/// Combines several labels of the same dataset into one estimator.
class MultiLabelEstimator : public CardinalityEstimator {
 public:
  /// At least one label is required.
  MultiLabelEstimator(std::vector<Label> labels, CombineStrategy strategy);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "PCBL-multi"; }

  /// Σ |PC_i|.
  int64_t FootprintEntries() const override;

  const std::vector<Label>& labels() const { return labels_; }
  CombineStrategy strategy() const { return strategy_; }

 private:
  // Index of the label kMaxOverlap picks for this attribute set.
  size_t PickLabel(AttrMask pattern_attrs) const;

  // kFactorized: |D| * ∏ block selectivities * ∏ uncovered VC factors.
  double EstimateFactorized(const Pattern& p) const;

  std::vector<Label> labels_;
  CombineStrategy strategy_;
};

/// Outcome of the greedy label-set search.
struct MultiLabelResult {
  /// Attribute sets of the chosen labels, in selection order.
  std::vector<AttrMask> label_attrs;
  /// The combined estimator.
  std::vector<Label> labels;
  /// Exact combined error over P_A.
  ErrorReport error;
  /// Σ |PC_i| actually spent.
  int64_t total_size = 0;
};

/// Greedy multi-label search options.
struct MultiSearchOptions {
  /// Total size budget across all labels.
  int64_t total_bound = 100;
  /// Maximum number of labels.
  int max_labels = 2;
  CombineStrategy strategy = CombineStrategy::kMaxOverlap;
  /// Per-round cap on the candidate pool the greedy step evaluates (the
  /// best candidates by their single-label error are tried first).
  int max_pool = 200;
};

/// Greedily selects up to max_labels labels within the total budget.
/// Returns at least one label (Algorithm 1's optimum for the full budget
/// when splitting does not help).
Result<MultiLabelResult> SearchLabelSet(const Table& table,
                                        const MultiSearchOptions& options);

}  // namespace pcbl

#endif  // PCBL_CORE_MULTI_LABEL_H_
