// Optimal-label search (Sec. III).
//
// Given D, a pattern set P (here: P_A via FullPatternIndex) and a size
// bound B_s, find S minimizing Err(L_S(D), P) subject to |P_S| <= B_s
// (Definition 2.15). The decision version is NP-hard (Theorem 2.17), so
// the paper gives:
//
//  * NaiveSearch  — level-wise enumeration of all attribute subsets of
//    size 2, 3, ...; stops after the first level where every subset's
//    label exceeds the bound (Sec. III, first paragraph).
//  * TopDownSearch — Algorithm 1: a top-down lattice traversal driven by
//    gen(S) (Definition 3.5) that only expands within-budget subsets,
//    prunes dominated parents from the candidate set (Proposition 3.2),
//    and evaluates the error only on the surviving candidates.
//
// Both pick the minimal-max-error candidate; ties break toward the smaller
// label, then the lexicographically smaller attribute set, so the two
// algorithms are deterministically comparable.
#ifndef PCBL_CORE_SEARCH_H_
#define PCBL_CORE_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/error.h"
#include "core/label.h"
#include "core/pattern_set.h"
#include "pattern/counting_engine.h"
#include "pattern/counting_service.h"
#include "pattern/full_pattern_index.h"
#include "relation/stats.h"
#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// Tuning knobs of the label search.
struct SearchOptions {
  /// B_s: maximal label size |PC|.
  int64_t size_bound = 100;

  /// Error-scan mode used while ranking candidates. The paper uses the
  /// early-termination scan (Sec. IV-C); the final reported label is always
  /// re-evaluated exactly. Ignored (exact is used) when `metric` is not
  /// kMaxAbsolute — the early cut is only sound for the max-abs scan.
  ErrorMode candidate_error_mode = ErrorMode::kEarlyTermination;

  /// The scalar the search minimizes (Definition 2.15 uses the maximal
  /// absolute error; Sec. II-B notes q-error works identically).
  OptimizationMetric metric = OptimizationMetric::kMaxAbsolute;

  /// Record per-candidate sizes/errors in SearchResult::candidates.
  bool record_candidates = false;

  /// Worker threads for the candidate-sizing and candidate-ranking phases
  /// (independent read-only work over the immutable table). 1 = serial.
  /// The result is bit-identical for any thread count; only wall-clock
  /// changes. See bench_ablation_parallel and
  /// bench_micro_counting_engine.
  int num_threads = 1;

  /// Candidate sizing goes through the CountingEngine: lattice levels are
  /// sized in parallel batches, within-bound PC sets are memoized and
  /// reused by the ranking phase (and rolled up where possible) instead
  /// of rescanning the table per subset. Disabling reverts to the serial
  /// one-shot counters; results are byte-identical either way.
  bool use_counting_engine = true;

  /// Submit sizing waves to the service's wave scheduler instead of
  /// holding the service mutex for the whole search: concurrent searches
  /// over one service then merge their in-flight waves into single
  /// deduped engine batches and rank concurrently, instead of queueing
  /// whole searches behind each other (see docs/CONCURRENCY.md). Results
  /// are byte-identical either way — `false` is the serialized reference
  /// arm of the differential harness. Appends are excluded for the whole
  /// search in both modes (admission gate vs. mutex).
  bool use_wave_scheduler = true;

  /// Memoization budget of the counting engine, in cached group entries
  /// summed over all cached PC sets (0 disables memoization; batched
  /// sizing still applies). See CountingEngineOptions::cache_budget.
  int64_t counting_cache_budget = int64_t{1} << 20;

  /// Minimum rows per morsel when an exact packed scan splits one subset
  /// across threads (<= 0 disables intra-subset parallelism). Results are
  /// byte-identical for any value. See
  /// CountingEngineOptions::min_rows_per_morsel.
  int64_t min_rows_per_morsel = 32768;

  /// Abort candidate generation after this many seconds (0 = unlimited)
  /// and fall through to ranking whatever was collected; SearchStats::
  /// timed_out is set. Mirrors the paper's 30-minute cap on the naive
  /// algorithm (Sec. IV-C).
  double time_limit_seconds = 0.0;
};

/// Counters describing the work one search performed (Figs. 6-9).
struct SearchStats {
  /// Attribute subsets whose label size was computed ("# cands generated"
  /// in Fig. 9 — every subset the algorithm examined).
  int64_t subsets_examined = 0;
  /// Subsets whose label fit within the bound.
  int64_t within_bound = 0;
  /// Labels whose error was evaluated (the final candidate set).
  int64_t error_evaluations = 0;
  /// Total patterns touched across all error evaluations.
  int64_t patterns_scanned = 0;
  /// Levels fully enumerated (naive only).
  int levels_completed = 0;
  /// Wall-clock seconds: total, candidate generation, error ranking.
  double total_seconds = 0.0;
  double candidate_seconds = 0.0;
  double error_eval_seconds = 0.0;
  /// True when candidate generation hit SearchOptions::time_limit_seconds.
  bool timed_out = false;
  /// Counting-engine observability (cache hits, rollups, direct scans).
  /// With the wave scheduler these are the *service-global* counters at
  /// the time the search finished — concurrent queries' work included —
  /// since the engine is shared mid-search by design.
  CountingEngineStats counting;
};

/// One surviving candidate (for ablation/debugging output).
struct CandidateInfo {
  AttrMask attrs;
  int64_t label_size = 0;
  /// Value of SearchOptions::metric for this candidate (max absolute
  /// error under the default metric).
  double max_error = 0.0;
};

/// Outcome of a search.
struct SearchResult {
  /// Arg-min attribute set; empty when no subset of size >= 2 fits the
  /// bound (the label then degenerates to the independence estimator).
  AttrMask best_attrs;
  /// The label built on best_attrs.
  Label label;
  /// Exact error report of `label` over P_A.
  ErrorReport error;
  SearchStats stats;
  /// Present when SearchOptions::record_candidates is set.
  std::vector<CandidateInfo> candidates;
};

/// Shared context for running searches over one dataset: the table, its VC
/// set, the evaluation pattern set P_A, and the dataset's CountingService.
/// Construct once, search many times (the figure harness sweeps bounds
/// this way) — the service keeps candidate PC sets warm across searches,
/// so a repeated or refined query sizes its candidates from the cache
/// instead of rescanning the table.
///
/// This is the *low-level engine* behind the public API: pcbl::api's
/// Dataset/Session (api/session.h) wire the registry-shared service,
/// the async executor, central option validation, and the append-aware
/// VC / P_A maintenance for you — prefer them in new code and reach for
/// LabelSearch directly only when you need this exact control surface.
class LabelSearch {
 public:
  /// Builds VC and P_A eagerly (one scan + one sort).
  explicit LabelSearch(const Table& table);

  /// Builds VC / P_A but sizes through `service` — e.g. the shared
  /// service of ServiceRegistry::Global().Acquire(table), so concurrent
  /// searches over content-equal tables share one warm cache. The
  /// service must describe a table content-equal to `table` (equal
  /// fingerprints imply interchangeable code spaces).
  LabelSearch(const Table& table, std::shared_ptr<CountingService> service);

  /// Reuses precomputed VC / P_A (they must describe `table`). When
  /// `service` is supplied it is adopted as-is (the registry-shared
  /// form); otherwise a private service is built over `table`.
  LabelSearch(const Table& table,
              std::shared_ptr<const ValueCounts> vc,
              std::shared_ptr<const FullPatternIndex> patterns,
              std::shared_ptr<CountingService> service = nullptr);

  /// Append-aware mode: replaces VC / P_A with instances maintained over
  /// the service's *extended* dataset (base table + rows appended
  /// through the service hook) and records the row count they describe.
  /// Searches then run against the extended data instead of refusing:
  /// Naive/TopDown check that the engine holds exactly `described_rows`
  /// rows, and the ranking phase materializes every candidate PC set
  /// through the delta-aware engine instead of rescanning the base
  /// table, so the certified label is byte-identical to a from-scratch
  /// search over the rebuilt extended table (asserted by the API
  /// conformance suite). api::Session maintains this state
  /// incrementally — prefer it over calling this directly.
  void SetExtendedState(std::shared_ptr<const ValueCounts> vc,
                        std::shared_ptr<const FullPatternIndex> patterns,
                        int64_t described_rows);

  /// The dataset-scoped counting service the searches size through.
  /// Share it (SetCountingService) to keep one warm cache across several
  /// LabelSearch instances over the same table.
  std::shared_ptr<CountingService> counting_service() const {
    return service_;
  }
  void SetCountingService(std::shared_ptr<CountingService> service) {
    PCBL_CHECK(service != nullptr);
    service_ = std::move(service);
  }

  /// Drops the warm cache (e.g. to benchmark cold searches).
  void InvalidateCountingCache() const { service_->Invalidate(); }

  /// Ranks candidates against an explicit pattern set instead of P_A —
  /// Definition 2.15's "patterns that include only sensitive attributes"
  /// use case. The final ErrorReport is then over `patterns` too.
  /// `described_rows` is the row count the set's counts describe (-1 =
  /// the base table's): a set built for extended data must match
  /// SetExtendedState's described_rows — checked at search entry, so a
  /// base-table set can never silently rank an extended-data search.
  void SetEvaluationPatterns(std::shared_ptr<const PatternSet> patterns,
                             int64_t described_rows = -1) {
    eval_patterns_ = std::move(patterns);
    eval_patterns_rows_ = described_rows;
  }

  /// The naive level-wise algorithm (Sec. III). Self-admitting: enters
  /// the service through the admission gate and rides the wave scheduler
  /// (SearchOptions::use_wave_scheduler, the default), or locks the
  /// service mutex for the whole search (the serialized reference arm).
  SearchResult Naive(const SearchOptions& options) const;

  /// Algorithm 1, the optimized top-down heuristic.
  SearchResult TopDown(const SearchOptions& options) const;

  /// Low-level variants that assume the caller already holds
  /// service->mutex() for the whole search — the serialized discipline
  /// api::Session's query executor uses when the wave scheduler is off,
  /// so the engine state it validated against its VC / P_A snapshot
  /// cannot shift between validation and the search. Everything else is
  /// identical to Naive/TopDown with use_wave_scheduler = false.
  SearchResult NaiveLocked(const SearchOptions& options) const;
  SearchResult TopDownLocked(const SearchOptions& options) const;

  /// Wave-scheduled variants that assume the caller already holds a
  /// CountingService::QueryAdmission (shared gate) on the service —
  /// api::Session's query executor does. Sizing waves are submitted to
  /// the scheduler (merging with concurrent queries' waves), the ranking
  /// phase runs on the search's own memo view of the returned PC-set
  /// handles, and nothing holds the service mutex across waves. Results
  /// are byte-identical to the Locked forms.
  SearchResult NaiveScheduled(const SearchOptions& options) const;
  SearchResult TopDownScheduled(const SearchOptions& options) const;

  const Table& table() const { return *table_; }
  const ValueCounts& value_counts() const { return *vc_; }
  const FullPatternIndex& full_patterns() const { return *patterns_; }

  // How a search talks to the counting layer: the serialized backend
  // calls the engine directly (caller holds the service mutex for the
  // whole search), the scheduled backend submits waves to the service's
  // scheduler (caller holds a shared QueryAdmission). Both memoize the
  // PC-set handles their waves return, so the ranking phase builds
  // labels from the search's own snapshot instead of probing a cache
  // that concurrent queries may be mutating. Implementation detail —
  // public only so the concrete backends in search.cc can derive.
  class Backend;

 private:
  // Shared algorithm bodies: NaiveLocked/NaiveScheduled etc. are
  // entry-discipline wrappers around these.
  SearchResult NaiveImpl(const SearchOptions& options,
                         Backend& backend) const;
  SearchResult TopDownImpl(const SearchOptions& options,
                           Backend& backend) const;

  // Ranks `cands` by (exactness-ordered) max error and assembles the
  // SearchResult; shared tail of both algorithms. `backend` supplies the
  // memoized PC sets so candidate labels skip the recount; in
  // append-aware mode (described_rows_ beyond the base table) it
  // additionally materializes every candidate against the extended data.
  SearchResult Finish(const std::vector<AttrMask>& cands,
                      const SearchOptions& options, SearchStats stats,
                      double candidate_seconds, Backend& backend) const;

  // Entry checks shared by NaiveLocked/TopDownLocked: the engine must
  // hold exactly the rows vc_/patterns_ describe.
  void CheckDescribedRows() const;

  // True when vc_/patterns_ describe data beyond the base table.
  bool extended() const { return described_rows_ != table_->num_rows(); }

  // Evaluates one estimator against the active pattern set (P_A or the
  // user-supplied one).
  ErrorReport Evaluate(const CardinalityEstimator& estimator,
                       ErrorMode mode) const;

  const Table* table_;
  std::shared_ptr<const ValueCounts> vc_;
  std::shared_ptr<const FullPatternIndex> patterns_;
  std::shared_ptr<const PatternSet> eval_patterns_;  // optional
  // Rows eval_patterns_'s counts describe; -1 = the base table's.
  int64_t eval_patterns_rows_ = -1;
  std::shared_ptr<CountingService> service_;
  // Rows vc_/patterns_ describe: the base table's until SetExtendedState.
  int64_t described_rows_ = 0;
};

}  // namespace pcbl

#endif  // PCBL_CORE_SEARCH_H_
