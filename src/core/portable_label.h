// PortableLabel: a self-contained, table-independent form of a label.
//
// The paper envisages labels shipped as dataset metadata ("we envisage this
// information being made available as meta-data with each data set",
// Sec. I). A PortableLabel carries attribute names, the VC set, and the PC
// set as strings + counts, so a consumer can estimate pattern counts
// without access to the data. Serializes to JSON (human-inspectable) and
// to a compact binary format.
#ifndef PCBL_CORE_PORTABLE_LABEL_H_
#define PCBL_CORE_PORTABLE_LABEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/label.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// A label detached from its table: names and strings instead of indices
/// and dictionary codes.
struct PortableLabel {
  /// Dataset display name (optional).
  std::string dataset_name;
  /// |D|.
  int64_t total_rows = 0;
  /// All attribute names, in schema order.
  std::vector<std::string> attribute_names;
  /// VC: per attribute, (value, count) pairs with positive counts.
  std::vector<std::vector<std::pair<std::string, int64_t>>> value_counts;
  /// Indices (into attribute_names) of the label's attribute set S.
  std::vector<int> label_attributes;
  /// PC: per pattern over S, the values (aligned with label_attributes)
  /// and the count.
  std::vector<std::pair<std::vector<std::string>, int64_t>> pattern_counts;

  /// |PC| — the label size.
  int64_t size() const {
    return static_cast<int64_t>(pattern_counts.size());
  }

  /// Estimates the count of the pattern given as (attribute name, value)
  /// pairs, per Definition 2.11. Unknown attributes are an error; unknown
  /// values estimate as 0 (they do not appear in the data).
  Result<double> EstimateCount(
      const std::vector<std::pair<std::string, std::string>>& pattern) const;
};

/// Detaches a label from its table.
PortableLabel MakePortable(const Label& label, const Table& table,
                           std::string dataset_name = "");

/// JSON round-trip.
std::string ToJson(const PortableLabel& label, bool pretty = true);
Result<PortableLabel> PortableLabelFromJson(const std::string& json);

/// Compact binary round-trip (magic "PCBL", version 1, little-endian).
std::string ToBinary(const PortableLabel& label);
Result<PortableLabel> PortableLabelFromBinary(const std::string& bytes);

/// File helpers.
Status SaveLabel(const PortableLabel& label, const std::string& path,
                 bool binary = false);
Result<PortableLabel> LoadLabel(const std::string& path);

}  // namespace pcbl

#endif  // PCBL_CORE_PORTABLE_LABEL_H_
