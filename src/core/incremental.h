// IncrementalLabel — label maintenance under row appends.
//
// The paper ships labels as dataset metadata (Sec. I); found datasets
// grow. Rebuilding L_S(D) after every append costs a full scan, while the
// update induced by one appended row is local: bump |D|, bump one VC count
// per non-NULL cell, and bump (or create) the one PC entry for the row's
// restriction to S. This class maintains exactly the state of
// Label::Build(extended table, S) — same VC, same PC under the
// ComputePatternCounts semantics (restrictions of arity >= 2; see
// DESIGN.md §5a) — and therefore estimates identically to a rebuilt
// label, at O(|A|) per appended row.
//
// Appends can create patterns the original data lacked, so |PC| may
// outgrow the size bound the label was searched under; drift() reports
// that, plus how much the dataset has shifted, so callers know when to
// re-run the optimal-label search rather than keep patching.
//
// This is a *low-level engine* for maintaining one label artifact. For
// growing a dataset and re-searching it, prefer pcbl::api::Session
// (api/session.h): it owns the append semantics of the whole stack —
// dictionaries, VC, the full-pattern index P_A and the counting service
// move in one critical section, so a post-append search stays
// byte-exact against a from-scratch rebuild.
#ifndef PCBL_CORE_INCREMENTAL_H_
#define PCBL_CORE_INCREMENTAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <memory>

#include "core/estimator.h"
#include "pattern/counting_service.h"
#include "pattern/pattern.h"
#include "relation/dictionary.h"
#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// How far an incrementally maintained label has drifted from the state
/// it was created in.
struct LabelDrift {
  /// |D| at creation / rows appended since.
  int64_t base_rows = 0;
  int64_t appended_rows = 0;
  /// |PC| at creation / entries created by appends.
  int64_t base_patterns = 0;
  int64_t new_patterns = 0;
  /// True when |PC| now exceeds the bound the label was searched under.
  bool bound_exceeded = false;

  /// A rebuild (re-running the optimal-label search) is advisable when
  /// the bound broke or the data grew by more than `growth_threshold`.
  bool SuggestRebuild(double growth_threshold = 0.2) const {
    if (bound_exceeded) return true;
    if (base_rows <= 0) return appended_rows > 0;
    return static_cast<double>(appended_rows) /
               static_cast<double>(base_rows) >
           growth_threshold;
  }
};

/// A mutable label over a growing dataset, estimating exactly like the
/// label rebuilt on the extended data.
class IncrementalLabel : public CardinalityEstimator {
 public:
  /// Seeds the state from `base` with attribute set `s`. `size_bound` is
  /// the B_s the label was searched under (used only for drift tracking).
  ///
  /// When `service` (the dataset's CountingService) is supplied, the
  /// initial PC set is read through its warm cache — after a label
  /// search over the same table this costs zero table scans — and every
  /// append is forwarded to the service's invalidate-or-patch hook, so
  /// the cached PC sets of *other* subsets stay exact against the grown
  /// data instead of going stale. Attach one appending label per service:
  /// the service counts each notified row as one dataset append.
  static Result<IncrementalLabel> Create(
      const Table& base, AttrMask s, int64_t size_bound,
      std::shared_ptr<CountingService> service = nullptr);

  /// Appends one row of string values (empty / "NULL" = missing), exactly
  /// like TableBuilder::AddRow. New values are interned; ids extend the
  /// base table's stable code space.
  Status AppendRow(const std::vector<std::string>& values);

  /// Appends every row of `delta`, which must have the same attribute
  /// names in the same order. Values are remapped by string, so `delta`
  /// may use its own dictionaries.
  Status AppendTable(const Table& delta);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "PCBL-inc"; }
  int64_t FootprintEntries() const override {
    return static_cast<int64_t>(pc_.size());
  }

  /// Current |D| (base + appended).
  int64_t total_rows() const { return total_rows_; }
  AttrMask attributes() const { return attrs_; }
  int64_t size_bound() const { return size_bound_; }
  bool within_bound() const {
    return FootprintEntries() <= size_bound_;
  }
  LabelDrift drift() const;

  /// c_D({A_attr = value-string}) in the current state; 0 for unknown
  /// values.
  int64_t ValueCount(int attr, std::string_view value) const;

 private:
  IncrementalLabel() = default;

  // One row in this label's code space. Updates |D|, VC, and PC.
  void ApplyRow(const std::vector<ValueId>& codes);

  // c_D(p|S) from the PC map (exact lookup / containment / |D|).
  double RestrictedCount(const std::vector<ValueId>& bound) const;

  int width_ = 0;
  AttrMask attrs_;
  std::vector<int> s_attrs_;
  std::vector<std::string> attr_names_;  // for AppendTable schema checks
  int64_t size_bound_ = 0;
  int64_t total_rows_ = 0;

  std::vector<Dictionary> dictionaries_;       // grows with appends
  std::vector<std::vector<int64_t>> vc_;       // [attr][code]
  std::vector<int64_t> totals_;                // non-null totals per attr
  // Keys over s_attrs_ (kNullValue = the row was NULL there); only
  // restrictions binding >= 2 attributes are stored, mirroring
  // ComputePatternCounts.
  std::map<std::vector<ValueId>, int64_t> pc_;

  // Creation-time snapshot for drift().
  int64_t base_rows_ = 0;
  int64_t base_patterns_ = 0;

  // Optional dataset-scoped counting service notified of every appended
  // row (invalidate-or-patch of its cached PC sets).
  std::shared_ptr<CountingService> service_;
};

}  // namespace pcbl

#endif  // PCBL_CORE_INCREMENTAL_H_
