#include "core/search.h"

#include <algorithm>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/lattice.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace pcbl {

namespace {

// Candidate masks are sized through the engine in batches of this many;
// the time limit is checked between batches (the seed checked every 1024
// serial sizings — same cadence).
constexpr size_t kSizingChunk = 1024;

CountingEngineOptions EngineOptions(const SearchOptions& options) {
  CountingEngineOptions engine_options;
  engine_options.enabled = options.use_counting_engine;
  engine_options.num_threads = options.num_threads;
  engine_options.cache_budget = options.counting_cache_budget;
  return engine_options;
}

}  // namespace

LabelSearch::LabelSearch(const Table& table)
    : table_(&table),
      vc_(std::make_shared<const ValueCounts>(ValueCounts::Compute(table))),
      patterns_(std::make_shared<const FullPatternIndex>(
          FullPatternIndex::Build(table))),
      service_(std::make_shared<CountingService>(table)),
      described_rows_(table.num_rows()) {}

LabelSearch::LabelSearch(const Table& table,
                         std::shared_ptr<CountingService> service)
    : table_(&table),
      vc_(std::make_shared<const ValueCounts>(ValueCounts::Compute(table))),
      patterns_(std::make_shared<const FullPatternIndex>(
          FullPatternIndex::Build(table))),
      service_(std::move(service)),
      described_rows_(table.num_rows()) {
  PCBL_CHECK(service_ != nullptr);
}

LabelSearch::LabelSearch(const Table& table,
                         std::shared_ptr<const ValueCounts> vc,
                         std::shared_ptr<const FullPatternIndex> patterns,
                         std::shared_ptr<CountingService> service)
    : table_(&table),
      vc_(std::move(vc)),
      patterns_(std::move(patterns)),
      service_(service != nullptr
                   ? std::move(service)
                   : std::make_shared<CountingService>(table)),
      described_rows_(table.num_rows()) {
  PCBL_CHECK(vc_ != nullptr);
  PCBL_CHECK(patterns_ != nullptr);
}

void LabelSearch::SetExtendedState(
    std::shared_ptr<const ValueCounts> vc,
    std::shared_ptr<const FullPatternIndex> patterns,
    int64_t described_rows) {
  PCBL_CHECK(vc != nullptr);
  PCBL_CHECK(patterns != nullptr);
  PCBL_CHECK(described_rows >= table_->num_rows());
  vc_ = std::move(vc);
  patterns_ = std::move(patterns);
  described_rows_ = described_rows;
}

void LabelSearch::CheckDescribedRows() const {
  PCBL_CHECK(service_->engine().total_rows() == described_rows_)
      << "VC / P_A describe " << described_rows_
      << " rows but the counting service holds "
      << service_->engine().total_rows()
      << "; searching after appends requires extended VC / P_A "
         "(SetExtendedState — api::Session maintains them incrementally) "
         "or a LabelSearch rebuilt on the extended table";
  // A user-supplied pattern set was computed over the base table; it has
  // no incremental maintenance path (yet), so it cannot rank an
  // extended-data search.
  PCBL_CHECK(!extended() || eval_patterns_ == nullptr)
      << "custom evaluation patterns describe the base table; they cannot "
         "rank a search over appended data";
}

ErrorReport LabelSearch::Evaluate(const CardinalityEstimator& estimator,
                                  ErrorMode mode) const {
  if (eval_patterns_ != nullptr) {
    return EvaluateOverPatternSet(*eval_patterns_, estimator, mode);
  }
  return EvaluateOverFullPatterns(*patterns_, estimator, mode);
}

SearchResult LabelSearch::Finish(const std::vector<AttrMask>& cands,
                                 const SearchOptions& options,
                                 SearchStats stats,
                                 double candidate_seconds,
                                 CountingEngine* engine) const {
  Stopwatch eval_watch;
  SearchResult result;

  // The count-descending early cut only bounds the max-abs metric; other
  // metrics require the exact scan.
  ErrorMode mode = options.metric == OptimizationMetric::kMaxAbsolute
                       ? options.candidate_error_mode
                       : ErrorMode::kExact;

  // Append-aware mode: the base table alone can no longer build a
  // candidate label (Label::Build would miss the appended rows), so every
  // candidate's PC set is materialized up front through the delta-aware
  // engine — mutating calls, done before the read-only ranking loop —
  // and labels carry the extended row count / effective domains.
  std::vector<std::shared_ptr<const GroupCounts>> extended_pcs;
  std::vector<int64_t> extended_domains;
  if (extended()) {
    PCBL_CHECK(engine != nullptr);
    extended_pcs = engine->PatternCountsBatch(cands);
    extended_domains.resize(static_cast<size_t>(table_->num_attributes()));
    for (int a = 0; a < table_->num_attributes(); ++a) {
      extended_domains[static_cast<size_t>(a)] =
          engine->EffectiveDomainSize(a);
    }
  }

  // Every within-bound candidate was just counted by the generation
  // phase; with the engine on, its PC set is still memoized and the label
  // builds without touching the table again (CachedPatternCounts is a
  // const probe — safe under the ParallelFor). Evicted or uncached
  // candidates fall back to the direct recount.
  auto build_label = [&](AttrMask s, const GroupCounts* extended_pc) {
    if (extended()) {
      PCBL_CHECK(extended_pc != nullptr);
      return Label::BuildFromCountsExtended(*table_, s, *extended_pc, vc_,
                                            described_rows_,
                                            extended_domains);
    }
    if (engine != nullptr) {
      std::shared_ptr<const GroupCounts> pc = engine->CachedPatternCounts(s);
      if (pc != nullptr) {
        return Label::BuildFromCounts(*table_, s, *pc, vc_);
      }
    }
    return Label::Build(*table_, s, vc_);
  };

  // Each candidate's evaluation is independent, read-only work over the
  // immutable table/VC/P_A, so the ranking loop runs under ParallelFor.
  // The reduction below is serial and order-based, so the outcome is
  // identical for any thread count.
  struct Ranked {
    int64_t size = 0;
    double metric_value = 0.0;
    int64_t patterns_scanned = 0;
  };
  std::vector<Ranked> ranked(cands.size());
  ParallelFor(static_cast<int64_t>(cands.size()), options.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                Label label = build_label(
                    cands[s],
                    extended_pcs.empty() ? nullptr : extended_pcs[s].get());
                LabelEstimator estimator(std::move(label));
                ErrorReport report = Evaluate(estimator, mode);
                ranked[static_cast<size_t>(i)] =
                    Ranked{estimator.label().size(),
                           MetricValue(report, options.metric),
                           report.evaluated};
              });

  bool have_best = false;
  AttrMask best_attrs;
  double best_error = 0.0;
  int64_t best_size = 0;

  for (size_t i = 0; i < cands.size(); ++i) {
    const AttrMask s = cands[i];
    ++stats.error_evaluations;
    stats.patterns_scanned += ranked[i].patterns_scanned;
    const int64_t size = ranked[i].size;
    const double metric_value = ranked[i].metric_value;
    if (options.record_candidates) {
      result.candidates.push_back(CandidateInfo{s, size, metric_value});
    }
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (metric_value != best_error) {
      better = metric_value < best_error;
    } else if (size != best_size) {
      better = size < best_size;
    } else {
      better = s.bits() < best_attrs.bits();
    }
    if (better) {
      have_best = true;
      best_attrs = s;
      best_error = metric_value;
      best_size = size;
    }
  }

  result.best_attrs = best_attrs;  // empty mask when no candidate fit
  // In append-aware mode the best mask's PC set is re-fetched through the
  // engine (a cache hit when it survived the batch above; the empty
  // no-candidate mask yields the trivial empty set).
  std::shared_ptr<const GroupCounts> best_pc;
  if (extended()) best_pc = engine->PatternCounts(best_attrs);
  result.label = build_label(best_attrs, best_pc.get());
  stats.error_eval_seconds = eval_watch.ElapsedSeconds();
  stats.candidate_seconds = candidate_seconds;
  stats.total_seconds = candidate_seconds + stats.error_eval_seconds;
  if (engine != nullptr) stats.counting = engine->stats();
  // The final label is always certified with an exact scan.
  LabelEstimator final_estimator(result.label);
  result.error = Evaluate(final_estimator, ErrorMode::kExact);
  result.stats = stats;
  return result;
}

SearchResult LabelSearch::Naive(const SearchOptions& options) const {
  // The dataset's shared engine: candidates sized by an earlier search
  // over this table are answered from the warm cache instead of a scan.
  // The lock serializes whole searches; the ranking ParallelFor's cache
  // probes are const and run under this same lock.
  std::lock_guard<std::mutex> lock(service_->mutex());
  return NaiveLocked(options);
}

SearchResult LabelSearch::NaiveLocked(const SearchOptions& options) const {
  Stopwatch watch;
  SearchStats stats;
  std::vector<AttrMask> cands;
  const int n = table_->num_attributes();
  // VC / P_A / the error scans must describe exactly the data the engine
  // counts; after appends that means the extended state maintained by
  // api::Session (SetExtendedState) — mixing base-table artifacts with
  // an extended engine would certify an inconsistent label.
  CheckDescribedRows();
  service_->Configure(EngineOptions(options));
  CountingEngine& engine = service_->engine();

  // Level-wise enumeration, starting with subsets of size 2 (Sec. III):
  // singleton labels carry no information beyond VC. A level with no
  // within-bound label terminates the scan: supersets only grow labels.
  // Each level streams through the engine in sizing batches; the masks of
  // a chunk are counted concurrently, then accounted serially in
  // enumeration order, so the candidate set matches the serial algorithm
  // exactly.
  std::vector<AttrMask> chunk;
  std::vector<int64_t> sizes;
  for (int level = 2; level <= n && !stats.timed_out; ++level) {
    bool any_within_bound = false;
    SubsetOfSizeEnumerator subsets(n, level);
    bool exhausted = false;
    while (!exhausted && !stats.timed_out) {
      chunk.clear();
      while (chunk.size() < kSizingChunk) {
        AttrMask s;
        if (!subsets.Next(&s)) {
          exhausted = true;
          break;
        }
        chunk.push_back(s);
      }
      if (chunk.empty()) break;
      sizes = engine.CountPatternsBatch(chunk, options.size_bound);
      for (size_t i = 0; i < chunk.size(); ++i) {
        ++stats.subsets_examined;
        if (sizes[i] <= options.size_bound) {
          any_within_bound = true;
          ++stats.within_bound;
          cands.push_back(chunk[i]);
        }
      }
      if (options.time_limit_seconds > 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
      }
    }
    stats.levels_completed = level - 1;  // levels beyond the start size
    if (!any_within_bound) break;
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds(), &engine);
}

SearchResult LabelSearch::TopDown(const SearchOptions& options) const {
  std::lock_guard<std::mutex> lock(service_->mutex());
  return TopDownLocked(options);
}

SearchResult LabelSearch::TopDownLocked(const SearchOptions& options) const {
  Stopwatch watch;
  SearchStats stats;
  const int n = table_->num_attributes();
  CheckDescribedRows();
  service_->Configure(EngineOptions(options));
  CountingEngine& engine = service_->engine();

  // Algorithm 1, batched: the frontier holds the within-budget subsets of
  // the current wave (the FIFO queue of the serial formulation processes
  // them in exactly this order); their gen() children are sized in
  // parallel chunks, then accounted serially in generation order. cands
  // collects the within-budget subsets with dominated parents removed
  // (Proposition 3.2: a superset's label is at least as accurate). Every
  // child is generated exactly once (Proposition 3.8), so no dedup is
  // needed before sizing.
  std::vector<AttrMask> frontier;
  for (AttrMask s : Gen(AttrMask(), n)) frontier.push_back(s);

  std::unordered_set<uint64_t> cand_set;
  std::vector<AttrMask> cand_order;  // insertion order, for determinism

  std::vector<AttrMask> chunk;
  std::vector<int64_t> sizes;
  std::vector<AttrMask> next_frontier;
  while (!frontier.empty() && !stats.timed_out) {
    next_frontier.clear();
    size_t f = 0;                   // frontier cursor
    std::vector<AttrMask> gen;      // children of frontier[f], buffered
    size_t g = 0;                   // cursor into gen
    bool exhausted = false;
    while (!exhausted && !stats.timed_out) {
      chunk.clear();
      while (chunk.size() < kSizingChunk) {
        if (g == gen.size()) {
          if (f == frontier.size()) {
            exhausted = true;
            break;
          }
          gen = Gen(frontier[f++], n);
          g = 0;
          continue;
        }
        chunk.push_back(gen[g++]);
      }
      if (chunk.empty()) break;
      sizes = engine.CountPatternsBatch(chunk, options.size_bound);
      for (size_t i = 0; i < chunk.size(); ++i) {
        ++stats.subsets_examined;
        if (sizes[i] > options.size_bound) continue;
        const AttrMask c = chunk[i];
        ++stats.within_bound;
        next_frontier.push_back(c);
        // removeParents(cands, c): drop every parent of c from cands.
        for (AttrMask parent : Parents(c)) {
          cand_set.erase(parent.bits());
        }
        cand_set.insert(c.bits());
        cand_order.push_back(c);
      }
      if (options.time_limit_seconds > 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
      }
    }
    frontier.swap(next_frontier);
  }

  std::vector<AttrMask> cands;
  cands.reserve(cand_set.size());
  for (AttrMask s : cand_order) {
    if (cand_set.contains(s.bits())) {
      cands.push_back(s);
      cand_set.erase(s.bits());  // deduplicate while preserving order
    }
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds(), &engine);
}

}  // namespace pcbl
