#include "core/search.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "pattern/counter.h"
#include "pattern/lattice.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace pcbl {

LabelSearch::LabelSearch(const Table& table)
    : table_(&table),
      vc_(std::make_shared<const ValueCounts>(ValueCounts::Compute(table))),
      patterns_(std::make_shared<const FullPatternIndex>(
          FullPatternIndex::Build(table))) {}

LabelSearch::LabelSearch(const Table& table,
                         std::shared_ptr<const ValueCounts> vc,
                         std::shared_ptr<const FullPatternIndex> patterns)
    : table_(&table), vc_(std::move(vc)), patterns_(std::move(patterns)) {
  PCBL_CHECK(vc_ != nullptr);
  PCBL_CHECK(patterns_ != nullptr);
}

ErrorReport LabelSearch::Evaluate(const CardinalityEstimator& estimator,
                                  ErrorMode mode) const {
  if (eval_patterns_ != nullptr) {
    return EvaluateOverPatternSet(*eval_patterns_, estimator, mode);
  }
  return EvaluateOverFullPatterns(*patterns_, estimator, mode);
}

SearchResult LabelSearch::Finish(const std::vector<AttrMask>& cands,
                                 const SearchOptions& options,
                                 SearchStats stats,
                                 double candidate_seconds) const {
  Stopwatch eval_watch;
  SearchResult result;

  // The count-descending early cut only bounds the max-abs metric; other
  // metrics require the exact scan.
  ErrorMode mode = options.metric == OptimizationMetric::kMaxAbsolute
                       ? options.candidate_error_mode
                       : ErrorMode::kExact;

  // Each candidate's evaluation is independent, read-only work over the
  // immutable table/VC/P_A, so the ranking loop runs under ParallelFor.
  // The reduction below is serial and order-based, so the outcome is
  // identical for any thread count.
  struct Ranked {
    int64_t size = 0;
    double metric_value = 0.0;
    int64_t patterns_scanned = 0;
  };
  std::vector<Ranked> ranked(cands.size());
  ParallelFor(static_cast<int64_t>(cands.size()), options.num_threads,
              [&](int64_t i) {
                Label label =
                    Label::Build(*table_, cands[static_cast<size_t>(i)], vc_);
                LabelEstimator estimator(std::move(label));
                ErrorReport report = Evaluate(estimator, mode);
                ranked[static_cast<size_t>(i)] =
                    Ranked{estimator.label().size(),
                           MetricValue(report, options.metric),
                           report.evaluated};
              });

  bool have_best = false;
  AttrMask best_attrs;
  double best_error = 0.0;
  int64_t best_size = 0;

  for (size_t i = 0; i < cands.size(); ++i) {
    const AttrMask s = cands[i];
    ++stats.error_evaluations;
    stats.patterns_scanned += ranked[i].patterns_scanned;
    const int64_t size = ranked[i].size;
    const double metric_value = ranked[i].metric_value;
    if (options.record_candidates) {
      result.candidates.push_back(CandidateInfo{s, size, metric_value});
    }
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (metric_value != best_error) {
      better = metric_value < best_error;
    } else if (size != best_size) {
      better = size < best_size;
    } else {
      better = s.bits() < best_attrs.bits();
    }
    if (better) {
      have_best = true;
      best_attrs = s;
      best_error = metric_value;
      best_size = size;
    }
  }

  result.best_attrs = best_attrs;  // empty mask when no candidate fit
  result.label = Label::Build(*table_, best_attrs, vc_);
  stats.error_eval_seconds = eval_watch.ElapsedSeconds();
  stats.candidate_seconds = candidate_seconds;
  stats.total_seconds = candidate_seconds + stats.error_eval_seconds;
  // The final label is always certified with an exact scan.
  LabelEstimator final_estimator(result.label);
  result.error = Evaluate(final_estimator, ErrorMode::kExact);
  result.stats = stats;
  return result;
}

SearchResult LabelSearch::Naive(const SearchOptions& options) const {
  Stopwatch watch;
  SearchStats stats;
  std::vector<AttrMask> cands;
  const int n = table_->num_attributes();

  // Level-wise enumeration, starting with subsets of size 2 (Sec. III):
  // singleton labels carry no information beyond VC. A level with no
  // within-bound label terminates the scan: supersets only grow labels.
  for (int level = 2; level <= n && !stats.timed_out; ++level) {
    bool any_within_bound = false;
    ForEachSubsetOfSize(n, level, [&](AttrMask s) {
      if (stats.timed_out) return;
      ++stats.subsets_examined;
      if (options.time_limit_seconds > 0 &&
          (stats.subsets_examined & 1023) == 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
        return;
      }
      int64_t size = CountDistinctPatterns(*table_, s, options.size_bound);
      if (size <= options.size_bound) {
        any_within_bound = true;
        ++stats.within_bound;
        cands.push_back(s);
      }
    });
    stats.levels_completed = level - 1;  // levels beyond the start size
    if (!any_within_bound) break;
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds());
}

SearchResult LabelSearch::TopDown(const SearchOptions& options) const {
  Stopwatch watch;
  SearchStats stats;
  const int n = table_->num_attributes();

  // Algorithm 1. Q starts as gen({}) — the singletons; cands collects the
  // within-budget subsets generated by gen(), with dominated parents
  // removed (Proposition 3.2: a superset's label is at least as accurate).
  std::deque<AttrMask> queue;
  for (AttrMask s : Gen(AttrMask(), n)) queue.push_back(s);

  std::unordered_set<uint64_t> cand_set;
  std::vector<AttrMask> cand_order;  // insertion order, for determinism

  while (!queue.empty() && !stats.timed_out) {
    AttrMask curr = queue.front();
    queue.pop_front();
    for (AttrMask c : Gen(curr, n)) {
      ++stats.subsets_examined;
      if (options.time_limit_seconds > 0 &&
          (stats.subsets_examined & 1023) == 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
        break;
      }
      int64_t size = CountDistinctPatterns(*table_, c, options.size_bound);
      if (size > options.size_bound) continue;
      ++stats.within_bound;
      queue.push_back(c);
      // removeParents(cands, c): drop every parent of c from cands.
      for (AttrMask parent : Parents(c)) {
        cand_set.erase(parent.bits());
      }
      cand_set.insert(c.bits());
      cand_order.push_back(c);
    }
  }

  std::vector<AttrMask> cands;
  cands.reserve(cand_set.size());
  for (AttrMask s : cand_order) {
    if (cand_set.contains(s.bits())) {
      cands.push_back(s);
      cand_set.erase(s.bits());  // deduplicate while preserving order
    }
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds());
}

}  // namespace pcbl
