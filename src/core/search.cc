#include "core/search.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "pattern/counter.h"
#include "pattern/counting_engine.h"
#include "pattern/lattice.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace pcbl {

namespace {

// Candidate masks are sized through the engine in batches of this many;
// the time limit is checked between batches (the seed checked every 1024
// serial sizings — same cadence).
constexpr size_t kSizingChunk = 1024;

CountingEngineOptions EngineOptions(const SearchOptions& options) {
  CountingEngineOptions engine_options;
  engine_options.enabled = options.use_counting_engine;
  engine_options.num_threads = options.num_threads;
  engine_options.cache_budget = options.counting_cache_budget;
  engine_options.min_rows_per_morsel = options.min_rows_per_morsel;
  return engine_options;
}

}  // namespace

// How the algorithm bodies reach the counting layer. Both backends keep
// a memo of every materialized PC-set handle their waves return: the
// ranking phase then builds candidate labels from the search's own
// snapshot, which stays valid (shared_ptr) even if the shared cache
// evicts the entry or — under the wave scheduler — concurrent queries
// mutate it mid-ranking.
class LabelSearch::Backend {
 public:
  virtual ~Backend() = default;

  /// Sizes one wave (CountPatterns semantics per mask) and memoizes the
  /// materialized PC sets of within-budget masks.
  virtual std::vector<int64_t> SizeWave(const std::vector<AttrMask>& masks,
                                        int64_t budget) = 0;

  /// Exact, materialized PC sets for `masks` (the append-aware ranking
  /// phase and the final label); memoized too.
  virtual std::vector<std::shared_ptr<const GroupCounts>> CountsFor(
      const std::vector<AttrMask>& masks) = 0;

  /// The memoized PC set of `mask`, nullptr when this search never
  /// materialized it. Thread-safe once sizing is done (the memo is
  /// read-only during ranking).
  std::shared_ptr<const GroupCounts> Lookup(AttrMask mask) const {
    auto it = memo_.find(mask.bits());
    return it == memo_.end() ? nullptr : it->second;
  }

  virtual int64_t EffectiveDomainSize(int attr) const = 0;
  virtual CountingEngineStats Stats() const = 0;

 protected:
  void Memoize(const std::vector<AttrMask>& masks,
               const std::vector<std::shared_ptr<const GroupCounts>>& counts) {
    for (size_t i = 0; i < masks.size(); ++i) {
      if (counts[i] != nullptr) {
        memo_.emplace(masks[i].bits(), counts[i]);
      }
    }
  }

 private:
  std::unordered_map<uint64_t, std::shared_ptr<const GroupCounts>> memo_;
};

namespace {

// Serialized discipline: the caller holds service->mutex() for the whole
// search, so the engine is called directly. The memo doubles as a probe
// shortcut; misses during ranking may still consult the cache (const
// probes are safe under the holder's lock).
class SerializedBackend final : public LabelSearch::Backend {
 public:
  explicit SerializedBackend(CountingEngine& engine) : engine_(engine) {}

  std::vector<int64_t> SizeWave(const std::vector<AttrMask>& masks,
                                int64_t budget) override {
    std::vector<std::shared_ptr<const GroupCounts>> counts;
    std::vector<int64_t> sizes =
        engine_.CountPatternsBatchCollect(masks, budget, &counts);
    Memoize(masks, counts);
    return sizes;
  }

  std::vector<std::shared_ptr<const GroupCounts>> CountsFor(
      const std::vector<AttrMask>& masks) override {
    std::vector<std::shared_ptr<const GroupCounts>> counts =
        engine_.PatternCountsBatch(masks);
    Memoize(masks, counts);
    return counts;
  }

  int64_t EffectiveDomainSize(int attr) const override {
    return engine_.EffectiveDomainSize(attr);
  }
  CountingEngineStats Stats() const override { return engine_.stats(); }

 private:
  CountingEngine& engine_;
};

// Wave-scheduled discipline: the caller holds a shared QueryAdmission
// (no mutex), every batch goes through the service's scheduler and may
// merge with concurrent queries' waves. The engine's *data* observables
// (effective domains, row counts) are stable under the gate; its cache
// is never touched directly.
class ScheduledBackend final : public LabelSearch::Backend {
 public:
  ScheduledBackend(CountingService& service,
                   const CountingEngineOptions& config)
      : service_(service), config_(config) {}

  std::vector<int64_t> SizeWave(const std::vector<AttrMask>& masks,
                                int64_t budget) override {
    std::vector<std::shared_ptr<const GroupCounts>> counts;
    std::vector<int64_t> sizes =
        service_.WaveCountPatterns(masks, budget, config_, &counts);
    Memoize(masks, counts);
    return sizes;
  }

  std::vector<std::shared_ptr<const GroupCounts>> CountsFor(
      const std::vector<AttrMask>& masks) override {
    std::vector<std::shared_ptr<const GroupCounts>> counts =
        service_.WavePatternCounts(masks, config_);
    Memoize(masks, counts);
    return counts;
  }

  int64_t EffectiveDomainSize(int attr) const override {
    return service_.engine().EffectiveDomainSize(attr);
  }
  CountingEngineStats Stats() const override {
    return service_.StatsSnapshot();
  }

 private:
  CountingService& service_;
  CountingEngineOptions config_;
};

}  // namespace

LabelSearch::LabelSearch(const Table& table)
    : table_(&table),
      vc_(std::make_shared<const ValueCounts>(ValueCounts::Compute(table))),
      patterns_(std::make_shared<const FullPatternIndex>(
          FullPatternIndex::Build(table))),
      service_(std::make_shared<CountingService>(table)),
      described_rows_(table.num_rows()) {}

LabelSearch::LabelSearch(const Table& table,
                         std::shared_ptr<CountingService> service)
    : table_(&table),
      vc_(std::make_shared<const ValueCounts>(ValueCounts::Compute(table))),
      patterns_(std::make_shared<const FullPatternIndex>(
          FullPatternIndex::Build(table))),
      service_(std::move(service)),
      described_rows_(table.num_rows()) {
  PCBL_CHECK(service_ != nullptr);
}

LabelSearch::LabelSearch(const Table& table,
                         std::shared_ptr<const ValueCounts> vc,
                         std::shared_ptr<const FullPatternIndex> patterns,
                         std::shared_ptr<CountingService> service)
    : table_(&table),
      vc_(std::move(vc)),
      patterns_(std::move(patterns)),
      service_(service != nullptr
                   ? std::move(service)
                   : std::make_shared<CountingService>(table)),
      described_rows_(table.num_rows()) {
  PCBL_CHECK(vc_ != nullptr);
  PCBL_CHECK(patterns_ != nullptr);
}

void LabelSearch::SetExtendedState(
    std::shared_ptr<const ValueCounts> vc,
    std::shared_ptr<const FullPatternIndex> patterns,
    int64_t described_rows) {
  PCBL_CHECK(vc != nullptr);
  PCBL_CHECK(patterns != nullptr);
  PCBL_CHECK(described_rows >= table_->num_rows());
  vc_ = std::move(vc);
  patterns_ = std::move(patterns);
  described_rows_ = described_rows;
}

void LabelSearch::CheckDescribedRows() const {
  PCBL_CHECK(service_->engine().total_rows() == described_rows_)
      << "VC / P_A describe " << described_rows_
      << " rows but the counting service holds "
      << service_->engine().total_rows()
      << "; searching after appends requires extended VC / P_A "
         "(SetExtendedState — api::Session maintains them incrementally) "
         "or a LabelSearch rebuilt on the extended table";
  // A user-supplied pattern set carries counts over a specific row
  // count (the base table's unless the caller said otherwise); ranking
  // a search over different data with it would certify the label
  // against the wrong ground truth.
  if (eval_patterns_ != nullptr) {
    const int64_t eval_rows = eval_patterns_rows_ < 0
                                  ? table_->num_rows()
                                  : eval_patterns_rows_;
    PCBL_CHECK(eval_rows == described_rows_)
        << "custom evaluation patterns describe " << eval_rows
        << " rows but this search runs over " << described_rows_
        << "; rebuild the pattern set over the extended data "
           "(api::Session derives it from the engine's PC sets)";
  }
}

ErrorReport LabelSearch::Evaluate(const CardinalityEstimator& estimator,
                                  ErrorMode mode) const {
  if (eval_patterns_ != nullptr) {
    return EvaluateOverPatternSet(*eval_patterns_, estimator, mode);
  }
  return EvaluateOverFullPatterns(*patterns_, estimator, mode);
}

SearchResult LabelSearch::Finish(const std::vector<AttrMask>& cands,
                                 const SearchOptions& options,
                                 SearchStats stats,
                                 double candidate_seconds,
                                 Backend& backend) const {
  Stopwatch eval_watch;
  SearchResult result;

  // The count-descending early cut only bounds the max-abs metric; other
  // metrics require the exact scan.
  ErrorMode mode = options.metric == OptimizationMetric::kMaxAbsolute
                       ? options.candidate_error_mode
                       : ErrorMode::kExact;

  // Append-aware mode: the base table alone can no longer build a
  // candidate label (Label::Build would miss the appended rows), so every
  // candidate's PC set is materialized up front through the delta-aware
  // engine — the sizing waves' memo already holds most of them; the rest
  // are fetched in one batch before the read-only ranking loop — and
  // labels carry the extended row count / effective domains.
  std::vector<std::shared_ptr<const GroupCounts>> extended_pcs;
  std::vector<int64_t> extended_domains;
  if (extended()) {
    extended_pcs.resize(cands.size());
    std::vector<AttrMask> missing;
    std::vector<size_t> missing_at;
    for (size_t i = 0; i < cands.size(); ++i) {
      extended_pcs[i] = backend.Lookup(cands[i]);
      if (extended_pcs[i] == nullptr) {
        missing.push_back(cands[i]);
        missing_at.push_back(i);
      }
    }
    if (!missing.empty()) {
      std::vector<std::shared_ptr<const GroupCounts>> fetched =
          backend.CountsFor(missing);
      for (size_t i = 0; i < missing.size(); ++i) {
        extended_pcs[missing_at[i]] = fetched[i];
      }
    }
    extended_domains.resize(static_cast<size_t>(table_->num_attributes()));
    for (int a = 0; a < table_->num_attributes(); ++a) {
      extended_domains[static_cast<size_t>(a)] =
          backend.EffectiveDomainSize(a);
    }
  }

  // Every within-bound candidate was just counted by the generation
  // phase; with the engine on, its PC set rides the search's memo view
  // and the label builds without touching the table again (the memo is
  // read-only here — safe under the ParallelFor even while concurrent
  // queries mutate the shared cache). Unmemoized candidates (a disabled
  // engine materializes nothing) fall back to the direct recount.
  auto build_label = [&](AttrMask s, const GroupCounts* extended_pc) {
    if (extended()) {
      PCBL_CHECK(extended_pc != nullptr);
      return Label::BuildFromCountsExtended(*table_, s, *extended_pc, vc_,
                                            described_rows_,
                                            extended_domains);
    }
    std::shared_ptr<const GroupCounts> pc = backend.Lookup(s);
    if (pc != nullptr) {
      return Label::BuildFromCounts(*table_, s, *pc, vc_);
    }
    return Label::Build(*table_, s, vc_);
  };

  // Each candidate's evaluation is independent, read-only work over the
  // immutable table/VC/P_A, so the ranking loop runs under ParallelFor.
  // The reduction below is serial and order-based, so the outcome is
  // identical for any thread count.
  struct Ranked {
    int64_t size = 0;
    double metric_value = 0.0;
    int64_t patterns_scanned = 0;
  };
  std::vector<Ranked> ranked(cands.size());
  ParallelFor(static_cast<int64_t>(cands.size()), options.num_threads,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                Label label = build_label(
                    cands[s],
                    extended_pcs.empty() ? nullptr : extended_pcs[s].get());
                LabelEstimator estimator(std::move(label));
                ErrorReport report = Evaluate(estimator, mode);
                ranked[static_cast<size_t>(i)] =
                    Ranked{estimator.label().size(),
                           MetricValue(report, options.metric),
                           report.evaluated};
              });

  bool have_best = false;
  AttrMask best_attrs;
  double best_error = 0.0;
  int64_t best_size = 0;

  for (size_t i = 0; i < cands.size(); ++i) {
    const AttrMask s = cands[i];
    ++stats.error_evaluations;
    stats.patterns_scanned += ranked[i].patterns_scanned;
    const int64_t size = ranked[i].size;
    const double metric_value = ranked[i].metric_value;
    if (options.record_candidates) {
      result.candidates.push_back(CandidateInfo{s, size, metric_value});
    }
    bool better = false;
    if (!have_best) {
      better = true;
    } else if (metric_value != best_error) {
      better = metric_value < best_error;
    } else if (size != best_size) {
      better = size < best_size;
    } else {
      better = s.bits() < best_attrs.bits();
    }
    if (better) {
      have_best = true;
      best_attrs = s;
      best_error = metric_value;
      best_size = size;
    }
  }

  result.best_attrs = best_attrs;  // empty mask when no candidate fit
  // In append-aware mode the best mask's PC set comes from the memo (it
  // was materialized for the ranking above; the empty no-candidate mask
  // yields the trivial empty set, fetched here).
  std::shared_ptr<const GroupCounts> best_pc;
  if (extended()) {
    best_pc = backend.Lookup(best_attrs);
    if (best_pc == nullptr) best_pc = backend.CountsFor({best_attrs})[0];
  }
  result.label = build_label(best_attrs, best_pc.get());
  stats.error_eval_seconds = eval_watch.ElapsedSeconds();
  stats.candidate_seconds = candidate_seconds;
  stats.total_seconds = candidate_seconds + stats.error_eval_seconds;
  stats.counting = backend.Stats();
  // The final label is always certified with an exact scan.
  LabelEstimator final_estimator(result.label);
  result.error = Evaluate(final_estimator, ErrorMode::kExact);
  result.stats = stats;
  return result;
}

SearchResult LabelSearch::Naive(const SearchOptions& options) const {
  // The dataset's shared engine: candidates sized by an earlier search
  // over this table are answered from the warm cache instead of a scan.
  if (options.use_wave_scheduler) {
    // Shared admission: concurrent searches' waves merge through the
    // service's scheduler; appends are excluded until we leave.
    CountingService::QueryAdmission admission(*service_);
    return NaiveScheduled(options);
  }
  // Serialized reference arm: the lock serializes whole searches; the
  // ranking ParallelFor's memo reads run under this same lock.
  std::lock_guard<std::mutex> lock(service_->mutex());
  return NaiveLocked(options);
}

SearchResult LabelSearch::NaiveLocked(const SearchOptions& options) const {
  CheckDescribedRows();
  service_->Configure(EngineOptions(options));
  SerializedBackend backend(service_->engine());
  return NaiveImpl(options, backend);
}

SearchResult LabelSearch::NaiveScheduled(
    const SearchOptions& options) const {
  CheckDescribedRows();
  ScheduledBackend backend(*service_, EngineOptions(options));
  return NaiveImpl(options, backend);
}

SearchResult LabelSearch::NaiveImpl(const SearchOptions& options,
                                    Backend& backend) const {
  Stopwatch watch;
  SearchStats stats;
  std::vector<AttrMask> cands;
  const int n = table_->num_attributes();

  // Level-wise enumeration, starting with subsets of size 2 (Sec. III):
  // singleton labels carry no information beyond VC. A level with no
  // within-bound label terminates the scan: supersets only grow labels.
  // Each level streams through the engine in sizing batches; the masks of
  // a chunk are counted concurrently, then accounted serially in
  // enumeration order, so the candidate set matches the serial algorithm
  // exactly.
  std::vector<AttrMask> chunk;
  std::vector<int64_t> sizes;
  for (int level = 2; level <= n && !stats.timed_out; ++level) {
    bool any_within_bound = false;
    SubsetOfSizeEnumerator subsets(n, level);
    bool exhausted = false;
    while (!exhausted && !stats.timed_out) {
      chunk.clear();
      while (chunk.size() < kSizingChunk) {
        AttrMask s;
        if (!subsets.Next(&s)) {
          exhausted = true;
          break;
        }
        chunk.push_back(s);
      }
      if (chunk.empty()) break;
      sizes = backend.SizeWave(chunk, options.size_bound);
      for (size_t i = 0; i < chunk.size(); ++i) {
        ++stats.subsets_examined;
        if (sizes[i] <= options.size_bound) {
          any_within_bound = true;
          ++stats.within_bound;
          cands.push_back(chunk[i]);
        }
      }
      if (options.time_limit_seconds > 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
      }
    }
    stats.levels_completed = level - 1;  // levels beyond the start size
    if (!any_within_bound) break;
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds(), backend);
}

SearchResult LabelSearch::TopDown(const SearchOptions& options) const {
  if (options.use_wave_scheduler) {
    CountingService::QueryAdmission admission(*service_);
    return TopDownScheduled(options);
  }
  std::lock_guard<std::mutex> lock(service_->mutex());
  return TopDownLocked(options);
}

SearchResult LabelSearch::TopDownLocked(const SearchOptions& options) const {
  CheckDescribedRows();
  service_->Configure(EngineOptions(options));
  SerializedBackend backend(service_->engine());
  return TopDownImpl(options, backend);
}

SearchResult LabelSearch::TopDownScheduled(
    const SearchOptions& options) const {
  CheckDescribedRows();
  ScheduledBackend backend(*service_, EngineOptions(options));
  return TopDownImpl(options, backend);
}

SearchResult LabelSearch::TopDownImpl(const SearchOptions& options,
                                      Backend& backend) const {
  Stopwatch watch;
  SearchStats stats;
  const int n = table_->num_attributes();

  // Algorithm 1, batched: the frontier holds the within-budget subsets of
  // the current wave (the FIFO queue of the serial formulation processes
  // them in exactly this order); their gen() children are sized in
  // parallel chunks, then accounted serially in generation order. cands
  // collects the within-budget subsets with dominated parents removed
  // (Proposition 3.2: a superset's label is at least as accurate). Every
  // child is generated exactly once (Proposition 3.8), so no dedup is
  // needed before sizing.
  std::vector<AttrMask> frontier;
  for (AttrMask s : Gen(AttrMask(), n)) frontier.push_back(s);

  std::unordered_set<uint64_t> cand_set;
  std::vector<AttrMask> cand_order;  // insertion order, for determinism

  std::vector<AttrMask> chunk;
  std::vector<int64_t> sizes;
  std::vector<AttrMask> next_frontier;
  while (!frontier.empty() && !stats.timed_out) {
    next_frontier.clear();
    size_t f = 0;                   // frontier cursor
    std::vector<AttrMask> gen;      // children of frontier[f], buffered
    size_t g = 0;                   // cursor into gen
    bool exhausted = false;
    while (!exhausted && !stats.timed_out) {
      chunk.clear();
      while (chunk.size() < kSizingChunk) {
        if (g == gen.size()) {
          if (f == frontier.size()) {
            exhausted = true;
            break;
          }
          gen = Gen(frontier[f++], n);
          g = 0;
          continue;
        }
        chunk.push_back(gen[g++]);
      }
      if (chunk.empty()) break;
      sizes = backend.SizeWave(chunk, options.size_bound);
      for (size_t i = 0; i < chunk.size(); ++i) {
        ++stats.subsets_examined;
        if (sizes[i] > options.size_bound) continue;
        const AttrMask c = chunk[i];
        ++stats.within_bound;
        next_frontier.push_back(c);
        // removeParents(cands, c): drop every parent of c from cands.
        for (AttrMask parent : Parents(c)) {
          cand_set.erase(parent.bits());
        }
        cand_set.insert(c.bits());
        cand_order.push_back(c);
      }
      if (options.time_limit_seconds > 0 &&
          watch.ElapsedSeconds() > options.time_limit_seconds) {
        stats.timed_out = true;
      }
    }
    frontier.swap(next_frontier);
  }

  std::vector<AttrMask> cands;
  cands.reserve(cand_set.size());
  for (AttrMask s : cand_order) {
    if (cand_set.contains(s.bits())) {
      cands.push_back(s);
      cand_set.erase(s.bits());  // deduplicate while preserving order
    }
  }
  return Finish(cands, options, stats, watch.ElapsedSeconds(), backend);
}

}  // namespace pcbl
