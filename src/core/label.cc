#include "core/label.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.h"

namespace pcbl {

Label Label::Build(const Table& table, AttrMask s,
                   std::shared_ptr<const ValueCounts> vc) {
  // PC holds tuple restrictions of arity >= 2 (see counter.h); on
  // NULL-free data this is exactly Definition 2.9's pattern set.
  return BuildFromCounts(table, s, ComputePatternCounts(table, s),
                         std::move(vc));
}

Label Label::BuildFromCounts(const Table& table, AttrMask s, GroupCounts pc,
                             std::shared_ptr<const ValueCounts> vc) {
  std::vector<int64_t> domain_sizes(
      static_cast<size_t>(table.num_attributes()));
  for (int a = 0; a < table.num_attributes(); ++a) {
    domain_sizes[static_cast<size_t>(a)] =
        static_cast<int64_t>(table.DomainSize(a));
  }
  if (vc == nullptr) {
    vc = std::make_shared<const ValueCounts>(ValueCounts::Compute(table));
  }
  return BuildFromCountsExtended(table, s, std::move(pc), std::move(vc),
                                 table.num_rows(), domain_sizes);
}

Label Label::BuildFromCountsExtended(
    const Table& table, AttrMask s, GroupCounts pc,
    std::shared_ptr<const ValueCounts> vc, int64_t total_rows,
    const std::vector<int64_t>& domain_sizes) {
  PCBL_DCHECK(pc.mask() == s);
  PCBL_CHECK(vc != nullptr);
  Label l;
  l.attrs_ = s;
  l.total_rows_ = total_rows;
  l.pc_ = std::move(pc);
  l.vc_ = std::move(vc);

  int n = table.num_attributes();
  l.inv_totals_.assign(static_cast<size_t>(n), 0.0);
  for (int a = 0; a < n; ++a) {
    int64_t t = l.vc_->NonNullTotal(a);
    l.inv_totals_[static_cast<size_t>(a)] =
        t > 0 ? 1.0 / static_cast<double>(t) : 0.0;
  }

  l.attr_pos_.assign(static_cast<size_t>(n), -1);
  const std::vector<int>& attrs = l.pc_.attrs();
  for (size_t j = 0; j < attrs.size(); ++j) {
    l.attr_pos_[static_cast<size_t>(attrs[j])] = static_cast<int>(j);
  }

  // Mixed-radix encoding of PC keys for O(log |PC|) exact lookups; each
  // attribute gets domain-size + 1 slots, the last encoding NULL (unbound
  // in the restriction). The PC keys arrive in ascending code order.
  l.encodable_ = true;
  l.radix_mult_.resize(attrs.size());
  int64_t m = 1;
  for (size_t j = attrs.size(); j-- > 0;) {
    l.radix_mult_[j] = m;
    int64_t dom = domain_sizes[static_cast<size_t>(attrs[j])] + 1;
    if (m > std::numeric_limits<int64_t>::max() / dom) {
      l.encodable_ = false;
      break;
    }
    m *= dom;
  }
  if (l.encodable_) {
    l.domain_sizes_.resize(attrs.size());
    for (size_t j = 0; j < attrs.size(); ++j) {
      l.domain_sizes_[j] = static_cast<ValueId>(
          domain_sizes[static_cast<size_t>(attrs[j])]);
    }
    l.pc_codes_.reserve(static_cast<size_t>(l.pc_.num_groups()));
    for (int64_t g = 0; g < l.pc_.num_groups(); ++g) {
      const ValueId* key = l.pc_.key(g);
      int64_t code = 0;
      for (size_t j = 0; j < attrs.size(); ++j) {
        int64_t slot = IsNull(key[j])
                           ? static_cast<int64_t>(l.domain_sizes_[j])
                           : static_cast<int64_t>(key[j]);
        code += slot * l.radix_mult_[j];
      }
      l.pc_codes_.push_back(code);
    }
    PCBL_DCHECK(std::is_sorted(l.pc_codes_.begin(), l.pc_codes_.end()));
  }
  return l;
}

int64_t Label::LookupPcKey(const ValueId* key) const {
  int width = pc_.key_width();
  if (width == 0) return attrs_.empty() ? total_rows_ : 0;
  if (encodable_) {
    int64_t code = 0;
    for (int j = 0; j < width; ++j) {
      size_t sj = static_cast<size_t>(j);
      int64_t slot = IsNull(key[j])
                         ? static_cast<int64_t>(domain_sizes_[sj])
                         : static_cast<int64_t>(key[j]);
      code += slot * radix_mult_[sj];
    }
    auto it = std::lower_bound(pc_codes_.begin(), pc_codes_.end(), code);
    if (it == pc_codes_.end() || *it != code) return 0;
    return pc_.count(it - pc_codes_.begin());
  }
  // Lexicographic binary search over the flat key array.
  int64_t lo = 0;
  int64_t hi = pc_.num_groups();
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    const ValueId* k = pc_.key(mid);
    if (std::lexicographical_compare(k, k + width, key, key + width)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < pc_.num_groups() &&
      std::equal(key, key + width, pc_.key(lo))) {
    return pc_.count(lo);
  }
  return 0;
}

int64_t Label::RestrictedCount(const Pattern& p) const {
  AttrMask bound = p.attributes().Intersect(attrs_);
  if (bound == attrs_) {
    // Complete assignment over S: exact PC lookup.
    if (attrs_.empty()) return total_rows_;
    std::vector<ValueId> key(static_cast<size_t>(pc_.key_width()));
    for (const PatternTerm& t : p.terms()) {
      int pos = attr_pos_[static_cast<size_t>(t.attr)];
      if (pos >= 0) key[static_cast<size_t>(pos)] = t.value;
    }
    return LookupPcKey(key.data());
  }
  if (bound.empty()) return total_rows_;
  // Marginal: sum PC entries agreeing with p on the bound attributes.
  std::vector<std::pair<int, ValueId>> checks;  // (position in S, value)
  for (const PatternTerm& t : p.terms()) {
    int pos = t.attr < static_cast<int>(attr_pos_.size())
                  ? attr_pos_[static_cast<size_t>(t.attr)]
                  : -1;
    if (pos >= 0) checks.emplace_back(pos, t.value);
  }
  int64_t total = 0;
  for (int64_t g = 0; g < pc_.num_groups(); ++g) {
    const ValueId* key = pc_.key(g);
    bool match = true;
    for (const auto& [pos, v] : checks) {
      if (key[pos] != v) {
        match = false;
        break;
      }
    }
    if (match) total += pc_.count(g);
  }
  return total;
}

int64_t Label::RestrictedCountForCodes(const ValueId* codes) const {
  if (attrs_.empty()) return total_rows_;
  int width = pc_.key_width();
  // Gather the S-positions from the full code row.
  ValueId stack_key[kMaxAttributes];
  const std::vector<int>& attrs = pc_.attrs();
  for (int j = 0; j < width; ++j) {
    stack_key[j] = codes[attrs[static_cast<size_t>(j)]];
  }
  return LookupPcKey(stack_key);
}

double Label::EstimateCount(const Pattern& p) const {
  double est = static_cast<double>(RestrictedCount(p));
  for (const PatternTerm& t : p.terms()) {
    if (attrs_.Test(t.attr)) continue;
    est *= static_cast<double>(vc_->Count(t.attr, t.value)) *
           inv_totals_[static_cast<size_t>(t.attr)];
  }
  return est;
}

double Label::EstimateFullPattern(const ValueId* codes, int width) const {
  double est = static_cast<double>(RestrictedCountForCodes(codes));
  if (est == 0.0) return 0.0;
  for (int a = 0; a < width; ++a) {
    if (attrs_.Test(a)) continue;
    est *= static_cast<double>(vc_->Count(a, codes[a])) *
           inv_totals_[static_cast<size_t>(a)];
  }
  return est;
}

double Label::AbsoluteError(const Pattern& p, int64_t actual) const {
  double est = EstimateCount(p);
  double diff = static_cast<double>(actual) - est;
  return diff < 0 ? -diff : diff;
}

}  // namespace pcbl
