// BoundPortableLabel — a PortableLabel re-attached to a concrete table.
//
// The intended deployment (Sec. I) ships a label as metadata next to a
// dataset; a consumer who later obtains the data wants to check the label
// against it (or against a successor version of the data). Binding
// translates the label's attribute names and value strings into the
// table's dictionary codes once, producing a CardinalityEstimator that can
// be evaluated with the ordinary error machinery — e.g. by the `pcbl
// error` CLI command and by drift checks after appends.
//
// Binding is name-based and strict on attributes: every attribute the
// label mentions must exist in the table's schema. Values the table has
// never seen bind to "absent" and contribute zero counts (the label then
// simply predicts 0 for patterns using them).
#ifndef PCBL_CORE_BOUND_LABEL_H_
#define PCBL_CORE_BOUND_LABEL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/portable_label.h"
#include "relation/table.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

/// A portable label translated into one table's code space.
class BoundPortableLabel : public CardinalityEstimator {
 public:
  /// Binds `label` to `table` by attribute name. Fails when the label
  /// names an attribute the table lacks, or when the label is internally
  /// inconsistent (PC rows not matching the declared attribute set).
  static Result<BoundPortableLabel> Bind(const PortableLabel& label,
                                         const Table& table);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "PCBL-bound"; }

  /// |PC| of the underlying label.
  int64_t FootprintEntries() const override {
    return static_cast<int64_t>(pc_counts_.size());
  }

  /// The label's attribute set S, as table attribute indices.
  AttrMask attributes() const { return attrs_; }

  /// |D| recorded in the label (not the bound table's row count).
  int64_t label_total_rows() const { return total_rows_; }

 private:
  BoundPortableLabel() = default;

  // c_D(p|S) from PC: exact lookup when all of S is bound, otherwise a
  // containment sum. `bound` holds a code per table attribute
  // (kNullValue = unbound).
  double RestrictedCount(const std::vector<ValueId>& bound) const;

  int width_ = 0;
  int64_t total_rows_ = 0;
  AttrMask attrs_;
  std::vector<int> s_attrs_;  // members of S in increasing order
  // VC translated to table codes: vc_counts_[attr][code], plus the
  // per-attribute denominator.
  std::vector<std::vector<int64_t>> vc_counts_;
  std::vector<double> inv_totals_;
  // PC keys (codes over s_attrs_, in order) -> count. kNullValue inside a
  // key marks a label value the table does not know (never matches).
  std::map<std::vector<ValueId>, int64_t> pc_;
  std::vector<int64_t> pc_counts_;  // flat copy, for footprint/iteration
};

}  // namespace pcbl

#endif  // PCBL_CORE_BOUND_LABEL_H_
