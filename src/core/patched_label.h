// PatchedLabel — a label plus an exact-count "patch list" for the patterns
// it estimates worst.
//
// The paper's conclusion (Sec. II-C / VI) defers "more complex approaches
// [that] consider overlapping combinations of patterns [and] partial
// patterns". This module implements the simplest such combination that
// stays within the label cost model: spend part of the size budget B_s on
// an ordinary label L_S(D) (Algorithm 1) and the remainder on k exact
// counts of the full patterns whose base estimate is furthest from the
// truth. Each patch costs one count entry — the same unit as one PC row —
// so a PatchedLabel with base size b and k patches competes at footprint
// b + k against a plain label of size b + k.
//
// Estimation is additive-corrective:
//
//   Est(p) = Est_base(p) + Σ_{q ∈ patches, q satisfies p} (c_D(q) − Est_base(q))
//
// where a (full) patched pattern q satisfies p when the patched row matches
// every term of p. A patched full pattern therefore estimates exactly; a
// partial pattern inherits the corrections of every patch below it, which
// repairs the contribution of the patched outlier rows to its marginal.
// The empty pattern is special-cased to the base estimate (it is already
// exact there, |D|).
#ifndef PCBL_CORE_PATCHED_LABEL_H_
#define PCBL_CORE_PATCHED_LABEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/error.h"
#include "core/estimator.h"
#include "core/label.h"
#include "pattern/full_pattern_index.h"
#include "pattern/pattern.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// A base label corrected by exact counts of its worst-estimated full
/// patterns.
class PatchedLabel : public CardinalityEstimator {
 public:
  /// Builds a patched estimator: ranks every full pattern of `index` by
  /// |c_D(p) − Est_base(p)| and patches the `num_patches` worst (ties break
  /// toward the higher true count, then the index order, so construction is
  /// deterministic). `index` must be built over the table `base` labels.
  PatchedLabel(Label base, const FullPatternIndex& index, int num_patches);

  double EstimateCount(const Pattern& p) const override;
  double EstimateFullPattern(const ValueId* codes, int width) const override;
  std::string name() const override { return "PCBL-patched"; }

  /// |PC_base| + #patches — both priced in count entries.
  int64_t FootprintEntries() const override {
    return base_.size() + num_patches();
  }

  const Label& base() const { return base_; }
  int64_t num_patches() const {
    return static_cast<int64_t>(exact_counts_.size());
  }

  /// Codes of patch `i` (width() values, no NULLs).
  const ValueId* patch_codes(int64_t i) const {
    return patch_codes_.data() + static_cast<size_t>(i) * width_;
  }
  /// Exact count stored for patch `i`.
  int64_t patch_count(int64_t i) const {
    return exact_counts_[static_cast<size_t>(i)];
  }
  /// c_D(q_i) − Est_base(q_i) for patch `i`.
  double patch_delta(int64_t i) const {
    return deltas_[static_cast<size_t>(i)];
  }
  int width() const { return width_; }

 private:
  // Index of the patch with these full-row codes, or -1.
  int64_t FindPatch(const ValueId* codes) const;

  Label base_;
  int width_ = 0;
  std::vector<ValueId> patch_codes_;  // flat, num_patches * width
  std::vector<int64_t> exact_counts_;
  std::vector<double> deltas_;
  // hash(codes) -> patch indices with that hash (collisions resolved by
  // code comparison).
  std::unordered_map<uint64_t, std::vector<int64_t>> by_hash_;
};

/// Options of the patched-label budget-split search.
struct PatchedSearchOptions {
  /// Total footprint budget shared by the base label and the patches.
  int64_t total_bound = 100;
  /// Patch counts to try; values with total_bound − k < min_base_bound are
  /// skipped. k = 0 (the plain label) is always evaluated.
  std::vector<int> patch_splits = {1, 2, 4, 8, 16, 32};
  /// Smallest base-label bound worth searching.
  int64_t min_base_bound = 4;
  /// The scalar minimized across splits.
  OptimizationMetric metric = OptimizationMetric::kMaxAbsolute;
};

/// One evaluated budget split (for ablation output).
struct PatchedSplitInfo {
  int num_patches = 0;
  int64_t base_bound = 0;
  int64_t base_size = 0;
  double metric_value = 0.0;
  ErrorReport error;
};

/// Outcome of SearchPatchedLabel.
struct PatchedSearchResult {
  /// Attribute set of the winning base label.
  AttrMask base_attrs;
  /// Patches the winning split spent.
  int num_patches = 0;
  /// Total footprint actually used (base |PC| + patches).
  int64_t total_size = 0;
  /// Exact error of the winning estimator over P_A.
  ErrorReport error;
  /// Every split evaluated, in evaluation order (k ascending).
  std::vector<PatchedSplitInfo> splits;
  /// The winning estimator.
  std::shared_ptr<PatchedLabel> estimator;
};

/// Sweeps the budget between base label and patch list: for each k, runs
/// Algorithm 1 with bound total_bound − k, patches the k worst patterns,
/// and keeps the split with the smallest metric (ties toward fewer
/// patches). Errors are exact over P_A.
Result<PatchedSearchResult> SearchPatchedLabel(
    const Table& table, const PatchedSearchOptions& options);

}  // namespace pcbl

#endif  // PCBL_CORE_PATCHED_LABEL_H_
