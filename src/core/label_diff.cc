#include "core/label_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "util/str.h"

namespace pcbl {

namespace {

// name -> position in attribute_names.
std::map<std::string, size_t> NameIndex(const PortableLabel& label) {
  std::map<std::string, size_t> out;
  for (size_t i = 0; i < label.attribute_names.size(); ++i) {
    out.emplace(label.attribute_names[i], i);
  }
  return out;
}

AttributeShift ShiftFor(const std::string& name,
                        const std::vector<std::pair<std::string, int64_t>>&
                            old_counts,
                        const std::vector<std::pair<std::string, int64_t>>&
                            new_counts) {
  AttributeShift shift;
  shift.attribute = name;
  int64_t old_total = 0;
  int64_t new_total = 0;
  std::map<std::string, std::pair<int64_t, int64_t>> merged;
  for (const auto& [value, count] : old_counts) {
    merged[value].first += count;
    old_total += count;
  }
  for (const auto& [value, count] : new_counts) {
    merged[value].second += count;
    new_total += count;
  }
  double tv = 0.0;
  for (const auto& [value, counts] : merged) {
    const double p = old_total > 0 ? static_cast<double>(counts.first) /
                                         static_cast<double>(old_total)
                                   : 0.0;
    const double q = new_total > 0 ? static_cast<double>(counts.second) /
                                         static_cast<double>(new_total)
                                   : 0.0;
    tv += std::abs(p - q);
    if (counts.first == 0) shift.added_values.push_back(value);
    if (counts.second == 0) shift.removed_values.push_back(value);
  }
  shift.total_variation = tv / 2.0;
  return shift;
}

}  // namespace

double LabelDiff::max_total_variation() const {
  double best = 0.0;
  for (const AttributeShift& s : shifts) {
    best = std::max(best, s.total_variation);
  }
  return best;
}

LabelDiff DiffLabels(const PortableLabel& old_label,
                     const PortableLabel& new_label) {
  LabelDiff diff;
  diff.old_rows = old_label.total_rows;
  diff.new_rows = new_label.total_rows;

  const auto old_index = NameIndex(old_label);
  const auto new_index = NameIndex(new_label);
  for (const auto& [name, pos] : new_index) {
    if (!old_index.contains(name)) diff.added_attributes.push_back(name);
  }
  for (const auto& [name, pos] : old_index) {
    if (!new_index.contains(name)) diff.removed_attributes.push_back(name);
  }

  // Marginal shifts over the common attributes.
  for (const auto& [name, old_pos] : old_index) {
    const auto it = new_index.find(name);
    if (it == new_index.end()) continue;
    diff.shifts.push_back(ShiftFor(name, old_label.value_counts[old_pos],
                                   new_label.value_counts[it->second]));
  }
  std::stable_sort(diff.shifts.begin(), diff.shifts.end(),
                   [](const AttributeShift& a, const AttributeShift& b) {
                     return a.total_variation > b.total_variation;
                   });

  // PC comparison requires the same S (by name, order-insensitive).
  std::vector<std::string> old_s;
  for (int i : old_label.label_attributes) {
    old_s.push_back(old_label.attribute_names[static_cast<size_t>(i)]);
  }
  std::vector<std::string> new_s;
  for (int i : new_label.label_attributes) {
    new_s.push_back(new_label.attribute_names[static_cast<size_t>(i)]);
  }
  std::vector<std::string> old_sorted = old_s;
  std::vector<std::string> new_sorted = new_s;
  std::sort(old_sorted.begin(), old_sorted.end());
  std::sort(new_sorted.begin(), new_sorted.end());
  diff.comparable_patterns = !old_s.empty() && old_sorted == new_sorted;
  diff.s_attribute_names = old_s;
  if (!diff.comparable_patterns) return diff;

  // Permutation taking a new-label PC row into the old label's S order.
  std::vector<size_t> new_to_old(new_s.size());
  for (size_t j = 0; j < new_s.size(); ++j) {
    new_to_old[j] = static_cast<size_t>(
        std::find(old_s.begin(), old_s.end(), new_s[j]) - old_s.begin());
  }

  std::map<std::vector<std::string>, std::pair<int64_t, int64_t>> merged;
  for (const auto& [values, count] : old_label.pattern_counts) {
    merged[values].first += count;
  }
  for (const auto& [values, count] : new_label.pattern_counts) {
    std::vector<std::string> reordered(values.size());
    for (size_t j = 0; j < values.size(); ++j) {
      reordered[new_to_old[j]] = values[j];
    }
    merged[std::move(reordered)].second += count;
  }
  for (auto& [values, counts] : merged) {
    if (counts.first == counts.second) continue;
    PatternChange change;
    change.values = values;
    change.old_count = counts.first;
    change.new_count = counts.second;
    diff.pattern_changes.push_back(std::move(change));
  }
  std::stable_sort(diff.pattern_changes.begin(), diff.pattern_changes.end(),
                   [](const PatternChange& a, const PatternChange& b) {
                     return std::llabs(a.new_count - a.old_count) >
                            std::llabs(b.new_count - b.old_count);
                   });
  return diff;
}

std::string RenderLabelDiff(const LabelDiff& diff, int max_rows) {
  std::string out;
  out += StrFormat("rows: %lld -> %lld (%+lld)\n",
                   static_cast<long long>(diff.old_rows),
                   static_cast<long long>(diff.new_rows),
                   static_cast<long long>(diff.new_rows - diff.old_rows));
  if (!diff.added_attributes.empty()) {
    out += "attributes added:   " + Join(diff.added_attributes, ", ") + "\n";
  }
  if (!diff.removed_attributes.empty()) {
    out += "attributes removed: " + Join(diff.removed_attributes, ", ") +
           "\n";
  }

  out += "\nmarginal shifts (total variation):\n";
  int shown = 0;
  for (const AttributeShift& s : diff.shifts) {
    if (max_rows > 0 && shown >= max_rows) {
      out += StrFormat("  ... %zu more\n", diff.shifts.size() -
                                               static_cast<size_t>(shown));
      break;
    }
    ++shown;
    out += StrFormat("  %-28s %.4f", s.attribute.c_str(),
                     s.total_variation);
    if (!s.added_values.empty()) {
      out += StrFormat("  (+%zu values)", s.added_values.size());
    }
    if (!s.removed_values.empty()) {
      out += StrFormat("  (-%zu values)", s.removed_values.size());
    }
    out += "\n";
  }

  if (!diff.comparable_patterns) {
    out += "\npattern counts: not comparable (labels use different "
           "attribute sets)\n";
    return out;
  }
  out += StrFormat("\npattern count changes over {%s}: %zu\n",
                   Join(diff.s_attribute_names, ", ").c_str(),
                   diff.pattern_changes.size());
  shown = 0;
  for (const PatternChange& c : diff.pattern_changes) {
    if (max_rows > 0 && shown >= max_rows) {
      out += StrFormat("  ... %zu more\n",
                       diff.pattern_changes.size() -
                           static_cast<size_t>(shown));
      break;
    }
    ++shown;
    const char* tag = c.old_count == 0   ? "appeared "
                      : c.new_count == 0 ? "vanished "
                                         : "changed  ";
    out += StrFormat("  %s %-48s %lld -> %lld\n", tag,
                     Join(c.values, ", ").c_str(),
                     static_cast<long long>(c.old_count),
                     static_cast<long long>(c.new_count));
  }
  return out;
}

}  // namespace pcbl
