// ASCII rendering of a label in the style of the paper's Fig. 1: the
// dataset's total size, the VC section (per-attribute value counts with
// percentages), the PC section (the stored pattern counts), and an
// optional error summary (average / maximal error, standard deviation).
#ifndef PCBL_CORE_RENDER_H_
#define PCBL_CORE_RENDER_H_

#include <string>

#include "core/error.h"
#include "core/portable_label.h"

namespace pcbl {

/// Rendering knobs.
struct RenderOptions {
  /// Show at most this many values per attribute in the VC section
  /// (most frequent first); 0 means unlimited.
  int max_values_per_attribute = 12;
  /// Show at most this many PC rows; 0 means unlimited.
  int max_pattern_rows = 40;
  /// Append the error summary section when a report is supplied.
  bool include_error_summary = true;
};

/// Renders the Fig. 1-style nutrition label. `error` may be null.
std::string RenderNutritionLabel(const PortableLabel& label,
                                 const ErrorReport* error = nullptr,
                                 const RenderOptions& options = {});

}  // namespace pcbl

#endif  // PCBL_CORE_RENDER_H_
