// Estimation-error evaluation (Definition 2.13 and the q-error metric of
// Sec. II-B "Error metric").
//
// Err(l, P) is the maximal absolute error over the pattern set P; the
// experiments also report mean absolute error, its standard deviation, and
// max/mean q-error. Two evaluation modes are provided:
//
//  * kExact            — scans every pattern of P.
//  * kEarlyTermination — the paper's Sec. IV-C optimization: patterns are
//    visited in descending count order; once the next pattern's true count
//    drops below the running maximal error, scanning stops. This assumes
//    remaining (low-count) patterns cannot *over*-estimate beyond the
//    running max — true in practice for these labels, and validated against
//    kExact by the test suite; kExact is the certified mode.
#ifndef PCBL_CORE_ERROR_H_
#define PCBL_CORE_ERROR_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "pattern/full_pattern_index.h"
#include "pattern/pattern.h"
#include "relation/table.h"

namespace pcbl {

/// How the maximal error scan terminates.
enum class ErrorMode {
  kExact,
  kEarlyTermination,
};

/// Summary of estimation error over a pattern set.
struct ErrorReport {
  /// max_p |c_D(p) − Est(p)| — the paper's Err(l, P).
  double max_abs = 0.0;
  /// Mean absolute error over the evaluated patterns.
  double mean_abs = 0.0;
  /// Population standard deviation of the absolute error.
  double std_abs = 0.0;
  /// max_p q-error, with est := 1 when the estimate is 0 (Sec. IV-B).
  double max_q = 0.0;
  /// Mean q-error.
  double mean_q = 0.0;
  /// Patterns actually examined (< total under early termination).
  int64_t evaluated = 0;
  /// |P|.
  int64_t total = 0;
  /// True when the scan stopped early.
  bool early_terminated = false;
};

/// q-error of one estimate (est clamped to 1 when zero, per the paper).
double QError(int64_t actual, double estimate);

/// Evaluates an estimator against P = P_A, the full patterns of the
/// dataset (`index` must be built over the same table the estimator
/// describes). Mean/std/q statistics cover the evaluated prefix only when
/// early termination fires.
ErrorReport EvaluateOverFullPatterns(const FullPatternIndex& index,
                                     const CardinalityEstimator& estimator,
                                     ErrorMode mode = ErrorMode::kExact);

/// Evaluates an estimator against an explicit pattern set with known true
/// counts (`actuals[i]` = c_D(patterns[i])). Always exact.
ErrorReport EvaluateOverPatterns(const std::vector<Pattern>& patterns,
                                 const std::vector<int64_t>& actuals,
                                 const CardinalityEstimator& estimator);

class PatternSet;

/// Evaluates an estimator against a PatternSet (Definition 2.15's
/// user-chosen P). The set is count-descending, so kEarlyTermination
/// applies as in Sec. IV-C. Zero-count patterns contribute absolute error
/// but are skipped for q-error.
ErrorReport EvaluateOverPatternSet(const PatternSet& set,
                                   const CardinalityEstimator& estimator,
                                   ErrorMode mode = ErrorMode::kExact);

/// Which scalar of ErrorReport the search minimizes. The paper's primary
/// metric is the maximal absolute error; Sec. II-B notes the problem and
/// solution carry over to q-error.
enum class OptimizationMetric {
  kMaxAbsolute,
  kMeanAbsolute,
  kMaxQError,
  kMeanQError,
};

/// Extracts the chosen metric from a report.
double MetricValue(const ErrorReport& report, OptimizationMetric metric);

/// Human-readable metric name.
const char* MetricName(OptimizationMetric metric);

}  // namespace pcbl

#endif  // PCBL_CORE_ERROR_H_
