// Fitness-for-use warnings derived from a label alone.
//
// The paper's introduction motivates labels with exactly this workflow:
// "Once the count information is available, it can be used to develop
// usecase-specific metadata warnings such as 'dangerous intersected
// attribute combinations' or 'inadequate representation of a protected
// group'" (Sec. I). This module runs that audit against a PortableLabel —
// no access to the underlying data — enumerating attribute-value
// intersections and flagging:
//
//   * kUnderrepresented — an intersection's estimated count falls below a
//     support threshold (the Hispanic-women COMPAS scenario);
//   * kSkewed — a single intersection holds more than a threshold share
//     of the data (Sec. I's "high percentage of data that represents the
//     same group");
//   * kCorrelated — a pair's estimated count deviates from its
//     independence expectation by more than a threshold factor (Sec. I's
//     "potential dependent or correlated attributes"). Only pairs inside
//     the label's S can deviate — for all others the label itself
//     estimates via independence — so these warnings are exactly the
//     dependencies the label stored evidence for.
#ifndef PCBL_CORE_WARNINGS_H_
#define PCBL_CORE_WARNINGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/portable_label.h"
#include "util/status.h"

namespace pcbl {

/// What a FitnessWarning flags.
enum class WarningKind {
  kUnderrepresented,
  kSkewed,
  kCorrelated,
};

/// Human-readable kind name ("underrepresented", ...).
const char* WarningKindName(WarningKind kind);

/// One flagged intersection.
struct FitnessWarning {
  WarningKind kind = WarningKind::kUnderrepresented;
  /// The intersection, as (attribute, value) terms.
  std::vector<std::pair<std::string, std::string>> group;
  /// The label's estimate for the intersection.
  double estimated = 0.0;
  /// What the estimate was compared against: the support threshold
  /// (underrepresented), the share threshold in rows (skewed), or the
  /// independence expectation (correlated).
  double reference = 0.0;
  /// Renders "gender=Female, race=Hispanic".
  std::string GroupString() const;
};

/// Audit thresholds.
struct AuditOptions {
  /// Intersections estimated below this count are underrepresented.
  int64_t min_group_count = 100;
  /// Intersections estimated above this share of |D| are skew warnings.
  double max_group_share = 0.5;
  /// Pairs whose estimate deviates from independence by at least this
  /// factor (either direction; both sides clamped to >= 1) are flagged
  /// as correlated.
  double correlation_factor = 2.0;
  /// Intersection arity scanned for representation/skew (1..max_arity).
  int max_arity = 2;
  /// Skip attribute combinations whose value cross-product exceeds this
  /// (keeps the audit label-only and fast on wide domains).
  int64_t max_groups_per_combination = 200000;
};

/// Estimates the count of a pattern given as (attribute, value) terms —
/// the signature of PortableLabel::EstimateCount. An audit evaluates one
/// estimate per enumerated intersection, so a caller holding an indexed
/// form of the label (api::LabelArtifact) can supply its accelerated
/// estimator here; results must be identical to the label's own.
using PatternEstimator = std::function<Result<double>(
    const std::vector<std::pair<std::string, std::string>>&)>;

/// Audits the intersections of the named attributes (every non-empty
/// subset up to max_arity, every value combination from the label's VC).
/// When `attributes` is empty, all attributes of the label are used.
/// Warnings are ordered: underrepresented (ascending estimate), then
/// skewed (descending estimate), then correlated (descending deviation).
/// `estimator` replaces label.EstimateCount for the per-intersection
/// estimates when non-null; it must be numerically identical (the audit's
/// thresholds compare raw doubles).
Result<std::vector<FitnessWarning>> AuditLabel(
    const PortableLabel& label, std::vector<std::string> attributes,
    const AuditOptions& options = {},
    const PatternEstimator& estimator = nullptr);

}  // namespace pcbl

#endif  // PCBL_CORE_WARNINGS_H_
