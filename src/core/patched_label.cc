#include "core/patched_label.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>

#include "core/search.h"
#include "util/hash.h"
#include "util/logging.h"

namespace pcbl {

namespace {

// Ranks pattern indices by absolute base-estimate error, worst first.
// Ties break toward the higher true count, then the smaller index, so the
// selection is deterministic for equal-error patterns.
std::vector<int64_t> WorstPatterns(const Label& base,
                                   const FullPatternIndex& index,
                                   int64_t k) {
  const int64_t n = index.num_patterns();
  k = std::min(k, n);
  if (k <= 0) return {};
  std::vector<double> errors(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double est = base.EstimateFullPattern(index.codes(i), index.width());
    errors[static_cast<size_t>(i)] =
        std::abs(static_cast<double>(index.count(i)) - est);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  const auto worse = [&](int64_t a, int64_t b) {
    const double ea = errors[static_cast<size_t>(a)];
    const double eb = errors[static_cast<size_t>(b)];
    if (ea != eb) return ea > eb;
    if (index.count(a) != index.count(b)) return index.count(a) > index.count(b);
    return a < b;
  };
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(), worse);
  order.resize(static_cast<size_t>(k));
  std::sort(order.begin(), order.end(), worse);
  return order;
}

}  // namespace

PatchedLabel::PatchedLabel(Label base, const FullPatternIndex& index,
                           int num_patches)
    : base_(std::move(base)), width_(index.width()) {
  const std::vector<int64_t> picked =
      WorstPatterns(base_, index, num_patches);
  patch_codes_.reserve(picked.size() * static_cast<size_t>(width_));
  exact_counts_.reserve(picked.size());
  deltas_.reserve(picked.size());
  for (int64_t i : picked) {
    const ValueId* codes = index.codes(i);
    const int64_t patch_index = static_cast<int64_t>(exact_counts_.size());
    patch_codes_.insert(patch_codes_.end(), codes, codes + width_);
    exact_counts_.push_back(index.count(i));
    deltas_.push_back(static_cast<double>(index.count(i)) -
                      base_.EstimateFullPattern(codes, width_));
    by_hash_[HashCodes(codes, static_cast<size_t>(width_))].push_back(
        patch_index);
  }
}

int64_t PatchedLabel::FindPatch(const ValueId* codes) const {
  const auto it = by_hash_.find(HashCodes(codes, static_cast<size_t>(width_)));
  if (it == by_hash_.end()) return -1;
  for (int64_t i : it->second) {
    if (std::memcmp(patch_codes(i), codes,
                    sizeof(ValueId) * static_cast<size_t>(width_)) == 0) {
      return i;
    }
  }
  return -1;
}

double PatchedLabel::EstimateFullPattern(const ValueId* codes,
                                         int width) const {
  if (width == width_) {
    const int64_t i = FindPatch(codes);
    // A full-width pattern can only be satisfied by an identical patch, so
    // the additive correction collapses to the stored exact count.
    if (i >= 0) return static_cast<double>(exact_counts_[static_cast<size_t>(i)]);
    return base_.EstimateFullPattern(codes, width);
  }
  return CardinalityEstimator::EstimateFullPattern(codes, width);
}

double PatchedLabel::EstimateCount(const Pattern& p) const {
  // The empty pattern is exact in the base (|D|); corrections only drift it.
  if (p.empty()) return base_.EstimateCount(p);
  double est = base_.EstimateCount(p);
  const auto& terms = p.terms();
  const int64_t n = num_patches();
  for (int64_t i = 0; i < n; ++i) {
    const ValueId* codes = patch_codes(i);
    bool satisfies = true;
    for (const PatternTerm& t : terms) {
      if (codes[t.attr] != t.value) {
        satisfies = false;
        break;
      }
    }
    if (satisfies) est += deltas_[static_cast<size_t>(i)];
  }
  return est;
}

Result<PatchedSearchResult> SearchPatchedLabel(
    const Table& table, const PatchedSearchOptions& options) {
  if (options.total_bound < 1) {
    return InvalidArgumentError("total_bound must be positive");
  }
  if (options.min_base_bound < 1) {
    return InvalidArgumentError("min_base_bound must be positive");
  }

  // Deduplicated split list, always including the plain label (k = 0).
  std::vector<int> splits = {0};
  for (int k : options.patch_splits) {
    if (k <= 0) continue;
    if (options.total_bound - k < options.min_base_bound) continue;
    splits.push_back(k);
  }
  std::sort(splits.begin(), splits.end());
  splits.erase(std::unique(splits.begin(), splits.end()), splits.end());

  LabelSearch search(table);
  const FullPatternIndex& index = search.full_patterns();

  PatchedSearchResult best;
  bool have_best = false;
  for (int k : splits) {
    SearchOptions base_options;
    base_options.size_bound = options.total_bound - k;
    base_options.metric = options.metric;
    SearchResult base = search.TopDown(base_options);
    auto estimator =
        std::make_shared<PatchedLabel>(std::move(base.label), index, k);
    const ErrorReport report =
        EvaluateOverFullPatterns(index, *estimator, ErrorMode::kExact);
    PatchedSplitInfo info;
    info.num_patches = static_cast<int>(estimator->num_patches());
    info.base_bound = base_options.size_bound;
    info.base_size = estimator->base().size();
    info.metric_value = MetricValue(report, options.metric);
    info.error = report;
    best.splits.push_back(info);
    if (!have_best || info.metric_value < MetricValue(best.error,
                                                      options.metric)) {
      have_best = true;
      best.base_attrs = base.best_attrs;
      best.num_patches = info.num_patches;
      best.total_size = estimator->FootprintEntries();
      best.error = report;
      best.estimator = std::move(estimator);
    }
  }
  PCBL_DCHECK(have_best);
  return best;
}

}  // namespace pcbl
