#include "core/portable_label.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/json.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

PortableLabel MakePortable(const Label& label, const Table& table,
                           std::string dataset_name) {
  PortableLabel out;
  out.dataset_name = std::move(dataset_name);
  out.total_rows = label.total_rows();
  const int n = table.num_attributes();
  out.attribute_names.reserve(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    out.attribute_names.push_back(table.schema().name(a));
  }
  out.value_counts.resize(static_cast<size_t>(n));
  const ValueCounts& vc = label.value_counts();
  for (int a = 0; a < n; ++a) {
    const auto& counts = vc.CountsFor(a);
    for (ValueId v = 0; v < counts.size(); ++v) {
      if (counts[v] > 0) {
        out.value_counts[static_cast<size_t>(a)].emplace_back(
            table.dictionary(a).GetString(v), counts[v]);
      }
    }
  }
  const GroupCounts& pc = label.pattern_counts();
  out.label_attributes = pc.attrs();
  out.pattern_counts.reserve(static_cast<size_t>(pc.num_groups()));
  for (int64_t g = 0; g < pc.num_groups(); ++g) {
    std::vector<std::string> values;
    values.reserve(pc.attrs().size());
    const ValueId* key = pc.key(g);
    for (size_t j = 0; j < pc.attrs().size(); ++j) {
      // PC entries over data with missing values can leave attributes
      // unbound (DESIGN.md §5a); render those as the empty string, which
      // EstimateCount treats as "does not bind this attribute".
      values.push_back(IsNull(key[j])
                           ? std::string()
                           : table.dictionary(pc.attrs()[j])
                                 .GetString(key[j]));
    }
    out.pattern_counts.emplace_back(std::move(values), pc.count(g));
  }
  return out;
}

Result<double> PortableLabel::EstimateCount(
    const std::vector<std::pair<std::string, std::string>>& pattern) const {
  // Resolve names to attribute indices.
  std::vector<std::pair<int, const std::string*>> terms;
  terms.reserve(pattern.size());
  for (const auto& [name, value] : pattern) {
    int idx = -1;
    for (size_t a = 0; a < attribute_names.size(); ++a) {
      if (attribute_names[a] == name) {
        idx = static_cast<int>(a);
        break;
      }
    }
    if (idx < 0) return NotFoundError(StrCat("unknown attribute '", name, "'"));
    for (const auto& [prev, unused] : terms) {
      (void)unused;
      if (prev == idx) {
        return InvalidArgumentError(
            StrCat("attribute '", name, "' bound twice"));
      }
    }
    terms.emplace_back(idx, &value);
  }

  auto vc_count = [&](int attr, const std::string& value) -> int64_t {
    for (const auto& [v, c] : value_counts[static_cast<size_t>(attr)]) {
      if (v == value) return c;
    }
    return 0;
  };
  auto vc_total = [&](int attr) -> int64_t {
    int64_t t = 0;
    for (const auto& [v, c] : value_counts[static_cast<size_t>(attr)]) {
      (void)v;
      t += c;
    }
    return t;
  };

  // Base: c(p|S) — marginal over PC entries matching the bound S-attrs.
  std::vector<std::pair<size_t, const std::string*>> bound;  // (pos in S, v)
  for (const auto& [attr, value] : terms) {
    for (size_t j = 0; j < label_attributes.size(); ++j) {
      if (label_attributes[j] == attr) {
        bound.emplace_back(j, value);
        break;
      }
    }
  }
  double est;
  if (bound.empty()) {
    est = static_cast<double>(total_rows);
  } else {
    int64_t base = 0;
    for (const auto& [values, count] : pattern_counts) {
      bool match = true;
      for (const auto& [pos, v] : bound) {
        // An empty entry value means the stored restriction does not bind
        // this attribute — it cannot contain the queried term.
        if (values[pos].empty() || values[pos] != *v) {
          match = false;
          break;
        }
      }
      if (match) base += count;
    }
    est = static_cast<double>(base);
  }

  // Independence factors for the attributes outside S.
  for (const auto& [attr, value] : terms) {
    bool in_s = false;
    for (int a : label_attributes) {
      if (a == attr) {
        in_s = true;
        break;
      }
    }
    if (in_s) continue;
    int64_t total = vc_total(attr);
    if (total == 0) return 0.0;
    est *= static_cast<double>(vc_count(attr, *value)) /
           static_cast<double>(total);
  }
  return est;
}

std::string ToJson(const PortableLabel& label, bool pretty) {
  JsonValue root = JsonValue::Object();
  root.Set("format", JsonValue::String("pcbl-label"));
  root.Set("version", JsonValue::Int(1));
  root.Set("dataset", JsonValue::String(label.dataset_name));
  root.Set("total_rows", JsonValue::Int(label.total_rows));

  JsonValue attrs = JsonValue::Array();
  for (const std::string& name : label.attribute_names) {
    attrs.Append(JsonValue::String(name));
  }
  root.Set("attributes", std::move(attrs));

  JsonValue vc = JsonValue::Array();
  for (const auto& per_attr : label.value_counts) {
    JsonValue entries = JsonValue::Array();
    for (const auto& [value, count] : per_attr) {
      JsonValue e = JsonValue::Object();
      e.Set("value", JsonValue::String(value));
      e.Set("count", JsonValue::Int(count));
      entries.Append(std::move(e));
    }
    vc.Append(std::move(entries));
  }
  root.Set("value_counts", std::move(vc));

  JsonValue sattrs = JsonValue::Array();
  for (int a : label.label_attributes) sattrs.Append(JsonValue::Int(a));
  root.Set("label_attributes", std::move(sattrs));

  JsonValue pc = JsonValue::Array();
  for (const auto& [values, count] : label.pattern_counts) {
    JsonValue e = JsonValue::Object();
    JsonValue vals = JsonValue::Array();
    for (const std::string& v : values) vals.Append(JsonValue::String(v));
    e.Set("values", std::move(vals));
    e.Set("count", JsonValue::Int(count));
    pc.Append(std::move(e));
  }
  root.Set("pattern_counts", std::move(pc));

  return root.Dump(pretty ? 2 : -1);
}

Result<PortableLabel> PortableLabelFromJson(const std::string& json) {
  PCBL_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return InvalidArgumentError("label JSON must be an object");
  }
  PCBL_ASSIGN_OR_RETURN(const JsonValue* format, root.Find("format"));
  PCBL_ASSIGN_OR_RETURN(std::string format_str, format->GetString());
  if (format_str != "pcbl-label") {
    return InvalidArgumentError(
        StrCat("unexpected format '", format_str, "'"));
  }

  PortableLabel out;
  PCBL_ASSIGN_OR_RETURN(const JsonValue* dataset, root.Find("dataset"));
  PCBL_ASSIGN_OR_RETURN(out.dataset_name, dataset->GetString());
  PCBL_ASSIGN_OR_RETURN(const JsonValue* rows, root.Find("total_rows"));
  PCBL_ASSIGN_OR_RETURN(out.total_rows, rows->GetInt());

  PCBL_ASSIGN_OR_RETURN(const JsonValue* attrs, root.Find("attributes"));
  if (!attrs->is_array()) return InvalidArgumentError("attributes not array");
  for (const JsonValue& v : attrs->array_items()) {
    PCBL_ASSIGN_OR_RETURN(std::string name, v.GetString());
    out.attribute_names.push_back(std::move(name));
  }

  PCBL_ASSIGN_OR_RETURN(const JsonValue* vc, root.Find("value_counts"));
  if (!vc->is_array()) return InvalidArgumentError("value_counts not array");
  if (vc->array_items().size() != out.attribute_names.size()) {
    return InvalidArgumentError(
        "value_counts arity differs from attribute count");
  }
  for (const JsonValue& per_attr : vc->array_items()) {
    if (!per_attr.is_array()) {
      return InvalidArgumentError("value_counts entry not array");
    }
    std::vector<std::pair<std::string, int64_t>> entries;
    for (const JsonValue& e : per_attr.array_items()) {
      PCBL_ASSIGN_OR_RETURN(const JsonValue* value, e.Find("value"));
      PCBL_ASSIGN_OR_RETURN(const JsonValue* count, e.Find("count"));
      PCBL_ASSIGN_OR_RETURN(std::string vs, value->GetString());
      PCBL_ASSIGN_OR_RETURN(int64_t c, count->GetInt());
      entries.emplace_back(std::move(vs), c);
    }
    out.value_counts.push_back(std::move(entries));
  }

  PCBL_ASSIGN_OR_RETURN(const JsonValue* sattrs,
                        root.Find("label_attributes"));
  if (!sattrs->is_array()) {
    return InvalidArgumentError("label_attributes not array");
  }
  for (const JsonValue& v : sattrs->array_items()) {
    PCBL_ASSIGN_OR_RETURN(int64_t a, v.GetInt());
    if (a < 0 || a >= static_cast<int64_t>(out.attribute_names.size())) {
      return OutOfRangeError(StrCat("label attribute ", a, " out of range"));
    }
    out.label_attributes.push_back(static_cast<int>(a));
  }

  PCBL_ASSIGN_OR_RETURN(const JsonValue* pc, root.Find("pattern_counts"));
  if (!pc->is_array()) return InvalidArgumentError("pattern_counts not array");
  for (const JsonValue& e : pc->array_items()) {
    PCBL_ASSIGN_OR_RETURN(const JsonValue* values, e.Find("values"));
    PCBL_ASSIGN_OR_RETURN(const JsonValue* count, e.Find("count"));
    if (!values->is_array() ||
        values->array_items().size() != out.label_attributes.size()) {
      return InvalidArgumentError("pattern_counts values arity mismatch");
    }
    std::vector<std::string> vals;
    for (const JsonValue& v : values->array_items()) {
      PCBL_ASSIGN_OR_RETURN(std::string vs, v.GetString());
      vals.push_back(std::move(vs));
    }
    PCBL_ASSIGN_OR_RETURN(int64_t c, count->GetInt());
    out.pattern_counts.emplace_back(std::move(vals), c);
  }
  return out;
}

namespace {

constexpr char kBinaryMagic[4] = {'P', 'C', 'B', 'L'};
constexpr uint32_t kBinaryVersion = 1;

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutI64(std::string& out, int64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutString(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& bytes) : bytes_(bytes) {}

  Result<uint32_t> ReadU32() {
    if (pos_ + 4 > bytes_.size()) return TruncatedError();
    uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  Result<int64_t> ReadI64() {
    if (pos_ + 8 > bytes_.size()) return TruncatedError();
    int64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  Result<std::string> ReadString() {
    PCBL_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (pos_ + len > bytes_.size()) return TruncatedError();
    std::string s = bytes_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  static Status TruncatedError() {
    return InvalidArgumentError("truncated binary label");
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

std::string ToBinary(const PortableLabel& label) {
  std::string out;
  out.append(kBinaryMagic, 4);
  PutU32(out, kBinaryVersion);
  PutString(out, label.dataset_name);
  PutI64(out, label.total_rows);
  PutU32(out, static_cast<uint32_t>(label.attribute_names.size()));
  for (const std::string& name : label.attribute_names) {
    PutString(out, name);
  }
  for (const auto& per_attr : label.value_counts) {
    PutU32(out, static_cast<uint32_t>(per_attr.size()));
    for (const auto& [value, count] : per_attr) {
      PutString(out, value);
      PutI64(out, count);
    }
  }
  PutU32(out, static_cast<uint32_t>(label.label_attributes.size()));
  for (int a : label.label_attributes) {
    PutU32(out, static_cast<uint32_t>(a));
  }
  PutU32(out, static_cast<uint32_t>(label.pattern_counts.size()));
  for (const auto& [values, count] : label.pattern_counts) {
    for (const std::string& v : values) PutString(out, v);
    PutI64(out, count);
  }
  return out;
}

Result<PortableLabel> PortableLabelFromBinary(const std::string& bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kBinaryMagic, 4) != 0) {
    return InvalidArgumentError("not a PCBL binary label (bad magic)");
  }
  BinaryReader reader(bytes);
  auto magic = reader.ReadU32();
  (void)magic;  // already validated
  PCBL_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kBinaryVersion) {
    return InvalidArgumentError(
        StrCat("unsupported label version ", version));
  }
  PortableLabel out;
  PCBL_ASSIGN_OR_RETURN(out.dataset_name, reader.ReadString());
  PCBL_ASSIGN_OR_RETURN(out.total_rows, reader.ReadI64());
  PCBL_ASSIGN_OR_RETURN(uint32_t num_attrs, reader.ReadU32());
  for (uint32_t i = 0; i < num_attrs; ++i) {
    PCBL_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    out.attribute_names.push_back(std::move(name));
  }
  for (uint32_t a = 0; a < num_attrs; ++a) {
    PCBL_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
    std::vector<std::pair<std::string, int64_t>> entries;
    // Clamp the pre-allocation by what the remaining bytes could possibly
    // encode (each entry is >= 12 bytes): a corrupted count must fail with
    // a truncation Status below, not a bad_alloc here.
    entries.reserve(std::min<size_t>(n, reader.remaining() / 12));
    for (uint32_t i = 0; i < n; ++i) {
      PCBL_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
      PCBL_ASSIGN_OR_RETURN(int64_t count, reader.ReadI64());
      entries.emplace_back(std::move(value), count);
    }
    out.value_counts.push_back(std::move(entries));
  }
  PCBL_ASSIGN_OR_RETURN(uint32_t s_size, reader.ReadU32());
  for (uint32_t i = 0; i < s_size; ++i) {
    PCBL_ASSIGN_OR_RETURN(uint32_t a, reader.ReadU32());
    if (a >= num_attrs) {
      return OutOfRangeError(StrCat("label attribute ", a, " out of range"));
    }
    out.label_attributes.push_back(static_cast<int>(a));
  }
  PCBL_ASSIGN_OR_RETURN(uint32_t pc_size, reader.ReadU32());
  for (uint32_t i = 0; i < pc_size; ++i) {
    std::vector<std::string> values;
    values.reserve(s_size);
    for (uint32_t j = 0; j < s_size; ++j) {
      PCBL_ASSIGN_OR_RETURN(std::string v, reader.ReadString());
      values.push_back(std::move(v));
    }
    PCBL_ASSIGN_OR_RETURN(int64_t count, reader.ReadI64());
    out.pattern_counts.emplace_back(std::move(values), count);
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after binary label");
  }
  return out;
}

Status SaveLabel(const PortableLabel& label, const std::string& path,
                 bool binary) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return IOError(StrCat("cannot open '", path, "' for writing"));
  out << (binary ? ToBinary(label) : ToJson(label));
  if (!out) return IOError(StrCat("error writing '", path, "'"));
  return Status::Ok();
}

Result<PortableLabel> LoadLabel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return IOError(StrCat("cannot open '", path, "' for reading"));
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  if (bytes.size() >= 4 && std::memcmp(bytes.data(), kBinaryMagic, 4) == 0) {
    return PortableLabelFromBinary(bytes);
  }
  return PortableLabelFromJson(bytes);
}

}  // namespace pcbl
