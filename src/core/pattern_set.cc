#include "core/pattern_set.h"

#include <algorithm>
#include <numeric>

#include "pattern/counter.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace {

void SortByCountDescending(std::vector<Pattern>& patterns,
                           std::vector<int64_t>& counts) {
  std::vector<size_t> order(patterns.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return counts[a] > counts[b];
  });
  std::vector<Pattern> sorted_patterns;
  std::vector<int64_t> sorted_counts;
  sorted_patterns.reserve(patterns.size());
  sorted_counts.reserve(counts.size());
  for (size_t i : order) {
    sorted_patterns.push_back(std::move(patterns[i]));
    sorted_counts.push_back(counts[i]);
  }
  patterns = std::move(sorted_patterns);
  counts = std::move(sorted_counts);
}

}  // namespace

PatternSet PatternSet::FromPatterns(const Table& table,
                                    std::vector<Pattern> patterns) {
  PatternSet out;
  out.counts_.reserve(patterns.size());
  for (const Pattern& p : patterns) {
    out.counts_.push_back(CountMatches(table, p));
  }
  out.patterns_ = std::move(patterns);
  SortByCountDescending(out.patterns_, out.counts_);
  return out;
}

Result<PatternSet> PatternSet::FromPatternsAndCounts(
    std::vector<Pattern> patterns, std::vector<int64_t> counts) {
  if (patterns.size() != counts.size()) {
    return InvalidArgumentError(
        StrCat("pattern/count arity mismatch: ", patterns.size(), " vs ",
               counts.size()));
  }
  PatternSet out;
  out.patterns_ = std::move(patterns);
  out.counts_ = std::move(counts);
  SortByCountDescending(out.patterns_, out.counts_);
  return out;
}

PatternSet PatternSet::OverAttributes(const Table& table, AttrMask attrs) {
  GroupCounts gc = ComputeGroupCounts(table, attrs);
  PatternSet out;
  out.patterns_.reserve(static_cast<size_t>(gc.num_groups()));
  out.counts_.reserve(static_cast<size_t>(gc.num_groups()));
  for (int64_t g = 0; g < gc.num_groups(); ++g) {
    out.patterns_.push_back(gc.ToPattern(g));
    out.counts_.push_back(gc.count(g));
  }
  SortByCountDescending(out.patterns_, out.counts_);
  return out;
}

}  // namespace pcbl
