// SpillStore: warm-start persistence for the counting stack
// (docs/PERSISTENCE.md). A process restart — or a second process on the
// same host — repays full-table scans for state the previous process
// already computed: cached PC sets, interner dictionary deltas, appended
// rows, completed label artifacts. The spill store carries that state
// across process lifetimes as files in a cache directory, keyed by the
// 128-bit table content fingerprint and the on-disk format version.
//
// On-disk shape: every record is one file, `<envelope><payload>`.
// The fixed-size envelope is
//
//   u32  magic            "PCBS" (0x53424350 little-endian)
//   u16  format version   kFormatVersion
//   u16  record type      1 = warm state, 2 = label artifact
//   u64  fingerprint.lo   table content fingerprint
//   u64  fingerprint.hi
//   u64  payload size     bytes following the envelope
//   u64  payload checksum Checksum() over the payload bytes
//
// and every field is validated *before* any payload-sized allocation —
// the wire.cc discipline. The payload is record-type specific (see
// EncodeWarmState / EncodeLabelRecord); its internal lengths are each
// re-checked against the remaining bytes as decoding walks them. Any
// mismatch anywhere — wrong magic, foreign version, truncation, a
// flipped bit, an oversized declared length — makes the load return
// nothing and the caller fall back to a cold scan. A spill file can cost
// performance, never correctness.
//
// Crash consistency: writes go to a unique temp file in the same
// directory (payload fully written + fsync'd), then publish with one
// atomic rename, then fsync the directory. Readers therefore see either
// the old complete file or the new complete file, never a torn one —
// two processes sharing a spill directory race safely (last writer
// wins). Format evolution is by version bump: the version participates
// in the file name, so incompatible formats never even collide.
//
// Thread-safety: all methods are safe to call concurrently; the store's
// mutex only guards its counters and the temp-name sequence. It is a
// leaf lock — the store calls back into nothing.
#ifndef PCBL_PERSIST_SPILL_STORE_H_
#define PCBL_PERSIST_SPILL_STORE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "pattern/counting_service.h"
#include "pattern/service_registry.h"
#include "relation/table.h"

namespace pcbl {
namespace persist {

/// Tuning knobs of the spill store.
struct SpillStoreOptions {
  /// Cache directory (created on first use). Must be non-empty.
  std::string directory;

  /// Byte budget over all spill files in the directory. After every
  /// write the store deletes oldest-modified files until the total fits
  /// (the just-written file is kept). <= 0 means unbounded.
  int64_t budget_bytes = int64_t{1} << 30;
};

/// Observability counters (folded into ServiceRegistryStats and the CLI
/// `registry:` line). Monotonic; not part of the exactness contract.
struct SpillStoreStats {
  int64_t hits = 0;           ///< loads that validated and decoded
  int64_t misses = 0;         ///< loads with no spill file present
  int64_t rejects = 0;        ///< file present but refused (corrupt,
                              ///< foreign version, or diverged state
                              ///< where base-only was required)
  int64_t spills = 0;         ///< records written (warm states + labels)
  int64_t spilled_bytes = 0;  ///< bytes written by those records
  int64_t loaded_bytes = 0;   ///< bytes of validated records loaded
  int64_t trimmed_files = 0;  ///< files deleted by the byte budget
};

class SpillStore {
 public:
  static constexpr uint32_t kMagic = 0x53424350;  // "PCBS" little-endian
  static constexpr uint16_t kFormatVersion = 1;
  static constexpr uint16_t kWarmStateRecord = 1;
  static constexpr uint16_t kLabelRecord = 2;
  /// Envelope size: magic + version + type + fp.lo/hi + size + checksum.
  static constexpr int64_t kEnvelopeBytes = 4 + 2 + 2 + 8 + 8 + 8 + 8;

  explicit SpillStore(SpillStoreOptions options);

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  // --- pure byte codec (exposed for the format tests) ------------------

  /// Serializes a warm state under `fingerprint` (envelope + payload).
  /// `table` is the base table the state was exported over; its schema
  /// guards (attribute count, row count, per-attribute base domains)
  /// are embedded so the decoder can refuse a record that somehow got
  /// keyed under the wrong content.
  static std::string EncodeWarmState(const TableFingerprint& fingerprint,
                                     const Table& table,
                                     const ServiceWarmState& state);

  /// Validates and decodes a warm-state record. `table` is the base
  /// table the state would restore onto: the payload's schema guards
  /// (attribute count, base row count, per-attribute base domains) must
  /// match it exactly. Returns nothing on any mismatch. When
  /// `base_only` is set, a structurally valid record that carries
  /// appended rows or interner deltas is refused too (the registry's
  /// acquire path restores base-content services only).
  static std::optional<ServiceWarmState> DecodeWarmState(
      std::string_view bytes, const TableFingerprint& fingerprint,
      const Table& table, bool base_only);

  /// Serializes a completed label artifact (opaque `label_bytes`, e.g.
  /// PortableLabel::ToBinary output) under (fingerprint, query key).
  static std::string EncodeLabelRecord(const TableFingerprint& fingerprint,
                                       const QueryResultKey& key,
                                       std::string_view label_bytes);

  /// Validates a label record and returns the embedded label bytes.
  static std::optional<std::string> DecodeLabelRecord(
      std::string_view bytes, const TableFingerprint& fingerprint,
      const QueryResultKey& key);

  /// The payload checksum (seeded 64-bit chain over 8-byte strides —
  /// the fingerprint lanes' construction, one more lane).
  static uint64_t Checksum(std::string_view bytes);

  // --- file store ------------------------------------------------------

  /// Writes `state` as the warm-state record for `fingerprint`
  /// (atomic replace). False on I/O failure — never throws.
  bool PutWarmState(const TableFingerprint& fingerprint, const Table& table,
                    const ServiceWarmState& state);

  /// Loads and validates the warm-state record for `fingerprint`.
  /// Nothing on a missing file (a miss) or any validation failure (a
  /// reject); the caller proceeds cold either way.
  std::optional<ServiceWarmState> GetWarmState(
      const TableFingerprint& fingerprint, const Table& table,
      bool base_only);

  /// Writes a completed label artifact for (fingerprint, query key).
  bool PutLabelArtifact(const TableFingerprint& fingerprint,
                        const QueryResultKey& key,
                        std::string_view label_bytes);

  /// Loads a label artifact; nothing on miss or validation failure.
  std::optional<std::string> GetLabelArtifact(const TableFingerprint& fingerprint,
                                              const QueryResultKey& key);

  /// File paths (deterministic; exposed so tests can corrupt them).
  std::string WarmStatePath(const TableFingerprint& fingerprint) const;
  std::string LabelPath(const TableFingerprint& fingerprint,
                        const QueryResultKey& key) const;

  SpillStoreStats stats() const;
  const std::string& directory() const { return options_.directory; }

 private:
  // Reads a whole file; nothing if absent/unreadable. `missing` is set
  // when the path does not exist (miss vs reject attribution).
  static std::optional<std::string> ReadFile(const std::string& path,
                                             bool* missing);

  // Temp file + fsync + rename + directory fsync. False on any failure
  // (the temp file is unlinked).
  bool WriteAtomically(const std::string& path, std::string_view bytes);

  // Deletes oldest-modified spill files until the directory total fits
  // options_.budget_bytes; `keep` survives regardless.
  void TrimToBudget(const std::string& keep);

  mutable std::mutex mu_;
  SpillStoreOptions options_;
  SpillStoreStats stats_;
  uint64_t temp_sequence_ = 0;
};

}  // namespace persist
}  // namespace pcbl

#endif  // PCBL_PERSIST_SPILL_STORE_H_
