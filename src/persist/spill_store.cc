#include "persist/spill_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <system_error>
#include <utility>
#include <vector>

#include "pattern/restriction_codec.h"
#include "util/attr_mask.h"
#include "util/hash.h"
#include "util/str.h"

namespace pcbl {
namespace persist {

namespace {

// Little-endian byte writer for the spill format. Kept local: the wire
// protocol's Writer (server/wire.h) lives above the pattern layer, and
// the two formats must be free to evolve independently.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }
  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Sticky-error reader: every accessor validates the remaining length
// *before* touching bytes, and any failure latches — the wire.cc
// hostile-input discipline. Length-prefixed data is additionally checked
// against the remaining bytes before any allocation sized by it.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  bool ok() const { return ok_; }
  uint64_t remaining() const {
    return ok_ ? static_cast<uint64_t>(data_.size() - pos_) : 0;
  }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint16_t U16() {
    const uint16_t lo = U8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(U8()) << 8));
  }
  uint32_t U32() {
    const uint32_t lo = U16();
    return lo | (static_cast<uint32_t>(U16()) << 16);
  }
  uint64_t U64() {
    const uint64_t lo = U32();
    return lo | (static_cast<uint64_t>(U32()) << 32);
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  // Length-prefixed string; the declared length is validated against the
  // remaining bytes before the allocation.
  bool Str(std::string* out) {
    const uint32_t n = U32();
    if (!Need(n)) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  // Declares intent to read `count` items of `item_bytes` each; fails
  // (sticky) unless that many bytes remain. Overflow-safe.
  bool Fits(uint64_t count, uint64_t item_bytes) {
    if (!ok_) return false;
    if (item_bytes != 0 && count > remaining() / item_bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void AppendEnvelope(ByteWriter* out, uint16_t record_type,
                    const TableFingerprint& fingerprint,
                    std::string_view payload) {
  out->U32(SpillStore::kMagic);
  out->U16(SpillStore::kFormatVersion);
  out->U16(record_type);
  out->U64(fingerprint.lo);
  out->U64(fingerprint.hi);
  out->U64(payload.size());
  out->U64(SpillStore::Checksum(payload));
}

// Validates the envelope of `bytes` against (record_type, fingerprint)
// and the payload checksum; returns the payload view or nothing. No
// allocation happens here or below on a record that fails any check.
std::optional<std::string_view> CheckEnvelope(
    std::string_view bytes, uint16_t record_type,
    const TableFingerprint& fingerprint) {
  if (bytes.size() < static_cast<size_t>(SpillStore::kEnvelopeBytes)) {
    return std::nullopt;
  }
  ByteReader reader(bytes.substr(
      0, static_cast<size_t>(SpillStore::kEnvelopeBytes)));
  if (reader.U32() != SpillStore::kMagic) return std::nullopt;
  if (reader.U16() != SpillStore::kFormatVersion) return std::nullopt;
  if (reader.U16() != record_type) return std::nullopt;
  if (reader.U64() != fingerprint.lo) return std::nullopt;
  if (reader.U64() != fingerprint.hi) return std::nullopt;
  const uint64_t payload_size = reader.U64();
  const uint64_t checksum = reader.U64();
  if (!reader.ok()) return std::nullopt;
  const std::string_view payload =
      bytes.substr(static_cast<size_t>(SpillStore::kEnvelopeBytes));
  if (payload_size != payload.size()) return std::nullopt;
  if (checksum != SpillStore::Checksum(payload)) return std::nullopt;
  return payload;
}

std::string HexKey(uint64_t lo, uint64_t hi) {
  char buf[34];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi));
  return std::string(buf);
}

bool IsSpillFile(const std::filesystem::path& path) {
  return path.extension() == ".pcbls";
}

}  // namespace

SpillStore::SpillStore(SpillStoreOptions options)
    : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  // A failure here surfaces naturally as write failures / load misses.
}

uint64_t SpillStore::Checksum(std::string_view bytes) {
  // Seeded 64-bit chain over 8-byte little-endian strides, tail padded
  // with zeros, length mixed last — the table-fingerprint construction
  // with its own lane seed, so a spill checksum never aliases a
  // fingerprint lane.
  uint64_t h = 0x082efa98ec4e6c89ULL;
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, 8);
    h = HashCombine(h, word);
  }
  if (i < bytes.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = HashCombine(h, tail);
  }
  return HashCombine(h, bytes.size());
}

// --- warm-state codec -------------------------------------------------------

std::string SpillStore::EncodeWarmState(const TableFingerprint& fingerprint,
                                        const Table& table,
                                        const ServiceWarmState& state) {
  ByteWriter payload;
  const int n = table.num_attributes();
  payload.U32(static_cast<uint32_t>(n));
  payload.U64(static_cast<uint64_t>(table.num_rows()));
  for (int a = 0; a < n; ++a) {
    payload.U64(static_cast<uint64_t>(table.DomainSize(a)));
    const size_t ai = static_cast<size_t>(a);
    const std::vector<std::string>* log =
        ai < state.interner_deltas.size() ? &state.interner_deltas[ai]
                                          : nullptr;
    payload.U64(log != nullptr ? log->size() : 0);
    if (log != nullptr) {
      for (const std::string& value : *log) payload.Str(value);
    }
  }
  const uint64_t row_count =
      n > 0 ? state.appended_rows.size() / static_cast<size_t>(n) : 0;
  payload.U64(row_count);
  for (uint64_t i = 0; i < row_count * static_cast<uint64_t>(n); ++i) {
    payload.U32(state.appended_rows[static_cast<size_t>(i)]);
  }
  payload.U32(static_cast<uint32_t>(state.entries.size()));
  for (const CountingEngine::CacheSnapshotEntry& entry : state.entries) {
    payload.U64(entry.mask_bits);
    payload.U8(entry.pinned ? 1 : 0);
    const GroupCounts& counts = *entry.counts;
    const int64_t groups = counts.num_groups();
    const int width = counts.key_width();
    payload.U64(static_cast<uint64_t>(groups));
    for (int64_t g = 0; g < groups; ++g) {
      const ValueId* key = counts.key(g);
      for (int j = 0; j < width; ++j) payload.U32(key[j]);
    }
    for (int64_t g = 0; g < groups; ++g) payload.I64(counts.count(g));
  }

  const std::string body = payload.Take();
  ByteWriter record;
  AppendEnvelope(&record, kWarmStateRecord, fingerprint, body);
  std::string out = record.Take();
  out += body;
  return out;
}

std::optional<ServiceWarmState> SpillStore::DecodeWarmState(
    std::string_view bytes, const TableFingerprint& fingerprint,
    const Table& table, bool base_only) {
  const std::optional<std::string_view> payload =
      CheckEnvelope(bytes, kWarmStateRecord, fingerprint);
  if (!payload.has_value()) return std::nullopt;
  ByteReader reader(*payload);

  const int n = table.num_attributes();
  if (reader.U32() != static_cast<uint32_t>(n)) return std::nullopt;
  if (reader.U64() != static_cast<uint64_t>(table.num_rows())) {
    return std::nullopt;
  }

  ServiceWarmState state;
  state.interner_deltas.resize(static_cast<size_t>(n));
  // Effective per-attribute domains, grown below exactly as the engine
  // would grow them — the bound every cached key must respect.
  std::vector<uint64_t> eff_dom(static_cast<size_t>(n));
  uint64_t total_deltas = 0;
  for (int a = 0; a < n; ++a) {
    if (reader.U64() != static_cast<uint64_t>(table.DomainSize(a))) {
      return std::nullopt;
    }
    const uint64_t added = reader.U64();
    // Each logged value costs at least its 4-byte length prefix.
    if (!reader.Fits(added, 4)) return std::nullopt;
    std::vector<std::string>& log =
        state.interner_deltas[static_cast<size_t>(a)];
    log.resize(static_cast<size_t>(added));
    for (uint64_t i = 0; i < added; ++i) {
      if (!reader.Str(&log[static_cast<size_t>(i)])) return std::nullopt;
    }
    total_deltas += added;
    eff_dom[static_cast<size_t>(a)] =
        static_cast<uint64_t>(table.DomainSize(a)) + added;
  }

  const uint64_t row_count = reader.U64();
  if (!reader.Fits(row_count, static_cast<uint64_t>(n) * 4)) {
    return std::nullopt;
  }
  if (row_count > 0 && n > 0) {
    state.appended_rows.resize(
        static_cast<size_t>(row_count) * static_cast<size_t>(n));
    for (ValueId& code : state.appended_rows) code = reader.U32();
    if (!reader.ok()) return std::nullopt;
    // Codes extend the base code space the way TableBuilder would:
    // beyond base domain + interner deltas, each appended row can mint
    // at most one fresh code per attribute. Anything larger cannot have
    // come from a genuine export over this table.
    for (uint64_t r = 0; r < row_count; ++r) {
      for (int a = 0; a < n; ++a) {
        const ValueId code =
            state.appended_rows[static_cast<size_t>(r) * n + a];
        if (code == kNullValue) continue;
        uint64_t& dom = eff_dom[static_cast<size_t>(a)];
        if (code > dom) return std::nullopt;
        if (code == dom) ++dom;
      }
    }
  }
  if (base_only && (row_count > 0 || total_deltas > 0)) return std::nullopt;

  const uint32_t num_entries = reader.U32();
  // Each entry costs at least mask + pinned + group count.
  if (!reader.Fits(num_entries, 8 + 1 + 8)) return std::nullopt;
  state.entries.reserve(num_entries);
  for (uint32_t e = 0; e < num_entries; ++e) {
    CountingEngine::CacheSnapshotEntry entry;
    entry.mask_bits = reader.U64();
    entry.pinned = reader.U8() != 0;
    if (!reader.ok()) return std::nullopt;
    const AttrMask mask(entry.mask_bits);
    // The cache only ever holds arity >= 2 subsets of the schema.
    if (mask.Count() < 2) return std::nullopt;
    if (n < static_cast<int>(kMaxAttributes) &&
        (entry.mask_bits >> n) != 0) {
      return std::nullopt;
    }
    const std::vector<int> attrs = mask.ToIndices();
    const uint64_t width = attrs.size();
    const uint64_t groups = reader.U64();
    if (!reader.Fits(groups, width * 4 + 8)) return std::nullopt;

    auto counts = std::make_shared<GroupCounts>();
    GroupCountsAccess::mask(*counts) = mask;
    GroupCountsAccess::attrs(*counts) = attrs;
    std::vector<ValueId>& keys = GroupCountsAccess::keys(*counts);
    std::vector<int64_t>& group_counts = GroupCountsAccess::counts(*counts);
    keys.resize(static_cast<size_t>(groups * width));
    for (size_t i = 0; i < keys.size(); ++i) {
      const ValueId code = reader.U32();
      // A key cell is either kNullValue (an unbound/NULL position of a
      // restriction) or a code inside the attribute's effective domain.
      const int attr = attrs[i % static_cast<size_t>(width)];
      if (code != kNullValue &&
          code >= eff_dom[static_cast<size_t>(attr)]) {
        return std::nullopt;
      }
      keys[i] = code;
    }
    group_counts.resize(static_cast<size_t>(groups));
    for (int64_t& c : group_counts) {
      c = reader.I64();
      // Every materialized group counts at least one row; zero or
      // negative can only be corruption.
      if (c <= 0) return std::nullopt;
    }
    if (!reader.ok()) return std::nullopt;
    entry.counts = std::move(counts);
    state.entries.push_back(std::move(entry));
  }
  if (reader.remaining() != 0) return std::nullopt;
  return state;
}

// --- label-artifact codec ---------------------------------------------------

std::string SpillStore::EncodeLabelRecord(const TableFingerprint& fingerprint,
                                          const QueryResultKey& key,
                                          std::string_view label_bytes) {
  ByteWriter payload;
  payload.U64(key.lo);
  payload.U64(key.hi);
  payload.Str(label_bytes);
  const std::string body = payload.Take();
  ByteWriter record;
  AppendEnvelope(&record, kLabelRecord, fingerprint, body);
  std::string out = record.Take();
  out += body;
  return out;
}

std::optional<std::string> SpillStore::DecodeLabelRecord(
    std::string_view bytes, const TableFingerprint& fingerprint,
    const QueryResultKey& key) {
  const std::optional<std::string_view> payload =
      CheckEnvelope(bytes, kLabelRecord, fingerprint);
  if (!payload.has_value()) return std::nullopt;
  ByteReader reader(*payload);
  if (reader.U64() != key.lo) return std::nullopt;
  if (reader.U64() != key.hi) return std::nullopt;
  std::string label;
  if (!reader.Str(&label)) return std::nullopt;
  if (reader.remaining() != 0) return std::nullopt;
  return label;
}

// --- file store -------------------------------------------------------------

std::string SpillStore::WarmStatePath(
    const TableFingerprint& fingerprint) const {
  return StrCat(options_.directory, "/", HexKey(fingerprint.lo,
                fingerprint.hi), "-v",
                static_cast<int64_t>(kFormatVersion), ".warm.pcbls");
}

std::string SpillStore::LabelPath(const TableFingerprint& fingerprint,
                                  const QueryResultKey& key) const {
  return StrCat(options_.directory, "/",
                HexKey(fingerprint.lo, fingerprint.hi), "-",
                HexKey(key.lo, key.hi), "-v",
                static_cast<int64_t>(kFormatVersion), ".label.pcbls");
}

std::optional<std::string> SpillStore::ReadFile(const std::string& path,
                                                bool* missing) {
  *missing = false;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    *missing = (errno == ENOENT);
    return std::nullopt;
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool SpillStore::WriteAtomically(const std::string& path,
                                 std::string_view bytes) {
  uint64_t sequence = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequence = ++temp_sequence_;
  }
  const std::string temp =
      StrCat(path, ".tmp.", static_cast<int64_t>(::getpid()), ".",
             static_cast<int64_t>(sequence));
  const int fd = ::open(temp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp.c_str());
      return false;
    }
    written += static_cast<size_t>(n);
  }
  // The data must be durable before the rename publishes it: a crash
  // between rename and flush must never expose a published-but-empty
  // file (the checksum would catch it, but the previous complete record
  // would be lost for nothing).
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    ::unlink(temp.c_str());
    return false;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    ::unlink(temp.c_str());
    return false;
  }
  // Make the rename itself durable.
  const int dir_fd =
      ::open(options_.directory.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return true;
}

void SpillStore::TrimToBudget(const std::string& keep) {
  if (options_.budget_bytes <= 0) return;
  struct File {
    std::filesystem::path path;
    std::filesystem::file_time_type mtime;
    int64_t bytes = 0;
  };
  std::vector<File> files;
  int64_t total = 0;
  std::error_code ec;
  for (const auto& it :
       std::filesystem::directory_iterator(options_.directory, ec)) {
    if (!it.is_regular_file(ec) || !IsSpillFile(it.path())) continue;
    File file;
    file.path = it.path();
    file.mtime = it.last_write_time(ec);
    file.bytes = static_cast<int64_t>(it.file_size(ec));
    total += file.bytes;
    files.push_back(std::move(file));
  }
  if (total <= options_.budget_bytes) return;
  std::sort(files.begin(), files.end(), [](const File& a, const File& b) {
    return a.mtime < b.mtime || (a.mtime == b.mtime && a.path < b.path);
  });
  int64_t trimmed = 0;
  for (const File& file : files) {
    if (total <= options_.budget_bytes) break;
    if (file.path == keep) continue;
    if (std::filesystem::remove(file.path, ec)) {
      total -= file.bytes;
      ++trimmed;
    }
  }
  if (trimmed > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.trimmed_files += trimmed;
  }
}

bool SpillStore::PutWarmState(const TableFingerprint& fingerprint,
                              const Table& table,
                              const ServiceWarmState& state) {
  const std::string bytes = EncodeWarmState(fingerprint, table, state);
  const std::string path = WarmStatePath(fingerprint);
  if (!WriteAtomically(path, bytes)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.spills;
    stats_.spilled_bytes += static_cast<int64_t>(bytes.size());
  }
  TrimToBudget(path);
  return true;
}

std::optional<ServiceWarmState> SpillStore::GetWarmState(
    const TableFingerprint& fingerprint, const Table& table,
    bool base_only) {
  bool missing = false;
  const std::optional<std::string> bytes =
      ReadFile(WarmStatePath(fingerprint), &missing);
  std::lock_guard<std::mutex> lock(mu_);
  if (!bytes.has_value()) {
    ++(missing ? stats_.misses : stats_.rejects);
    return std::nullopt;
  }
  std::optional<ServiceWarmState> state =
      DecodeWarmState(*bytes, fingerprint, table, base_only);
  if (!state.has_value()) {
    ++stats_.rejects;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.loaded_bytes += static_cast<int64_t>(bytes->size());
  return state;
}

bool SpillStore::PutLabelArtifact(const TableFingerprint& fingerprint,
                                  const QueryResultKey& key,
                                  std::string_view label_bytes) {
  const std::string bytes =
      EncodeLabelRecord(fingerprint, key, label_bytes);
  const std::string path = LabelPath(fingerprint, key);
  if (!WriteAtomically(path, bytes)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.spills;
    stats_.spilled_bytes += static_cast<int64_t>(bytes.size());
  }
  TrimToBudget(path);
  return true;
}

std::optional<std::string> SpillStore::GetLabelArtifact(
    const TableFingerprint& fingerprint, const QueryResultKey& key) {
  bool missing = false;
  const std::optional<std::string> bytes =
      ReadFile(LabelPath(fingerprint, key), &missing);
  std::lock_guard<std::mutex> lock(mu_);
  if (!bytes.has_value()) {
    ++(missing ? stats_.misses : stats_.rejects);
    return std::nullopt;
  }
  std::optional<std::string> label =
      DecodeLabelRecord(*bytes, fingerprint, key);
  if (!label.has_value()) {
    ++stats_.rejects;
    return std::nullopt;
  }
  ++stats_.hits;
  stats_.loaded_bytes += static_cast<int64_t>(bytes->size());
  return label;
}

SpillStoreStats SpillStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace persist
}  // namespace pcbl
