#include "server/server.h"

#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "pattern/service_registry.h"
#include "server/socket_io.h"
#include "util/str.h"

namespace pcbl {
namespace server {

namespace {

/// Requests with an empty tenant all land in one bucket — quotas apply
/// to anonymous clients as a group, never bypass them.
std::string CanonicalTenant(const std::string& tenant) {
  return tenant.empty() ? "default" : tenant;
}

}  // namespace

Server::Server(Catalog* catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  PCBL_ASSIGN_OR_RETURN(listen_fd_, ListenOn(options_.address));
  PCBL_ASSIGN_OR_RETURN(bound_address_, BoundAddress(listen_fd_));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && listen_fd_ < 0 && connection_fds_.empty()) {
      // Already fully stopped.
    }
    stopping_ = true;
    // Unblock the accept loop and every handler parked in recv.
    if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
    for (int fd : connection_fds_) shutdown(fd, SHUT_RDWR);
  }
  stopped_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    CloseSocket(listen_fd_);
    listen_fd_ = -1;
    for (int fd : connection_fds_) CloseSocket(fd);
    connection_fds_.clear();
  }
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener shut down (Stop) or fatal
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        CloseSocket(fd);
        return;
      }
      connection_fds_.push_back(fd);
    }
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Server::ServeConnection(int fd) {
  while (true) {
    wire::FrameHeader header;
    std::string payload;
    Result<bool> read = ReadFrame(fd, options_.max_frame_bytes, &header,
                                  &payload);
    if (!read.ok()) {
      // A corrupt/oversized header is answered (best effort) before the
      // connection drops — framing cannot be resynchronized after it.
      if (read.status().code() == StatusCode::kInvalidArgument) {
        (void)WriteFrame(fd, wire::MessageType::kReply,
                         ErrorReplyPayload(read.status()));
      }
      break;
    }
    if (!*read) break;  // clean EOF between requests
    const std::string reply = HandleFrame(header, payload);
    if (!WriteFrame(fd, wire::MessageType::kReply, reply).ok()) break;
    if (header.type == wire::MessageType::kShutdown) {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
      stopped_cv_.notify_all();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < connection_fds_.size(); ++i) {
    if (connection_fds_[i] == fd) {
      connection_fds_.erase(connection_fds_.begin() + i);
      break;
    }
  }
  CloseSocket(fd);
}

std::string Server::HandleFrame(const wire::FrameHeader& header,
                                const std::string& payload) {
  switch (header.type) {
    case wire::MessageType::kHello:
      return HandleHello(payload);
    case wire::MessageType::kQuery:
      return HandleQuery(payload);
    case wire::MessageType::kRegister:
      return HandleRegister(payload);
    case wire::MessageType::kStats:
      return HandleStats(payload);
    case wire::MessageType::kShutdown:
      return ErrorReplyPayload(Status::Ok());
    case wire::MessageType::kReply:
      break;
  }
  return ErrorReplyPayload(
      InvalidArgumentError("a client must not send reply frames"));
}

std::string Server::ErrorReplyPayload(const Status& status,
                                      int64_t retry_after_ms) {
  wire::Writer out;
  wire::ReplyHeader header;
  header.status = status;
  header.retry_after_ms = retry_after_ms;
  wire::EncodeReplyHeader(header, &out);
  return out.Take();
}

std::string Server::HandleHello(const std::string& payload) {
  wire::Reader in(payload);
  Result<wire::HelloRequest> request = wire::DecodeHelloRequest(in);
  if (!request.ok()) return ErrorReplyPayload(request.status());
  Status done = in.Finish();
  if (!done.ok()) return ErrorReplyPayload(done);
  wire::Writer out;
  wire::EncodeReplyHeader(wire::ReplyHeader{}, &out);
  wire::HelloReply reply;
  reply.server = "pcbl serve";
  wire::EncodeHelloReply(reply, &out);
  return out.Take();
}

std::string Server::HandleQuery(const std::string& payload) {
  wire::Reader in(payload);
  Result<wire::QueryRequest> request = wire::DecodeQueryRequest(in);
  if (!request.ok()) return ErrorReplyPayload(request.status());
  Status done = in.Finish();
  if (!done.ok()) return ErrorReplyPayload(done);

  const std::string tenant = CanonicalTenant(request->tenant);
  Result<api::Dataset> dataset = catalog_->Lookup(request->dataset);
  if (!dataset.ok()) return ErrorReplyPayload(dataset.status());

  if (!AdmitQuery(tenant)) {
    if (options_.verbose) {
      std::fprintf(stderr, "[pcbl-serve] tenant=%s dataset=%s SHED\n",
                   tenant.c_str(), request->dataset.c_str());
    }
    return ErrorReplyPayload(
        ResourceExhaustedError(StrCat(
            "tenant '", tenant,
            "' is at its in-flight query quota (or the server is); "
            "retry after backoff")),
        options_.retry_after_ms);
  }

  Result<std::unique_ptr<api::Session>> session =
      CheckoutSession(tenant, request->dataset, *dataset);
  if (!session.ok()) {
    FinishQuery(tenant, /*query_ok=*/false);
    return ErrorReplyPayload(session.status());
  }

  const auto started = std::chrono::steady_clock::now();
  api::QueryResult result = (*session)->Run(request->spec);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();

  ReturnSession(tenant, request->dataset, std::move(*session));
  FinishQuery(tenant, result.status.ok());

  if (options_.verbose) {
    std::fprintf(stderr,
                 "[pcbl-serve] tenant=%s dataset=%s kind=%d status=%s "
                 "%.1fms\n",
                 tenant.c_str(), request->dataset.c_str(),
                 static_cast<int>(result.kind),
                 StatusCodeName(result.status.code()), elapsed_ms);
  }

  wire::Writer out;
  wire::EncodeReplyHeader(wire::ReplyHeader{}, &out);
  wire::EncodeQueryResult(wire::ToWireResult(result, dataset->table()),
                          &out);
  return out.Take();
}

std::string Server::HandleRegister(const std::string& payload) {
  wire::Reader in(payload);
  Result<wire::RegisterRequest> request = wire::DecodeRegisterRequest(in);
  if (!request.ok()) return ErrorReplyPayload(request.status());
  Status done = in.Finish();
  if (!done.ok()) return ErrorReplyPayload(done);
  Result<wire::RegisterReply> reply =
      catalog_->RegisterCsvText(request->dataset, request->csv_text);
  if (!reply.ok()) return ErrorReplyPayload(reply.status());
  if (options_.verbose) {
    std::fprintf(stderr,
                 "[pcbl-serve] tenant=%s registered dataset=%s rows=%lld "
                 "shared=%d\n",
                 CanonicalTenant(request->tenant).c_str(),
                 request->dataset.c_str(),
                 static_cast<long long>(reply->rows),
                 reply->shared_existing ? 1 : 0);
  }
  wire::Writer out;
  wire::EncodeReplyHeader(wire::ReplyHeader{}, &out);
  wire::EncodeRegisterReply(*reply, &out);
  return out.Take();
}

std::string Server::HandleStats(const std::string& payload) {
  wire::Reader in(payload);
  Result<wire::StatsRequest> request = wire::DecodeStatsRequest(in);
  if (!request.ok()) return ErrorReplyPayload(request.status());
  Status done = in.Finish();
  if (!done.ok()) return ErrorReplyPayload(done);
  wire::Writer out;
  wire::EncodeReplyHeader(wire::ReplyHeader{}, &out);
  wire::EncodeStatsReply(BuildStatsReply(request->tenant), &out);
  return out.Take();
}

bool Server::AdmitQuery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  if (total_inflight_ >= options_.max_inflight ||
      state.inflight >= options_.tenant_max_inflight) {
    ++state.shed;
    return false;
  }
  ++state.inflight;
  ++total_inflight_;
  return true;
}

void Server::FinishQuery(const std::string& tenant, bool query_ok) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  --state.inflight;
  --total_inflight_;
  ++state.queries;
  if (!query_ok) ++state.errors;
}

Result<std::unique_ptr<api::Session>> Server::CheckoutSession(
    const std::string& tenant, const std::string& dataset_name,
    const api::Dataset& dataset) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& pool = tenants_[tenant].idle_sessions[dataset_name];
    if (!pool.empty()) {
      std::unique_ptr<api::Session> session = std::move(pool.back());
      pool.pop_back();
      return session;
    }
  }
  // Opening is potentially expensive — never under mu_.
  api::SessionOptions session_options;
  session_options.executor_threads = options_.session_executor_threads;
  session_options.counting_cache_budget = options_.tenant_counting_budget;
  session_options.result_cache_budget = options_.tenant_result_budget;
  PCBL_ASSIGN_OR_RETURN(std::unique_ptr<api::Session> session,
                        api::Session::Open(dataset, session_options));
  std::lock_guard<std::mutex> lock(mu_);
  ++tenants_[tenant].sessions;
  return session;
}

void Server::ReturnSession(const std::string& tenant,
                           const std::string& dataset_name,
                           std::unique_ptr<api::Session> session) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].idle_sessions[dataset_name].push_back(
      std::move(session));
}

wire::StatsReply Server::BuildStatsReply(
    const std::string& tenant_filter) const {
  wire::StatsReply reply;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [tenant, state] : tenants_) {
      if (!tenant_filter.empty() && tenant != tenant_filter) continue;
      wire::TenantStatsRow row;
      row.tenant = tenant;
      row.queries = state.queries;
      row.shed = state.shed;
      row.errors = state.errors;
      row.inflight = state.inflight;
      row.sessions = state.sessions;
      // Fold the result-tier/append counters of every distinct service
      // this tenant's datasets ride (two names over content-equal data
      // share one service — count it once).
      std::vector<const CountingService*> seen;
      for (const auto& [dataset_name, pool] : state.idle_sessions) {
        Result<api::Dataset> dataset = catalog_->Lookup(dataset_name);
        if (!dataset.ok()) continue;
        const CountingService* service = dataset->service().get();
        bool counted = false;
        for (const CountingService* s : seen) counted |= (s == service);
        if (counted) continue;
        seen.push_back(service);
        AccumulateServiceStats(*service, &row.service);
      }
      reply.tenants.push_back(std::move(row));
    }
  }
  reply.registry = ServiceRegistry::Global().stats();
  return reply;
}

}  // namespace server
}  // namespace pcbl
