// Client of the `pcbl serve` wire protocol — used by `pcbl query
// --connect`, the server tests, and bench/bench_serve_load.cc.
//
// One Client is one connection issuing strictly sequential
// request/response pairs; it is movable but not thread-safe (open one
// client per concurrent caller, exactly like the server's handlers
// expect). Admission-level refusals — an unknown dataset, a shed with
// kResourceExhausted — come back as the call's error Status;
// last_retry_after_ms() then holds the server's backoff hint.
#ifndef PCBL_SERVER_CLIENT_H_
#define PCBL_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "api/query.h"
#include "server/wire.h"
#include "util/status.h"

namespace pcbl {
namespace server {

struct ClientOptions {
  int64_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
};

class Client {
 public:
  static Result<Client> Connect(const std::string& address,
                                ClientOptions options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  Result<wire::HelloReply> Hello(const std::string& tenant);

  /// Executes one spec against a catalog dataset. The returned result
  /// carries the query-level status inside (exactly like
  /// api::Session::Run); transport/admission failures are the call's
  /// error Status instead.
  Result<wire::WireQueryResult> Query(const std::string& tenant,
                                      const std::string& dataset,
                                      const api::QuerySpec& spec);

  Result<wire::RegisterReply> Register(const std::string& tenant,
                                       const std::string& dataset,
                                       const std::string& csv_text);

  /// Empty tenant = all tenants.
  Result<wire::StatsReply> Stats(const std::string& tenant = "");

  /// Asks the server to stop (its owner still calls Server::Stop()).
  Status Shutdown();

  /// The backoff hint of the most recent kResourceExhausted refusal.
  int64_t last_retry_after_ms() const { return last_retry_after_ms_; }

 private:
  Client() = default;

  /// Sends one frame, reads the reply, and decodes the ReplyHeader. A
  /// non-ok header becomes the error Status (after recording the retry
  /// hint); on OK the returned Reader is positioned at the body. The
  /// reply payload lives in `*storage`.
  Result<wire::Reader> RoundTrip(wire::MessageType type,
                                 std::string_view payload,
                                 std::string* storage);

  int fd_ = -1;
  int64_t max_frame_bytes_ = wire::kDefaultMaxFrameBytes;
  int64_t last_retry_after_ms_ = 0;
};

}  // namespace server
}  // namespace pcbl

#endif  // PCBL_SERVER_CLIENT_H_
