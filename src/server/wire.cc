#include "server/wire.h"

#include <bit>
#include <cstring>
#include <utility>

#include "util/str.h"

namespace pcbl {
namespace server {
namespace wire {

// --- primitives -------------------------------------------------------------

void Writer::U16(uint16_t v) {
  bytes_.push_back(static_cast<char>(v & 0xff));
  bytes_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Writer::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

bool Reader::Need(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t Reader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint16_t Reader::U16() {
  if (!Need(2)) return 0;
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint32_t Reader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

double Reader::F64() { return std::bit_cast<double>(U64()); }

std::string Reader::Str() {
  // The length is validated against the remaining payload *before* the
  // allocation: a corrupt length fails the read, it never reserves.
  const uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

Status Reader::Finish() const {
  if (!ok_) {
    return InvalidArgumentError(
        "malformed frame payload: a field overran the received bytes");
  }
  if (pos_ != data_.size()) {
    return InvalidArgumentError(
        StrCat("malformed frame payload: ", data_.size() - pos_,
               " trailing bytes after the last field"));
  }
  return Status::Ok();
}

// --- frames -----------------------------------------------------------------

std::string EncodeFrame(MessageType type, std::string_view payload) {
  Writer out;
  out.U32(kMagic);
  out.U16(kProtocolVersion);
  out.U16(static_cast<uint16_t>(type));
  out.U32(static_cast<uint32_t>(payload.size()));
  std::string frame = out.Take();
  frame.append(payload.data(), payload.size());
  return frame;
}

Result<FrameHeader> DecodeFrameHeader(const char* header,
                                      int64_t max_frame_bytes) {
  Reader in(std::string_view(header, kFrameHeaderBytes));
  const uint32_t magic = in.U32();
  const uint16_t version = in.U16();
  const uint16_t type = in.U16();
  const uint32_t payload = in.U32();
  if (magic != kMagic) {
    return InvalidArgumentError(
        StrFormat("bad frame magic 0x%08x (expected 0x%08x)", magic, kMagic));
  }
  if (version != kProtocolVersion) {
    return InvalidArgumentError(
        StrFormat("unsupported protocol version %u (this build speaks %u)",
                  version, kProtocolVersion));
  }
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello:
    case MessageType::kQuery:
    case MessageType::kRegister:
    case MessageType::kStats:
    case MessageType::kShutdown:
    case MessageType::kReply:
      break;
    default:
      return InvalidArgumentError(StrFormat("unknown message type %u", type));
  }
  if (static_cast<int64_t>(payload) > max_frame_bytes) {
    // Refused before any allocation: the length field is
    // attacker-controlled and must never size a buffer unchecked.
    return InvalidArgumentError(
        StrFormat("frame payload of %u bytes exceeds the %lld-byte limit",
                  payload, static_cast<long long>(max_frame_bytes)));
  }
  FrameHeader decoded;
  decoded.type = static_cast<MessageType>(type);
  decoded.payload_bytes = static_cast<int64_t>(payload);
  return decoded;
}

// --- status -----------------------------------------------------------------

void EncodeStatus(const Status& status, Writer* out) {
  out->U32(static_cast<uint32_t>(status.code()));
  out->Str(status.message());
}

Status DecodeStatus(Reader& in, Status* decoded) {
  const uint32_t code = in.U32();
  std::string message = in.Str();
  if (!in.ok()) {
    return InvalidArgumentError("malformed status field");
  }
  if (code > static_cast<uint32_t>(StatusCode::kResourceExhausted)) {
    return InvalidArgumentError(StrCat("unknown status code ", code));
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

// --- requests ---------------------------------------------------------------

void EncodeHelloRequest(const HelloRequest& request, Writer* out) {
  out->Str(request.tenant);
}

Result<HelloRequest> DecodeHelloRequest(Reader& in) {
  HelloRequest request;
  request.tenant = in.Str();
  if (!in.ok()) return InvalidArgumentError("malformed hello request");
  return request;
}

namespace {

// Presence bits of QuerySpec's optional per-query overrides, in field
// declaration order. Pinned by the golden-buffer tests.
enum SpecOptionalBit : uint16_t {
  kBitNumThreads = 1 << 0,
  kBitUseEngine = 1 << 1,
  kBitCacheBudget = 1 << 2,
  kBitMorselRows = 1 << 3,
  kBitWaveScheduler = 1 << 4,
  kBitResultCache = 1 << 5,
  kBitResultBudget = 1 << 6,
};

}  // namespace

void EncodeQuerySpec(const api::QuerySpec& spec, Writer* out) {
  out->U8(static_cast<uint8_t>(spec.kind));
  out->U8(static_cast<uint8_t>(spec.algorithm));
  out->I64(spec.size_bound);
  out->U8(static_cast<uint8_t>(spec.metric));
  out->F64(spec.time_limit_seconds);
  out->U8(spec.record_candidates ? 1 : 0);
  out->U64(spec.focus.bits());
  out->U32(static_cast<uint32_t>(spec.pattern.size()));
  for (const auto& [name, value] : spec.pattern) {
    out->Str(name);
    out->Str(value);
  }
  out->U8(spec.label != nullptr ? 1 : 0);
  if (spec.label != nullptr) out->Str(ToBinary(*spec.label));
  uint16_t present = 0;
  if (spec.num_threads.has_value()) present |= kBitNumThreads;
  if (spec.use_counting_engine.has_value()) present |= kBitUseEngine;
  if (spec.counting_cache_budget.has_value()) present |= kBitCacheBudget;
  if (spec.min_rows_per_morsel.has_value()) present |= kBitMorselRows;
  if (spec.use_wave_scheduler.has_value()) present |= kBitWaveScheduler;
  if (spec.use_result_cache.has_value()) present |= kBitResultCache;
  if (spec.result_cache_budget.has_value()) present |= kBitResultBudget;
  out->U16(present);
  if (spec.num_threads.has_value()) out->I64(*spec.num_threads);
  if (spec.use_counting_engine.has_value()) {
    out->U8(*spec.use_counting_engine ? 1 : 0);
  }
  if (spec.counting_cache_budget.has_value()) {
    out->I64(*spec.counting_cache_budget);
  }
  if (spec.min_rows_per_morsel.has_value()) {
    out->I64(*spec.min_rows_per_morsel);
  }
  if (spec.use_wave_scheduler.has_value()) {
    out->U8(*spec.use_wave_scheduler ? 1 : 0);
  }
  if (spec.use_result_cache.has_value()) {
    out->U8(*spec.use_result_cache ? 1 : 0);
  }
  if (spec.result_cache_budget.has_value()) {
    out->I64(*spec.result_cache_budget);
  }
}

Result<api::QuerySpec> DecodeQuerySpec(Reader& in) {
  api::QuerySpec spec;
  const uint8_t kind = in.U8();
  const uint8_t algorithm = in.U8();
  spec.size_bound = in.I64();
  const uint8_t metric = in.U8();
  spec.time_limit_seconds = in.F64();
  spec.record_candidates = in.U8() != 0;
  spec.focus = AttrMask(in.U64());
  const uint32_t terms = in.U32();
  for (uint32_t i = 0; in.ok() && i < terms; ++i) {
    std::string name = in.Str();
    std::string value = in.Str();
    spec.pattern.emplace_back(std::move(name), std::move(value));
  }
  if (in.U8() != 0) {
    const std::string label_bytes = in.Str();
    if (!in.ok()) return InvalidArgumentError("malformed query spec");
    PCBL_ASSIGN_OR_RETURN(PortableLabel label,
                          PortableLabelFromBinary(label_bytes));
    spec.label = std::make_shared<const PortableLabel>(std::move(label));
  }
  const uint16_t present = in.U16();
  if (present & kBitNumThreads) {
    spec.num_threads = static_cast<int>(in.I64());
  }
  if (present & kBitUseEngine) spec.use_counting_engine = in.U8() != 0;
  if (present & kBitCacheBudget) spec.counting_cache_budget = in.I64();
  if (present & kBitMorselRows) spec.min_rows_per_morsel = in.I64();
  if (present & kBitWaveScheduler) spec.use_wave_scheduler = in.U8() != 0;
  if (present & kBitResultCache) spec.use_result_cache = in.U8() != 0;
  if (present & kBitResultBudget) spec.result_cache_budget = in.I64();
  if (!in.ok()) return InvalidArgumentError("malformed query spec");
  if (kind > static_cast<uint8_t>(api::QuerySpec::Kind::kProfile)) {
    return InvalidArgumentError(StrCat("unknown query kind ", kind));
  }
  if (algorithm > static_cast<uint8_t>(api::QuerySpec::Algorithm::kNaive)) {
    return InvalidArgumentError(
        StrCat("unknown search algorithm ", algorithm));
  }
  if (metric > static_cast<uint8_t>(OptimizationMetric::kMeanQError)) {
    return InvalidArgumentError(
        StrCat("unknown optimization metric ", metric));
  }
  spec.kind = static_cast<api::QuerySpec::Kind>(kind);
  spec.algorithm = static_cast<api::QuerySpec::Algorithm>(algorithm);
  spec.metric = static_cast<OptimizationMetric>(metric);
  return spec;
}

void EncodeQueryRequest(const QueryRequest& request, Writer* out) {
  out->Str(request.tenant);
  out->Str(request.dataset);
  EncodeQuerySpec(request.spec, out);
}

Result<QueryRequest> DecodeQueryRequest(Reader& in) {
  QueryRequest request;
  request.tenant = in.Str();
  request.dataset = in.Str();
  PCBL_ASSIGN_OR_RETURN(request.spec, DecodeQuerySpec(in));
  return request;
}

void EncodeRegisterRequest(const RegisterRequest& request, Writer* out) {
  out->Str(request.tenant);
  out->Str(request.dataset);
  out->Str(request.csv_text);
}

Result<RegisterRequest> DecodeRegisterRequest(Reader& in) {
  RegisterRequest request;
  request.tenant = in.Str();
  request.dataset = in.Str();
  request.csv_text = in.Str();
  if (!in.ok()) return InvalidArgumentError("malformed register request");
  return request;
}

void EncodeStatsRequest(const StatsRequest& request, Writer* out) {
  out->Str(request.tenant);
}

Result<StatsRequest> DecodeStatsRequest(Reader& in) {
  StatsRequest request;
  request.tenant = in.Str();
  if (!in.ok()) return InvalidArgumentError("malformed stats request");
  return request;
}

// --- replies ----------------------------------------------------------------

void EncodeReplyHeader(const ReplyHeader& header, Writer* out) {
  EncodeStatus(header.status, out);
  out->I64(header.retry_after_ms);
}

Result<ReplyHeader> DecodeReplyHeader(Reader& in) {
  ReplyHeader header;
  PCBL_RETURN_IF_ERROR(DecodeStatus(in, &header.status));
  header.retry_after_ms = in.I64();
  if (!in.ok()) return InvalidArgumentError("malformed reply header");
  return header;
}

void EncodeHelloReply(const HelloReply& reply, Writer* out) {
  out->U16(reply.protocol_version);
  out->Str(reply.server);
}

Result<HelloReply> DecodeHelloReply(Reader& in) {
  HelloReply reply;
  reply.protocol_version = in.U16();
  reply.server = in.Str();
  if (!in.ok()) return InvalidArgumentError("malformed hello reply");
  return reply;
}

namespace {

void EncodeErrorReport(const ErrorReport& report, Writer* out) {
  out->F64(report.max_abs);
  out->F64(report.mean_abs);
  out->F64(report.std_abs);
  out->F64(report.max_q);
  out->F64(report.mean_q);
  out->I64(report.evaluated);
  out->I64(report.total);
  out->U8(report.early_terminated ? 1 : 0);
}

ErrorReport DecodeErrorReport(Reader& in) {
  ErrorReport report;
  report.max_abs = in.F64();
  report.mean_abs = in.F64();
  report.std_abs = in.F64();
  report.max_q = in.F64();
  report.mean_q = in.F64();
  report.evaluated = in.I64();
  report.total = in.I64();
  report.early_terminated = in.U8() != 0;
  return report;
}

void EncodeEngineStats(const CountingEngineStats& stats, Writer* out) {
  out->I64(stats.sizings);
  out->I64(stats.cache_hits);
  out->I64(stats.rollups);
  out->I64(stats.direct_scans);
  out->I64(stats.full_scans);
  out->I64(stats.evictions);
  out->I64(stats.cached_groups);
  out->I64(stats.cached_bytes);
  out->I64(stats.patched_entries);
  out->I64(stats.invalidations);
  out->I64(stats.compactions);
}

CountingEngineStats DecodeEngineStats(Reader& in) {
  CountingEngineStats stats;
  stats.sizings = in.I64();
  stats.cache_hits = in.I64();
  stats.rollups = in.I64();
  stats.direct_scans = in.I64();
  stats.full_scans = in.I64();
  stats.evictions = in.I64();
  stats.cached_groups = in.I64();
  stats.cached_bytes = in.I64();
  stats.patched_entries = in.I64();
  stats.invalidations = in.I64();
  stats.compactions = in.I64();
  return stats;
}

void EncodeSearchStats(const SearchStats& stats, Writer* out) {
  out->I64(stats.subsets_examined);
  out->I64(stats.within_bound);
  out->I64(stats.error_evaluations);
  out->I64(stats.patterns_scanned);
  out->I64(stats.levels_completed);
  out->F64(stats.total_seconds);
  out->F64(stats.candidate_seconds);
  out->F64(stats.error_eval_seconds);
  out->U8(stats.timed_out ? 1 : 0);
  EncodeEngineStats(stats.counting, out);
}

SearchStats DecodeSearchStats(Reader& in) {
  SearchStats stats;
  stats.subsets_examined = in.I64();
  stats.within_bound = in.I64();
  stats.error_evaluations = in.I64();
  stats.patterns_scanned = in.I64();
  stats.levels_completed = static_cast<int>(in.I64());
  stats.total_seconds = in.F64();
  stats.candidate_seconds = in.F64();
  stats.error_eval_seconds = in.F64();
  stats.timed_out = in.U8() != 0;
  stats.counting = DecodeEngineStats(in);
  return stats;
}

}  // namespace

void EncodeQueryResult(const WireQueryResult& result, Writer* out) {
  EncodeStatus(result.status, out);
  out->U8(static_cast<uint8_t>(result.kind));
  out->I64(result.total_rows);
  switch (result.kind) {
    case api::QuerySpec::Kind::kLabelSearch: {
      out->U64(result.search.best_attrs_bits);
      out->Str(ToBinary(result.search.label));
      EncodeErrorReport(result.search.error, out);
      EncodeSearchStats(result.search.stats, out);
      out->U32(static_cast<uint32_t>(result.search.candidates.size()));
      for (const CandidateInfo& candidate : result.search.candidates) {
        out->U64(candidate.attrs.bits());
        out->I64(candidate.label_size);
        out->F64(candidate.max_error);
      }
      break;
    }
    case api::QuerySpec::Kind::kTrueCount:
      out->I64(result.true_count);
      out->U8(result.estimate.has_value() ? 1 : 0);
      if (result.estimate.has_value()) out->F64(*result.estimate);
      break;
    case api::QuerySpec::Kind::kProfile:
      out->U32(static_cast<uint32_t>(result.pairs.size()));
      for (const api::PairwiseSize& pair : result.pairs) {
        out->U32(static_cast<uint32_t>(pair.attr_a));
        out->U32(static_cast<uint32_t>(pair.attr_b));
        out->I64(pair.size);
      }
      break;
  }
}

Result<WireQueryResult> DecodeQueryResult(Reader& in) {
  WireQueryResult result;
  PCBL_RETURN_IF_ERROR(DecodeStatus(in, &result.status));
  const uint8_t kind = in.U8();
  result.total_rows = in.I64();
  if (!in.ok() || kind > static_cast<uint8_t>(api::QuerySpec::Kind::kProfile)) {
    return InvalidArgumentError("malformed query result");
  }
  result.kind = static_cast<api::QuerySpec::Kind>(kind);
  switch (result.kind) {
    case api::QuerySpec::Kind::kLabelSearch: {
      result.search.best_attrs_bits = in.U64();
      const std::string label_bytes = in.Str();
      if (!in.ok()) return InvalidArgumentError("malformed query result");
      PCBL_ASSIGN_OR_RETURN(result.search.label,
                            PortableLabelFromBinary(label_bytes));
      result.search.error = DecodeErrorReport(in);
      result.search.stats = DecodeSearchStats(in);
      const uint32_t candidates = in.U32();
      for (uint32_t i = 0; in.ok() && i < candidates; ++i) {
        CandidateInfo candidate;
        candidate.attrs = AttrMask(in.U64());
        candidate.label_size = in.I64();
        candidate.max_error = in.F64();
        result.search.candidates.push_back(candidate);
      }
      break;
    }
    case api::QuerySpec::Kind::kTrueCount:
      result.true_count = in.I64();
      if (in.U8() != 0) result.estimate = in.F64();
      break;
    case api::QuerySpec::Kind::kProfile: {
      const uint32_t pairs = in.U32();
      for (uint32_t i = 0; in.ok() && i < pairs; ++i) {
        api::PairwiseSize pair;
        pair.attr_a = static_cast<int>(in.U32());
        pair.attr_b = static_cast<int>(in.U32());
        pair.size = in.I64();
        result.pairs.push_back(pair);
      }
      break;
    }
  }
  if (!in.ok()) return InvalidArgumentError("malformed query result");
  return result;
}

void EncodeRegisterReply(const RegisterReply& reply, Writer* out) {
  out->U64(reply.fingerprint.lo);
  out->U64(reply.fingerprint.hi);
  out->I64(reply.rows);
  out->U8(reply.shared_existing ? 1 : 0);
}

Result<RegisterReply> DecodeRegisterReply(Reader& in) {
  RegisterReply reply;
  reply.fingerprint.lo = in.U64();
  reply.fingerprint.hi = in.U64();
  reply.rows = in.I64();
  reply.shared_existing = in.U8() != 0;
  if (!in.ok()) return InvalidArgumentError("malformed register reply");
  return reply;
}

void EncodeRegistryStats(const ServiceRegistryStats& stats, Writer* out) {
  out->I64(stats.acquires);
  out->I64(stats.hits);
  out->I64(stats.misses);
  out->I64(stats.evictions);
  out->I64(stats.services);
  out->I64(stats.resident_bytes);
  out->I64(stats.evicted_rejections);
  out->I64(stats.result_hits);
  out->I64(stats.result_misses);
  out->I64(stats.result_inflight_joins);
  out->I64(stats.result_entries);
  out->I64(stats.result_bytes);
  out->I64(stats.append_batches);
  out->I64(stats.append_requests);
  out->I64(stats.interned_values);
  out->I64(stats.spill_hits);
  out->I64(stats.spill_misses);
  out->I64(stats.spill_rejects);
  out->I64(stats.spills);
  out->I64(stats.spilled_bytes);
}

Result<ServiceRegistryStats> DecodeRegistryStats(Reader& in) {
  ServiceRegistryStats stats;
  stats.acquires = in.I64();
  stats.hits = in.I64();
  stats.misses = in.I64();
  stats.evictions = in.I64();
  stats.services = in.I64();
  stats.resident_bytes = in.I64();
  stats.evicted_rejections = in.I64();
  stats.result_hits = in.I64();
  stats.result_misses = in.I64();
  stats.result_inflight_joins = in.I64();
  stats.result_entries = in.I64();
  stats.result_bytes = in.I64();
  stats.append_batches = in.I64();
  stats.append_requests = in.I64();
  stats.interned_values = in.I64();
  stats.spill_hits = in.I64();
  stats.spill_misses = in.I64();
  stats.spill_rejects = in.I64();
  stats.spills = in.I64();
  stats.spilled_bytes = in.I64();
  if (!in.ok()) return InvalidArgumentError("malformed registry stats");
  return stats;
}

void EncodeStatsReply(const StatsReply& reply, Writer* out) {
  out->U32(static_cast<uint32_t>(reply.tenants.size()));
  for (const TenantStatsRow& row : reply.tenants) {
    out->Str(row.tenant);
    out->I64(row.queries);
    out->I64(row.shed);
    out->I64(row.errors);
    out->I64(row.inflight);
    out->I64(row.sessions);
    EncodeRegistryStats(row.service, out);
  }
  EncodeRegistryStats(reply.registry, out);
}

Result<StatsReply> DecodeStatsReply(Reader& in) {
  StatsReply reply;
  const uint32_t tenants = in.U32();
  for (uint32_t i = 0; in.ok() && i < tenants; ++i) {
    TenantStatsRow row;
    row.tenant = in.Str();
    row.queries = in.I64();
    row.shed = in.I64();
    row.errors = in.I64();
    row.inflight = in.I64();
    row.sessions = in.I64();
    PCBL_ASSIGN_OR_RETURN(row.service, DecodeRegistryStats(in));
    reply.tenants.push_back(std::move(row));
  }
  PCBL_ASSIGN_OR_RETURN(reply.registry, DecodeRegistryStats(in));
  return reply;
}

WireQueryResult ToWireResult(const api::QueryResult& result,
                             const Table& table) {
  WireQueryResult out;
  out.status = result.status;
  out.kind = result.kind;
  out.total_rows = result.total_rows;
  switch (result.kind) {
    case api::QuerySpec::Kind::kLabelSearch:
      out.search.best_attrs_bits = result.search.best_attrs.bits();
      // A failed query carries a default-constructed (placeholder)
      // label with no VC backing — leave the portable label empty.
      if (result.status.ok() &&
          result.search.label.shared_value_counts() != nullptr) {
        out.search.label = MakePortable(result.search.label, table);
      }
      out.search.error = result.search.error;
      out.search.stats = result.search.stats;
      out.search.candidates = result.search.candidates;
      break;
    case api::QuerySpec::Kind::kTrueCount:
      out.true_count = result.true_count;
      out.estimate = result.estimate;
      break;
    case api::QuerySpec::Kind::kProfile:
      out.pairs = result.pairs;
      break;
  }
  return out;
}

}  // namespace wire
}  // namespace server
}  // namespace pcbl
