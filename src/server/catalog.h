// Catalog: the named datasets `pcbl serve` exposes.
//
// Every entry maps a client-visible name to an api::Dataset handle. On
// top of the name index the catalog keeps a second index keyed by the
// registry's 128-bit content fingerprint, so a registration whose CSV is
// content-equal to an existing entry — a second tenant uploading the
// same data under its own name — *shares the existing Dataset handle*
// (and therefore the same warm CountingService) instead of building a
// cold copy. The server's differential test asserts the consequence:
// two tenants over equal content perform one set of full-table scans
// between them.
//
// Thread-safe; registrations and lookups may race freely. Dataset
// construction (CSV parse + service acquire) runs outside the catalog
// lock — only the index insertion is serialized.
#ifndef PCBL_SERVER_CATALOG_H_
#define PCBL_SERVER_CATALOG_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/dataset.h"
#include "server/wire.h"
#include "util/status.h"

namespace pcbl {
namespace server {

class Catalog {
 public:
  /// `options` apply to every dataset the catalog builds (service
  /// budget, private service for tests).
  explicit Catalog(api::DatasetOptions options = {})
      : options_(options) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Startup path of `pcbl serve --catalog name=path,...`.
  Status AddFromCsvFile(const std::string& name, const std::string& path);

  /// Adopts an already-built dataset under `name` (tests).
  Status Add(const std::string& name, api::Dataset dataset);

  /// Client registration from CSV text. Same name + same content is an
  /// idempotent success; same name + different content is
  /// kAlreadyExists; a new name over content-equal data shares the
  /// existing entry's Dataset (reply.shared_existing = true).
  Result<wire::RegisterReply> RegisterCsvText(const std::string& name,
                                              const std::string& csv_text);

  /// kNotFound when no dataset has this name.
  Result<api::Dataset> Lookup(const std::string& name) const;

  /// Registered names, unordered.
  std::vector<std::string> Names() const;

 private:
  struct FingerprintHash {
    size_t operator()(const TableFingerprint& f) const {
      return static_cast<size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  // Inserts under the lock; resolves the share-or-conflict cases.
  Result<wire::RegisterReply> Insert(const std::string& name,
                                     api::Dataset dataset);

  const api::DatasetOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, api::Dataset> by_name_;
  // fingerprint -> a name already serving that content.
  std::unordered_map<TableFingerprint, std::string, FingerprintHash>
      by_fingerprint_;
};

}  // namespace server
}  // namespace pcbl

#endif  // PCBL_SERVER_CATALOG_H_
