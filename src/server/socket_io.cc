#include "server/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/str.h"

namespace pcbl {
namespace server {

namespace {

constexpr std::string_view kUnixPrefix = "unix:";

Status ErrnoError(const char* what) {
  return IOError(StrCat(what, ": ", std::strerror(errno)));
}

struct ParsedTcp {
  std::string host;
  uint16_t port = 0;
};

Result<ParsedTcp> ParseTcpAddress(const std::string& address) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return InvalidArgumentError(
        StrCat("address '", address,
               "' is neither 'unix:<path>' nor '<host>:<port>'"));
  }
  ParsedTcp parsed;
  parsed.host = address.substr(0, colon);
  if (parsed.host.empty() || parsed.host == "localhost") {
    parsed.host = "127.0.0.1";
  }
  PCBL_ASSIGN_OR_RETURN(const int64_t port,
                        ParseInt64(address.substr(colon + 1)));
  if (port < 0 || port > 65535) {
    return InvalidArgumentError(StrCat("port out of range: ", port));
  }
  parsed.port = static_cast<uint16_t>(port);
  return parsed;
}

Result<int> MakeTcpSockaddr(const std::string& address, sockaddr_in* out) {
  PCBL_ASSIGN_OR_RETURN(const ParsedTcp parsed, ParseTcpAddress(address));
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(parsed.port);
  if (inet_pton(AF_INET, parsed.host.c_str(), &out->sin_addr) != 1) {
    return InvalidArgumentError(
        StrCat("cannot parse IPv4 host '", parsed.host, "'"));
  }
  return 0;
}

Result<int> MakeUnixSockaddr(const std::string& address, sockaddr_un* out) {
  const std::string path(address.substr(kUnixPrefix.size()));
  std::memset(out, 0, sizeof(*out));
  out->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(out->sun_path)) {
    return InvalidArgumentError(
        StrCat("unix socket path empty or too long: '", path, "'"));
  }
  std::memcpy(out->sun_path, path.data(), path.size());
  return 0;
}

}  // namespace

Result<int> ListenOn(const std::string& address) {
  const bool is_unix = address.rfind(kUnixPrefix, 0) == 0;
  const int fd = socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  Status status = Status::Ok();
  if (is_unix) {
    sockaddr_un addr;
    Result<int> made = MakeUnixSockaddr(address, &addr);
    if (!made.ok()) {
      close(fd);
      return made.status();
    }
    // A stale socket file from a dead server would fail the bind.
    unlink(addr.sun_path);
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      status = ErrnoError("bind");
    }
  } else {
    sockaddr_in addr;
    Result<int> made = MakeTcpSockaddr(address, &addr);
    if (!made.ok()) {
      close(fd);
      return made.status();
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      status = ErrnoError("bind");
    }
  }
  if (status.ok() && listen(fd, SOMAXCONN) != 0) {
    status = ErrnoError("listen");
  }
  if (!status.ok()) {
    close(fd);
    return status;
  }
  return fd;
}

Result<std::string> BoundAddress(int fd) {
  sockaddr_storage storage;
  socklen_t len = sizeof(storage);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&storage), &len) != 0) {
    return ErrnoError("getsockname");
  }
  if (storage.ss_family == AF_UNIX) {
    const auto* addr = reinterpret_cast<const sockaddr_un*>(&storage);
    return StrCat("unix:", addr->sun_path);
  }
  if (storage.ss_family == AF_INET) {
    const auto* addr = reinterpret_cast<const sockaddr_in*>(&storage);
    char host[INET_ADDRSTRLEN] = {0};
    inet_ntop(AF_INET, &addr->sin_addr, host, sizeof(host));
    return StrCat(host, ":", ntohs(addr->sin_port));
  }
  return InternalError("unexpected socket family");
}

Result<int> ConnectTo(const std::string& address) {
  const bool is_unix = address.rfind(kUnixPrefix, 0) == 0;
  const int fd = socket(is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoError("socket");
  int rc;
  if (is_unix) {
    sockaddr_un addr;
    Result<int> made = MakeUnixSockaddr(address, &addr);
    if (!made.ok()) {
      close(fd);
      return made.status();
    }
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr;
    Result<int> made = MakeTcpSockaddr(address, &addr);
    if (!made.ok()) {
      close(fd);
      return made.status();
    }
    rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) {
    Status status = ErrnoError(StrCat("connect to ", address).c_str());
    close(fd);
    return status;
  }
  return fd;
}

void CloseSocket(int fd) {
  if (fd >= 0) close(fd);
}

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Returns 1 on a full read, 0 on clean EOF before the first byte, and
/// an error status on a mid-buffer disconnect.
Result<int> ReadAll(int fd, char* data, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n = recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv");
    }
    if (n == 0) {
      if (got == 0) return 0;
      return Status(StatusCode::kIOError,
                    "connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return 1;
}

}  // namespace

Status WriteFrame(int fd, wire::MessageType type, std::string_view payload) {
  const std::string frame = wire::EncodeFrame(type, payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<bool> ReadFrame(int fd, int64_t max_frame_bytes,
                       wire::FrameHeader* header, std::string* payload) {
  char raw[wire::kFrameHeaderBytes];
  PCBL_ASSIGN_OR_RETURN(const int got, ReadAll(fd, raw, sizeof(raw)));
  if (got == 0) return false;
  // Validates magic/version/length *before* the payload allocation.
  PCBL_ASSIGN_OR_RETURN(*header,
                        wire::DecodeFrameHeader(raw, max_frame_bytes));
  payload->resize(static_cast<size_t>(header->payload_bytes));
  if (header->payload_bytes > 0) {
    PCBL_ASSIGN_OR_RETURN(
        const int body, ReadAll(fd, payload->data(), payload->size()));
    if (body == 0) {
      return IOError("connection closed between header and payload");
    }
  }
  return true;
}

}  // namespace server
}  // namespace pcbl
