// Blocking socket plumbing of `pcbl serve`: listen/connect on TCP or
// Unix-domain addresses and move whole wire frames (server/wire.h)
// across a connection.
//
// Address forms:
//   "unix:/path/to.sock"  — Unix-domain stream socket
//   "host:port"           — IPv4; "localhost" resolves to 127.0.0.1 and
//                           port 0 binds an ephemeral port (recover the
//                           actual one with BoundAddress, the tests'
//                           parallel-safe idiom)
//
// All calls are blocking; frame reads honour the bounded-length contract
// of wire::DecodeFrameHeader — a hostile length field is rejected before
// any allocation.
#ifndef PCBL_SERVER_SOCKET_IO_H_
#define PCBL_SERVER_SOCKET_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "server/wire.h"
#include "util/status.h"

namespace pcbl {
namespace server {

/// Creates, binds, and listens. Returns the listening fd.
Result<int> ListenOn(const std::string& address);

/// The address a listening fd actually bound ("127.0.0.1:41873" after
/// listening on port 0, or the "unix:..." form it was given).
Result<std::string> BoundAddress(int fd);

/// Connects to a server. Returns the connected fd.
Result<int> ConnectTo(const std::string& address);

/// Closes an fd from ListenOn/ConnectTo/accept (idempotent on -1).
void CloseSocket(int fd);

/// Writes one whole frame (header + payload). IOError on a broken peer;
/// never raises SIGPIPE.
Status WriteFrame(int fd, wire::MessageType type, std::string_view payload);

/// Reads one whole frame. Returns false on clean EOF at a frame
/// boundary (the peer hung up between requests); kInvalidArgument on a
/// corrupt or oversized header (per wire::DecodeFrameHeader), IOError on
/// a mid-frame disconnect.
Result<bool> ReadFrame(int fd, int64_t max_frame_bytes,
                       wire::FrameHeader* header, std::string* payload);

}  // namespace server
}  // namespace pcbl

#endif  // PCBL_SERVER_SOCKET_IO_H_
