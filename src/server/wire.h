// Wire protocol of `pcbl serve` (docs/SERVING.md).
//
// Everything a client and the label server exchange is a *frame*: a
// fixed 12-byte header (magic, protocol version, message type, payload
// length) followed by a little-endian payload. The payload length is
// validated against a bounded maximum *before* any allocation, so a
// corrupt or hostile length can never drive a multi-gigabyte allocation
// (the same class of bug as the PR 1 corrupted-length fix in the binary
// label parser). Payload decoding goes through a sticky-error Reader
// whose every primitive is bounds-checked against the received bytes —
// a truncated or over-long payload decodes to kInvalidArgument, never
// to undefined behaviour.
//
// The request payloads serialize api::QuerySpec field-for-field
// (including the optional per-query overrides and the consumer-side
// PortableLabel of a true-count query) and the response payloads carry
// the full api::QueryResult — the label as a PortableLabel (strings,
// not dictionary codes, so the client needs no access to the data),
// the exact ErrorReport, the SearchStats, true counts, and profile
// pairs. Status codes — including the retryable kUnavailable of a
// registry-evicted service and the kResourceExhausted of an overload
// shed — map one-to-one onto the wire.
//
// Golden stability: the encoding is pinned by golden-buffer tests
// (tests/server_wire_test.cc). Extending the protocol means a new
// protocol version or appended optional fields, never a silent change
// to existing bytes.
#ifndef PCBL_SERVER_WIRE_H_
#define PCBL_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "core/portable_label.h"
#include "core/search.h"
#include "pattern/service_registry.h"
#include "util/status.h"

namespace pcbl {
namespace server {
namespace wire {

/// "PCBW" read little-endian — distinct from the label format's "PCBL".
inline constexpr uint32_t kMagic = 0x57424350;
/// v2: registry stats grew the five warm-start spill counters
/// (spill_hits/misses/rejects, spills, spilled_bytes) — appended to the
/// kStats registry-stats block, which changes that reply's byte layout.
inline constexpr uint16_t kProtocolVersion = 2;

/// Default ceiling on one frame's payload. A decoder never allocates
/// more than the configured maximum, whatever the length field claims.
inline constexpr int64_t kDefaultMaxFrameBytes = int64_t{64} << 20;

/// Frame header size on the wire.
inline constexpr int64_t kFrameHeaderBytes = 12;

/// Message types. Requests are even-numbered concepts with one generic
/// reply type: a reply's body shape is determined by the request that
/// elicited it (the protocol is strictly request/response per
/// connection, so there is never ambiguity).
enum class MessageType : uint16_t {
  kHello = 1,     ///< tenant handshake (optional but recommended)
  kQuery = 2,     ///< one api::QuerySpec against a named dataset
  kRegister = 3,  ///< register a dataset from CSV text
  kStats = 4,     ///< per-tenant + registry counters
  kShutdown = 5,  ///< ask the server to drain and exit
  kReply = 128,   ///< response to any of the above
};

// --- primitives -------------------------------------------------------------

/// Append-only little-endian encoder.
class Writer {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length + raw bytes.
  void Str(std::string_view s);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Sticky-error bounds-checked decoder: the first out-of-bounds read
/// fails the reader and every later primitive returns zero/empty, so
/// decode functions read their whole shape and check ok() once. A
/// string length is validated against the *remaining* payload before
/// any allocation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();

  bool ok() const { return ok_; }
  int64_t remaining() const {
    return static_cast<int64_t>(data_.size() - pos_);
  }
  /// kInvalidArgument when a read overran or trailing bytes remain.
  Status Finish() const;

 private:
  bool Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- frames -----------------------------------------------------------------

/// Wraps `payload` into one frame (header + payload).
std::string EncodeFrame(MessageType type, std::string_view payload);

/// Decoded frame header.
struct FrameHeader {
  MessageType type = MessageType::kReply;
  int64_t payload_bytes = 0;
};

/// Validates magic, version, and the payload length against
/// `max_frame_bytes` (kInvalidArgument on any mismatch — the caller
/// must not allocate before this returned ok). `header` must point at
/// kFrameHeaderBytes received bytes.
Result<FrameHeader> DecodeFrameHeader(const char* header,
                                      int64_t max_frame_bytes);

// --- status -----------------------------------------------------------------

void EncodeStatus(const Status& status, Writer* out);
/// Decodes into `*decoded`; the return value is the *decode-level*
/// outcome (kInvalidArgument on truncation or an unknown code), distinct
/// from the decoded status itself. (An out-param because Result<Status>
/// would be ambiguous.)
Status DecodeStatus(Reader& in, Status* decoded);

// --- requests ---------------------------------------------------------------

struct HelloRequest {
  std::string tenant;
};

struct QueryRequest {
  std::string tenant;
  std::string dataset;
  api::QuerySpec spec;
};

struct RegisterRequest {
  std::string tenant;
  std::string dataset;
  std::string csv_text;
};

struct StatsRequest {
  /// Empty = every tenant.
  std::string tenant;
};

void EncodeHelloRequest(const HelloRequest& request, Writer* out);
Result<HelloRequest> DecodeHelloRequest(Reader& in);

void EncodeQuerySpec(const api::QuerySpec& spec, Writer* out);
Result<api::QuerySpec> DecodeQuerySpec(Reader& in);

void EncodeQueryRequest(const QueryRequest& request, Writer* out);
Result<QueryRequest> DecodeQueryRequest(Reader& in);

void EncodeRegisterRequest(const RegisterRequest& request, Writer* out);
Result<RegisterRequest> DecodeRegisterRequest(Reader& in);

void EncodeStatsRequest(const StatsRequest& request, Writer* out);
Result<StatsRequest> DecodeStatsRequest(Reader& in);

// --- replies ----------------------------------------------------------------

/// Leads every reply payload. `status` covers the transport/admission
/// level (unknown dataset, shed, malformed request); the body that
/// follows is present iff status is OK. A kResourceExhausted shed
/// carries `retry_after_ms` as the server's backoff hint.
struct ReplyHeader {
  Status status;
  int64_t retry_after_ms = 0;
};

void EncodeReplyHeader(const ReplyHeader& header, Writer* out);
Result<ReplyHeader> DecodeReplyHeader(Reader& in);

struct HelloReply {
  uint16_t protocol_version = kProtocolVersion;
  std::string server;  ///< banner, e.g. "pcbl serve"
};

/// api::QueryResult detached from its table: the label travels as a
/// PortableLabel (value strings), so byte-identity against an
/// in-process session is a pure function of the result — asserted by
/// the server differential test.
struct WireSearchResult {
  uint64_t best_attrs_bits = 0;
  PortableLabel label;
  ErrorReport error;
  SearchStats stats;
  std::vector<CandidateInfo> candidates;
};

struct WireQueryResult {
  Status status;  ///< execution-time status of the query itself
  api::QuerySpec::Kind kind = api::QuerySpec::Kind::kLabelSearch;
  int64_t total_rows = 0;
  WireSearchResult search;          // kLabelSearch
  int64_t true_count = 0;           // kTrueCount
  std::optional<double> estimate;   // kTrueCount (label supplied)
  std::vector<api::PairwiseSize> pairs;  // kProfile
};

struct RegisterReply {
  TableFingerprint fingerprint;
  int64_t rows = 0;
  /// True when the content matched an existing catalog entry (the new
  /// name shares its warm service instead of building one).
  bool shared_existing = false;
};

/// One tenant's server-side counters plus the
/// ServiceRegistryStats-shaped fold of its datasets' services — the
/// server-side equivalent of the CLI `registry:` line.
struct TenantStatsRow {
  std::string tenant;
  int64_t queries = 0;    ///< executed (ok or query-level error)
  int64_t shed = 0;       ///< refused with kResourceExhausted
  int64_t errors = 0;     ///< executed but returned a non-ok status
  int64_t inflight = 0;   ///< executing right now
  int64_t sessions = 0;   ///< pooled sessions
  ServiceRegistryStats service;
};

struct StatsReply {
  std::vector<TenantStatsRow> tenants;
  ServiceRegistryStats registry;  ///< the process-wide registry's view
};

void EncodeHelloReply(const HelloReply& reply, Writer* out);
Result<HelloReply> DecodeHelloReply(Reader& in);

void EncodeQueryResult(const WireQueryResult& result, Writer* out);
Result<WireQueryResult> DecodeQueryResult(Reader& in);

void EncodeRegisterReply(const RegisterReply& reply, Writer* out);
Result<RegisterReply> DecodeRegisterReply(Reader& in);

void EncodeRegistryStats(const ServiceRegistryStats& stats, Writer* out);
Result<ServiceRegistryStats> DecodeRegistryStats(Reader& in);

void EncodeStatsReply(const StatsReply& reply, Writer* out);
Result<StatsReply> DecodeStatsReply(Reader& in);

/// Detaches an executed api::QueryResult from its table for the wire:
/// the search label (when present) becomes a PortableLabel over
/// `table`'s dictionaries. The same conversion on the in-process side
/// makes server and session results byte-comparable.
WireQueryResult ToWireResult(const api::QueryResult& result,
                             const Table& table);

}  // namespace wire
}  // namespace server
}  // namespace pcbl

#endif  // PCBL_SERVER_WIRE_H_
