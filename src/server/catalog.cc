#include "server/catalog.h"

#include <utility>

#include "relation/csv.h"
#include "util/str.h"

namespace pcbl {
namespace server {

Status Catalog::AddFromCsvFile(const std::string& name,
                               const std::string& path) {
  PCBL_ASSIGN_OR_RETURN(api::Dataset dataset,
                        api::Dataset::FromCsvFile(path, options_));
  return Insert(name, std::move(dataset)).status();
}

Status Catalog::Add(const std::string& name, api::Dataset dataset) {
  return Insert(name, std::move(dataset)).status();
}

Result<wire::RegisterReply> Catalog::RegisterCsvText(
    const std::string& name, const std::string& csv_text) {
  if (name.empty()) {
    return InvalidArgumentError("dataset name must not be empty");
  }
  PCBL_ASSIGN_OR_RETURN(Table table, ReadCsvString(csv_text));
  PCBL_ASSIGN_OR_RETURN(api::Dataset dataset,
                        api::Dataset::FromTable(std::move(table), options_));
  return Insert(name, std::move(dataset));
}

Result<wire::RegisterReply> Catalog::Insert(const std::string& name,
                                            api::Dataset dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  wire::RegisterReply reply;
  auto named = by_name_.find(name);
  if (named != by_name_.end()) {
    if (named->second.fingerprint() != dataset.fingerprint()) {
      return AlreadyExistsError(
          StrCat("dataset '", name,
                 "' is already registered with different content"));
    }
    // Idempotent re-registration of the same content.
    reply.fingerprint = named->second.fingerprint();
    reply.rows = named->second.num_rows();
    reply.shared_existing = true;
    return reply;
  }
  auto equal = by_fingerprint_.find(dataset.fingerprint());
  if (equal != by_fingerprint_.end()) {
    // Content-equal to an existing entry: the new name adopts that
    // entry's handle, so both names ride one warm service.
    const api::Dataset& shared = by_name_.at(equal->second);
    reply.fingerprint = shared.fingerprint();
    reply.rows = shared.num_rows();
    reply.shared_existing = true;
    by_name_.emplace(name, shared);
    return reply;
  }
  reply.fingerprint = dataset.fingerprint();
  reply.rows = dataset.num_rows();
  reply.shared_existing = false;
  by_fingerprint_.emplace(dataset.fingerprint(), name);
  by_name_.emplace(name, std::move(dataset));
  return reply;
}

Result<api::Dataset> Catalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return NotFoundError(StrCat("no dataset named '", name,
                                "' in the server catalog"));
  }
  return it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, dataset] : by_name_) names.push_back(name);
  return names;
}

}  // namespace server
}  // namespace pcbl
