// The `pcbl serve` label server: an out-of-process, multi-tenant front
// end over the api::Session stack.
//
// One accept-loop thread hands each connection to its own handler
// thread; a connection is a strict request/response sequence of wire
// frames (server/wire.h). Every query names a tenant and a catalog
// dataset; the server executes it on a pooled api::Session and ships
// the full QueryResult back — the label as a PortableLabel, so results
// are byte-comparable with an in-process session over the same data.
//
// Tenancy and overload. Each tenant gets its own session pool (sessions
// are never shared across tenants) with the per-tenant engine/result
// budgets from ServerOptions, and a bounded in-flight-query quota.
// Admission happens *before* execution: when the tenant's quota — or
// the server-wide max_inflight ceiling — is saturated, the request is
// shed immediately with kResourceExhausted and a retry-after hint
// rather than queued, so overload degrades into fast, bounded refusals
// instead of unbounded queueing (tail latency stays flat; the shed rate
// is what rises — bench/bench_serve_load.cc measures exactly that).
// Content-equal datasets still converge onto one warm CountingService
// underneath (server/catalog.h), so tenant isolation is a quota/budget
// boundary, not a cache-duplication one.
//
// Locking: the server's own mu_ is taken only around admission counters
// and pool bookkeeping, never while a query executes, and handler
// threads sit strictly *above* the whole service hierarchy — a worker
// acquires gate -> service mutex -> session state_mu_ only through
// api::Session calls and holds no server lock while doing so (see
// docs/CONCURRENCY.md).
#ifndef PCBL_SERVER_SERVER_H_
#define PCBL_SERVER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/session.h"
#include "server/catalog.h"
#include "server/wire.h"
#include "util/status.h"

namespace pcbl {
namespace server {

struct ServerOptions {
  /// "host:port" (port 0 = ephemeral; read bound_address()) or
  /// "unix:/path".
  std::string address = "127.0.0.1:0";

  /// Server-wide ceiling on concurrently executing queries.
  int max_inflight = 64;

  /// Per-tenant in-flight-query quota; the N+1th concurrent query of
  /// one tenant is shed with kResourceExhausted.
  int tenant_max_inflight = 8;

  /// Backoff hint attached to a shed reply.
  int64_t retry_after_ms = 50;

  /// Per-frame payload ceiling (wire::kDefaultMaxFrameBytes default).
  int64_t max_frame_bytes = wire::kDefaultMaxFrameBytes;

  /// Per-tenant session budgets (SessionOptions semantics; -1 =
  /// library default): engine memoization entries and completed-result
  /// cache bytes.
  int64_t tenant_counting_budget = -1;
  int64_t tenant_result_budget = -1;

  /// Threads per pooled session's executor (1 = the library default).
  int session_executor_threads = 1;

  /// Per-request log lines on stderr.
  bool verbose = false;
};

class Server {
 public:
  /// `catalog` must outlive the server.
  Server(Catalog* catalog, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop.
  Status Start();

  /// The actual listening address (resolves an ephemeral port).
  const std::string& bound_address() const { return bound_address_; }

  /// Blocks until Stop() or a client's kShutdown request.
  void Wait();

  /// Closes the listener, disconnects clients, joins all threads.
  /// Idempotent.
  void Stop();

  /// The kStats reply body (empty filter = every tenant), also used by
  /// the CLI's final stats log.
  wire::StatsReply BuildStatsReply(const std::string& tenant_filter) const;

 private:
  struct TenantState {
    int64_t queries = 0;   // executed (ok or query-level error)
    int64_t shed = 0;      // refused with kResourceExhausted
    int64_t errors = 0;    // executed, non-ok query status
    int64_t inflight = 0;  // executing right now
    int64_t sessions = 0;  // sessions ever opened for this tenant
    // Idle pooled sessions by dataset name; a query checks one out (or
    // opens one) and returns it when done, so one tenant's concurrent
    // queries never serialize on a single session executor.
    std::unordered_map<std::string,
                       std::vector<std::unique_ptr<api::Session>>>
        idle_sessions;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  // Frame dispatch; each returns the complete reply payload.
  std::string HandleFrame(const wire::FrameHeader& header,
                          const std::string& payload);
  std::string HandleHello(const std::string& payload);
  std::string HandleQuery(const std::string& payload);
  std::string HandleRegister(const std::string& payload);
  std::string HandleStats(const std::string& payload);

  // Admission: true = admitted (caller must call FinishQuery), false =
  // shed (the tenant's shed counter is already bumped).
  bool AdmitQuery(const std::string& tenant);
  void FinishQuery(const std::string& tenant, bool query_ok);

  // Session pool checkout/return.
  Result<std::unique_ptr<api::Session>> CheckoutSession(
      const std::string& tenant, const std::string& dataset_name,
      const api::Dataset& dataset);
  void ReturnSession(const std::string& tenant,
                     const std::string& dataset_name,
                     std::unique_ptr<api::Session> session);

  static std::string ErrorReplyPayload(const Status& status,
                                       int64_t retry_after_ms = 0);

  Catalog* const catalog_;
  const ServerOptions options_;

  std::string bound_address_;
  int listen_fd_ = -1;

  mutable std::mutex mu_;  // admission counters, pools, connection fds
  std::condition_variable stopped_cv_;
  bool stopping_ = false;
  int64_t total_inflight_ = 0;
  std::unordered_map<std::string, TenantState> tenants_;
  std::vector<int> connection_fds_;

  std::thread accept_thread_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
};

}  // namespace server
}  // namespace pcbl

#endif  // PCBL_SERVER_SERVER_H_
