#include "server/client.h"

#include <utility>

#include "server/socket_io.h"

namespace pcbl {
namespace server {

Result<Client> Client::Connect(const std::string& address,
                               ClientOptions options) {
  Client client;
  PCBL_ASSIGN_OR_RETURN(client.fd_, ConnectTo(address));
  client.max_frame_bytes_ = options.max_frame_bytes;
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      max_frame_bytes_(other.max_frame_bytes_),
      last_retry_after_ms_(other.last_retry_after_ms_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    CloseSocket(fd_);
    fd_ = other.fd_;
    max_frame_bytes_ = other.max_frame_bytes_;
    last_retry_after_ms_ = other.last_retry_after_ms_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { CloseSocket(fd_); }

Result<wire::Reader> Client::RoundTrip(wire::MessageType type,
                                       std::string_view payload,
                                       std::string* storage) {
  if (fd_ < 0) return FailedPreconditionError("client is not connected");
  PCBL_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  wire::FrameHeader header;
  PCBL_ASSIGN_OR_RETURN(
      const bool got, ReadFrame(fd_, max_frame_bytes_, &header, storage));
  if (!got) return IOError("server closed the connection");
  if (header.type != wire::MessageType::kReply) {
    return InvalidArgumentError("server sent a non-reply frame");
  }
  wire::Reader in(*storage);
  PCBL_ASSIGN_OR_RETURN(const wire::ReplyHeader reply,
                        wire::DecodeReplyHeader(in));
  if (!reply.status.ok()) {
    if (reply.status.code() == StatusCode::kResourceExhausted) {
      last_retry_after_ms_ = reply.retry_after_ms;
    }
    return reply.status;
  }
  return in;
}

Result<wire::HelloReply> Client::Hello(const std::string& tenant) {
  wire::Writer out;
  wire::EncodeHelloRequest(wire::HelloRequest{tenant}, &out);
  std::string storage;
  PCBL_ASSIGN_OR_RETURN(
      wire::Reader in,
      RoundTrip(wire::MessageType::kHello, out.bytes(), &storage));
  PCBL_ASSIGN_OR_RETURN(wire::HelloReply reply, wire::DecodeHelloReply(in));
  PCBL_RETURN_IF_ERROR(in.Finish());
  return reply;
}

Result<wire::WireQueryResult> Client::Query(const std::string& tenant,
                                            const std::string& dataset,
                                            const api::QuerySpec& spec) {
  wire::Writer out;
  wire::QueryRequest request;
  request.tenant = tenant;
  request.dataset = dataset;
  request.spec = spec;
  wire::EncodeQueryRequest(request, &out);
  std::string storage;
  PCBL_ASSIGN_OR_RETURN(
      wire::Reader in,
      RoundTrip(wire::MessageType::kQuery, out.bytes(), &storage));
  PCBL_ASSIGN_OR_RETURN(wire::WireQueryResult result,
                        wire::DecodeQueryResult(in));
  PCBL_RETURN_IF_ERROR(in.Finish());
  return result;
}

Result<wire::RegisterReply> Client::Register(const std::string& tenant,
                                             const std::string& dataset,
                                             const std::string& csv_text) {
  wire::Writer out;
  wire::RegisterRequest request;
  request.tenant = tenant;
  request.dataset = dataset;
  request.csv_text = csv_text;
  wire::EncodeRegisterRequest(request, &out);
  std::string storage;
  PCBL_ASSIGN_OR_RETURN(
      wire::Reader in,
      RoundTrip(wire::MessageType::kRegister, out.bytes(), &storage));
  PCBL_ASSIGN_OR_RETURN(wire::RegisterReply reply,
                        wire::DecodeRegisterReply(in));
  PCBL_RETURN_IF_ERROR(in.Finish());
  return reply;
}

Result<wire::StatsReply> Client::Stats(const std::string& tenant) {
  wire::Writer out;
  wire::EncodeStatsRequest(wire::StatsRequest{tenant}, &out);
  std::string storage;
  PCBL_ASSIGN_OR_RETURN(
      wire::Reader in,
      RoundTrip(wire::MessageType::kStats, out.bytes(), &storage));
  PCBL_ASSIGN_OR_RETURN(wire::StatsReply reply, wire::DecodeStatsReply(in));
  PCBL_RETURN_IF_ERROR(in.Finish());
  return reply;
}

Status Client::Shutdown() {
  std::string storage;
  PCBL_ASSIGN_OR_RETURN(
      wire::Reader in,
      RoundTrip(wire::MessageType::kShutdown, std::string_view(), &storage));
  return in.Finish();
}

}  // namespace server
}  // namespace pcbl
