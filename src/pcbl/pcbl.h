// Umbrella header for the pcbl library — Patterns Count-Based Labels for
// Datasets (Moskovitch & Jagadish, ICDE 2021).
//
// The blessed entry point is the handle-based API in pcbl::api — a
// Dataset (immutable handle: one Table plus its registry-shared counting
// service) queried and grown through a Session:
//
//   #include "pcbl/pcbl.h"
//
//   auto dataset = pcbl::api::Dataset::FromCsvFile("data.csv");
//   auto session = pcbl::api::Session::Open(*dataset);
//   pcbl::api::QueryFuture future = *(*session)->Submit(
//       pcbl::api::QuerySpec::LabelSearch(/*size_bound=*/100));
//   const pcbl::api::QueryResult& result = future.Get();
//
//   pcbl::PortableLabel portable = pcbl::MakePortable(
//       result.search.label, dataset->table(), "my-dataset");
//   std::cout << pcbl::RenderNutritionLabel(portable,
//                                           &result.search.error);
//
// Sessions accept appends (Session::Append / AppendRow) and keep every
// search exact against the grown data; label-only consumers use
// api/artifact.h (estimate / audit / diff from a saved label alone).
//
// Migrating from the old LabelSearch-first usage: `pcbl::LabelSearch
// search(table); search.TopDown(options)` still works and is kept public
// as the low-level engine, but it builds VC / P_A eagerly per instance,
// refuses to run after appends unless you maintain the extended state
// yourself (LabelSearch::SetExtendedState), and only shares the warm
// counting cache when you wire ServiceRegistry::Acquire by hand —
// exactly the plumbing Dataset/Session does for you. New code should
// construct a Dataset and Submit QuerySpecs; IncrementalLabel likewise
// remains public for label-artifact maintenance, while Session owns
// dataset growth.
//
// See README.md for the guided tour and DESIGN.md for the architecture.
#ifndef PCBL_PCBL_H_
#define PCBL_PCBL_H_

#include "api/artifact.h"             // IWYU pragma: export
#include "api/dataset.h"              // IWYU pragma: export
#include "api/query.h"                // IWYU pragma: export
#include "api/session.h"              // IWYU pragma: export
#include "baselines/cm_sketch.h"      // IWYU pragma: export
#include "baselines/independence.h"   // IWYU pragma: export
#include "baselines/pairwise_histogram.h"  // IWYU pragma: export
#include "baselines/postgres.h"       // IWYU pragma: export
#include "baselines/sampling.h"       // IWYU pragma: export
#include "core/error.h"               // IWYU pragma: export
#include "core/bound_label.h"         // IWYU pragma: export
#include "core/estimator.h"           // IWYU pragma: export
#include "core/incremental.h"         // IWYU pragma: export
#include "core/label.h"               // IWYU pragma: export
#include "core/label_diff.h"          // IWYU pragma: export
#include "core/multi_label.h"         // IWYU pragma: export
#include "core/patched_label.h"       // IWYU pragma: export
#include "core/pattern_set.h"         // IWYU pragma: export
#include "core/portable_label.h"      // IWYU pragma: export
#include "core/render.h"              // IWYU pragma: export
#include "core/search.h"              // IWYU pragma: export
#include "core/warnings.h"            // IWYU pragma: export
#include "pattern/counter.h"          // IWYU pragma: export
#include "pattern/counting_engine.h"  // IWYU pragma: export
#include "pattern/full_pattern_index.h"  // IWYU pragma: export
#include "pattern/lattice.h"          // IWYU pragma: export
#include "pattern/pattern.h"          // IWYU pragma: export
#include "relation/bucketizer.h"      // IWYU pragma: export
#include "relation/csv.h"             // IWYU pragma: export
#include "relation/filter.h"          // IWYU pragma: export
#include "relation/stats.h"           // IWYU pragma: export
#include "relation/table.h"           // IWYU pragma: export
#include "relation/table_transform.h"  // IWYU pragma: export
#include "util/status.h"              // IWYU pragma: export
#include "util/str.h"                 // IWYU pragma: export
#include "util/thread_pool.h"         // IWYU pragma: export
#include "workload/datasets.h"        // IWYU pragma: export
#include "workload/generator.h"       // IWYU pragma: export

#endif  // PCBL_PCBL_H_
