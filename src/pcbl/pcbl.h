// Umbrella header for the pcbl library — Patterns Count-Based Labels for
// Datasets (Moskovitch & Jagadish, ICDE 2021).
//
// Typical usage:
//
//   #include "pcbl/pcbl.h"
//
//   pcbl::Result<pcbl::Table> table = pcbl::ReadCsvFile("data.csv");
//   pcbl::LabelSearch search(*table);
//   pcbl::SearchOptions options;
//   options.size_bound = 100;
//   pcbl::SearchResult result = search.TopDown(options);
//
//   pcbl::PortableLabel portable =
//       pcbl::MakePortable(result.label, *table, "my-dataset");
//   std::cout << pcbl::RenderNutritionLabel(portable, &result.error);
//
// See README.md for the guided tour and DESIGN.md for the architecture.
#ifndef PCBL_PCBL_H_
#define PCBL_PCBL_H_

#include "baselines/cm_sketch.h"      // IWYU pragma: export
#include "baselines/independence.h"   // IWYU pragma: export
#include "baselines/pairwise_histogram.h"  // IWYU pragma: export
#include "baselines/postgres.h"       // IWYU pragma: export
#include "baselines/sampling.h"       // IWYU pragma: export
#include "core/error.h"               // IWYU pragma: export
#include "core/bound_label.h"         // IWYU pragma: export
#include "core/estimator.h"           // IWYU pragma: export
#include "core/incremental.h"         // IWYU pragma: export
#include "core/label.h"               // IWYU pragma: export
#include "core/label_diff.h"          // IWYU pragma: export
#include "core/multi_label.h"         // IWYU pragma: export
#include "core/patched_label.h"       // IWYU pragma: export
#include "core/pattern_set.h"         // IWYU pragma: export
#include "core/portable_label.h"      // IWYU pragma: export
#include "core/render.h"              // IWYU pragma: export
#include "core/search.h"              // IWYU pragma: export
#include "core/warnings.h"            // IWYU pragma: export
#include "pattern/counter.h"          // IWYU pragma: export
#include "pattern/counting_engine.h"  // IWYU pragma: export
#include "pattern/full_pattern_index.h"  // IWYU pragma: export
#include "pattern/lattice.h"          // IWYU pragma: export
#include "pattern/pattern.h"          // IWYU pragma: export
#include "relation/bucketizer.h"      // IWYU pragma: export
#include "relation/csv.h"             // IWYU pragma: export
#include "relation/filter.h"          // IWYU pragma: export
#include "relation/stats.h"           // IWYU pragma: export
#include "relation/table.h"           // IWYU pragma: export
#include "relation/table_transform.h"  // IWYU pragma: export
#include "util/status.h"              // IWYU pragma: export
#include "util/str.h"                 // IWYU pragma: export
#include "util/thread_pool.h"         // IWYU pragma: export
#include "workload/datasets.h"        // IWYU pragma: export
#include "workload/generator.h"       // IWYU pragma: export

#endif  // PCBL_PCBL_H_
