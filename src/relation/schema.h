// Relation schema: ordered list of named categorical attributes.
//
// Attribute order matters: the paper's gen(S) operator (Definition 3.5)
// assumes a fixed total order on attributes, which we take to be schema
// position.
#ifndef PCBL_RELATION_SCHEMA_H_
#define PCBL_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace pcbl {

/// An ordered set of attribute names. Names are unique.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from names; returns an error on duplicates.
  static Result<Schema> Create(std::vector<std::string> names);

  /// Number of attributes.
  int num_attributes() const { return static_cast<int>(names_.size()); }

  /// Name of attribute `i`.
  const std::string& name(int i) const { return names_.at(static_cast<size_t>(i)); }

  /// All names in schema order.
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the attribute called `name`, or error when absent.
  Result<int> FindAttribute(std::string_view name) const;

  /// True when an attribute with this name exists.
  bool HasAttribute(std::string_view name) const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace pcbl

#endif  // PCBL_RELATION_SCHEMA_H_
