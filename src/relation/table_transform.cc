#include "relation/table_transform.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/str.h"

namespace pcbl {

namespace {

// Numeric view of one column: value per row, NaN for NULL/non-numeric.
// Returns false when no cell parses.
bool NumericColumn(const Table& table, int attr, std::vector<double>* out) {
  const int64_t rows = table.num_rows();
  out->assign(static_cast<size_t>(rows),
              std::numeric_limits<double>::quiet_NaN());
  bool any = false;
  for (int64_t r = 0; r < rows; ++r) {
    const ValueId v = table.value(r, attr);
    if (IsNull(v)) continue;
    auto parsed = ParseDouble(table.dictionary(attr).GetString(v));
    if (parsed.ok()) {
      (*out)[static_cast<size_t>(r)] = *parsed;
      any = true;
    }
  }
  return any;
}

}  // namespace

std::vector<std::string> NumericAttributes(const Table& table) {
  std::vector<std::string> out;
  for (int a = 0; a < table.num_attributes(); ++a) {
    const Dictionary& dict = table.dictionary(a);
    if (dict.size() == 0) continue;  // all NULL
    bool all_numeric = true;
    for (const std::string& v : dict.values()) {
      if (!ParseDouble(v).ok()) {
        all_numeric = false;
        break;
      }
    }
    if (all_numeric) out.push_back(table.schema().name(a));
  }
  return out;
}

Result<Table> BucketizeAttributes(const Table& table,
                                  const std::vector<std::string>& attributes,
                                  int num_buckets, BucketStrategy strategy) {
  if (num_buckets < 1) {
    return InvalidArgumentError("num_buckets must be at least 1");
  }
  std::vector<int> targets;
  for (const std::string& name : attributes) {
    auto idx = table.schema().FindAttribute(name);
    if (!idx.ok()) return idx.status();
    if (std::find(targets.begin(), targets.end(), *idx) != targets.end()) {
      return InvalidArgumentError(
          StrCat("attribute \"", name, "\" listed twice"));
    }
    targets.push_back(*idx);
  }

  // Fit one bucketizer per target.
  const int n = table.num_attributes();
  std::vector<std::vector<std::string>> bucketized(static_cast<size_t>(n));
  for (int attr : targets) {
    std::vector<double> values;
    if (!NumericColumn(table, attr, &values)) {
      return InvalidArgumentError(
          StrCat("attribute \"", table.schema().name(attr),
                 "\" has no numeric values"));
    }
    auto labels = BucketizeColumn(values, num_buckets, strategy);
    if (!labels.ok()) return labels.status();
    bucketized[static_cast<size_t>(attr)] = std::move(*labels);
  }

  // Rebuild row by row, swapping the target columns for bucket labels.
  auto builder = TableBuilder::Create(table.schema().names());
  if (!builder.ok()) return builder.status();
  std::vector<std::string> row(static_cast<size_t>(n));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < n; ++a) {
      if (!bucketized[static_cast<size_t>(a)].empty()) {
        row[static_cast<size_t>(a)] =
            bucketized[static_cast<size_t>(a)][static_cast<size_t>(r)];
      } else {
        const ValueId v = table.value(r, a);
        row[static_cast<size_t>(a)] =
            IsNull(v) ? "" : table.dictionary(a).GetString(v);
      }
    }
    PCBL_RETURN_IF_ERROR(builder->AddRow(row));
  }
  return builder->Build();
}

}  // namespace pcbl
