// In-memory, dictionary-encoded, columnar table of categorical attributes.
//
// This is the dataset substrate the paper's algorithms operate on. Values
// are stored column-major as ValueIds; each attribute has its own
// Dictionary. NULLs are allowed and never match a pattern.
#ifndef PCBL_RELATION_TABLE_H_
#define PCBL_RELATION_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "relation/dictionary.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {

class TableBuilder;

/// An immutable relational instance with categorical attributes.
class Table {
 public:
  Table() = default;

  int64_t num_rows() const {
    return columns_.empty() ? 0
                            : static_cast<int64_t>(columns_[0].size());
  }
  int num_attributes() const { return schema_.num_attributes(); }
  const Schema& schema() const { return schema_; }

  /// Dictionary of attribute `attr`.
  const Dictionary& dictionary(int attr) const {
    return *dictionaries_.at(static_cast<size_t>(attr));
  }

  /// The shared dictionary handle of `attr`. Tables are immutable once
  /// built, so projections alias these instead of deep-copying (several
  /// call sites project per candidate subset).
  std::shared_ptr<const Dictionary> shared_dictionary(int attr) const {
    return dictionaries_.at(static_cast<size_t>(attr));
  }

  /// Domain size |Dom(A_attr)| — the number of distinct non-null values
  /// interned for the attribute.
  ValueId DomainSize(int attr) const { return dictionary(attr).size(); }

  /// The code of cell (row, attr); kNullValue when missing.
  ValueId value(int64_t row, int attr) const {
    return columns_[static_cast<size_t>(attr)][static_cast<size_t>(row)];
  }

  /// Whole column of attribute `attr`.
  const std::vector<ValueId>& column(int attr) const {
    return columns_.at(static_cast<size_t>(attr));
  }

  /// String rendering of cell (row, attr); "NULL" when missing.
  std::string ValueString(int64_t row, int attr) const;

  /// Number of NULL cells in attribute `attr`. O(1): tracked during
  /// construction (the packed kernels pick branch-free NULL-free loops
  /// from this).
  int64_t NullCount(int attr) const {
    return null_counts_.at(static_cast<size_t>(attr));
  }
  bool HasNulls(int attr) const { return NullCount(attr) > 0; }

  /// Returns a new table with only the attributes in `mask` (schema order
  /// preserved). Dictionaries are shared content-wise (copied).
  Result<Table> Project(AttrMask mask) const;

  /// Returns a new table with only the first `k` attributes.
  Result<Table> ProjectPrefix(int k) const;

  /// Renders the first `max_rows` rows as an ASCII grid (debugging aid).
  std::string ToDebugString(int64_t max_rows = 20) const;

 private:
  friend class TableBuilder;

  Schema schema_;
  // Shared, not deep-copied, by Project/ProjectPrefix and table copies:
  // a built table never mutates its dictionaries (only TableBuilder
  // interns, and Build() severs its access).
  std::vector<std::shared_ptr<const Dictionary>> dictionaries_;
  std::vector<std::vector<ValueId>> columns_;  // [attr][row]
  std::vector<int64_t> null_counts_;           // per attr
};

/// Incrementally builds a Table from rows of strings or codes.
class TableBuilder {
 public:
  /// Starts a table with the given attribute names.
  static Result<TableBuilder> Create(std::vector<std::string> attribute_names);

  /// Appends a row of string values; empty string and "NULL" intern as
  /// missing. The row must have exactly num_attributes() entries.
  Status AddRow(const std::vector<std::string>& values);

  /// Appends a row of pre-encoded codes (must be valid ids or kNullValue).
  Status AddRowCodes(const std::vector<ValueId>& codes);

  /// Interns `value` in the dictionary of `attr` without adding a row;
  /// useful for fixing domain contents (and therefore id order) up front.
  ValueId InternValue(int attr, std::string_view value);

  int num_attributes() const { return table_.num_attributes(); }
  int64_t num_rows() const { return table_.num_rows(); }

  /// Finalizes and returns the table. The builder is left empty.
  Table Build();

 private:
  TableBuilder() = default;

  Table table_;
  // Mutable dictionary handles; Build() freezes them into the table as
  // shared const pointers and drops this write access.
  std::vector<std::shared_ptr<Dictionary>> dicts_;
};

}  // namespace pcbl

#endif  // PCBL_RELATION_TABLE_H_
