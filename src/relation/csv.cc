#include "relation/csv.h"

#include <fstream>
#include <sstream>

#include "util/str.h"

namespace pcbl {
namespace {

bool NeedsQuoting(std::string_view field, char sep) {
  for (char c : field) {
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendQuoted(std::string& out, std::string_view field) {
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

Result<std::vector<std::vector<std::string>>> ParseCsvRecords(
    std::string_view text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_field_in_record = false;

  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
    field_was_quoted = false;
    any_field_in_record = true;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_field_in_record = false;
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        return InvalidArgumentError(
            StrCat("stray quote inside unquoted field near offset ", i));
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
    } else if (c == options.separator) {
      end_field();
      ++i;
    } else if (c == '\r') {
      // Normalize CRLF and lone CR to record ends.
      if (i + 1 < n && text[i + 1] == '\n') ++i;
      end_record();
      ++i;
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      ++i;
    }
  }
  if (in_quotes) {
    return InvalidArgumentError("unterminated quoted field at end of input");
  }
  // Flush a final record without trailing newline; skip a trailing empty
  // line (single empty unquoted field and nothing else).
  if (!field.empty() || field_was_quoted || any_field_in_record) {
    end_record();
  }
  return records;
}

Result<Table> ReadCsvString(std::string_view text, const CsvOptions& options) {
  PCBL_ASSIGN_OR_RETURN(auto records, ParseCsvRecords(text, options));
  if (records.empty()) {
    return InvalidArgumentError("CSV input has no header record");
  }
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(std::move(records[0])));
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string>& rec = records[r];
    if (static_cast<int>(rec.size()) != builder.num_attributes()) {
      return InvalidArgumentError(
          StrCat("record ", r, " has ", rec.size(), " fields; expected ",
                 builder.num_attributes()));
    }
    if (options.null_literal) {
      // AddRow already maps "" and "NULL" to missing.
      PCBL_RETURN_IF_ERROR(builder.AddRow(rec));
    } else {
      // Preserve the NULL literal as a regular value; only "" is missing.
      std::vector<ValueId> codes(rec.size());
      for (size_t a = 0; a < rec.size(); ++a) {
        codes[a] = rec[a].empty()
                       ? kNullValue
                       : builder.InternValue(static_cast<int>(a), rec[a]);
      }
      PCBL_RETURN_IF_ERROR(builder.AddRowCodes(codes));
    }
  }
  return builder.Build();
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return IOError(StrCat("cannot open '", path, "' for reading"));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return IOError(StrCat("error while reading '", path, "'"));
  }
  return ReadCsvString(buffer.str(), options);
}

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::string out;
  for (int a = 0; a < table.num_attributes(); ++a) {
    if (a > 0) out.push_back(options.separator);
    const std::string& name = table.schema().name(a);
    if (NeedsQuoting(name, options.separator)) {
      AppendQuoted(out, name);
    } else {
      out.append(name);
    }
  }
  out.push_back('\n');
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int a = 0; a < table.num_attributes(); ++a) {
      if (a > 0) out.push_back(options.separator);
      ValueId v = table.value(r, a);
      if (IsNull(v)) continue;  // empty field
      const std::string& s = table.dictionary(a).GetString(v);
      if (s.empty() || s == "NULL" || NeedsQuoting(s, options.separator)) {
        AppendQuoted(out, s);
      } else {
        out.append(s);
      }
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return IOError(StrCat("cannot open '", path, "' for writing"));
  }
  out << WriteCsvString(table, options);
  if (!out) {
    return IOError(StrCat("error while writing '", path, "'"));
  }
  return Status::Ok();
}

}  // namespace pcbl
