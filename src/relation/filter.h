// Row filtering: materialize the sub-relation satisfying a pattern.
//
// Supports the drill-down loop of a fitness-for-use audit: once a label
// flags a suspicious group (skewed or under-represented), the analyst
// inspects that group's actual rows. Dictionaries and attribute order are
// preserved so patterns and labels built against the original schema keep
// working on the filtered table.
#ifndef PCBL_RELATION_FILTER_H_
#define PCBL_RELATION_FILTER_H_

#include "pattern/pattern.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Returns the rows of `table` satisfying `pattern` (Definition 2.3
/// semantics: NULLs never match). Dictionaries are copied unchanged, so
/// ValueIds remain comparable across the original and filtered tables.
Result<Table> FilterRows(const Table& table, const Pattern& pattern);

/// Returns the rows NOT satisfying `pattern` (the complement).
Result<Table> FilterRowsOut(const Table& table, const Pattern& pattern);

}  // namespace pcbl

#endif  // PCBL_RELATION_FILTER_H_
