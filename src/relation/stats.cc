#include "relation/stats.h"

#include <cmath>

namespace pcbl {

ValueCounts ValueCounts::Compute(const Table& table) {
  ValueCounts vc;
  int n = table.num_attributes();
  vc.counts_.resize(static_cast<size_t>(n));
  vc.totals_.assign(static_cast<size_t>(n), 0);
  vc.distinct_.assign(static_cast<size_t>(n), 0);
  for (int a = 0; a < n; ++a) {
    auto& counts = vc.counts_[static_cast<size_t>(a)];
    counts.assign(table.DomainSize(a), 0);
    const auto& col = table.column(a);
    int64_t total = 0;
    for (ValueId v : col) {
      if (IsNull(v)) continue;
      ++counts[v];
      ++total;
    }
    vc.totals_[static_cast<size_t>(a)] = total;
    int64_t distinct = 0;
    for (int64_t c : counts) {
      if (c > 0) ++distinct;
    }
    vc.distinct_[static_cast<size_t>(a)] = distinct;
  }
  return vc;
}

void ValueCounts::ApplyRow(const ValueId* codes, int num_attributes) {
  for (int a = 0; a < num_attributes; ++a) {
    const ValueId v = codes[a];
    if (IsNull(v)) continue;
    auto& counts = counts_[static_cast<size_t>(a)];
    if (v >= counts.size()) counts.resize(v + 1, 0);
    if (++counts[v] == 1) ++distinct_[static_cast<size_t>(a)];
    ++totals_[static_cast<size_t>(a)];
  }
}

int64_t ValueCounts::TotalEntries() const {
  int64_t total = 0;
  for (const auto& c : counts_) {
    for (int64_t x : c) {
      if (x > 0) ++total;
    }
  }
  return total;
}

std::vector<AttributeSummary> SummarizeAttributes(const Table& table) {
  ValueCounts vc = ValueCounts::Compute(table);
  std::vector<AttributeSummary> out;
  out.reserve(static_cast<size_t>(table.num_attributes()));
  for (int a = 0; a < table.num_attributes(); ++a) {
    AttributeSummary s;
    s.name = table.schema().name(a);
    s.distinct_values = vc.DistinctCount(a);
    s.null_count = table.num_rows() - vc.NonNullTotal(a);
    double total = static_cast<double>(vc.NonNullTotal(a));
    double entropy = 0.0;
    const auto& counts = vc.CountsFor(a);
    int64_t best = -1;
    ValueId best_v = 0;
    for (ValueId v = 0; v < counts.size(); ++v) {
      int64_t c = counts[v];
      if (c <= 0) continue;
      double p = static_cast<double>(c) / total;
      entropy -= p * std::log2(p);
      if (c > best) {
        best = c;
        best_v = v;
      }
    }
    s.entropy_bits = entropy;
    if (best > 0) {
      s.top_value = table.dictionary(a).GetString(best_v);
      s.top_count = best;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace pcbl
