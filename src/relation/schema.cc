#include "relation/schema.h"

#include "util/attr_mask.h"
#include "util/str.h"

namespace pcbl {

Result<Schema> Schema::Create(std::vector<std::string> names) {
  if (static_cast<int>(names.size()) > kMaxAttributes) {
    return InvalidArgumentError(
        StrCat("schema has ", names.size(), " attributes; at most ",
               kMaxAttributes, " are supported"));
  }
  Schema s;
  s.names_ = std::move(names);
  for (int i = 0; i < static_cast<int>(s.names_.size()); ++i) {
    auto [it, inserted] = s.index_.emplace(s.names_[static_cast<size_t>(i)], i);
    (void)it;
    if (!inserted) {
      return InvalidArgumentError(
          StrCat("duplicate attribute name '", s.names_[static_cast<size_t>(i)], "'"));
    }
  }
  return s;
}

Result<int> Schema::FindAttribute(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return NotFoundError(StrCat("no attribute named '", name, "'"));
  }
  return it->second;
}

bool Schema::HasAttribute(std::string_view name) const {
  return index_.find(std::string(name)) != index_.end();
}

}  // namespace pcbl
