// Bucketization of continuous domains into categorical ranges.
//
// The paper renders continuous attributes categorical "by bucketizing them
// into ranges" (Sec. II) and bucketizes each numerical attribute of the
// Credit Card dataset into 5 bins (Sec. IV-A). This module provides
// equi-width and equi-depth (quantile) bucketization plus custom edges.
#ifndef PCBL_RELATION_BUCKETIZER_H_
#define PCBL_RELATION_BUCKETIZER_H_

#include <cmath>
#include <string>
#include <vector>

#include "util/status.h"

namespace pcbl {

/// How bucket boundaries are chosen.
enum class BucketStrategy {
  /// Equal-length intervals over [min, max].
  kEquiWidth,
  /// Quantile boundaries so buckets hold (approximately) equal row counts.
  kEquiDepth,
};

/// Maps doubles to labeled half-open range buckets [lo, hi); the last
/// bucket is closed on the right. NaN maps to the empty label "" (missing).
class Bucketizer {
 public:
  /// Learns `num_buckets` boundaries from `values` with the given strategy.
  /// NaNs are ignored while learning. Fails on empty input (all-NaN) or
  /// num_buckets < 1. Degenerate input (all values equal) yields one bucket.
  static Result<Bucketizer> Fit(const std::vector<double>& values,
                                int num_buckets, BucketStrategy strategy);

  /// Builds from explicit ascending interior edges; a value v falls into
  /// bucket i such that edges[i-1] <= v < edges[i].
  static Result<Bucketizer> FromEdges(double min, double max,
                                      std::vector<double> interior_edges);

  /// Bucket index for a value (clamped to [0, num_buckets())); -1 for NaN.
  int BucketIndex(double v) const;

  /// Human-readable label such as "[10.0,20.0)"; "" for NaN.
  std::string BucketLabel(double v) const;

  /// Label of bucket `i`.
  std::string LabelOfBucket(int i) const;

  int num_buckets() const { return static_cast<int>(labels_.size()); }

  /// Interior edges (ascending); size() == num_buckets() - 1.
  const std::vector<double>& interior_edges() const { return edges_; }

 private:
  Bucketizer() = default;
  void BuildLabels(double min, double max);

  std::vector<double> edges_;        // interior boundaries, ascending
  std::vector<std::string> labels_;  // one per bucket
};

/// Convenience: bucketizes a numeric column into string labels suitable for
/// TableBuilder::AddRow. NaN becomes "" (missing).
Result<std::vector<std::string>> BucketizeColumn(
    const std::vector<double>& values, int num_buckets,
    BucketStrategy strategy);

}  // namespace pcbl

#endif  // PCBL_RELATION_BUCKETIZER_H_
