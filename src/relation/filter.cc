#include "relation/filter.h"

namespace pcbl {
namespace {

Result<Table> FilterImpl(const Table& table, const Pattern& pattern,
                         bool keep_matching) {
  // Validate the pattern against the schema up front.
  for (const PatternTerm& t : pattern.terms()) {
    if (t.attr >= table.num_attributes()) {
      return OutOfRangeError("pattern attribute out of schema range");
    }
    if (t.value >= table.DomainSize(t.attr)) {
      return OutOfRangeError("pattern value outside attribute domain");
    }
  }
  PCBL_ASSIGN_OR_RETURN(TableBuilder builder,
                        TableBuilder::Create(table.schema().names()));
  for (int a = 0; a < table.num_attributes(); ++a) {
    for (const std::string& v : table.dictionary(a).values()) {
      builder.InternValue(a, v);
    }
  }
  std::vector<ValueId> codes(static_cast<size_t>(table.num_attributes()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    if (pattern.MatchesRow(table, r) != keep_matching) continue;
    for (int a = 0; a < table.num_attributes(); ++a) {
      codes[static_cast<size_t>(a)] = table.value(r, a);
    }
    PCBL_RETURN_IF_ERROR(builder.AddRowCodes(codes));
  }
  return builder.Build();
}

}  // namespace

Result<Table> FilterRows(const Table& table, const Pattern& pattern) {
  return FilterImpl(table, pattern, /*keep_matching=*/true);
}

Result<Table> FilterRowsOut(const Table& table, const Pattern& pattern) {
  return FilterImpl(table, pattern, /*keep_matching=*/false);
}

}  // namespace pcbl
