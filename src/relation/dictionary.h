// Per-attribute value dictionary: bijective mapping string <-> ValueId.
#ifndef PCBL_RELATION_DICTIONARY_H_
#define PCBL_RELATION_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relation/value.h"
#include "util/status.h"

namespace pcbl {

/// Maps the distinct string values of one attribute to dense ValueIds
/// [0, size()). Ids are assigned in first-seen order and are stable.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `value`, interning it if previously unseen.
  ValueId Intern(std::string_view value);

  /// Returns the id for `value`, or kNullValue when unknown (does not
  /// modify the dictionary).
  ValueId Lookup(std::string_view value) const;

  /// True when `value` is interned.
  bool Contains(std::string_view value) const {
    return Lookup(value) != kNullValue;
  }

  /// The string for a (valid, non-null) id.
  const std::string& GetString(ValueId id) const;

  /// Number of distinct interned values.
  ValueId size() const { return static_cast<ValueId>(values_.size()); }

  /// All interned values, indexed by id.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId> index_;
};

}  // namespace pcbl

#endif  // PCBL_RELATION_DICTIONARY_H_
