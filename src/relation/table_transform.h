// Whole-table preprocessing transforms.
//
// The paper renders continuous attributes categorical "by bucketizing
// them into ranges" before any label work (Sec. II), and preprocesses the
// Credit Card dataset by binning every numerical attribute into 5 buckets
// (Sec. IV-A). This module applies exactly that step to a loaded table,
// so CSV datasets with numeric columns can enter the label pipeline
// unchanged (`pcbl bucketize` wraps it on the command line).
#ifndef PCBL_RELATION_TABLE_TRANSFORM_H_
#define PCBL_RELATION_TABLE_TRANSFORM_H_

#include <string>
#include <vector>

#include "relation/bucketizer.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// Attributes whose every non-NULL value parses as a number (and that
/// have at least one non-NULL value) — the natural bucketization targets.
std::vector<std::string> NumericAttributes(const Table& table);

/// Replaces each named attribute's values with range-bucket labels learned
/// from that attribute's numeric values. Cells that fail to parse as
/// numbers (and NULLs) become missing. Fails on unknown attribute names,
/// duplicates, attributes with no numeric values, or num_buckets < 1.
Result<Table> BucketizeAttributes(const Table& table,
                                  const std::vector<std::string>& attributes,
                                  int num_buckets, BucketStrategy strategy);

}  // namespace pcbl

#endif  // PCBL_RELATION_TABLE_TRANSFORM_H_
