#include "relation/table.h"

#include <algorithm>
#include <sstream>

#include "util/str.h"

namespace pcbl {

std::string Table::ValueString(int64_t row, int attr) const {
  ValueId v = value(row, attr);
  if (IsNull(v)) return "NULL";
  return dictionary(attr).GetString(v);
}


Result<Table> Table::Project(AttrMask mask) const {
  std::vector<int> keep;
  for (int i : mask.ToIndices()) {
    if (i >= num_attributes()) {
      return OutOfRangeError(
          StrCat("projection attribute ", i, " out of range (table has ",
                 num_attributes(), " attributes)"));
    }
    keep.push_back(i);
  }
  std::vector<std::string> names;
  names.reserve(keep.size());
  for (int i : keep) names.push_back(schema_.name(i));
  PCBL_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  Table out;
  out.schema_ = std::move(schema);
  for (int i : keep) {
    // Dictionaries are immutable once built: share the handle instead of
    // deep-copying the string table per projection.
    out.dictionaries_.push_back(dictionaries_[static_cast<size_t>(i)]);
    out.columns_.push_back(columns_[static_cast<size_t>(i)]);
    out.null_counts_.push_back(null_counts_[static_cast<size_t>(i)]);
  }
  return out;
}

Result<Table> Table::ProjectPrefix(int k) const {
  if (k < 0 || k > num_attributes()) {
    return OutOfRangeError(StrCat("prefix length ", k, " out of range"));
  }
  return Project(AttrMask::All(k));
}

std::string Table::ToDebugString(int64_t max_rows) const {
  std::ostringstream os;
  for (int a = 0; a < num_attributes(); ++a) {
    if (a > 0) os << " | ";
    os << schema_.name(a);
  }
  os << "\n";
  int64_t limit = std::min<int64_t>(max_rows, num_rows());
  for (int64_t r = 0; r < limit; ++r) {
    for (int a = 0; a < num_attributes(); ++a) {
      if (a > 0) os << " | ";
      os << ValueString(r, a);
    }
    os << "\n";
  }
  if (limit < num_rows()) {
    os << "... (" << (num_rows() - limit) << " more rows)\n";
  }
  return os.str();
}

Result<TableBuilder> TableBuilder::Create(
    std::vector<std::string> attribute_names) {
  PCBL_ASSIGN_OR_RETURN(Schema schema,
                        Schema::Create(std::move(attribute_names)));
  TableBuilder b;
  b.table_.schema_ = std::move(schema);
  const size_t n = static_cast<size_t>(b.table_.schema_.num_attributes());
  b.dicts_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.dicts_.push_back(std::make_shared<Dictionary>());
  }
  b.table_.columns_.resize(n);
  b.table_.null_counts_.assign(n, 0);
  return b;
}

Status TableBuilder::AddRow(const std::vector<std::string>& values) {
  if (static_cast<int>(values.size()) != num_attributes()) {
    return InvalidArgumentError(
        StrCat("row has ", values.size(), " values; expected ",
               num_attributes()));
  }
  for (int a = 0; a < num_attributes(); ++a) {
    const std::string& v = values[static_cast<size_t>(a)];
    ValueId id;
    if (v.empty() || v == "NULL") {
      id = kNullValue;
      ++table_.null_counts_[static_cast<size_t>(a)];
    } else {
      id = dicts_[static_cast<size_t>(a)]->Intern(v);
    }
    table_.columns_[static_cast<size_t>(a)].push_back(id);
  }
  return Status::Ok();
}

Status TableBuilder::AddRowCodes(const std::vector<ValueId>& codes) {
  if (static_cast<int>(codes.size()) != num_attributes()) {
    return InvalidArgumentError(
        StrCat("row has ", codes.size(), " codes; expected ",
               num_attributes()));
  }
  for (int a = 0; a < num_attributes(); ++a) {
    ValueId id = codes[static_cast<size_t>(a)];
    if (!IsNull(id) && id >= dicts_[static_cast<size_t>(a)]->size()) {
      return InvalidArgumentError(
          StrCat("code ", id, " out of range for attribute ",
                 table_.schema_.name(a), " (domain size ",
                 dicts_[static_cast<size_t>(a)]->size(), ")"));
    }
    table_.null_counts_[static_cast<size_t>(a)] +=
        static_cast<int64_t>(IsNull(id));
    table_.columns_[static_cast<size_t>(a)].push_back(id);
  }
  return Status::Ok();
}

ValueId TableBuilder::InternValue(int attr, std::string_view value) {
  PCBL_CHECK(attr >= 0 && attr < num_attributes());
  return dicts_[static_cast<size_t>(attr)]->Intern(value);
}

Table TableBuilder::Build() {
  // Freeze: the table takes const handles and the builder drops its
  // write access, so sharing them (Project, table copies) is safe.
  table_.dictionaries_.assign(dicts_.begin(), dicts_.end());
  dicts_.clear();
  Table out = std::move(table_);
  table_ = Table();
  return out;
}

}  // namespace pcbl
