#include "relation/dictionary.h"

#include "util/logging.h"

namespace pcbl {

ValueId Dictionary::Intern(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  PCBL_CHECK(id != kNullValue) << "dictionary overflow";
  values_.emplace_back(value);
  index_.emplace(values_.back(), id);
  return id;
}

ValueId Dictionary::Lookup(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) return kNullValue;
  return it->second;
}

const std::string& Dictionary::GetString(ValueId id) const {
  PCBL_CHECK(id < values_.size()) << "invalid dictionary id " << id;
  return values_[id];
}

}  // namespace pcbl
