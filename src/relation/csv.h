// RFC-4180-flavoured CSV reading/writing for Table.
//
// Supports quoted fields with embedded separators, escaped quotes ("")
// and newlines inside quotes. The first record is the header (attribute
// names). Empty unquoted fields and the literal NULL read as missing.
#ifndef PCBL_RELATION_CSV_H_
#define PCBL_RELATION_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "relation/table.h"
#include "util/status.h"

namespace pcbl {

/// CSV parsing/serialization options.
struct CsvOptions {
  char separator = ',';
  /// When true, the literal unquoted string NULL parses as missing.
  bool null_literal = true;
};

/// Parses CSV text (with header) into a Table.
Result<Table> ReadCsvString(std::string_view text,
                            const CsvOptions& options = {});

/// Reads a CSV file (with header) into a Table.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table to CSV text (with header). Fields containing the
/// separator, quotes, or newlines are quoted; NULLs render as empty fields.
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

/// Splits one logical CSV text into records of fields (exposed for tests).
Result<std::vector<std::vector<std::string>>> ParseCsvRecords(
    std::string_view text, const CsvOptions& options = {});

}  // namespace pcbl

#endif  // PCBL_RELATION_CSV_H_
