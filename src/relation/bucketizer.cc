#include "relation/bucketizer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/str.h"

namespace pcbl {

Result<Bucketizer> Bucketizer::Fit(const std::vector<double>& values,
                                   int num_buckets,
                                   BucketStrategy strategy) {
  if (num_buckets < 1) {
    return InvalidArgumentError(
        StrCat("num_buckets must be >= 1, got ", num_buckets));
  }
  std::vector<double> clean;
  clean.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) clean.push_back(v);
  }
  if (clean.empty()) {
    return InvalidArgumentError("cannot fit bucketizer on all-NaN input");
  }
  double lo = *std::min_element(clean.begin(), clean.end());
  double hi = *std::max_element(clean.begin(), clean.end());

  Bucketizer b;
  if (lo == hi || num_buckets == 1) {
    // Degenerate: single bucket.
    b.BuildLabels(lo, hi);
    return b;
  }

  if (strategy == BucketStrategy::kEquiWidth) {
    double width = (hi - lo) / num_buckets;
    for (int i = 1; i < num_buckets; ++i) {
      b.edges_.push_back(lo + width * i);
    }
  } else {
    std::sort(clean.begin(), clean.end());
    for (int i = 1; i < num_buckets; ++i) {
      size_t idx = static_cast<size_t>(
          (static_cast<double>(clean.size()) * i) / num_buckets);
      if (idx >= clean.size()) idx = clean.size() - 1;
      double edge = clean[idx];
      // Keep edges strictly increasing; skip duplicates (fewer buckets).
      if (b.edges_.empty() || edge > b.edges_.back()) {
        b.edges_.push_back(edge);
      }
    }
    // Drop edges equal to the extremes, which would create empty buckets.
    while (!b.edges_.empty() && b.edges_.front() <= lo) {
      b.edges_.erase(b.edges_.begin());
    }
    while (!b.edges_.empty() && b.edges_.back() > hi) b.edges_.pop_back();
  }
  b.BuildLabels(lo, hi);
  return b;
}

Result<Bucketizer> Bucketizer::FromEdges(double min, double max,
                                         std::vector<double> interior_edges) {
  for (size_t i = 1; i < interior_edges.size(); ++i) {
    if (interior_edges[i] <= interior_edges[i - 1]) {
      return InvalidArgumentError("interior edges must be strictly ascending");
    }
  }
  Bucketizer b;
  b.edges_ = std::move(interior_edges);
  b.BuildLabels(min, max);
  return b;
}

void Bucketizer::BuildLabels(double min, double max) {
  int n = static_cast<int>(edges_.size()) + 1;
  labels_.clear();
  labels_.reserve(static_cast<size_t>(n));
  auto edge_at = [&](int i) -> double {
    // Bucket i spans [edge_at(i), edge_at(i+1)).
    if (i <= 0) return min;
    if (i >= n) return max;
    return edges_[static_cast<size_t>(i - 1)];
  };
  for (int i = 0; i < n; ++i) {
    double lo = edge_at(i);
    double hi = edge_at(i + 1);
    bool last = (i == n - 1);
    labels_.push_back(StrFormat("%c%.6g,%.6g%c", '[', lo, hi,
                                last ? ']' : ')'));
  }
}

int Bucketizer::BucketIndex(double v) const {
  if (std::isnan(v)) return -1;
  // First bucket whose upper interior edge is > v.
  auto it = std::upper_bound(edges_.begin(), edges_.end(), v);
  return static_cast<int>(it - edges_.begin());
}

std::string Bucketizer::BucketLabel(double v) const {
  int i = BucketIndex(v);
  if (i < 0) return "";
  return LabelOfBucket(i);
}

std::string Bucketizer::LabelOfBucket(int i) const {
  PCBL_CHECK(i >= 0 && i < num_buckets()) << "bucket index " << i;
  return labels_[static_cast<size_t>(i)];
}

Result<std::vector<std::string>> BucketizeColumn(
    const std::vector<double>& values, int num_buckets,
    BucketStrategy strategy) {
  PCBL_ASSIGN_OR_RETURN(Bucketizer b,
                        Bucketizer::Fit(values, num_buckets, strategy));
  std::vector<std::string> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(b.BucketLabel(v));
  return out;
}

}  // namespace pcbl
