// Fundamental value representation of the relational substrate.
//
// All attribute values are categorical (the paper bucketizes continuous
// domains first, Sec. II); a value is stored as a dictionary code local to
// its attribute. Missing values (used by the NP-hardness reduction database
// of appendix A) are represented by kNullValue and never match any pattern.
#ifndef PCBL_RELATION_VALUE_H_
#define PCBL_RELATION_VALUE_H_

#include <cstdint>

namespace pcbl {

/// Dictionary code of a categorical value within one attribute.
using ValueId = uint32_t;

/// Sentinel for SQL NULL / missing values.
inline constexpr ValueId kNullValue = 0xFFFFFFFFu;

/// True when `v` denotes a missing value.
inline bool IsNull(ValueId v) { return v == kNullValue; }

}  // namespace pcbl

#endif  // PCBL_RELATION_VALUE_H_
