// Per-attribute statistics over a table.
//
// ValueCounts is exactly the paper's VC set (Definition 2.9): the count of
// every individual attribute value in D. It is shared by every label of the
// same dataset and by the estimation function's denominators.
#ifndef PCBL_RELATION_STATS_H_
#define PCBL_RELATION_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relation/table.h"

namespace pcbl {

/// The VC set: for each attribute, the count of each of its values.
class ValueCounts {
 public:
  /// Scans the table once and tallies every value of every attribute.
  static ValueCounts Compute(const Table& table);

  /// Applies one appended row (`codes[a]` for every attribute,
  /// kNullValue = missing; fresh values use ids extending the base code
  /// space). After applying every appended row this instance answers
  /// exactly like Compute over the extended table — the maintenance arm
  /// of the append-aware search path (see api/session.h).
  void ApplyRow(const ValueId* codes, int num_attributes);

  /// Count of tuples with value `v` in attribute `attr` (0 for kNullValue).
  int64_t Count(int attr, ValueId v) const {
    if (IsNull(v)) return 0;
    const auto& c = counts_[static_cast<size_t>(attr)];
    return v < c.size() ? c[v] : 0;
  }

  /// Σ_{a ∈ Dom(A_attr)} c_D({A_attr = a}) — the estimation function's
  /// denominator; equals the number of non-NULL cells of the attribute.
  int64_t NonNullTotal(int attr) const {
    return totals_[static_cast<size_t>(attr)];
  }

  /// Number of distinct (non-null) values of the attribute.
  int64_t DistinctCount(int attr) const {
    return distinct_[static_cast<size_t>(attr)];
  }

  int num_attributes() const { return static_cast<int>(counts_.size()); }

  /// Total number of (attribute, value, count) entries — the |VC| term used
  /// when sizing the sampling baseline (Sec. IV-A).
  int64_t TotalEntries() const;

  /// All counts of one attribute, indexed by ValueId.
  const std::vector<int64_t>& CountsFor(int attr) const {
    return counts_[static_cast<size_t>(attr)];
  }

 private:
  std::vector<std::vector<int64_t>> counts_;  // [attr][value_id]
  std::vector<int64_t> totals_;               // non-null totals per attr
  std::vector<int64_t> distinct_;             // values with count > 0
};

/// Summary of one attribute for profiling displays.
struct AttributeSummary {
  std::string name;
  int64_t distinct_values = 0;
  int64_t null_count = 0;
  /// Shannon entropy (bits) of the value distribution.
  double entropy_bits = 0.0;
  /// Most common value and its count.
  std::string top_value;
  int64_t top_count = 0;
};

/// Computes summaries for all attributes.
std::vector<AttributeSummary> SummarizeAttributes(const Table& table);

}  // namespace pcbl

#endif  // PCBL_RELATION_STATS_H_
