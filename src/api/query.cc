#include "api/query.h"

#include "util/str.h"

namespace pcbl {
namespace api {

Status ValidateQuerySpec(const QuerySpec& spec) {
  if (spec.size_bound < 0) {
    return InvalidArgumentError(
        StrCat("size_bound must be non-negative, got ", spec.size_bound));
  }
  if (spec.time_limit_seconds < 0) {
    return InvalidArgumentError("time_limit_seconds must be non-negative");
  }
  if (spec.num_threads.has_value() && *spec.num_threads <= 0) {
    return InvalidArgumentError(
        StrCat("num_threads must be positive, got ", *spec.num_threads,
               " (zero worker threads cannot run a query)"));
  }
  if (spec.counting_cache_budget.has_value() &&
      *spec.counting_cache_budget < 0) {
    return InvalidArgumentError("counting_cache_budget must be >= 0");
  }
  if (spec.use_counting_engine.has_value() && !*spec.use_counting_engine &&
      spec.counting_cache_budget.has_value() &&
      *spec.counting_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  if (spec.kind == QuerySpec::Kind::kTrueCount && spec.pattern.empty()) {
    return InvalidArgumentError(
        "a true-count query needs at least one attr=value term");
  }
  if (spec.kind != QuerySpec::Kind::kTrueCount && !spec.pattern.empty()) {
    return InvalidArgumentError(
        "pattern terms are only meaningful on a true-count query");
  }
  if (spec.kind != QuerySpec::Kind::kLabelSearch && !spec.focus.empty()) {
    return InvalidArgumentError(
        "focus attributes are only meaningful on a label-search query");
  }
  return Status::Ok();
}

}  // namespace api
}  // namespace pcbl
