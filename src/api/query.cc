#include "api/query.h"

#include <algorithm>

#include "util/hash.h"
#include "util/str.h"

namespace pcbl {
namespace api {

Status ValidateQuerySpec(const QuerySpec& spec) {
  if (spec.size_bound < 0) {
    return InvalidArgumentError(
        StrCat("size_bound must be non-negative, got ", spec.size_bound));
  }
  if (spec.time_limit_seconds < 0) {
    return InvalidArgumentError("time_limit_seconds must be non-negative");
  }
  if (spec.num_threads.has_value() && *spec.num_threads <= 0) {
    return InvalidArgumentError(
        StrCat("num_threads must be positive, got ", *spec.num_threads,
               " (zero worker threads cannot run a query)"));
  }
  if (spec.counting_cache_budget.has_value() &&
      *spec.counting_cache_budget < 0) {
    return InvalidArgumentError("counting_cache_budget must be >= 0");
  }
  if (spec.min_rows_per_morsel.has_value() &&
      *spec.min_rows_per_morsel < 0) {
    return InvalidArgumentError(
        "min_rows_per_morsel must be >= 0 (0 disables intra-subset "
        "parallelism)");
  }
  if (spec.use_counting_engine.has_value() && !*spec.use_counting_engine &&
      spec.counting_cache_budget.has_value() &&
      *spec.counting_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  if (spec.kind == QuerySpec::Kind::kTrueCount && spec.pattern.empty()) {
    return InvalidArgumentError(
        "a true-count query needs at least one attr=value term");
  }
  if (spec.kind != QuerySpec::Kind::kTrueCount && !spec.pattern.empty()) {
    return InvalidArgumentError(
        "pattern terms are only meaningful on a true-count query");
  }
  if (spec.kind != QuerySpec::Kind::kLabelSearch && !spec.focus.empty()) {
    return InvalidArgumentError(
        "focus attributes are only meaningful on a label-search query");
  }
  if (spec.result_cache_budget.has_value() &&
      *spec.result_cache_budget < 0) {
    return InvalidArgumentError("result_cache_budget must be >= 0");
  }
  if (spec.use_result_cache.has_value() && !*spec.use_result_cache &&
      spec.result_cache_budget.has_value() &&
      *spec.result_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting result-cache flags: a disabled result cache cannot "
        "honour a positive byte budget");
  }
  return Status::Ok();
}

bool QuerySpecCacheable(const QuerySpec& spec) {
  return spec.time_limit_seconds == 0.0;
}

namespace {

// Two independently seeded lanes over the canonical field stream, the
// same construction (and for the same reason) as FingerprintTable's.
struct KeyLanes {
  uint64_t lo = 0x9216d5d98979fb1bULL;  // pi digits, further along
  uint64_t hi = 0xd1310ba698dfb5acULL;

  void Mix(uint64_t v) {
    lo = HashCombine(lo, v);
    hi = HashCombine(hi, v ^ 0x2ffd72dbd01adfb7ULL);
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (char c : s) Mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
};

}  // namespace

QueryResultKey CanonicalQueryKey(const QuerySpec& spec,
                                 const TableFingerprint& fingerprint) {
  KeyLanes lanes;
  lanes.Mix(fingerprint.lo);
  lanes.Mix(fingerprint.hi);
  lanes.Mix(static_cast<uint64_t>(spec.kind));
  switch (spec.kind) {
    case QuerySpec::Kind::kLabelSearch:
      lanes.Mix(static_cast<uint64_t>(spec.algorithm));
      lanes.Mix(static_cast<uint64_t>(spec.size_bound));
      lanes.Mix(static_cast<uint64_t>(spec.metric));
      lanes.Mix(spec.record_candidates ? 1 : 0);
      lanes.Mix(spec.focus.bits());
      break;
    case QuerySpec::Kind::kTrueCount: {
      // Terms sorted by (name, value): a pattern is a set, so two
      // orderings of the same terms must key identically.
      std::vector<std::pair<std::string, std::string>> terms =
          spec.pattern;
      std::sort(terms.begin(), terms.end());
      lanes.Mix(terms.size());
      for (const auto& [name, value] : terms) {
        lanes.MixString(name);
        lanes.MixString(value);
      }
      break;
    }
    case QuerySpec::Kind::kProfile:
      break;
  }
  return QueryResultKey{lanes.lo, lanes.hi};
}

int64_t ApproxQueryResultBytes(const QueryResult& result) {
  int64_t bytes = static_cast<int64_t>(sizeof(QueryResult)) + 64;
  // The label's PC set (keys + counts) plus its estimation accelerators
  // (encoded keys dominate; the per-attribute tables are schema-sized).
  const GroupCounts& pc = result.search.label.pattern_counts();
  bytes += pc.num_groups() *
           (static_cast<int64_t>(pc.key_width()) *
                static_cast<int64_t>(sizeof(ValueId)) +
            2 * static_cast<int64_t>(sizeof(int64_t)));
  bytes += static_cast<int64_t>(result.search.candidates.size()) *
           static_cast<int64_t>(sizeof(CandidateInfo));
  bytes += static_cast<int64_t>(result.pairs.size()) *
           static_cast<int64_t>(sizeof(PairwiseSize));
  return bytes;
}

}  // namespace api
}  // namespace pcbl
