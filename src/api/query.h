// Query descriptions and results of the pcbl public API (api/session.h).
//
// A Session executes three kinds of queries, all described by one
// QuerySpec and answered by one QueryResult:
//
//   * kLabelSearch — the optimal-label search (Sec. III / Algorithm 1),
//   * kTrueCount   — the exact count of one pattern, optionally paired
//                    with a portable label's estimate (the consumer-side
//                    spot check of Definition 2.11),
//   * kProfile     — the pairwise label sizes |P_S| over all attribute
//                    pairs (the candidate seeds of a bound-B_s search).
//
// Specs are validated *centrally* (ValidateQuerySpec plus the session's
// schema-dependent checks) and nonsense inputs — a negative size bound,
// zero worker threads, a disabled engine combined with a positive
// memoization budget — come back as Status instead of being clamped
// silently at each call site.
#ifndef PCBL_API_QUERY_H_
#define PCBL_API_QUERY_H_

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/portable_label.h"
#include "core/search.h"
#include "pattern/service_registry.h"
#include "util/attr_mask.h"
#include "util/status.h"

namespace pcbl {
namespace api {

/// One query against a Session.
struct QuerySpec {
  enum class Kind { kLabelSearch, kTrueCount, kProfile };
  enum class Algorithm { kTopDown, kNaive };

  Kind kind = Kind::kLabelSearch;

  // --- kLabelSearch ------------------------------------------------------
  Algorithm algorithm = Algorithm::kTopDown;
  /// B_s: maximal label size |PC| (Definition 2.15).
  int64_t size_bound = 100;
  OptimizationMetric metric = OptimizationMetric::kMaxAbsolute;
  /// Cap on candidate generation (0 = unlimited), as in SearchOptions.
  double time_limit_seconds = 0.0;
  bool record_candidates = false;
  /// Rank against the patterns over these attributes instead of P_A
  /// (Definition 2.15's custom pattern set). Empty = P_A. Works on
  /// appended data too: the session derives the focus pattern set from
  /// the engine's PC sets over the extended rows, byte-identical to a
  /// from-scratch rebuild.
  AttrMask focus;

  // --- kTrueCount --------------------------------------------------------
  /// (attribute name, value string) terms of the pattern to count.
  std::vector<std::pair<std::string, std::string>> pattern;
  /// Optional: also answer the pattern from this label (the estimate the
  /// true count is checked against).
  std::shared_ptr<const PortableLabel> label;

  // --- per-query engine overrides (unset = session defaults) ------------
  std::optional<int> num_threads;
  std::optional<bool> use_counting_engine;
  std::optional<int64_t> counting_cache_budget;
  /// Minimum rows per morsel for morsel-parallel exact sizing scans
  /// (0 disables intra-subset parallelism). Result-neutral — excluded
  /// from the result-cache key like num_threads.
  std::optional<int64_t> min_rows_per_morsel;
  /// Ride the service's wave scheduler (concurrent queries merge their
  /// in-flight sizing batches) vs. the serialized whole-search lock.
  /// Byte-identical results either way; see docs/CONCURRENCY.md.
  std::optional<bool> use_wave_scheduler;
  /// Route the query through the service's result tier: identical
  /// in-flight queries collapse onto one execution, identical repeats
  /// answer from the bounded completed-result cache. Byte-identical
  /// results either way (the key covers every result-affecting field).
  /// See DESIGN.md §5.7.
  std::optional<bool> use_result_cache;
  /// Byte budget of the service's completed-result cache (last writer
  /// wins on the shared service; 0 keeps in-flight dedup but caches no
  /// completed results). Unset = session default.
  std::optional<int64_t> result_cache_budget;

  /// Convenience factories for the common shapes.
  static QuerySpec LabelSearch(int64_t size_bound,
                               Algorithm algorithm = Algorithm::kTopDown) {
    QuerySpec spec;
    spec.kind = Kind::kLabelSearch;
    spec.size_bound = size_bound;
    spec.algorithm = algorithm;
    return spec;
  }
  static QuerySpec TrueCount(
      std::vector<std::pair<std::string, std::string>> pattern) {
    QuerySpec spec;
    spec.kind = Kind::kTrueCount;
    spec.pattern = std::move(pattern);
    return spec;
  }
  static QuerySpec Profile() {
    QuerySpec spec;
    spec.kind = Kind::kProfile;
    return spec;
  }
};

/// |P_S| of one attribute pair, as reported by a kProfile query.
struct PairwiseSize {
  int attr_a = 0;
  int attr_b = 0;
  int64_t size = 0;
};

/// Outcome of one query. `status` carries execution-time failures (an
/// unknown attribute name, a pattern value no session ever interned);
/// spec-shape problems are rejected earlier, by Session::Submit.
struct QueryResult {
  Status status = Status::Ok();
  QuerySpec::Kind kind = QuerySpec::Kind::kLabelSearch;
  /// |D| the query ran against — base rows plus every append the shared
  /// service had absorbed when the query executed.
  int64_t total_rows = 0;

  /// kLabelSearch: the full search outcome (label, error report, stats).
  SearchResult search;

  /// kTrueCount: c_D(p) over the current (possibly extended) data, and
  /// the label's estimate when QuerySpec::label was supplied.
  int64_t true_count = 0;
  std::optional<double> estimate;

  /// kProfile: |P_S| of every attribute pair, in (i, j), i < j order.
  std::vector<PairwiseSize> pairs;
};

/// Handle on an asynchronously executing query (std::shared_future
/// semantics: copyable, Get() blocks until the result is ready and then
/// returns the shared result).
class QueryFuture {
 public:
  QueryFuture() = default;

  /// Blocks until the query finished; the result stays valid for the
  /// future's lifetime.
  const QueryResult& Get() const { return future_.get(); }

  /// True when Get() would return without blocking.
  bool Ready() const {
    return future_.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
  }

  bool valid() const { return future_.valid(); }

 private:
  friend class Session;
  explicit QueryFuture(std::shared_future<QueryResult> future)
      : future_(std::move(future)) {}

  std::shared_future<QueryResult> future_;
};

/// Spec-intrinsic validation: the rules that need no session context.
/// Session::Submit runs this plus the schema- and option-dependent
/// checks; exposed so callers can pre-validate a spec they assemble.
Status ValidateQuerySpec(const QuerySpec& spec);

/// True when `spec`'s result is a pure function of (table content,
/// canonicalized spec) — the precondition for riding the result tier.
/// Wall-clock-limited searches are excluded: where their candidate
/// generation is cut off depends on elapsed time, not on content.
bool QuerySpecCacheable(const QuerySpec& spec);

/// Canonical, stable 128-bit key of (table content, result-affecting
/// spec fields). Attribute sets are order-insensitive — true-count
/// terms are sorted by (name, value), the focus set hashes by mask
/// bits — and a default left implicit keys identically to the same
/// value spelled out. Knobs that cannot change result bytes (threads,
/// engine/memoization flags, scheduler, the result-cache flags
/// themselves) and kTrueCount's consumer-side `label` (the data-backed
/// count is label-independent; the estimate is merged per caller) are
/// excluded. Deterministic across processes: no pointers, no
/// container-iteration order. Precondition: QuerySpecCacheable(spec).
QueryResultKey CanonicalQueryKey(const QuerySpec& spec,
                                 const TableFingerprint& fingerprint);

/// Approximate heap footprint of one QueryResult, for the result
/// cache's byte accounting (the shared VC set is excluded — labels of
/// one dataset share it, so the engine side already pays for it).
int64_t ApproxQueryResultBytes(const QueryResult& result);

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_QUERY_H_
