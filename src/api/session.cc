#include "api/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/pattern_set.h"
#include "core/search.h"
#include "pattern/service_registry.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace api {

namespace {

// The retryable refusal for a query whose shared service lost the race
// with registry eviction; every refusal is logged in the registry stats.
Status EvictedServiceStatus() {
  ServiceRegistry::Global().NoteEvictedRejection();
  return UnavailableError(
      "this dataset's shared counting service was evicted from the "
      "process-wide registry; re-open the Dataset (a fresh shared "
      "service is acquired) and retry the query");
}

// Holds one query's admission for its whole execution: a shared gate
// admission (scheduled) or the whole-query service lock (serialized).
struct QueryAdmissionGuard {
  std::optional<CountingService::QueryAdmission> admission;
  std::unique_lock<std::mutex> lock;
};

// The one admission protocol of every query kind. Serialized queries
// that want the engine configured up front pass `config` (the
// scheduled path carries its config per wave instead). After admission
// the evicted flag is re-checked: an eviction that raced the fast path
// in Session::Execute either drained this query (it was admitted
// first) or is visible here — the registry marks before it quiesces.
Status AdmitQuery(CountingService& service, bool scheduled,
                  const CountingEngineOptions* config,
                  QueryAdmissionGuard* guard) {
  if (scheduled) {
    guard->admission.emplace(service);
  } else {
    guard->lock = std::unique_lock<std::mutex>(service.mutex());
    if (config != nullptr) service.Configure(*config);
  }
  if (service.evicted()) return EvictedServiceStatus();
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Open(Dataset dataset,
                                               SessionOptions options) {
  if (options.num_threads < 0) {
    return InvalidArgumentError(
        StrCat("num_threads must be >= 0 (0 = all hardware threads), got ",
               options.num_threads));
  }
  if (options.executor_threads <= 0) {
    return InvalidArgumentError(
        StrCat("executor_threads must be positive, got ",
               options.executor_threads));
  }
  if (options.counting_cache_budget < -1) {
    return InvalidArgumentError(
        "counting_cache_budget must be >= 0 (or -1 for the engine "
        "default)");
  }
  if (!options.use_counting_engine && options.counting_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  if (options.result_cache_budget < -1) {
    return InvalidArgumentError(
        "result_cache_budget must be >= 0 (or -1 for the service "
        "default)");
  }
  if (options.min_rows_per_morsel < -1) {
    return InvalidArgumentError(
        "min_rows_per_morsel must be >= 0 (0 disables intra-subset "
        "parallelism; -1 for the engine default)");
  }
  if (!options.use_result_cache && options.result_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting result-cache flags: a disabled result cache cannot "
        "honour a positive byte budget");
  }
  if (options.num_threads == 0) options.num_threads = DefaultThreadCount();
  return std::unique_ptr<Session>(
      new Session(std::move(dataset), options));
}

Session::Session(Dataset dataset, SessionOptions options)
    : dataset_(std::move(dataset)),
      options_(options),
      executor_(options.executor_threads) {}

Status Session::Validate(const QuerySpec& spec) const {
  PCBL_RETURN_IF_ERROR(ValidateQuerySpec(spec));
  // Engine-flag conflicts across the spec/session boundary: a query may
  // inherit the disabled engine from the session while requesting a
  // positive budget itself, or vice versa.
  const bool engine_on =
      spec.use_counting_engine.value_or(options_.use_counting_engine);
  const int64_t budget = spec.counting_cache_budget.has_value()
                             ? *spec.counting_cache_budget
                             : options_.counting_cache_budget;
  if (!engine_on && budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  // Same cross-boundary check for the result tier: a spec may inherit
  // the disabled cache from the session while asking for a budget
  // itself, or vice versa.
  const bool result_cache_on =
      spec.use_result_cache.value_or(options_.use_result_cache);
  const int64_t result_budget = spec.result_cache_budget.has_value()
                                    ? *spec.result_cache_budget
                                    : options_.result_cache_budget;
  if (!result_cache_on && result_budget > 0) {
    return InvalidArgumentError(
        "conflicting result-cache flags: a disabled result cache cannot "
        "honour a positive byte budget");
  }
  if (!spec.focus.empty() &&
      !spec.focus.IsSubsetOf(
          AttrMask::All(dataset_.table().num_attributes()))) {
    return InvalidArgumentError("focus attributes exceed the schema");
  }
  return Status::Ok();
}

SearchOptions Session::ToSearchOptions(const QuerySpec& spec) const {
  SearchOptions options;
  options.size_bound = spec.size_bound;
  options.metric = spec.metric;
  options.time_limit_seconds = spec.time_limit_seconds;
  options.record_candidates = spec.record_candidates;
  options.use_wave_scheduler = UseScheduler(spec);
  options.num_threads = spec.num_threads.value_or(options_.num_threads);
  options.use_counting_engine =
      spec.use_counting_engine.value_or(options_.use_counting_engine);
  const int64_t budget = spec.counting_cache_budget.has_value()
                             ? *spec.counting_cache_budget
                             : options_.counting_cache_budget;
  if (budget >= 0) options.counting_cache_budget = budget;
  const int64_t morsel_rows = spec.min_rows_per_morsel.has_value()
                                  ? *spec.min_rows_per_morsel
                                  : options_.min_rows_per_morsel;
  if (morsel_rows >= 0) options.min_rows_per_morsel = morsel_rows;
  return options;
}

CountingEngineOptions Session::ToEngineOptions(const QuerySpec& spec) const {
  const SearchOptions search = ToSearchOptions(spec);
  CountingEngineOptions options;
  options.enabled = search.use_counting_engine;
  options.num_threads = search.num_threads;
  options.cache_budget = search.counting_cache_budget;
  options.min_rows_per_morsel = search.min_rows_per_morsel;
  return options;
}

Result<QueryFuture> Session::Submit(QuerySpec spec) {
  PCBL_RETURN_IF_ERROR(Validate(spec));
  // The packaged task lives in a shared_ptr so the executor's copyable
  // std::function can carry it; the future shares its state.
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [this, spec = std::move(spec)]() { return Execute(spec); });
  QueryFuture future(task->get_future().share());
  executor_.Submit([task]() { (*task)(); });
  return future;
}

QueryResult Session::Run(const QuerySpec& spec) {
  Result<QueryFuture> future = Submit(spec);
  if (!future.ok()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = future.status();
    return result;
  }
  return future->Get();
}

QueryResult Session::Execute(const QuerySpec& spec) {
  // A service the registry evicted (memory pressure or Clear) still
  // computes exactly for existing holders, but it is detached: no other
  // consumer can find it, so its cache warms nobody and nobody warms it.
  // Refuse retryably instead of silently degrading — re-opening the
  // Dataset acquires a fresh, findable shared service. This is the
  // cheap pre-admission fast path; the admitted bodies re-check, since
  // a Clear may mark-and-quiesce between this probe and the admission.
  if (dataset_.service()->evicted()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = EvictedServiceStatus();
    return result;
  }
  switch (spec.kind) {
    case QuerySpec::Kind::kLabelSearch:
      return ExecuteSearch(spec);
    case QuerySpec::Kind::kTrueCount:
      return ExecuteTrueCount(spec);
    case QuerySpec::Kind::kProfile:
      return ExecuteProfile(spec);
  }
  QueryResult result;
  result.status = InternalError("unknown query kind");
  return result;
}

QueryResult Session::ExecuteViaResultTier(
    const QuerySpec& spec, bool scheduled,
    const std::function<QueryResult()>& body) {
  CountingService& service = *dataset_.service();
  const bool cache_on =
      spec.use_result_cache.value_or(options_.use_result_cache);
  // Stable for the whole call: the caller's admission excludes appends.
  // Every cacheable result is a pure function of (content, spec): value
  // strings resolve through the service's shared interner, so appends
  // grow every session's view identically — and each append arm clears
  // this cache eagerly, so no entry outlives the rows it describes.
  const int64_t rows = service.engine().total_rows();
  if (!cache_on || !QuerySpecCacheable(spec)) {
    return body();
  }
  const QueryResultKey key =
      CanonicalQueryKey(spec, dataset_.fingerprint());
  const int64_t budget = spec.result_cache_budget.has_value()
                             ? *spec.result_cache_budget
                             : options_.result_cache_budget;
  // Only a gate-admitted (scheduled) query may park on a leader: the
  // serialized discipline holds mutex(), which the leader's waves need.
  ResultProbe probe =
      service.ResultLookupOrBegin(key, rows, /*may_join=*/scheduled, budget);
  if (probe.hit) {
    return *std::static_pointer_cast<const QueryResult>(probe.value);
  }
  if (probe.leader) {
    QueryResult result;
    try {
      result = body();
    } catch (...) {
      // Joiners rethrow from their future, exactly as executing the
      // query themselves would have thrown.
      service.ResultAbort(key, std::current_exception());
      throw;
    }
    auto shared = std::make_shared<const QueryResult>(std::move(result));
    // Error results still resolve the parked joiners (the error is
    // deterministic for an identical spec) but are not retained.
    service.ResultPublish(key, shared, ApproxQueryResultBytes(*shared),
                          /*cache=*/shared->status.ok());
    return *shared;
  }
  if (probe.join.valid()) {
    return *std::static_pointer_cast<const QueryResult>(probe.join.get());
  }
  // In flight but this caller may not park: execute without publishing.
  return body();
}

QueryResult Session::ExecuteSearch(const QuerySpec& spec) {
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  // Scheduled: a shared admission pins the engine's data (appends are
  // excluded) for the whole query while sizing waves merge with
  // concurrent queries'. Serialized: the whole query runs under the
  // service lock. The search configures the engine itself, so no
  // up-front config is passed.
  QueryAdmissionGuard guard;
  Status admitted =
      AdmitQuery(service, scheduled, /*config=*/nullptr, &guard);
  if (!admitted.ok()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = admitted;
    return result;
  }
  return ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteSearchAdmitted(spec, scheduled);
  });
}

QueryResult Session::ExecuteSearchAdmitted(const QuerySpec& spec,
                                           bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  const int64_t total = service.engine().total_rows();
  result.total_rows = total;
  const bool extended = total != dataset_.table().num_rows();
  std::shared_ptr<const ValueCounts> vc = SyncedVc();
  std::shared_ptr<const FullPatternIndex> fpi = SyncedFpi();
  LabelSearch search(dataset_.table(), vc, fpi, dataset_.service());
  if (extended) search.SetExtendedState(vc, fpi, total);
  if (!spec.focus.empty()) {
    if (!extended) {
      search.SetEvaluationPatterns(std::make_shared<const PatternSet>(
          PatternSet::OverAttributes(dataset_.table(), spec.focus)));
    } else {
      // OverAttributes scans the base table; after appends the focus
      // set is derived from the engine's delta-aware state instead, so
      // a focus search keeps working — byte-identical to a rebuild.
      Result<PatternSet> focus_set =
          ExtendedFocusPatterns(spec, scheduled, *vc);
      if (!focus_set.ok()) {
        result.status = focus_set.status();
        return result;
      }
      search.SetEvaluationPatterns(
          std::make_shared<const PatternSet>(std::move(*focus_set)),
          total);
    }
  }
  const SearchOptions options = ToSearchOptions(spec);
  const bool naive = spec.algorithm == QuerySpec::Algorithm::kNaive;
  result.search =
      scheduled ? (naive ? search.NaiveScheduled(options)
                         : search.TopDownScheduled(options))
                : (naive ? search.NaiveLocked(options)
                         : search.TopDownLocked(options));
  return result;
}

Result<PatternSet> Session::ExtendedFocusPatterns(const QuerySpec& spec,
                                                  bool scheduled,
                                                  const ValueCounts& vc) {
  CountingService& service = *dataset_.service();
  std::vector<Pattern> patterns;
  std::vector<int64_t> counts;
  if (spec.focus.Count() >= 2) {
    // The fully-bound groups of the PC set over the focus mask are
    // exactly the distinct non-NULL combinations with their counts —
    // what OverAttributes computes — emitted in the same canonical
    // ascending key order (partially-bound groups carry kNullValue for
    // unbound attributes and are skipped).
    std::shared_ptr<const GroupCounts> pc =
        scheduled
            ? service.WavePatternCounts({spec.focus},
                                        ToEngineOptions(spec))[0]
            : service.engine().PatternCounts(spec.focus);
    const int width = pc->key_width();
    for (int64_t g = 0; g < pc->num_groups(); ++g) {
      const ValueId* key = pc->key(g);
      bool full = true;
      for (int j = 0; j < width; ++j) {
        if (IsNull(key[j])) {
          full = false;
          break;
        }
      }
      if (!full) continue;
      patterns.push_back(pc->ToPattern(g));
      counts.push_back(pc->count(g));
    }
  } else {
    // Arity 1: PC sets hold no single-attribute patterns; the synced VC
    // is the maintained ground truth, and ascending ValueId order is
    // OverAttributes' group order over the rebuilt table.
    const int attr = spec.focus.ToIndices()[0];
    const std::vector<int64_t>& per_value = vc.CountsFor(attr);
    for (size_t v = 0; v < per_value.size(); ++v) {
      if (per_value[v] == 0) continue;
      PCBL_ASSIGN_OR_RETURN(
          Pattern p,
          Pattern::Create({PatternTerm{attr, static_cast<ValueId>(v)}}));
      patterns.push_back(std::move(p));
      counts.push_back(per_value[v]);
    }
  }
  // The same stable count-descending sort OverAttributes applies — with
  // identical insertion order, ties land identically, so the search's
  // ErrorReport (evaluated / early-terminated counts included) matches
  // a from-scratch rebuild byte for byte.
  return PatternSet::FromPatternsAndCounts(std::move(patterns),
                                           std::move(counts));
}

QueryResult Session::ExecuteTrueCount(const QuerySpec& spec) {
  QueryResult result;
  result.kind = spec.kind;
  // The label-side estimate needs no data access at all (the paper's
  // consumer-side story) — answer it before touching the service.
  if (spec.label != nullptr) {
    Result<double> estimate = spec.label->EstimateCount(spec.pattern);
    if (!estimate.ok()) {
      result.status = estimate.status();
      return result;
    }
    result.estimate = *estimate;
  }
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  const CountingEngineOptions config = ToEngineOptions(spec);
  QueryAdmissionGuard guard;
  Status admitted = AdmitQuery(service, scheduled, &config, &guard);
  if (!admitted.ok()) {
    result.status = admitted;
    return result;
  }
  // The tier caches the counted half only (ExecuteTrueCountAdmitted
  // never sets `estimate`): the data-backed count is label-independent,
  // so specs differing only in `label` share one cache entry and each
  // caller merges its own estimate below.
  QueryResult counted = ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteTrueCountAdmitted(spec, scheduled);
  });
  counted.estimate = result.estimate;  // computed service-free above
  return counted;
}

QueryResult Session::ExecuteTrueCountAdmitted(const QuerySpec& spec,
                                              bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  result.total_rows = service.engine().total_rows();
  Result<std::vector<std::pair<int, ValueId>>> terms =
      ResolvePatternLocked(spec.pattern);
  if (!terms.ok()) {
    result.status = terms.status();
    return result;
  }
  if (terms->size() >= 2) {
    // The fully-bound PC group over Attr(p) is exactly c_D(p); the
    // engine answers it from a warm PC set or one (delta-aware) scan.
    AttrMask mask;
    for (const auto& [attr, value] : *terms) mask.Set(attr);
    std::shared_ptr<const GroupCounts> pc =
        scheduled
            ? service.WavePatternCounts({mask}, ToEngineOptions(spec))[0]
            : service.engine().PatternCounts(mask);
    const int width = pc->key_width();
    for (int64_t g = 0; g < pc->num_groups(); ++g) {
      const ValueId* key = pc->key(g);
      bool match = true;
      for (int j = 0; j < width; ++j) {
        if (key[j] != (*terms)[static_cast<size_t>(j)].second) {
          match = false;
          break;
        }
      }
      if (match) {
        result.true_count = pc->count(g);
        break;
      }
    }
  } else {
    // Arity-1 counts are VC entries — maintained across appends.
    std::shared_ptr<const ValueCounts> vc = SyncedVc();
    result.true_count =
        vc->Count((*terms)[0].first, (*terms)[0].second);
  }
  return result;
}

QueryResult Session::ExecuteProfile(const QuerySpec& spec) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  // The profile is one wave: admit shared and let it merge, or take the
  // serialized lock.
  const CountingEngineOptions config = ToEngineOptions(spec);
  QueryAdmissionGuard guard;
  Status admitted = AdmitQuery(service, scheduled, &config, &guard);
  if (!admitted.ok()) {
    result.status = admitted;
    return result;
  }
  return ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteProfileAdmitted(spec, scheduled);
  });
}

QueryResult Session::ExecuteProfileAdmitted(const QuerySpec& spec,
                                            bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  result.total_rows = service.engine().total_rows();
  const int n = dataset_.table().num_attributes();
  std::vector<AttrMask> masks;
  masks.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      masks.push_back(AttrMask::Single(i).Union(AttrMask::Single(j)));
    }
  }
  const std::vector<int64_t> sizes =
      scheduled ? service.WaveCountPatterns(masks, /*budget=*/-1,
                                            ToEngineOptions(spec))
                : service.engine().CountPatternsBatch(masks, /*budget=*/-1);
  result.pairs.reserve(masks.size());
  size_t k = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++k) {
      result.pairs.push_back(PairwiseSize{i, j, sizes[k]});
    }
  }
  return result;
}

Status Session::AppendRow(const std::vector<std::string>& values) {
  const int n = dataset_.table().num_attributes();
  if (static_cast<int>(values.size()) != n) {
    return InvalidArgumentError(
        StrCat("row has ", values.size(), " values, schema has ", n));
  }
  // The service owns the whole append: central interning, group commit
  // with concurrent appenders, one engine hook per merged batch. VC /
  // P_A are not patched here — queries lazily catch up from the
  // engine's rows, the same path a sibling session's appends take.
  std::vector<std::vector<std::string>> rows;
  rows.push_back(values);
  PCBL_RETURN_IF_ERROR(dataset_.service()->AppendStrings(rows));
  std::lock_guard<std::mutex> slock(state_mu_);
  session_appended_ += 1;
  return Status::Ok();
}

Status Session::AppendRows(
    const std::vector<std::vector<std::string>>& rows) {
  // Width validation happens transactionally inside the group commit: a
  // bad row fails the whole ticket and nothing of it becomes visible.
  PCBL_RETURN_IF_ERROR(dataset_.service()->AppendStrings(rows));
  std::lock_guard<std::mutex> slock(state_mu_);
  session_appended_ += static_cast<int64_t>(rows.size());
  return Status::Ok();
}

Status Session::Append(const Table& delta) {
  const Table& table = dataset_.table();
  const int n = table.num_attributes();
  // Fast-fail schema checks before queueing behind the admission; the
  // service re-validates inside the commit (same wording) for callers
  // that reach it directly.
  if (delta.num_attributes() != n) {
    return InvalidArgumentError("delta schema width differs");
  }
  for (int a = 0; a < n; ++a) {
    if (delta.schema().name(a) != table.schema().name(a)) {
      return InvalidArgumentError(
          StrCat("delta attribute ", a, " is \"", delta.schema().name(a),
                 "\", expected \"", table.schema().name(a), "\""));
    }
  }
  PCBL_RETURN_IF_ERROR(dataset_.service()->AppendTable(delta));
  std::lock_guard<std::mutex> slock(state_mu_);
  session_appended_ += delta.num_rows();
  return Status::Ok();
}

std::vector<ValueId> Session::EngineRows(int64_t from, int64_t to) const {
  const CountingEngine& engine = dataset_.service()->engine();
  const int64_t base = dataset_.table().num_rows();
  const int n = dataset_.table().num_attributes();
  std::vector<ValueId> rows(static_cast<size_t>((to - from) * n));
  if (to > from) engine.CopyAppendedRows(from - base, to - from, rows.data());
  return rows;
}

std::shared_ptr<const ValueCounts> Session::SyncedVc() {
  const CountingEngine& engine = dataset_.service()->engine();
  // Stable under the caller's admission: appenders are excluded.
  const int64_t total = engine.total_rows();
  // The whole check-compute-publish runs under state_mu_: two of this
  // session's queries may race here (shared admissions), and both must
  // observe a consistent (vc_, vc_rows_) pair. The catch-up itself is
  // per-session work — holding the lock across it serializes only
  // siblings of this session, never the service.
  std::lock_guard<std::mutex> slock(state_mu_);
  if (vc_ != nullptr && vc_rows_ == total) return vc_;
  std::shared_ptr<ValueCounts> next;
  int64_t have;
  if (vc_ == nullptr) {
    next = std::make_shared<ValueCounts>(
        ValueCounts::Compute(dataset_.table()));
    have = dataset_.table().num_rows();
  } else {
    next = std::make_shared<ValueCounts>(*vc_);
    have = vc_rows_;
  }
  const int n = dataset_.table().num_attributes();
  const std::vector<ValueId> flat = EngineRows(have, total);
  for (int64_t r = 0; r < total - have; ++r) {
    next->ApplyRow(flat.data() + r * n, n);
  }
  vc_ = std::move(next);
  vc_rows_ = total;
  return vc_;
}

std::shared_ptr<const FullPatternIndex> Session::SyncedFpi() {
  const CountingEngine& engine = dataset_.service()->engine();
  const int64_t total = engine.total_rows();
  std::lock_guard<std::mutex> slock(state_mu_);
  if (fpi_ != nullptr && fpi_rows_ == total) return fpi_;
  std::shared_ptr<FullPatternIndex> next;
  int64_t have;
  if (fpi_ == nullptr) {
    next = std::make_shared<FullPatternIndex>(
        FullPatternIndex::Build(dataset_.table()));
    have = dataset_.table().num_rows();
  } else {
    next = std::make_shared<FullPatternIndex>(*fpi_);
    have = fpi_rows_;
  }
  if (have < total) {
    const std::vector<ValueId> flat = EngineRows(have, total);
    next->ApplyAppend(flat.data(), total - have);
  }
  fpi_ = std::move(next);
  fpi_rows_ = total;
  return fpi_;
}

Result<std::vector<std::pair<int, ValueId>>> Session::ResolvePatternLocked(
    const std::vector<std::pair<std::string, std::string>>& terms) const {
  const Table& table = dataset_.table();
  std::vector<std::pair<int, ValueId>> out;
  out.reserve(terms.size());
  AttrMask seen;
  for (const auto& [name, value] : terms) {
    PCBL_ASSIGN_OR_RETURN(int attr, table.schema().FindAttribute(name));
    // The shared interner resolves values appended after the base table
    // was built — by this session or any sibling; wording mirrors
    // Pattern::Parse.
    const ValueId v = dataset_.service()->interner().Lookup(attr, value);
    if (IsNull(v)) {
      return NotFoundError(StrCat("value '", value,
                                  "' does not appear in attribute '",
                                  name, "'"));
    }
    if (seen.Test(attr)) {
      return InvalidArgumentError(
          StrCat("duplicate attribute ", attr, " in pattern"));
    }
    seen.Set(attr);
    out.emplace_back(attr, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t Session::total_rows() const {
  // Lock-free snapshot of the shared service's growth: counts rows
  // appended by every session on this service, not just this one.
  return dataset_.table().num_rows() +
         dataset_.service()->engine().AppendedRowsRelaxed();
}

int64_t Session::appended_rows() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return session_appended_;
}

}  // namespace api
}  // namespace pcbl
