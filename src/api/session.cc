#include "api/session.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/pattern_set.h"
#include "core/search.h"
#include "pattern/service_registry.h"
#include "util/logging.h"
#include "util/str.h"

namespace pcbl {
namespace api {

namespace {

// The retryable refusal for a query whose shared service lost the race
// with registry eviction; every refusal is logged in the registry stats.
Status EvictedServiceStatus() {
  ServiceRegistry::Global().NoteEvictedRejection();
  return UnavailableError(
      "this dataset's shared counting service was evicted from the "
      "process-wide registry; re-open the Dataset (a fresh shared "
      "service is acquired) and retry the query");
}

// Holds one query's admission for its whole execution: a shared gate
// admission (scheduled) or the whole-query service lock (serialized).
struct QueryAdmissionGuard {
  std::optional<CountingService::QueryAdmission> admission;
  std::unique_lock<std::mutex> lock;
};

// The one admission protocol of every query kind. Serialized queries
// that want the engine configured up front pass `config` (the
// scheduled path carries its config per wave instead). After admission
// the evicted flag is re-checked: an eviction that raced the fast path
// in Session::Execute either drained this query (it was admitted
// first) or is visible here — the registry marks before it quiesces.
Status AdmitQuery(CountingService& service, bool scheduled,
                  const CountingEngineOptions* config,
                  QueryAdmissionGuard* guard) {
  if (scheduled) {
    guard->admission.emplace(service);
  } else {
    guard->lock = std::unique_lock<std::mutex>(service.mutex());
    if (config != nullptr) service.Configure(*config);
  }
  if (service.evicted()) return EvictedServiceStatus();
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<Session>> Session::Open(Dataset dataset,
                                               SessionOptions options) {
  if (options.num_threads < 0) {
    return InvalidArgumentError(
        StrCat("num_threads must be >= 0 (0 = all hardware threads), got ",
               options.num_threads));
  }
  if (options.executor_threads <= 0) {
    return InvalidArgumentError(
        StrCat("executor_threads must be positive, got ",
               options.executor_threads));
  }
  if (options.counting_cache_budget < -1) {
    return InvalidArgumentError(
        "counting_cache_budget must be >= 0 (or -1 for the engine "
        "default)");
  }
  if (!options.use_counting_engine && options.counting_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  if (options.result_cache_budget < -1) {
    return InvalidArgumentError(
        "result_cache_budget must be >= 0 (or -1 for the service "
        "default)");
  }
  if (options.min_rows_per_morsel < -1) {
    return InvalidArgumentError(
        "min_rows_per_morsel must be >= 0 (0 disables intra-subset "
        "parallelism; -1 for the engine default)");
  }
  if (!options.use_result_cache && options.result_cache_budget > 0) {
    return InvalidArgumentError(
        "conflicting result-cache flags: a disabled result cache cannot "
        "honour a positive byte budget");
  }
  if (options.num_threads == 0) options.num_threads = DefaultThreadCount();
  return std::unique_ptr<Session>(
      new Session(std::move(dataset), options));
}

Session::Session(Dataset dataset, SessionOptions options)
    : dataset_(std::move(dataset)),
      options_(options),
      executor_(options.executor_threads) {}

Status Session::Validate(const QuerySpec& spec) const {
  PCBL_RETURN_IF_ERROR(ValidateQuerySpec(spec));
  // Engine-flag conflicts across the spec/session boundary: a query may
  // inherit the disabled engine from the session while requesting a
  // positive budget itself, or vice versa.
  const bool engine_on =
      spec.use_counting_engine.value_or(options_.use_counting_engine);
  const int64_t budget = spec.counting_cache_budget.has_value()
                             ? *spec.counting_cache_budget
                             : options_.counting_cache_budget;
  if (!engine_on && budget > 0) {
    return InvalidArgumentError(
        "conflicting engine flags: a disabled counting engine cannot "
        "honour a positive cache budget");
  }
  // Same cross-boundary check for the result tier: a spec may inherit
  // the disabled cache from the session while asking for a budget
  // itself, or vice versa.
  const bool result_cache_on =
      spec.use_result_cache.value_or(options_.use_result_cache);
  const int64_t result_budget = spec.result_cache_budget.has_value()
                                    ? *spec.result_cache_budget
                                    : options_.result_cache_budget;
  if (!result_cache_on && result_budget > 0) {
    return InvalidArgumentError(
        "conflicting result-cache flags: a disabled result cache cannot "
        "honour a positive byte budget");
  }
  if (!spec.focus.empty() &&
      !spec.focus.IsSubsetOf(
          AttrMask::All(dataset_.table().num_attributes()))) {
    return InvalidArgumentError("focus attributes exceed the schema");
  }
  return Status::Ok();
}

SearchOptions Session::ToSearchOptions(const QuerySpec& spec) const {
  SearchOptions options;
  options.size_bound = spec.size_bound;
  options.metric = spec.metric;
  options.time_limit_seconds = spec.time_limit_seconds;
  options.record_candidates = spec.record_candidates;
  options.use_wave_scheduler = UseScheduler(spec);
  options.num_threads = spec.num_threads.value_or(options_.num_threads);
  options.use_counting_engine =
      spec.use_counting_engine.value_or(options_.use_counting_engine);
  const int64_t budget = spec.counting_cache_budget.has_value()
                             ? *spec.counting_cache_budget
                             : options_.counting_cache_budget;
  if (budget >= 0) options.counting_cache_budget = budget;
  const int64_t morsel_rows = spec.min_rows_per_morsel.has_value()
                                  ? *spec.min_rows_per_morsel
                                  : options_.min_rows_per_morsel;
  if (morsel_rows >= 0) options.min_rows_per_morsel = morsel_rows;
  return options;
}

CountingEngineOptions Session::ToEngineOptions(const QuerySpec& spec) const {
  const SearchOptions search = ToSearchOptions(spec);
  CountingEngineOptions options;
  options.enabled = search.use_counting_engine;
  options.num_threads = search.num_threads;
  options.cache_budget = search.counting_cache_budget;
  options.min_rows_per_morsel = search.min_rows_per_morsel;
  return options;
}

Result<QueryFuture> Session::Submit(QuerySpec spec) {
  PCBL_RETURN_IF_ERROR(Validate(spec));
  // The packaged task lives in a shared_ptr so the executor's copyable
  // std::function can carry it; the future shares its state.
  auto task = std::make_shared<std::packaged_task<QueryResult()>>(
      [this, spec = std::move(spec)]() { return Execute(spec); });
  QueryFuture future(task->get_future().share());
  executor_.Submit([task]() { (*task)(); });
  return future;
}

QueryResult Session::Run(const QuerySpec& spec) {
  Result<QueryFuture> future = Submit(spec);
  if (!future.ok()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = future.status();
    return result;
  }
  return future->Get();
}

QueryResult Session::Execute(const QuerySpec& spec) {
  // A service the registry evicted (memory pressure or Clear) still
  // computes exactly for existing holders, but it is detached: no other
  // consumer can find it, so its cache warms nobody and nobody warms it.
  // Refuse retryably instead of silently degrading — re-opening the
  // Dataset acquires a fresh, findable shared service. This is the
  // cheap pre-admission fast path; the admitted bodies re-check, since
  // a Clear may mark-and-quiesce between this probe and the admission.
  if (dataset_.service()->evicted()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = EvictedServiceStatus();
    return result;
  }
  switch (spec.kind) {
    case QuerySpec::Kind::kLabelSearch:
      return ExecuteSearch(spec);
    case QuerySpec::Kind::kTrueCount:
      return ExecuteTrueCount(spec);
    case QuerySpec::Kind::kProfile:
      return ExecuteProfile(spec);
  }
  QueryResult result;
  result.status = InternalError("unknown query kind");
  return result;
}

QueryResult Session::ExecuteViaResultTier(
    const QuerySpec& spec, bool scheduled,
    const std::function<QueryResult()>& body) {
  CountingService& service = *dataset_.service();
  const bool cache_on =
      spec.use_result_cache.value_or(options_.use_result_cache);
  // Stable for the whole call: the caller's admission excludes appends.
  const int64_t rows = service.engine().total_rows();
  // A true count resolves value strings against *session* dictionaries,
  // which diverge across sessions once an appender interned fresh values
  // (a sibling reports NotFound where the appender counts) — only over
  // un-appended data is it a pure function of (content, spec).
  const bool session_dependent =
      spec.kind == QuerySpec::Kind::kTrueCount &&
      rows != dataset_.table().num_rows();
  if (!cache_on || session_dependent || !QuerySpecCacheable(spec)) {
    return body();
  }
  const QueryResultKey key =
      CanonicalQueryKey(spec, dataset_.fingerprint());
  const int64_t budget = spec.result_cache_budget.has_value()
                             ? *spec.result_cache_budget
                             : options_.result_cache_budget;
  // Only a gate-admitted (scheduled) query may park on a leader: the
  // serialized discipline holds mutex(), which the leader's waves need.
  ResultProbe probe =
      service.ResultLookupOrBegin(key, rows, /*may_join=*/scheduled, budget);
  if (probe.hit) {
    return *std::static_pointer_cast<const QueryResult>(probe.value);
  }
  if (probe.leader) {
    QueryResult result;
    try {
      result = body();
    } catch (...) {
      // Joiners rethrow from their future, exactly as executing the
      // query themselves would have thrown.
      service.ResultAbort(key, std::current_exception());
      throw;
    }
    auto shared = std::make_shared<const QueryResult>(std::move(result));
    // Error results still resolve the parked joiners (the error is
    // deterministic for an identical spec) but are not retained.
    service.ResultPublish(key, shared, ApproxQueryResultBytes(*shared),
                          /*cache=*/shared->status.ok());
    return *shared;
  }
  if (probe.join.valid()) {
    return *std::static_pointer_cast<const QueryResult>(probe.join.get());
  }
  // In flight but this caller may not park: execute without publishing.
  return body();
}

QueryResult Session::ExecuteSearch(const QuerySpec& spec) {
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  // Scheduled: a shared admission pins the engine's data (appends are
  // excluded) for the whole query while sizing waves merge with
  // concurrent queries'. Serialized: the whole query runs under the
  // service lock. The search configures the engine itself, so no
  // up-front config is passed.
  QueryAdmissionGuard guard;
  Status admitted =
      AdmitQuery(service, scheduled, /*config=*/nullptr, &guard);
  if (!admitted.ok()) {
    QueryResult result;
    result.kind = spec.kind;
    result.status = admitted;
    return result;
  }
  return ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteSearchAdmitted(spec, scheduled);
  });
}

QueryResult Session::ExecuteSearchAdmitted(const QuerySpec& spec,
                                           bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  const int64_t total = service.engine().total_rows();
  result.total_rows = total;
  const bool extended = total != dataset_.table().num_rows();
  if (extended && !spec.focus.empty()) {
    result.status = FailedPreconditionError(
        "focus patterns describe the base table and have no incremental "
        "maintenance path; a focus search cannot run after appends");
    return result;
  }
  std::shared_ptr<const ValueCounts> vc = SyncedVc();
  std::shared_ptr<const FullPatternIndex> fpi = SyncedFpi();
  LabelSearch search(dataset_.table(), vc, fpi, dataset_.service());
  if (extended) search.SetExtendedState(vc, fpi, total);
  if (!spec.focus.empty()) {
    search.SetEvaluationPatterns(std::make_shared<const PatternSet>(
        PatternSet::OverAttributes(dataset_.table(), spec.focus)));
  }
  const SearchOptions options = ToSearchOptions(spec);
  const bool naive = spec.algorithm == QuerySpec::Algorithm::kNaive;
  result.search =
      scheduled ? (naive ? search.NaiveScheduled(options)
                         : search.TopDownScheduled(options))
                : (naive ? search.NaiveLocked(options)
                         : search.TopDownLocked(options));
  return result;
}

QueryResult Session::ExecuteTrueCount(const QuerySpec& spec) {
  QueryResult result;
  result.kind = spec.kind;
  // The label-side estimate needs no data access at all (the paper's
  // consumer-side story) — answer it before touching the service.
  if (spec.label != nullptr) {
    Result<double> estimate = spec.label->EstimateCount(spec.pattern);
    if (!estimate.ok()) {
      result.status = estimate.status();
      return result;
    }
    result.estimate = *estimate;
  }
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  const CountingEngineOptions config = ToEngineOptions(spec);
  QueryAdmissionGuard guard;
  Status admitted = AdmitQuery(service, scheduled, &config, &guard);
  if (!admitted.ok()) {
    result.status = admitted;
    return result;
  }
  // The tier caches the counted half only (ExecuteTrueCountAdmitted
  // never sets `estimate`): the data-backed count is label-independent,
  // so specs differing only in `label` share one cache entry and each
  // caller merges its own estimate below.
  QueryResult counted = ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteTrueCountAdmitted(spec, scheduled);
  });
  counted.estimate = result.estimate;  // computed service-free above
  return counted;
}

QueryResult Session::ExecuteTrueCountAdmitted(const QuerySpec& spec,
                                              bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  result.total_rows = service.engine().total_rows();
  Result<std::vector<std::pair<int, ValueId>>> terms =
      ResolvePatternLocked(spec.pattern);
  if (!terms.ok()) {
    result.status = terms.status();
    return result;
  }
  if (terms->size() >= 2) {
    // The fully-bound PC group over Attr(p) is exactly c_D(p); the
    // engine answers it from a warm PC set or one (delta-aware) scan.
    AttrMask mask;
    for (const auto& [attr, value] : *terms) mask.Set(attr);
    std::shared_ptr<const GroupCounts> pc =
        scheduled
            ? service.WavePatternCounts({mask}, ToEngineOptions(spec))[0]
            : service.engine().PatternCounts(mask);
    const int width = pc->key_width();
    for (int64_t g = 0; g < pc->num_groups(); ++g) {
      const ValueId* key = pc->key(g);
      bool match = true;
      for (int j = 0; j < width; ++j) {
        if (key[j] != (*terms)[static_cast<size_t>(j)].second) {
          match = false;
          break;
        }
      }
      if (match) {
        result.true_count = pc->count(g);
        break;
      }
    }
  } else {
    // Arity-1 counts are VC entries — maintained across appends.
    std::shared_ptr<const ValueCounts> vc = SyncedVc();
    result.true_count =
        vc->Count((*terms)[0].first, (*terms)[0].second);
  }
  return result;
}

QueryResult Session::ExecuteProfile(const QuerySpec& spec) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  const bool scheduled = UseScheduler(spec);
  // The profile is one wave: admit shared and let it merge, or take the
  // serialized lock.
  const CountingEngineOptions config = ToEngineOptions(spec);
  QueryAdmissionGuard guard;
  Status admitted = AdmitQuery(service, scheduled, &config, &guard);
  if (!admitted.ok()) {
    result.status = admitted;
    return result;
  }
  return ExecuteViaResultTier(spec, scheduled, [&] {
    return ExecuteProfileAdmitted(spec, scheduled);
  });
}

QueryResult Session::ExecuteProfileAdmitted(const QuerySpec& spec,
                                            bool scheduled) {
  QueryResult result;
  result.kind = spec.kind;
  CountingService& service = *dataset_.service();
  result.total_rows = service.engine().total_rows();
  const int n = dataset_.table().num_attributes();
  std::vector<AttrMask> masks;
  masks.reserve(static_cast<size_t>(n) * (n - 1) / 2);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      masks.push_back(AttrMask::Single(i).Union(AttrMask::Single(j)));
    }
  }
  const std::vector<int64_t> sizes =
      scheduled ? service.WaveCountPatterns(masks, /*budget=*/-1,
                                            ToEngineOptions(spec))
                : service.engine().CountPatternsBatch(masks, /*budget=*/-1);
  result.pairs.reserve(masks.size());
  size_t k = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j, ++k) {
      result.pairs.push_back(PairwiseSize{i, j, sizes[k]});
    }
  }
  return result;
}

Status Session::AppendRow(const std::vector<std::string>& values) {
  const Table& table = dataset_.table();
  const int n = table.num_attributes();
  if (static_cast<int>(values.size()) != n) {
    return InvalidArgumentError(
        StrCat("row has ", values.size(), " values, schema has ", n));
  }
  CountingService& service = *dataset_.service();
  // Exclusive admission: every in-flight query drains first (a search
  // must never observe half an append), and the service mutex is held
  // for the engine + session-state critical section.
  CountingService::AppendAdmission admission(service);
  if (service.engine().total_rows() !=
      table.num_rows() + session_appended_) {
    return FailedPreconditionError(
        "another consumer grew this dataset's shared counting service; "
        "only one appending session per service is supported — open a "
        "new Session over a fresh Dataset (the registry hands out a "
        "base-content service)");
  }
  EnsureDictionariesLocked();
  std::vector<ValueId> codes(static_cast<size_t>(n), kNullValue);
  for (int a = 0; a < n; ++a) {
    const std::string& v = values[static_cast<size_t>(a)];
    if (v.empty() || v == "NULL") continue;  // TableBuilder::AddRow rules
    codes[static_cast<size_t>(a)] =
        dictionaries_[static_cast<size_t>(a)].Intern(v);
  }
  return AppendCodesLocked({std::move(codes)});
}

Status Session::Append(const Table& delta) {
  const Table& table = dataset_.table();
  const int n = table.num_attributes();
  if (delta.num_attributes() != n) {
    return InvalidArgumentError("delta schema width differs");
  }
  for (int a = 0; a < n; ++a) {
    if (delta.schema().name(a) != table.schema().name(a)) {
      return InvalidArgumentError(
          StrCat("delta attribute ", a, " is \"", delta.schema().name(a),
                 "\", expected \"", table.schema().name(a), "\""));
    }
  }
  CountingService& service = *dataset_.service();
  CountingService::AppendAdmission admission(service);
  if (service.engine().total_rows() !=
      table.num_rows() + session_appended_) {
    return FailedPreconditionError(
        "another consumer grew this dataset's shared counting service; "
        "only one appending session per service is supported — open a "
        "new Session over a fresh Dataset (the registry hands out a "
        "base-content service)");
  }
  EnsureDictionariesLocked();
  // Remap delta codes to session codes, interning fresh values lazily —
  // only values that actually appear in a delta row, in row-major
  // first-seen order, exactly as a TableBuilder rebuild would. (Interning
  // the delta's whole dictionary up front would also intern values the
  // delta's rows never use — e.g. a delta produced by FilterRows keeps
  // its parent's full dictionary — shifting fresh ids versus the rebuilt
  // extended table and silently breaking byte-identity.)
  std::vector<std::vector<ValueId>> remap(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    remap[static_cast<size_t>(a)].assign(delta.dictionary(a).size(),
                                         kNullValue);  // = not yet mapped
  }
  std::vector<std::vector<ValueId>> rows;
  rows.reserve(static_cast<size_t>(delta.num_rows()));
  for (int64_t r = 0; r < delta.num_rows(); ++r) {
    std::vector<ValueId> codes(static_cast<size_t>(n));
    for (int a = 0; a < n; ++a) {
      const ValueId v = delta.value(r, a);
      if (IsNull(v)) {
        codes[static_cast<size_t>(a)] = kNullValue;
        continue;
      }
      ValueId& mapped = remap[static_cast<size_t>(a)][v];
      if (IsNull(mapped)) {
        mapped = dictionaries_[static_cast<size_t>(a)].Intern(
            delta.dictionary(a).GetString(v));
      }
      codes[static_cast<size_t>(a)] = mapped;
    }
    rows.push_back(std::move(codes));
  }
  return AppendCodesLocked(rows);
}

Status Session::AppendCodesLocked(
    const std::vector<std::vector<ValueId>>& rows) {
  if (rows.empty()) return Status::Ok();
  CountingService& service = *dataset_.service();
  const int64_t total_after =
      service.engine().total_rows() + static_cast<int64_t>(rows.size());
  // Maintain whatever state is materialized; lazily-built state catches
  // up from the engine later (SyncedVc / SyncedFpi). Snapshots read
  // under state_mu_; no query runs concurrently (exclusive admission),
  // but the members themselves are only ever touched under that lock.
  std::shared_ptr<const ValueCounts> cur_vc;
  std::shared_ptr<const FullPatternIndex> cur_fpi;
  {
    std::lock_guard<std::mutex> slock(state_mu_);
    cur_vc = vc_;
    cur_fpi = fpi_;
  }
  std::shared_ptr<const ValueCounts> next_vc;
  if (cur_vc != nullptr) {
    auto vc = std::make_shared<ValueCounts>(*cur_vc);
    const int n = dataset_.table().num_attributes();
    for (const auto& row : rows) vc->ApplyRow(row.data(), n);
    next_vc = std::move(vc);
  }
  std::shared_ptr<const FullPatternIndex> next_fpi;
  if (cur_fpi != nullptr) {
    auto fpi = std::make_shared<FullPatternIndex>(*cur_fpi);
    fpi->ApplyAppend(rows);
    next_fpi = std::move(fpi);
  }
  // Engine last: if PCBL_CHECKs inside the hook ever fired, the session
  // state would still describe the engine's (un-grown) data.
  if (rows.size() == 1) {
    service.AppendRowLocked(rows[0]);  // single rows always patch
  } else {
    service.AppendRowsLocked(rows);    // invalidate-or-patch by cost
  }
  std::lock_guard<std::mutex> slock(state_mu_);
  if (next_vc != nullptr) {
    vc_ = std::move(next_vc);
    vc_rows_ = total_after;
  }
  if (next_fpi != nullptr) {
    fpi_ = std::move(next_fpi);
    fpi_rows_ = total_after;
  }
  session_appended_ += static_cast<int64_t>(rows.size());
  return Status::Ok();
}

void Session::EnsureDictionariesLocked() {
  if (have_dictionaries_) return;
  const Table& table = dataset_.table();
  std::vector<Dictionary> dictionaries;
  dictionaries.reserve(static_cast<size_t>(table.num_attributes()));
  for (int a = 0; a < table.num_attributes(); ++a) {
    dictionaries.push_back(table.dictionary(a));  // copy, will grow
  }
  std::lock_guard<std::mutex> slock(state_mu_);
  dictionaries_ = std::move(dictionaries);
  have_dictionaries_ = true;
}

std::vector<std::vector<ValueId>> Session::EngineRows(
    int64_t from, int64_t to) const {
  const CountingEngine& engine = dataset_.service()->engine();
  const int64_t base = dataset_.table().num_rows();
  const int n = dataset_.table().num_attributes();
  std::vector<std::vector<ValueId>> rows;
  rows.reserve(static_cast<size_t>(to - from));
  for (int64_t r = from; r < to; ++r) {
    std::vector<ValueId> row(static_cast<size_t>(n));
    engine.CopyAppendedRow(r - base, row.data());
    rows.push_back(std::move(row));
  }
  return rows;
}

std::shared_ptr<const ValueCounts> Session::SyncedVc() {
  const CountingEngine& engine = dataset_.service()->engine();
  // Stable under the caller's admission: appenders are excluded.
  const int64_t total = engine.total_rows();
  // The whole check-compute-publish runs under state_mu_: two of this
  // session's queries may race here (shared admissions), and both must
  // observe a consistent (vc_, vc_rows_) pair. The catch-up itself is
  // per-session work — holding the lock across it serializes only
  // siblings of this session, never the service.
  std::lock_guard<std::mutex> slock(state_mu_);
  if (vc_ != nullptr && vc_rows_ == total) return vc_;
  std::shared_ptr<ValueCounts> next;
  int64_t have;
  if (vc_ == nullptr) {
    next = std::make_shared<ValueCounts>(
        ValueCounts::Compute(dataset_.table()));
    have = dataset_.table().num_rows();
  } else {
    next = std::make_shared<ValueCounts>(*vc_);
    have = vc_rows_;
  }
  const int n = dataset_.table().num_attributes();
  for (const auto& row : EngineRows(have, total)) {
    next->ApplyRow(row.data(), n);
  }
  vc_ = std::move(next);
  vc_rows_ = total;
  return vc_;
}

std::shared_ptr<const FullPatternIndex> Session::SyncedFpi() {
  const CountingEngine& engine = dataset_.service()->engine();
  const int64_t total = engine.total_rows();
  std::lock_guard<std::mutex> slock(state_mu_);
  if (fpi_ != nullptr && fpi_rows_ == total) return fpi_;
  std::shared_ptr<FullPatternIndex> next;
  int64_t have;
  if (fpi_ == nullptr) {
    next = std::make_shared<FullPatternIndex>(
        FullPatternIndex::Build(dataset_.table()));
    have = dataset_.table().num_rows();
  } else {
    next = std::make_shared<FullPatternIndex>(*fpi_);
    have = fpi_rows_;
  }
  if (have < total) next->ApplyAppend(EngineRows(have, total));
  fpi_ = std::move(next);
  fpi_rows_ = total;
  return fpi_;
}

Result<std::vector<std::pair<int, ValueId>>> Session::ResolvePatternLocked(
    const std::vector<std::pair<std::string, std::string>>& terms) const {
  const Table& table = dataset_.table();
  std::vector<std::pair<int, ValueId>> out;
  out.reserve(terms.size());
  AttrMask seen;
  for (const auto& [name, value] : terms) {
    PCBL_ASSIGN_OR_RETURN(int attr, table.schema().FindAttribute(name));
    // The session's grown dictionaries resolve values appended after the
    // base table was built; wording mirrors Pattern::Parse.
    const ValueId v = have_dictionaries_
                          ? dictionaries_[static_cast<size_t>(attr)]
                                .Lookup(value)
                          : table.dictionary(attr).Lookup(value);
    if (IsNull(v)) {
      return NotFoundError(StrCat("value '", value,
                                  "' does not appear in attribute '",
                                  name, "'"));
    }
    if (seen.Test(attr)) {
      return InvalidArgumentError(
          StrCat("duplicate attribute ", attr, " in pattern"));
    }
    seen.Set(attr);
    out.emplace_back(attr, v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

int64_t Session::total_rows() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return dataset_.table().num_rows() + session_appended_;
}

int64_t Session::appended_rows() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return session_appended_;
}

}  // namespace api
}  // namespace pcbl
