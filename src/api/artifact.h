// Label-artifact operations of the public API — the dataset-less half of
// the façade.
//
// The paper's labels are shipped *metadata*: a consumer holding only a
// saved label (no data access) estimates counts, audits fitness-for-use,
// and diffs dataset releases. These wrappers are the blessed surface for
// that side; the underlying core/ routines stay public as low-level
// building blocks. The data-backed half lives in api/session.h.
#ifndef PCBL_API_ARTIFACT_H_
#define PCBL_API_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/label_diff.h"
#include "core/portable_label.h"
#include "core/warnings.h"
#include "util/status.h"

namespace pcbl {
namespace api {

/// A PortableLabel indexed for repeated consumer-side queries.
///
/// PortableLabel::EstimateCount resolves attribute names, VC values, and
/// matching PC entries by linear scan — fine for one estimate, quadratic
/// pain for an audit that estimates every value intersection. A
/// LabelArtifact builds the lookup structures once (name→index map,
/// per-attribute value→count maps and marginal totals, and per-S-position
/// postings from value to the PC entries binding it) and then answers
/// each estimate from them. Estimates are numerically identical to the
/// wrapped label's own — same error conditions and wording, same
/// int64 base summation, same independence-factor multiplication order —
/// so an artifact can stand in for its label anywhere, including as the
/// estimator of an audit.
///
/// Immutable after construction; safe to share across threads.
class LabelArtifact {
 public:
  /// Takes ownership of the label (typically fresh from
  /// LoadLabelArtifact or a cached query result's MakePortable output).
  explicit LabelArtifact(PortableLabel label);

  /// The wrapped label.
  const PortableLabel& label() const { return label_; }

  /// |D| of the labeled dataset.
  int64_t total_rows() const { return label_.total_rows; }

  /// |PC| — the label size.
  int64_t size() const { return label_.size(); }

  /// Index-accelerated Definition 2.11 estimate; byte-identical to
  /// PortableLabel::EstimateCount on the wrapped label.
  Result<double> EstimateCount(
      const std::vector<std::pair<std::string, std::string>>& pattern) const;

 private:
  PortableLabel label_;
  /// Attribute name → index; on (pathological) duplicate names the first
  /// occurrence wins, matching the label's first-match linear scan.
  std::unordered_map<std::string, int> attr_index_;
  /// Attribute index → its position in S, or -1 when outside S.
  std::vector<int> s_position_;
  /// Per attribute: value → VC count (first occurrence wins).
  std::vector<std::unordered_map<std::string, int64_t>> vc_;
  /// Per attribute: sum of all VC counts (the independence denominator).
  std::vector<int64_t> vc_totals_;
  /// Per S position: value → indices of PC entries binding that value at
  /// that position. Empty stored values (the entry does not bind the
  /// attribute) are excluded — they can never match a queried term.
  std::vector<std::unordered_map<std::string, std::vector<size_t>>>
      postings_;
};

/// Loads a portable label from a JSON or binary file (format sniffed).
Result<PortableLabel> LoadLabelArtifact(const std::string& path);

/// Estimates the count of the (attribute name, value) pattern from the
/// label alone (Definition 2.11, consumer side). Unknown attributes are
/// an error; unknown values estimate as 0.
Result<double> EstimateFromLabel(
    const PortableLabel& label,
    const std::vector<std::pair<std::string, std::string>>& pattern);

/// As above, answered from an already-built artifact's indexes.
Result<double> EstimateFromLabel(
    const LabelArtifact& artifact,
    const std::vector<std::pair<std::string, std::string>>& pattern);

/// Fitness-for-use audit over a label alone (Sec. I's motivating
/// workflow): underrepresentation / skew / correlation warnings over the
/// intersections of `attrs` (all attributes when empty).
Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const PortableLabel& label, const std::vector<std::string>& attrs,
    const AuditOptions& options);

/// As above, but every per-intersection estimate is answered by the
/// artifact's indexes instead of the label's linear scans — the same
/// warnings, materially faster on wide audits.
Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const LabelArtifact& artifact, const std::vector<std::string>& attrs,
    const AuditOptions& options);

/// What changed between two releases of a dataset, as seen through their
/// labels alone.
LabelDiff DiffLabelArtifacts(const PortableLabel& old_label,
                             const PortableLabel& new_label);

/// As above for already-built artifacts.
LabelDiff DiffLabelArtifacts(const LabelArtifact& old_artifact,
                             const LabelArtifact& new_artifact);

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_ARTIFACT_H_
