// Label-artifact operations of the public API — the dataset-less half of
// the façade.
//
// The paper's labels are shipped *metadata*: a consumer holding only a
// saved label (no data access) estimates counts, audits fitness-for-use,
// and diffs dataset releases. These wrappers are the blessed surface for
// that side; the underlying core/ routines stay public as low-level
// building blocks. The data-backed half lives in api/session.h.
#ifndef PCBL_API_ARTIFACT_H_
#define PCBL_API_ARTIFACT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/label_diff.h"
#include "core/portable_label.h"
#include "core/warnings.h"
#include "util/status.h"

namespace pcbl {
namespace api {

/// Loads a portable label from a JSON or binary file (format sniffed).
Result<PortableLabel> LoadLabelArtifact(const std::string& path);

/// Estimates the count of the (attribute name, value) pattern from the
/// label alone (Definition 2.11, consumer side). Unknown attributes are
/// an error; unknown values estimate as 0.
Result<double> EstimateFromLabel(
    const PortableLabel& label,
    const std::vector<std::pair<std::string, std::string>>& pattern);

/// Fitness-for-use audit over a label alone (Sec. I's motivating
/// workflow): underrepresentation / skew / correlation warnings over the
/// intersections of `attrs` (all attributes when empty).
Result<std::vector<FitnessWarning>> AuditLabelArtifact(
    const PortableLabel& label, const std::vector<std::string>& attrs,
    const AuditOptions& options);

/// What changed between two releases of a dataset, as seen through their
/// labels alone.
LabelDiff DiffLabelArtifacts(const PortableLabel& old_label,
                             const PortableLabel& new_label);

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_ARTIFACT_H_
