// pcbl::api::Dataset — the immutable handle of the public API.
//
// A Dataset loads (or adopts) one Table and acquires its shared
// CountingService through the process-wide ServiceRegistry: every
// Dataset over content-equal data — any number of processes' worth of
// sessions, CLI invocations, sweeps — rides the same warm service, so
// the second consumer's candidate sizings are answered from the first
// one's cache with zero full-table scans. The handle itself is cheap to
// copy (shared ownership of the table and service) and immutable:
// growth happens through a Session (api/session.h), never through the
// Dataset. Any number of sessions over this handle may append
// concurrently — the service owns a shared interner and group-commits
// their rows (see pattern/counting_service.h); the base Table never
// changes, only the service's delta grows.
//
// This is the blessed entry point of the library together with Session;
// LabelSearch / IncrementalLabel remain public as low-level engines.
#ifndef PCBL_API_DATASET_H_
#define PCBL_API_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "pattern/counting_service.h"
#include "pattern/service_registry.h"
#include "relation/table.h"
#include "util/status.h"

namespace pcbl {
namespace api {

/// Knobs of Dataset construction.
struct DatasetOptions {
  /// When >= 0: applied to the process-wide registry's memory budget
  /// (bytes; 0 = unbounded) before acquiring, the `--service-budget`
  /// semantics of the CLI. Negative = leave the budget unchanged.
  int64_t service_memory_budget = -1;

  /// Build a private CountingService instead of acquiring the shared
  /// one from ServiceRegistry::Global() — isolation for tests and
  /// benchmarks that must not observe (or warm) process-wide state.
  bool private_service = false;

  /// When non-empty: applied as the process-wide registry's spill
  /// directory (warm-start persistence, docs/PERSISTENCE.md) before
  /// acquiring — the `--spill-dir` semantics of the CLI. The acquire
  /// then restores the service from a spilled warm state when a valid
  /// record for this content exists. Empty = leave the registry's spill
  /// configuration unchanged. Ignored with private_service.
  std::string spill_directory;
};

class Dataset {
 public:
  /// Reads a CSV file and acquires the content's shared service.
  static Result<Dataset> FromCsvFile(const std::string& path,
                                     const DatasetOptions& options = {});

  /// Adopts an already-built table (moved into shared ownership).
  static Result<Dataset> FromTable(Table table,
                                   const DatasetOptions& options = {});

  /// Shares ownership of the caller's table — no copy on a registry
  /// miss.
  static Result<Dataset> FromTable(std::shared_ptr<const Table> table,
                                   const DatasetOptions& options = {});

  const Table& table() const { return *table_; }
  const std::shared_ptr<const Table>& shared_table() const { return table_; }

  /// The dataset's counting service (registry-shared unless
  /// DatasetOptions::private_service). Sessions serialize engine access
  /// through its mutex(); most callers never touch it directly.
  const std::shared_ptr<CountingService>& service() const {
    return service_;
  }

  int64_t num_rows() const { return table_->num_rows(); }
  int num_attributes() const { return table_->num_attributes(); }

  /// The 128-bit content fingerprint the registry keyed the service on.
  const TableFingerprint& fingerprint() const { return fingerprint_; }

 private:
  Dataset() = default;

  std::shared_ptr<const Table> table_;
  std::shared_ptr<CountingService> service_;
  TableFingerprint fingerprint_;
};

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_DATASET_H_
