// pcbl::api::Session — the mutable unit of the public API.
//
// A Session is opened over a Dataset and is the one blessed way to query
// and grow it:
//
//   auto dataset = pcbl::api::Dataset::FromCsvFile("data.csv");
//   auto session = pcbl::api::Session::Open(*dataset);
//   auto future  = (*session)->Submit(
//       pcbl::api::QuerySpec::LabelSearch(/*size_bound=*/100));
//   const pcbl::api::QueryResult& result = future->Get();
//
// Queries (QuerySpec: label search / true count / profile) are validated
// centrally at Submit — nonsense inputs come back as Status instead of
// being clamped — and execute asynchronously on the session's ThreadPool
// executor; Submit returns a QueryFuture immediately. N concurrent
// queries against content-equal datasets ride one warm registry-shared
// CountingService: each is admitted through the service's gate in
// shared mode and submits its sizing waves to the *wave scheduler*,
// which merges all in-flight queries' batches into single deduped
// engine calls — so concurrent sessions over equal data perform at most
// one set of full-table scans between them and their ranking phases
// overlap instead of queueing (docs/CONCURRENCY.md has the full model;
// SessionOptions::use_wave_scheduler = false restores the serialized
// whole-search lock, byte-identical). A query whose shared service was
// evicted by the registry (memory pressure / Clear) is refused with a
// retryable kUnavailable instead of silently computing on a detached
// service — re-open the Dataset and retry.
//
// Appends. Session::Append / AppendRow / AppendRows route through the
// shared service's string-level append surface
// (CountingService::AppendStrings / AppendTable): values are interned
// centrally in the service's SharedInterner (ids extend the base code
// space in committed first-seen order, exactly as TableBuilder would
// assign them), concurrent appends — from this session or any sibling —
// group-commit into one critical section behind the exclusive append
// admission, and the rows join the engine's invalidate-or-patch delta
// block. Each append is transactional: on a non-ok status none of its
// rows or values is visible anywhere. A query submitted afterwards runs
// append-aware: it lazily catches the session's VC / P_A up to the
// engine's rows (CountingEngine::CopyAppendedRows) and certifies its
// label against the extended data byte-exactly versus a from-scratch
// rebuild — including focus (custom PatternSet) searches, whose pattern
// set is derived from the engine's delta-aware PC sets.
//
// Sharing and growth: any number of sessions append to one shared
// service concurrently, and the central interner means every sibling
// resolves appended *strings* too — a true-count query on a value only
// ever seen in a sibling's appended rows answers exactly. A *new*
// Dataset over the base content acquires a fresh base-content service
// (the registry retires diverged services), so appends never leak
// between datasets.
#ifndef PCBL_API_SESSION_H_
#define PCBL_API_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "core/pattern_set.h"
#include "pattern/counting_engine.h"
#include "pattern/full_pattern_index.h"
#include "relation/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pcbl {
namespace api {

/// Session-level defaults; per-query overrides live on QuerySpec.
struct SessionOptions {
  /// Worker threads for candidate sizing/ranking. 0 = all hardware
  /// threads (resolved at Open); negative is rejected. Results are
  /// byte-identical for any value.
  int num_threads = 0;

  /// Candidate sizing through the batched+memoized counting engine;
  /// disabling reverts to serial one-shot scans (byte-identical).
  bool use_counting_engine = true;

  /// Engine memoization budget in cached group entries; -1 = the
  /// engine's default, 0 disables memoization. A positive budget
  /// combined with a disabled engine is rejected as conflicting.
  int64_t counting_cache_budget = -1;

  /// Minimum rows per morsel for morsel-parallel exact sizing scans;
  /// -1 = the engine default, 0 disables intra-subset parallelism.
  /// Result-neutral: only wall-clock changes. See
  /// CountingEngineOptions::min_rows_per_morsel.
  int64_t min_rows_per_morsel = -1;

  /// Threads of the session's async query executor (Submit). With the
  /// wave scheduler (the default), queries admitted concurrently merge
  /// their sizing waves and rank in parallel, so more executor threads
  /// buy real overlap; on the serialized path they only overlap pre-/
  /// post-processing around the service mutex.
  int executor_threads = 1;

  /// Queries enter the service through the admission gate and submit
  /// their sizing waves to the shared wave scheduler: concurrent
  /// queries — this session's and any sibling's over the same service —
  /// merge in-flight waves into single deduped engine batches instead
  /// of serializing whole searches on the service mutex. Disabling
  /// reverts to the serialized whole-search lock (byte-identical
  /// results; the differential harness' reference arm). See
  /// docs/CONCURRENCY.md.
  bool use_wave_scheduler = true;

  /// Route queries through the service's two-level result tier:
  /// identical in-flight queries collapse onto one execution (later
  /// arrivals park on the leader's shared future), identical repeats
  /// answer from a bounded per-service cache of completed results.
  /// Byte-identical results either way — the key covers every
  /// result-affecting field; disabling is the differential harness'
  /// reference arm. See DESIGN.md §5.7 and docs/CONCURRENCY.md.
  bool use_result_cache = true;

  /// Byte budget of the shared service's completed-result cache; -1 =
  /// the service default (CountingService::kDefaultResultCacheBudget),
  /// 0 = in-flight dedup only. Applied on this session's queries (last
  /// writer wins across sessions sharing the service); the cached bytes
  /// are accounted in the process-wide registry budget alongside the
  /// engine's PC sets.
  int64_t result_cache_budget = -1;
};

class Session {
 public:
  /// Validates `options` (Status on nonsense — negative threads, a
  /// positive cache budget on a disabled engine, a non-positive
  /// executor) and opens the session.
  static Result<std::unique_ptr<Session>> Open(Dataset dataset,
                                               SessionOptions options = {});

  /// Drains in-flight queries, then closes.
  ~Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Validates `spec` (spec shape, engine-flag conflicts, schema checks)
  /// and enqueues it on the executor. The returned future is shared;
  /// execution-time failures surface as QueryResult::status.
  Result<QueryFuture> Submit(QuerySpec spec);

  /// Submit + Get: the synchronous convenience form. Validation errors
  /// come back in QueryResult::status.
  QueryResult Run(const QuerySpec& spec);

  /// Appends one row of string values (empty / "NULL" = missing),
  /// exactly like TableBuilder::AddRow. Any number of sessions may
  /// append concurrently: the shared service interns values centrally
  /// and group-commits concurrent appends into one critical section.
  Status AppendRow(const std::vector<std::string>& values);

  /// Appends a batch of string rows in order — one group-commit ticket,
  /// so high-rate ingest pays the admission once per batch instead of
  /// once per row. Transactional: on a non-ok status (e.g. one row with
  /// the wrong width) none of the batch's rows or values is visible.
  Status AppendRows(const std::vector<std::vector<std::string>>& rows);

  /// Appends every row of `delta` (same attribute names in the same
  /// order; values remapped by string, so `delta` may use its own
  /// dictionaries).
  Status Append(const Table& delta);

  const Dataset& dataset() const { return dataset_; }
  const SessionOptions& options() const { return options_; }

  /// |D| of the shared dataset right now: base rows plus every row
  /// appended through the shared service — by this session or any
  /// sibling. Lock-free snapshot; a query's QueryResult::total_rows is
  /// the admission-pinned authoritative count.
  int64_t total_rows() const;

  /// Rows appended through *this* session.
  int64_t appended_rows() const;

 private:
  Session(Dataset dataset, SessionOptions options);

  // Full validation chain for one spec (ValidateQuerySpec + session
  // options interplay + schema-dependent checks).
  Status Validate(const QuerySpec& spec) const;

  // Executor-side entry: refuses evicted services (retryable
  // kUnavailable), then runs the query under the session's admission
  // discipline — a shared QueryAdmission plus scheduler waves (the
  // default) or the whole-query service lock (use_wave_scheduler off).
  QueryResult Execute(const QuerySpec& spec);
  QueryResult ExecuteSearch(const QuerySpec& spec);
  QueryResult ExecuteTrueCount(const QuerySpec& spec);
  QueryResult ExecuteProfile(const QuerySpec& spec);
  // Shared bodies; `scheduled` picks waves vs direct engine calls. The
  // caller holds the matching admission (gate-shared vs mutex).
  QueryResult ExecuteSearchAdmitted(const QuerySpec& spec, bool scheduled);
  QueryResult ExecuteTrueCountAdmitted(const QuerySpec& spec,
                                       bool scheduled);
  QueryResult ExecuteProfileAdmitted(const QuerySpec& spec, bool scheduled);

  // Routes one admitted query through the service's result tier (cache
  // hit / park on an identical in-flight leader / execute `body` and
  // publish). Falls through to `body` when the tier is off or the spec
  // is not cacheable. Every cacheable result is content-pure — string
  // resolution goes through the service's shared interner, so appends
  // never make a result session-dependent. The caller holds the
  // admission matching `scheduled` for the whole call, which pins the
  // engine rows the cache entries are tagged with.
  QueryResult ExecuteViaResultTier(const QuerySpec& spec, bool scheduled,
                                   const std::function<QueryResult()>& body);

  // Effective per-query knobs (spec overrides over session defaults).
  SearchOptions ToSearchOptions(const QuerySpec& spec) const;
  CountingEngineOptions ToEngineOptions(const QuerySpec& spec) const;
  bool UseScheduler(const QuerySpec& spec) const {
    return spec.use_wave_scheduler.value_or(options_.use_wave_scheduler);
  }

  // --- maintenance state (see locking note below) ----------------------
  // Lazily materializes VC / P_A, catches them up to every row the
  // engine holds (CopyAppendedRows), and returns the snapshot the
  // caller should use (reading the members again outside state_mu_
  // would race a sibling query's catch-up). Callers hold a query
  // admission (gate shared or the service mutex), so the engine's data
  // is stable.
  std::shared_ptr<const ValueCounts> SyncedVc();
  std::shared_ptr<const FullPatternIndex> SyncedFpi();
  // The engine's appended rows in [from, to), flat row-major.
  std::vector<ValueId> EngineRows(int64_t from, int64_t to) const;

  // Rebuilds the focus pattern set over the *extended* data:
  // OverAttributes scans the base table, so after appends the set is
  // derived from delta-aware state instead — the engine's PC set over
  // the focus mask (arity >= 2) or the synced VC (arity 1). Order
  // matches what OverAttributes would produce over the rebuilt table,
  // so the ErrorReport stays byte-identical. Caller holds the admission
  // matching `scheduled`.
  Result<PatternSet> ExtendedFocusPatterns(const QuerySpec& spec,
                                           bool scheduled,
                                           const ValueCounts& vc);

  // Resolves (attribute name, value string) terms against the service's
  // shared interner (base dictionaries plus the committed dictionary-
  // delta log — values appended by *any* session resolve), mirroring
  // Pattern::Parse including its error wording. Caller holds a query
  // admission (the interner only grows under an AppendAdmission).
  Result<std::vector<std::pair<int, ValueId>>> ResolvePatternLocked(
      const std::vector<std::pair<std::string, std::string>>& terms) const;

  Dataset dataset_;
  SessionOptions options_;

  // Locking: writes to the fields below happen under state_mu_ while
  // the writer additionally holds a query admission (VC / P_A catch-up,
  // which is idempotent — the admission pins the engine rows the state
  // is synced against). All reads take state_mu_ or receive a snapshot
  // from a Synced* call. Dictionaries live in the service's shared
  // interner, not here: a session holds no private string state.
  mutable std::mutex state_mu_;
  std::shared_ptr<const ValueCounts> vc_;          // null until needed
  int64_t vc_rows_ = 0;                            // rows vc_ describes
  std::shared_ptr<const FullPatternIndex> fpi_;    // null until needed
  int64_t fpi_rows_ = 0;                           // rows fpi_ describes
  int64_t session_appended_ = 0;  // rows appended through this session

  // Declared last: destroyed first, draining queries while every member
  // they touch is still alive.
  ThreadPool executor_;
};

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_SESSION_H_
