// pcbl::api::Session — the mutable unit of the public API.
//
// A Session is opened over a Dataset and is the one blessed way to query
// and grow it:
//
//   auto dataset = pcbl::api::Dataset::FromCsvFile("data.csv");
//   auto session = pcbl::api::Session::Open(*dataset);
//   auto future  = (*session)->Submit(
//       pcbl::api::QuerySpec::LabelSearch(/*size_bound=*/100));
//   const pcbl::api::QueryResult& result = future->Get();
//
// Queries (QuerySpec: label search / true count / profile) are validated
// centrally at Submit — nonsense inputs come back as Status instead of
// being clamped — and execute asynchronously on the session's ThreadPool
// executor; Submit returns a QueryFuture immediately. N concurrent
// queries against content-equal datasets ride one warm registry-shared
// CountingService (they serialize on its mutex and batch their sizing
// waves through its cache), so two sessions over equal data perform
// exactly one set of full-table scans between them — asserted by the API
// conformance suite.
//
// Appends. Session::Append / AppendRow define the append semantics of
// the whole stack in one place: under the service lock the session
// (1) interns the new rows into its growing dictionaries (ids extend the
// base code space exactly as TableBuilder would), (2) patches its
// incrementally maintained VC (ValueCounts::ApplyRow) and full-pattern
// index P_A (FullPatternIndex::ApplyAppend), and (3) feeds the rows to
// the engine's invalidate-or-patch hook. A search submitted afterwards
// runs append-aware (LabelSearch::SetExtendedState): it certifies its
// label against the extended data byte-exactly versus a from-scratch
// rebuild — the refusal to search after appends is gone, not papered
// over per call site.
//
// Sharing and growth: one *appending* session per shared service (string
// interning cannot be reconciled across concurrent appenders); Append
// fails with FailedPrecondition if another consumer grew the service
// first. Read-only sibling sessions keep serving searches and profiles —
// before each query they catch their VC / P_A up to the engine's rows
// (code-level sync via CountingEngine::CopyAppendedRow). The sync is
// code-level only: a sibling cannot learn the *strings* the appender
// interned, so its true-count queries resolve values against the base
// dictionaries and report appender-added values as NotFound even though
// the appended rows are counted everywhere else (a shared interning
// surface is a ROADMAP item). A *new* Dataset over the base content
// acquires a fresh base-content service (the registry retires diverged
// services), so appends never leak between datasets.
#ifndef PCBL_API_SESSION_H_
#define PCBL_API_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/dataset.h"
#include "api/query.h"
#include "pattern/counting_engine.h"
#include "pattern/full_pattern_index.h"
#include "relation/dictionary.h"
#include "relation/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pcbl {
namespace api {

/// Session-level defaults; per-query overrides live on QuerySpec.
struct SessionOptions {
  /// Worker threads for candidate sizing/ranking. 0 = all hardware
  /// threads (resolved at Open); negative is rejected. Results are
  /// byte-identical for any value.
  int num_threads = 0;

  /// Candidate sizing through the batched+memoized counting engine;
  /// disabling reverts to serial one-shot scans (byte-identical).
  bool use_counting_engine = true;

  /// Engine memoization budget in cached group entries; -1 = the
  /// engine's default, 0 disables memoization. A positive budget
  /// combined with a disabled engine is rejected as conflicting.
  int64_t counting_cache_budget = -1;

  /// Threads of the session's async query executor (Submit). Queries
  /// over one service serialize on its mutex regardless; more executor
  /// threads only help overlap pre-/post-processing.
  int executor_threads = 1;
};

class Session {
 public:
  /// Validates `options` (Status on nonsense — negative threads, a
  /// positive cache budget on a disabled engine, a non-positive
  /// executor) and opens the session.
  static Result<std::unique_ptr<Session>> Open(Dataset dataset,
                                               SessionOptions options = {});

  /// Drains in-flight queries, then closes.
  ~Session() = default;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Validates `spec` (spec shape, engine-flag conflicts, schema checks)
  /// and enqueues it on the executor. The returned future is shared;
  /// execution-time failures surface as QueryResult::status.
  Result<QueryFuture> Submit(QuerySpec spec);

  /// Submit + Get: the synchronous convenience form. Validation errors
  /// come back in QueryResult::status.
  QueryResult Run(const QuerySpec& spec);

  /// Appends one row of string values (empty / "NULL" = missing),
  /// exactly like TableBuilder::AddRow. Fails (FailedPrecondition) when
  /// another consumer already grew the shared service.
  Status AppendRow(const std::vector<std::string>& values);

  /// Appends every row of `delta` (same attribute names in the same
  /// order; values remapped by string, so `delta` may use its own
  /// dictionaries).
  Status Append(const Table& delta);

  const Dataset& dataset() const { return dataset_; }
  const SessionOptions& options() const { return options_; }

  /// |D| as grown through this session (base rows + appended_rows()).
  /// A sibling session appending through the same shared service may put
  /// the engine ahead of this; queries always sync first, and report the
  /// authoritative count in QueryResult::total_rows.
  int64_t total_rows() const;

  /// Rows appended through *this* session.
  int64_t appended_rows() const;

 private:
  Session(Dataset dataset, SessionOptions options);

  // Full validation chain for one spec (ValidateQuerySpec + session
  // options interplay + schema-dependent checks).
  Status Validate(const QuerySpec& spec) const;

  // Executor-side entry: runs the query under the service lock.
  QueryResult Execute(const QuerySpec& spec);
  QueryResult ExecuteSearch(const QuerySpec& spec);
  QueryResult ExecuteTrueCount(const QuerySpec& spec);
  QueryResult ExecuteProfile(const QuerySpec& spec);

  // Effective per-query knobs (spec overrides over session defaults).
  SearchOptions ToSearchOptions(const QuerySpec& spec) const;
  CountingEngineOptions ToEngineOptions(const QuerySpec& spec) const;

  // --- maintenance state (see locking note below) ----------------------
  // Lazily materializes VC / P_A and catches them up to every row the
  // engine holds (CopyAppendedRow), so searches can run append-aware.
  // Callers hold the service mutex.
  void EnsureVcLocked();
  void EnsureFpiLocked();
  // The engine's appended rows in [from, to), row-major.
  std::vector<std::vector<ValueId>> EngineRowsLocked(int64_t from,
                                                     int64_t to) const;
  // Copies the base table's dictionaries on first use (append interning).
  void EnsureDictionariesLocked();
  // Shared tail of AppendRow/Append: rows already encoded in the
  // session's (grown) code space.
  Status AppendCodesLocked(const std::vector<std::vector<ValueId>>& rows);

  // Resolves (attribute name, value string) terms against the session's
  // grown dictionaries (falling back to the base table's), mirroring
  // Pattern::Parse including its error wording.
  Result<std::vector<std::pair<int, ValueId>>> ResolvePatternLocked(
      const std::vector<std::pair<std::string, std::string>>& terms) const;

  Dataset dataset_;
  SessionOptions options_;

  // Locking: writes to the fields below happen while holding BOTH the
  // service mutex and state_mu_ (service first); the query path reads
  // them under the service mutex alone, the public accessors under
  // state_mu_ alone. Either lock therefore suffices for readers.
  mutable std::mutex state_mu_;
  std::vector<Dictionary> dictionaries_;  // grown; empty until 1st append
  bool have_dictionaries_ = false;
  std::shared_ptr<const ValueCounts> vc_;          // null until needed
  int64_t vc_rows_ = 0;                            // rows vc_ describes
  std::shared_ptr<const FullPatternIndex> fpi_;    // null until needed
  int64_t fpi_rows_ = 0;                           // rows fpi_ describes
  int64_t session_appended_ = 0;  // rows appended through this session

  // Declared last: destroyed first, draining queries while every member
  // they touch is still alive.
  ThreadPool executor_;
};

}  // namespace api
}  // namespace pcbl

#endif  // PCBL_API_SESSION_H_
